// Ablation (DESIGN.md): what should happen to the middle 3-means band?
//
// The paper says the middle group — weak attackers mixed with honest
// non-IID clients — "is permitted to contribute to the aggregation at a
// later stage". This bench compares the three readings implemented by
// core::MidBandPolicy: aggregate it now (default), defer it into the next
// buffer, or reject it outright. The accept policy should dominate: the mid
// band is mostly honest data, and starving the aggregate of it costs
// accuracy (which is exactly why the paper prefers 3-means over 2-means).
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  bench::GridSpec spec;
  spec.title = "Ablation: mid-band policy (FashionMNIST)";
  spec.csv_name = "ablation_midband_policy.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = {fl::DefenseKind::kAsyncFilter,
                   fl::DefenseKind::kAsyncFilterDeferMid,
                   fl::DefenseKind::kAsyncFilterRejectMid};
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Reproduces paper Table 8: doubled attacker presence (20 → 40 of 100, i.e.
// 40% malicious) on CINIC-10.
//
// Expected shape (paper): FedBuff diverges under GD/LIE/Min-Max;
// AsyncFilter lifts GD and LIE far off the floor.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base = bench::StandardConfig(data::Profile::kCinic10);
  base.num_malicious = base.num_clients * 2 / 5;  // 40%
  base.sim.rounds = bench::ScaledRounds(22);
  bench::GridSpec spec;
  spec.title =
      "Table 8: AsyncFilter is robust against doubled attackers on CINIC-10";
  spec.csv_name = "table8_attackers_cinic10.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Reproduces paper Table 3: defense grid on the FashionMNIST-like workload.
//
// Expected shape (paper): GD/Min-Max/Min-Sum cost FedBuff 10-20%;
// AsyncFilter recovers them while matching FedBuff without attack.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  bench::GridSpec spec;
  spec.title = "Table 3: AsyncFilter defends against attacks on FashionMNIST";
  spec.csv_name = "table3_fashionmnist.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

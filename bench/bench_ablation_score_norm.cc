// Ablation (DESIGN.md / suspicious_score.h): the two readings of Eq. 7.
//
// The paper's notation reuses k as both the client's staleness group and the
// summation index, admitting (a) a literal cross-group normalisation and
// (b) an across-peers normalisation. This bench runs AsyncFilter with each
// scoring rule on FashionMNIST under GD and Min-Max. The literal reading is
// expected to collapse toward FedBuff-level (or worse) accuracy: a poisoned
// update is far from *every* group estimate, so the ratio washes the signal
// out and the 3-means split becomes arbitrary.
#include <cstdio>

#include "bench_common.h"
#include "core/async_filter.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

std::function<std::unique_ptr<defense::Defense>()> FilterWith(
    core::ScoreNormalization normalization) {
  return [normalization]() -> std::unique_ptr<defense::Defense> {
    core::AsyncFilterOptions options;
    options.normalization = normalization;
    return std::make_unique<core::AsyncFilter>(options);
  };
}

}  // namespace

int main() {
  const struct {
    const char* name;
    core::ScoreNormalization normalization;
  } variants[] = {
      {"group-rms (default)", core::ScoreNormalization::kGroupRms},
      {"buffer-norm", core::ScoreNormalization::kBufferNorm},
      {"Eq.7 literal cross-group", core::ScoreNormalization::kEq7CrossGroup},
  };
  const attacks::AttackKind attack_grid[] = {attacks::AttackKind::kGd,
                                             attacks::AttackKind::kMinMax};

  std::printf("== Ablation: Eq. 7 score normalisation (FashionMNIST) ==\n");
  util::ConsoleTable table({"Normalisation", "GD", "Min-Max"});
  util::CsvWriter csv("ablation_score_norm.csv");
  csv.WriteHeader({"normalisation", "attack", "accuracy"});

  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (auto attack : attack_grid) {
      fl::ExperimentConfig config =
          bench::StandardConfig(data::Profile::kFashionMnist);
      config.attack = attack;
      config.defense_factory = FilterWith(variant.normalization);
      double percent = fl::RunExperiment(config).final_accuracy * 100.0;
      row.push_back(util::FormatFixed(percent) + "%");
      csv.WriteRow({variant.name, attacks::AttackKindName(attack),
                    util::FormatFixed(percent, 2)});
      std::fprintf(stderr, "  [%s / %s] %.1f%%\n", variant.name,
                   attacks::AttackKindName(attack), percent);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("CSV written to ablation_score_norm.csv\n");
  return 0;
}

// Micro-benchmark for the update hot path across the three transports.
//
// Each lane pushes the same stream of ClientUpdate frames — LeNet-surrogate
// sized float deltas — from one producer into the server-side materialize
// step (arena copy, exactly what fl::TcpBackend::OnUpdate does) and
// measures updates/sec, effective MB/s of float payload, and copies per
// update from the transport.bytes_copied / transport.updates counters:
//
//   inproc  UpdateView handoff, no serialization (the upper bound)
//   tcp     loopback socket through the net::Server reactor
//   shm     mmap'd rings negotiated over the same handshake
//
// Acceptance tracked per PR: shm moves >=2x the updates/sec of loopback
// tcp, and the uplink costs at most one counted copy per update on every
// lane. Emits BENCH_transport.json. `--smoke` shrinks the stream for CI;
// `--out=FILE` redirects the JSON.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/shm_ring.h"
#include "net/socket.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDeltaFloats = 61706;  // LeNet-surrogate param count

struct LaneResult {
  std::string lane;
  std::size_t updates = 0;
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  double payload_mb_s = 0.0;
  double copies_per_update = 0.0;
};

std::vector<float> MakeDelta(std::mt19937_64& rng) {
  std::normal_distribution<float> dist(0.0f, 0.02f);
  std::vector<float> delta(kDeltaFloats);
  for (float& v : delta) {
    v = dist(rng);
  }
  return delta;
}

// The server-side consumer shared by every lane: materialize the delta the
// way fl::TcpBackend::OnUpdate does — keep a view that owns its bytes,
// arena-copy (and count) one that aliases a transport buffer.
struct Consumer {
  util::Arena arena;
  std::size_t received = 0;
  double checksum = 0.0;  // defeat dead-code elimination

  void Consume(net::ClientUpdateMsg msg) {
    net::UpdateView delta;
    if (msg.delta.has_keepalive()) {
      delta = std::move(msg.delta);
    } else {
      obs::DefaultRegistry()
          .GetCounter("transport.bytes_copied")
          .Increment(msg.delta.size() * sizeof(float));
      delta = net::UpdateView::CopyToArena(arena, msg.delta);
    }
    checksum += static_cast<double>(delta[received % delta.size()]);
    ++received;
  }
};

LaneResult FinishLane(const char* lane, std::size_t updates, double seconds,
                      std::uint64_t copied_bytes_delta,
                      std::uint64_t updates_delta) {
  LaneResult result;
  result.lane = lane;
  result.updates = updates;
  result.seconds = seconds;
  result.updates_per_sec = static_cast<double>(updates) / seconds;
  result.payload_mb_s = static_cast<double>(updates) * kDeltaFloats *
                        sizeof(float) / seconds / 1e6;
  const double per_update_bytes =
      static_cast<double>(kDeltaFloats) * sizeof(float);
  result.copies_per_update =
      updates_delta == 0
          ? 0.0
          : static_cast<double>(copied_bytes_delta) /
                (static_cast<double>(updates_delta) * per_update_bytes);
  std::printf("  %-7s %7zu updates in %6.3fs  %9.0f updates/s  %8.1f MB/s  "
              "%.3f copies/update\n",
              lane, updates, seconds, result.updates_per_sec,
              result.payload_mb_s, result.copies_per_update);
  return result;
}

// inproc: UpdateViews handed to the consumer directly — the InprocBackend
// path, where the view owns its floats and no bytes are serialized.
LaneResult RunInproc(std::size_t updates, const std::vector<float>& delta) {
  obs::Counter& copied =
      obs::DefaultRegistry().GetCounter("transport.bytes_copied");
  obs::Counter& count = obs::DefaultRegistry().GetCounter("transport.updates");
  const std::uint64_t copied0 = copied.Value();
  const std::uint64_t count0 = count.Value();

  Consumer consumer;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < updates; ++i) {
    net::ClientUpdateMsg msg;
    msg.client_id = 1;
    msg.job_index = i;
    msg.delta = std::vector<float>(delta);  // the clone a trainer would emit
    count.Increment();
    consumer.Consume(std::move(msg));
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  AF_CHECK_EQ(consumer.received, updates);
  return FinishLane("inproc", updates, seconds, copied.Value() - copied0,
                    count.Value() - count0);
}

// tcp / shm: a real net::Server on loopback; the producer thread performs
// the hello (answering the ShmOffer when one arrives), then streams
// pre-encoded ClientUpdate frames as fast as the transport accepts them.
LaneResult RunServerLane(const char* lane, bool use_shm, std::size_t updates,
                         const std::vector<float>& delta) {
  obs::Counter& copied =
      obs::DefaultRegistry().GetCounter("transport.bytes_copied");
  obs::Counter& count = obs::DefaultRegistry().GetCounter("transport.updates");
  const std::uint64_t copied0 = copied.Value();
  const std::uint64_t count0 = count.Value();

  net::ServerOptions options;
  options.offer_shm = use_shm;
  net::Server server(options);
  Consumer consumer;
  server.SetUpdateHandler([&consumer](int, net::ClientUpdateMsg msg) {
    consumer.Consume(std::move(msg));
  });

  std::thread producer([&] {
    net::RetryConfig retry;
    retry.max_attempts = 10;
    net::Connection conn = net::ConnectWithRetry(server.port(), retry, 99);
    conn.SendFrame(net::EncodeAck({1}), 5000);

    std::unique_ptr<net::ShmSegment> shm;
    if (use_shm) {
      net::Frame frame;
      AF_CHECK(conn.RecvFrame(&frame, 5000)) << "no ShmOffer";
      const net::ShmOfferMsg offer = net::DecodeShmOffer(frame);
      shm = net::ShmSegment::Open(
          offer.name, static_cast<std::size_t>(offer.ring_bytes));
      conn.SendFrame(net::EncodeShmSelect({true}), 5000);
    }

    // One encode, streamed `updates` times with a bumped job_index — the
    // measurement targets the transport, not the serializer.
    net::ClientUpdateMsg msg;
    msg.client_id = 1;
    msg.job_index = 0;
    msg.num_samples = 60;
    msg.delta = net::UpdateView(std::span<const float>(delta), nullptr);
    std::vector<std::uint8_t> bytes;
    net::AppendClientUpdateFrame(bytes, msg);
    // job_index sits right after the frame header + client_id field.
    const std::size_t job_index_at = net::kFrameHeaderBytes + 4;

    std::vector<std::uint8_t> drain;
    for (std::size_t i = 0; i < updates; ++i) {
      const std::uint64_t job = i;
      std::memcpy(bytes.data() + job_index_at, &job, sizeof(job));
      if (shm != nullptr) {
        AF_CHECK(shm->uplink().WriteAll(bytes, 30000)) << "ring stalled";
        shm->downlink().ReadSome(drain);  // discard acks
        drain.clear();
      } else {
        conn.SendBytes(bytes, 30000);
        net::Frame ack;
        while (conn.TryRecvFrame(&ack, 0) ==
               net::Connection::RecvStatus::kFrame) {
        }
      }
    }
  });

  bool shm_negotiated = false;
  const auto start = Clock::now();
  while (consumer.received < updates) {
    server.PollOnce(1);
    shm_negotiated = shm_negotiated || server.ClientUsesShm(1);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  producer.join();
  if (use_shm) {
    AF_CHECK(shm_negotiated) << "shm negotiation failed";
  }
  return FinishLane(lane, updates, seconds, copied.Value() - copied0,
                    count.Value() - count0);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  flags.RejectUnknown({"smoke", "out"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_transport.json");

  const std::size_t updates = smoke ? 300 : 2000;
  std::mt19937_64 rng(20260808);
  const std::vector<float> delta = MakeDelta(rng);

  std::printf("bench_micro_transport%s — %zu updates of %zu floats per lane\n",
              smoke ? " (smoke)" : "", updates, kDeltaFloats);

  std::vector<LaneResult> lanes;
  lanes.push_back(RunInproc(updates, delta));
  lanes.push_back(RunServerLane("tcp", /*use_shm=*/false, updates, delta));
  lanes.push_back(RunServerLane("shm", /*use_shm=*/true, updates, delta));

  const LaneResult& tcp = lanes[1];
  const LaneResult& shm = lanes[2];
  const double speedup = shm.updates_per_sec / tcp.updates_per_sec;
  const bool speedup_met = speedup >= 2.0;
  bool copies_met = true;
  for (const LaneResult& lane : lanes) {
    copies_met = copies_met && lane.copies_per_update <= 1.0 + 1e-9;
  }
  std::printf("shm vs tcp: %.2fx (target >=2x): %s\n", speedup,
              speedup_met ? "met" : "MISSED");
  std::printf("uplink copies <=1 per update on every lane: %s\n",
              copies_met ? "met" : "MISSED");

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String("transport");
  json.Key("smoke").Bool(smoke);
  json.Key("delta_floats").UInt(kDeltaFloats);
  json.Key("updates_per_lane").UInt(updates);
  json.Key("shm_vs_tcp_speedup").Number(speedup);
  json.Key("shm_speedup_met").Bool(speedup_met);
  json.Key("uplink_copies_met").Bool(copies_met);
  json.Key("lanes").BeginArray();
  for (const LaneResult& lane : lanes) {
    json.BeginObject();
    json.Key("lane").String(lane.lane);
    json.Key("updates").UInt(lane.updates);
    json.Key("seconds").Number(lane.seconds);
    json.Key("updates_per_sec").Number(lane.updates_per_sec);
    json.Key("payload_mb_s").Number(lane.payload_mb_s);
    json.Key("copies_per_update").Number(lane.copies_per_update);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("perf record written to %s\n", out_path.c_str());
  return 0;
}

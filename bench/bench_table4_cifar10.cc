// Reproduces paper Table 4: defense grid on the CIFAR-10-like workload
// (VGG surrogate, Adam optimiser, Table 1's larger partitions).
//
// Expected shape (paper): GD and LIE are the damaging attacks; AsyncFilter
// improves both and roughly matches FedBuff elsewhere.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base = bench::StandardConfig(data::Profile::kCifar10);
  bench::GridSpec spec;
  spec.title = "Table 4: AsyncFilter defends against attacks on CIFAR-10";
  spec.csv_name = "table4_cifar10.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Micro-benchmark for virtual-client scale: the same job stream pushed
// through a net::Server + fl::VirtualClientPool pair at growing fleet
// sizes, measuring per-job round-trip latency (broadcast dispatched →
// update staged) while the population grows 1k → 100k.
//
// The fleet rides ResolvePoolConnections(0, N) multiplexed connections and
// a fixed engine crew; each round dispatches a fixed K jobs round-robin
// across the population, so the *work* per round is constant and any
// latency growth is pure bookkeeping overhead — session maps, reactor
// sharding, demux. Acceptance tracked per PR: p50 and p95 grow at most
// 1.5x from the smallest to the largest population. Emits
// BENCH_scale.json. `--smoke` shrinks the populations for CI; `--out=FILE`
// redirects the JSON.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "fl/client_pool.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDeltaFloats = 64;
constexpr int kJobsPerRound = 256;

struct ScaleResult {
  int clients = 0;
  int connections = 0;
  int workers = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
};

double Percentile(std::vector<double> values, double p) {
  AF_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

void RaiseFdLimit() {
  struct rlimit lim {};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    struct rlimit want = lim;
    want.rlim_cur = std::min<rlim_t>(lim.rlim_max, 65536);
    ::setrlimit(RLIMIT_NOFILE, &want);
  }
}

ScaleResult RunPopulation(int num_clients, int rounds, int workers,
                          int connections) {
  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.io_timeout_ms = 60000;
  server_options.reactor_shards = 4;
  net::Server server(server_options);

  // Per-in-flight-job dispatch stamps, keyed by the globally unique
  // job_index; the update handler turns them into round-trip latencies.
  std::unordered_map<std::uint64_t, Clock::time_point> sent_at;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(rounds) * kJobsPerRound);
  std::size_t received = 0;
  server.SetUpdateHandler([&](int, net::ClientUpdateMsg msg) {
    const auto it = sent_at.find(msg.job_index);
    AF_CHECK(it != sent_at.end()) << "update for unknown job";
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - it->second)
            .count());
    sent_at.erase(it);
    ++received;
  });

  fl::VirtualPoolOptions options;
  options.port = server.port();
  options.num_clients = num_clients;
  options.connections = connections;  // 0 → 1 per 64 clients, capped at 256
  options.workers = workers;
  options.io_timeout_ms = 60000;
  fl::VirtualClientPool pool(
      options,
      [](const fl::VirtualJob& job) {
        std::vector<float> delta(job.base.size());
        const float bias = static_cast<float>(job.client_id % 97) * 1e-3f;
        for (std::size_t i = 0; i < delta.size(); ++i) {
          delta[i] = job.base[i] + bias;
        }
        return delta;
      },
      [](int client_id) {
        return static_cast<std::uint64_t>(10 + client_id % 7);
      });
  pool.Start();
  AF_CHECK(server.WaitForClients(static_cast<std::size_t>(num_clients), 60000))
      << "handshake stalled at " << server.ConnectedCount() << " of "
      << num_clients;

  const std::vector<float> base(kDeltaFloats, 0.125f);
  std::uint64_t next_job = 0;
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (int j = 0; j < kJobsPerRound; ++j) {
      // Round-robin across the whole population so every round touches a
      // fresh slice of the session/demux maps.
      const int client = static_cast<int>(next_job % static_cast<std::uint64_t>(
                                              num_clients));
      net::ModelBroadcastMsg msg;
      msg.round = static_cast<std::uint64_t>(round);
      msg.job_index = next_job;
      msg.params = base;
      msg.client_id = client;
      sent_at.emplace(next_job, Clock::now());
      AF_CHECK(server.SendTo(client, net::EncodeModelBroadcast(msg)));
      ++next_job;
    }
    const std::size_t round_goal =
        static_cast<std::size_t>(round + 1) * kJobsPerRound;
    const auto deadline = Clock::now() + std::chrono::seconds(60);
    while (received < round_goal && Clock::now() < deadline) {
      server.PollOnce(1);
    }
    AF_CHECK_EQ(received, round_goal) << "round " << round << " stalled";
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  ScaleResult result;
  result.clients = num_clients;
  result.connections = pool.connection_count();
  result.workers = pool.worker_count();
  pool.Stop();
  result.jobs = received;
  result.seconds = seconds;
  result.jobs_per_sec = static_cast<double>(received) / seconds;
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p95_us = Percentile(latencies_us, 0.95);
  std::printf("  %7d clients  %3d conns  %7zu jobs in %6.3fs  %8.0f jobs/s  "
              "p50 %7.0fus  p95 %7.0fus\n",
              result.clients, result.connections, result.jobs, result.seconds,
              result.jobs_per_sec, result.p50_us, result.p95_us);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  flags.RejectUnknown({"smoke", "out", "connections"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_scale.json");
  // Explicit connection fan-in (0 = auto). The PR's acceptance run drives
  // the largest population over 1000 connections with this.
  const int connections = static_cast<int>(flags.GetInt("connections", 0));

  RaiseFdLimit();
  const std::vector<int> populations =
      smoke ? std::vector<int>{1000, 5000}
            : std::vector<int>{1000, 10000, 100000};
  const int rounds = smoke ? 4 : 8;
  const int workers = 4;

  std::printf("bench_micro_scale%s — %d jobs/round x %d rounds per "
              "population, %zu-float deltas\n",
              smoke ? " (smoke)" : "", kJobsPerRound, rounds, kDeltaFloats);

  std::vector<ScaleResult> results;
  for (const int clients : populations) {
    results.push_back(RunPopulation(clients, rounds, workers, connections));
  }

  const ScaleResult& small = results.front();
  const ScaleResult& large = results.back();
  const double p50_growth = large.p50_us / small.p50_us;
  const double p95_growth = large.p95_us / small.p95_us;
  const bool flat_met = p50_growth <= 1.5 && p95_growth <= 1.5;
  std::printf("latency growth %dk -> %dk clients: p50 %.2fx, p95 %.2fx "
              "(target <=1.5x): %s\n",
              small.clients / 1000, large.clients / 1000, p50_growth,
              p95_growth, flat_met ? "met" : "MISSED");

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String("scale");
  json.Key("smoke").Bool(smoke);
  json.Key("delta_floats").UInt(kDeltaFloats);
  json.Key("jobs_per_round").UInt(kJobsPerRound);
  json.Key("rounds").UInt(static_cast<std::uint64_t>(rounds));
  json.Key("p50_growth").Number(p50_growth);
  json.Key("p95_growth").Number(p95_growth);
  json.Key("flat_met").Bool(flat_met);
  json.Key("populations").BeginArray();
  for (const ScaleResult& r : results) {
    json.BeginObject();
    json.Key("clients").UInt(static_cast<std::uint64_t>(r.clients));
    json.Key("connections").UInt(static_cast<std::uint64_t>(r.connections));
    json.Key("workers").UInt(static_cast<std::uint64_t>(r.workers));
    json.Key("jobs").UInt(r.jobs);
    json.Key("seconds").Number(r.seconds);
    json.Key("jobs_per_sec").Number(r.jobs_per_sec);
    json.Key("p50_us").Number(r.p50_us);
    json.Key("p95_us").Number(r.p95_us);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("perf record written to %s\n", out_path.c_str());
  return 0;
}

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/table.h"

namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("AF_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  double scale = std::atof(env);
  return std::clamp(scale > 0.0 ? scale : 1.0, 0.05, 10.0);
}

std::size_t ScaledRounds(std::size_t rounds) {
  auto scaled = static_cast<std::size_t>(static_cast<double>(rounds) *
                                         ScaleFactor());
  return std::max<std::size_t>(scaled, 3);
}

std::uint64_t BenchSeed() {
  const char* env = std::getenv("AF_BENCH_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 7;
}

fl::ExperimentConfig StandardConfig(data::Profile profile) {
  fl::ExperimentConfig config = fl::MakeDefaultConfig(profile, BenchSeed());
  // Paper §5.1 scaled 2× down: 100→50 clients, buffer 40→20, 20→10
  // attackers; staleness limit 20 and Zipf s = 1.2 stay as published.
  config.num_clients = 50;
  config.num_malicious = 10;
  config.sim.buffer_goal = 20;
  config.sim.staleness_limit = 20;
  config.sim.zipf_s = 1.2;
  config.dirichlet_alpha = 0.1;
  config.sim.rounds = ScaledRounds(18);
  return config;
}

std::vector<fl::DefenseKind> PaperDefenses() {
  return {fl::DefenseKind::kFedBuff, fl::DefenseKind::kFlDetector,
          fl::DefenseKind::kAsyncFilter};
}

std::vector<attacks::AttackKind> PaperAttacks() {
  return {attacks::AttackKind::kGd, attacks::AttackKind::kLie,
          attacks::AttackKind::kMinMax, attacks::AttackKind::kMinSum};
}

std::vector<std::vector<double>> RunAttackDefenseGrid(
    const fl::ExperimentConfig& base, const GridSpec& spec) {
  std::vector<attacks::AttackKind> attacks = spec.attacks;
  if (spec.include_no_attack) {
    attacks.push_back(attacks::AttackKind::kNone);
  }

  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("(clients=%zu malicious=%zu buffer=%zu staleness<=%zu "
              "rounds=%zu dirichlet=%.2g zipf=%.2g seed=%llu)\n",
              base.num_clients, base.num_malicious, base.sim.buffer_goal,
              base.sim.staleness_limit, base.sim.rounds, base.dirichlet_alpha,
              base.sim.zipf_s,
              static_cast<unsigned long long>(base.sim.seed));

  std::vector<std::string> header{"Method"};
  for (auto attack : attacks) {
    header.push_back(attacks::AttackKindName(attack));
  }
  util::ConsoleTable table(header);
  util::CsvWriter csv(spec.csv_name);
  csv.WriteHeader(header);

  struct CellRecord {
    const char* defense;
    const char* attack;
    double accuracy_percent;
    double wall_seconds;
    std::size_t rounds;
    fl::LatencySummary defense_latency;
  };
  std::vector<CellRecord> cells;
  const auto grid_start = std::chrono::steady_clock::now();
  std::size_t total_rounds = 0;

  std::vector<std::vector<double>> accuracy;
  for (auto defense : spec.defenses) {
    std::vector<std::string> row{fl::DefenseKindName(defense)};
    std::vector<double> row_acc;
    for (auto attack : attacks) {
      fl::ExperimentConfig config = base;
      config.attack = attack;
      config.defense = defense;
      const auto cell_start = std::chrono::steady_clock::now();
      fl::SimulationResult result = fl::RunExperiment(config);
      const double cell_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        cell_start)
              .count();
      double percent = result.final_accuracy * 100.0;
      total_rounds += result.rounds.size();
      cells.push_back({fl::DefenseKindName(defense),
                       attacks::AttackKindName(attack), percent, cell_seconds,
                       result.rounds.size(), result.defense_latency});
      row_acc.push_back(percent);
      row.push_back(util::FormatFixed(percent) + "%");
      std::fprintf(stderr, "  [%s / %s] %.1f%% (%.1fs)\n",
                   fl::DefenseKindName(defense), attacks::AttackKindName(attack),
                   percent, cell_seconds);
    }
    csv.WriteRow(row);
    table.AddRow(std::move(row));
    accuracy.push_back(std::move(row_acc));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("CSV written to %s\n\n", csv.path().c_str());

  // Machine-readable perf record: BENCH_<csv stem>.json next to the CSV.
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    grid_start)
          .count();
  std::string stem = spec.csv_name;
  if (auto dot = stem.rfind('.'); dot != std::string::npos) {
    stem.resize(dot);
  }
  const std::string bench_json_path = "BENCH_" + stem + ".json";
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String(stem);
  json.Key("title").String(spec.title);
  json.Key("wall_seconds").Number(wall_seconds);
  json.Key("total_rounds").UInt(total_rounds);
  json.Key("rounds_per_sec")
      .Number(wall_seconds > 0.0
                  ? static_cast<double>(total_rounds) / wall_seconds
                  : 0.0);
  json.Key("scale").Number(ScaleFactor());
  json.Key("seed").UInt(BenchSeed());
  json.Key("config").BeginObject();
  json.Key("clients").UInt(base.num_clients);
  json.Key("malicious").UInt(base.num_malicious);
  json.Key("buffer_goal").UInt(base.sim.buffer_goal);
  json.Key("staleness_limit").UInt(base.sim.staleness_limit);
  json.Key("rounds").UInt(base.sim.rounds);
  json.Key("dirichlet_alpha").Number(base.dirichlet_alpha);
  json.Key("zipf_s").Number(base.sim.zipf_s);
  json.EndObject();
  json.Key("cells").BeginArray();
  for (const CellRecord& cell : cells) {
    json.BeginObject();
    json.Key("defense").String(cell.defense);
    json.Key("attack").String(cell.attack);
    json.Key("accuracy_percent").Number(cell.accuracy_percent);
    json.Key("wall_seconds").Number(cell.wall_seconds);
    json.Key("rounds").UInt(cell.rounds);
    json.Key("defense_latency").BeginObject();
    json.Key("total_micros").Int(cell.defense_latency.total_micros);
    json.Key("p50_micros").Number(cell.defense_latency.p50_micros);
    json.Key("p95_micros").Number(cell.defense_latency.p95_micros);
    json.Key("p99_micros").Number(cell.defense_latency.p99_micros);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  {
    std::ofstream out(bench_json_path, std::ios::trunc);
    if (out) {
      out << json.str() << '\n';
      std::printf("perf record written to %s\n\n", bench_json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   bench_json_path.c_str());
    }
  }

  // Optional observability dumps (see bench_common.h).
  if (const char* trace_out = std::getenv("AF_TRACE_OUT");
      trace_out != nullptr && trace_out[0] != '\0') {
    obs::TraceRecorder::Global().WriteChromeTrace(trace_out);
    std::printf("trace written to %s\n", trace_out);
  }
  if (const char* metrics_out = std::getenv("AF_METRICS_OUT");
      metrics_out != nullptr && metrics_out[0] != '\0') {
    obs::DefaultRegistry().WriteJson(metrics_out);
    std::printf("metrics snapshot written to %s\n", metrics_out);
  }
  return accuracy;
}

}  // namespace bench

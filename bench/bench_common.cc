#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/csv.h"
#include "util/table.h"

namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("AF_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  double scale = std::atof(env);
  return std::clamp(scale > 0.0 ? scale : 1.0, 0.05, 10.0);
}

std::size_t ScaledRounds(std::size_t rounds) {
  auto scaled = static_cast<std::size_t>(static_cast<double>(rounds) *
                                         ScaleFactor());
  return std::max<std::size_t>(scaled, 3);
}

std::uint64_t BenchSeed() {
  const char* env = std::getenv("AF_BENCH_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 7;
}

fl::ExperimentConfig StandardConfig(data::Profile profile) {
  fl::ExperimentConfig config = fl::MakeDefaultConfig(profile, BenchSeed());
  // Paper §5.1 scaled 2× down: 100→50 clients, buffer 40→20, 20→10
  // attackers; staleness limit 20 and Zipf s = 1.2 stay as published.
  config.num_clients = 50;
  config.num_malicious = 10;
  config.sim.buffer_goal = 20;
  config.sim.staleness_limit = 20;
  config.sim.zipf_s = 1.2;
  config.dirichlet_alpha = 0.1;
  config.sim.rounds = ScaledRounds(18);
  return config;
}

std::vector<fl::DefenseKind> PaperDefenses() {
  return {fl::DefenseKind::kFedBuff, fl::DefenseKind::kFlDetector,
          fl::DefenseKind::kAsyncFilter};
}

std::vector<attacks::AttackKind> PaperAttacks() {
  return {attacks::AttackKind::kGd, attacks::AttackKind::kLie,
          attacks::AttackKind::kMinMax, attacks::AttackKind::kMinSum};
}

std::vector<std::vector<double>> RunAttackDefenseGrid(
    const fl::ExperimentConfig& base, const GridSpec& spec) {
  std::vector<attacks::AttackKind> attacks = spec.attacks;
  if (spec.include_no_attack) {
    attacks.push_back(attacks::AttackKind::kNone);
  }

  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("(clients=%zu malicious=%zu buffer=%zu staleness<=%zu "
              "rounds=%zu dirichlet=%.2g zipf=%.2g seed=%llu)\n",
              base.num_clients, base.num_malicious, base.sim.buffer_goal,
              base.sim.staleness_limit, base.sim.rounds, base.dirichlet_alpha,
              base.sim.zipf_s,
              static_cast<unsigned long long>(base.sim.seed));

  std::vector<std::string> header{"Method"};
  for (auto attack : attacks) {
    header.push_back(attacks::AttackKindName(attack));
  }
  util::ConsoleTable table(header);
  util::CsvWriter csv(spec.csv_name);
  csv.WriteHeader(header);

  std::vector<std::vector<double>> accuracy;
  for (auto defense : spec.defenses) {
    std::vector<std::string> row{fl::DefenseKindName(defense)};
    std::vector<double> row_acc;
    for (auto attack : attacks) {
      fl::ExperimentConfig config = base;
      config.attack = attack;
      config.defense = defense;
      double percent = fl::RunExperiment(config).final_accuracy * 100.0;
      row_acc.push_back(percent);
      row.push_back(util::FormatFixed(percent) + "%");
      std::fprintf(stderr, "  [%s / %s] %.1f%%\n",
                   fl::DefenseKindName(defense), attacks::AttackKindName(attack),
                   percent);
    }
    csv.WriteRow(row);
    table.AddRow(std::move(row));
    accuracy.push_back(std::move(row_acc));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("CSV written to %s\n\n", csv.path().c_str());
  return accuracy;
}

}  // namespace bench

// Extension study (DESIGN.md): AsyncFilter against the wider defense
// landscape the paper reviews in §2.3 — the clean-dataset asynchronous
// defenses (Zeno++, AFLGuard) and classical synchronous robust aggregation
// (Multi-Krum, Trimmed-Mean, Median, NNM) — under the two strongest attacks.
//
// The point the paper argues: clean-dataset methods are competitive but
// assume data the server shouldn't have; synchronous aggregators suffer in
// the asynchronous regime because they treat staleness variance as attack
// signal. AsyncFilter needs neither assumption.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  bench::GridSpec spec;
  spec.title =
      "Extension: AsyncFilter vs clean-dataset and synchronous defenses "
      "(FashionMNIST)";
  spec.csv_name = "ablation_extra_defenses.csv";
  spec.attacks = {attacks::AttackKind::kGd, attacks::AttackKind::kMinMax};
  spec.defenses = {
      fl::DefenseKind::kAsyncFilter, fl::DefenseKind::kZenoPlusPlus,
      fl::DefenseKind::kAflGuard,    fl::DefenseKind::kFlTrust,
      fl::DefenseKind::kMultiKrum,   fl::DefenseKind::kTrimmedMean,
      fl::DefenseKind::kMedian,      fl::DefenseKind::kNnm,
      fl::DefenseKind::kBucketing};
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

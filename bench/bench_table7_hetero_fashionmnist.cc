// Reproduces paper Table 7: data-heterogeneity robustness on FashionMNIST
// with extreme non-IID partitions (Dirichlet 0.01).
//
// Expected shape (paper): GD becomes devastating for FedBuff (divergence);
// AsyncFilter recovers a large share; LIE/Min-Sum stay mild.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  base.dirichlet_alpha = 0.01;
  bench::GridSpec spec;
  spec.title =
      "Table 7: AsyncFilter is robust against data heterogeneity on "
      "FashionMNIST (Dirichlet 0.01)";
  spec.csv_name = "table7_hetero_fashionmnist.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

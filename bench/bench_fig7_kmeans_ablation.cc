// Reproduces paper Fig. 7: AsyncFilter-3means vs AsyncFilter-2means on
// FashionMNIST with Dirichlet 0.1, under all four attacks.
//
// Expected shape (paper): the 3-means variant wins on every attack because
// 2-means forces a binary honest/attacker split and over-rejects honest
// non-IID updates.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  bench::GridSpec spec;
  spec.title =
      "Fig. 7: AsyncFilter-3means vs AsyncFilter-2means (FashionMNIST, "
      "Dirichlet 0.1)";
  spec.csv_name = "fig7_kmeans_ablation.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = {fl::DefenseKind::kAsyncFilter,
                   fl::DefenseKind::kAsyncFilter2Means};
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

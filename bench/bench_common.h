// Shared harness for the table/figure reproduction binaries.
//
// Each bench prints the same rows the paper reports (methods × attacks, test
// accuracy in percent) and writes a CSV next to the working directory.
// AF_BENCH_SCALE (default 1.0) scales round counts for quick smoke runs,
// AF_BENCH_SEED overrides the default seed.
//
// Every grid run additionally emits a machine-readable BENCH_<name>.json
// (wall time, rounds/sec, per-cell accuracy and defense-latency percentiles)
// so the perf trajectory across PRs can be tracked without parsing console
// output. Observability env hooks: AF_TRACE=1 enables span collection,
// AF_TRACE_OUT=FILE writes the Chrome trace at grid end, AF_METRICS_OUT=FILE
// writes a metrics-registry snapshot, AF_LOG_LEVEL sets verbosity.
#pragma once

#include <string>
#include <vector>

#include "fl/experiment.h"

namespace bench {

// AF_BENCH_SCALE env var, clamped to [0.05, 10]; default 1.0.
double ScaleFactor();

// rounds × AF_BENCH_SCALE, at least 3.
std::size_t ScaledRounds(std::size_t rounds);

// AF_BENCH_SEED env var; default 7.
std::uint64_t BenchSeed();

// The repo's standard evaluation population: the paper's 100-client /
// buffer-40 setting scaled 2× down for single-core CPU budgets, with every
// ratio preserved (20% malicious, 40% aggregation bound).
fl::ExperimentConfig StandardConfig(data::Profile profile);

struct GridSpec {
  std::string title;        // e.g. "Table 2: AsyncFilter defends ... MNIST"
  std::string csv_name;     // e.g. "table2_mnist.csv"
  std::vector<attacks::AttackKind> attacks;
  std::vector<fl::DefenseKind> defenses;
  bool include_no_attack = true;
};

// Runs the full grid, prints the paper-shaped table, writes the CSV and the
// BENCH_<csv stem>.json perf record. Returns accuracy[defense][attack] in
// percent.
std::vector<std::vector<double>> RunAttackDefenseGrid(
    const fl::ExperimentConfig& base, const GridSpec& spec);

// The paper's three-method comparison.
std::vector<fl::DefenseKind> PaperDefenses();

// The paper's four untargeted attacks.
std::vector<attacks::AttackKind> PaperAttacks();

}  // namespace bench

// Ablation (DESIGN.md): the FedBuff staleness discount s(τ) used in the
// aggregation weights. The paper's Eq. 3 writes abstract weights p_i; this
// bench justifies instantiating them as samples·s(τ) with
// s(τ) = 1/√(1+τ): without a discount, stale updates whip the global model
// around on the Adam-driven workloads, hurting *every* method equally.
#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  const struct {
    const char* name;
    defense::StalenessWeightingConfig config;
  } variants[] = {
      {"none (Eq. 3 literal)", {defense::StalenessWeighting::kNone, 0.0}},
      {"1/sqrt(1+tau) (FedBuff)",
       {defense::StalenessWeighting::kInverseSqrt, 0.0}},
      {"(1+tau)^-1", {defense::StalenessWeighting::kPolynomial, 1.0}},
      {"(1+tau)^-2", {defense::StalenessWeighting::kPolynomial, 2.0}},
  };

  std::printf("== Ablation: staleness weighting s(tau) "
              "(FashionMNIST, GD attack + clean) ==\n");
  util::ConsoleTable table({"Weighting", "No attack", "GD"});
  util::CsvWriter csv("ablation_staleness_weighting.csv");
  csv.WriteHeader({"weighting", "setting", "accuracy"});

  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (bool attacked : {false, true}) {
      fl::ExperimentConfig config =
          bench::StandardConfig(data::Profile::kFashionMnist);
      config.sim.staleness_weighting = variant.config;
      config.attack = attacked ? attacks::AttackKind::kGd
                               : attacks::AttackKind::kNone;
      config.defense = fl::DefenseKind::kAsyncFilter;
      double percent = fl::RunExperiment(config).final_accuracy * 100.0;
      row.push_back(util::FormatFixed(percent) + "%");
      csv.WriteRow({variant.name, attacked ? "GD" : "clean",
                    util::FormatFixed(percent, 2)});
      std::fprintf(stderr, "  [%s / %s] %.1f%%\n", variant.name,
                   attacked ? "GD" : "clean", percent);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("CSV written to ablation_staleness_weighting.csv\n");
  return 0;
}

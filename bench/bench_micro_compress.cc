// Micro-benchmark for the compress/ codecs plus an end-to-end
// defense-fidelity check under compression.
//
// Part 1 measures, per codec and parameter-vector shape (LeNet-surrogate
// through VGG-ish fully-connected sizes), the wire compression ratio and
// encode/decode throughput in MB/s of raw float32 input.
//
// Part 2 runs the small FashionMNIST experiment grid — AsyncFilter vs
// FedBuff under the LIE and Min-Max attacks — once uncompressed and once
// per codec, and reports final accuracy and filtering precision/recall so
// the record shows how much detection quality each codec costs. The
// acceptance bar tracked across PRs: AsyncFilter's filtering recall under
// LIE stays within 5 points of uncompressed for fp16 and int8.
//
// Emits BENCH_compress.json. `--smoke` shrinks repetitions and rounds for
// CI; `--out=FILE` redirects the JSON.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "fl/experiment.h"
#include "obs/json.h"
#include "util/flags.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Median-of-`runs` wall time of fn(), each run `reps` back-to-back calls.
template <typename Fn>
double MedianSecondsPerCall(std::size_t runs, std::size_t reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      fn();
    }
    times.push_back(SecondsSince(start) / static_cast<double>(reps));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct ShapeCase {
  const char* label;
  std::size_t count;  // float32 elements
};

// LeNet-surrogate parameter count up through a VGG-ish FC block. Delta
// vectors in the simulator are exactly these flattened shapes.
const ShapeCase kShapes[] = {
    {"lenet_params_62k", 61706},
    {"conv_block_512k", 524288},
    {"vgg_fc_4m", 4194304},
};

struct CodecResult {
  std::string codec;
  std::string shape;
  std::size_t count = 0;
  double ratio = 0.0;       // raw float32 bytes / framed wire bytes
  double encode_mb_s = 0.0;  // MB of float32 input per second
  double decode_mb_s = 0.0;
};

CodecResult BenchCodec(const compress::Codec& codec, const ShapeCase& shape,
                       bool smoke, std::mt19937_64& rng) {
  // Delta-like values: zero-mean, small, with heavy-ish tails so top-k has
  // structure to find.
  std::normal_distribution<float> dist(0.0f, 0.02f);
  std::vector<float> values(shape.count);
  for (float& v : values) {
    v = dist(rng);
    if ((rng() & 0xFF) == 0) {
      v *= 20.0f;  // occasional large coordinate
    }
  }
  const double raw_bytes = static_cast<double>(shape.count) * sizeof(float);

  std::vector<std::uint8_t> wire;
  compress::AppendEncodedParams(wire, codec, values);

  const std::size_t runs = smoke ? 3 : 5;
  // Aim each measured run at ~4M (smoke) / ~32M (full) elements of work.
  const std::size_t reps = std::max<std::size_t>(
      1, (smoke ? (1u << 22) : (1u << 25)) / shape.count);

  const double encode_sec = MedianSecondsPerCall(runs, reps, [&] {
    std::vector<std::uint8_t> out;
    compress::AppendEncodedParams(out, codec, values);
  });
  const double decode_sec = MedianSecondsPerCall(runs, reps, [&] {
    std::size_t offset = 0;
    compress::ParseAnyParams(wire, &offset);
  });

  CodecResult result;
  result.codec = codec.name();
  result.shape = shape.label;
  result.count = shape.count;
  result.ratio = raw_bytes / static_cast<double>(wire.size());
  result.encode_mb_s = raw_bytes / encode_sec / 1e6;
  result.decode_mb_s = raw_bytes / decode_sec / 1e6;
  std::printf("  %-12s %-18s ratio %6.2fx  encode %8.1f MB/s  decode %8.1f MB/s\n",
              result.codec.c_str(), result.shape.c_str(), result.ratio,
              result.encode_mb_s, result.decode_mb_s);
  return result;
}

struct FidelityCell {
  std::string defense;
  std::string attack;
  std::string codec;  // "" = uncompressed baseline
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

// Mirrors the integration-test miniature population: large enough that
// AsyncFilter's detection actually engages, small enough for CI.
fl::ExperimentConfig FidelityConfig(bool smoke) {
  fl::ExperimentConfig config =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, /*seed=*/7);
  config.num_clients = 30;
  config.num_malicious = 6;
  config.train_pool = 2000;
  config.test_samples = 400;
  config.partition_size = 60;
  config.sim.buffer_goal = 12;
  config.sim.rounds = smoke ? 6 : 14;
  config.sim.local.epochs = smoke ? 2 : 3;
  config.threads = 0;
  return config;
}

FidelityCell RunFidelityCell(fl::DefenseKind defense, const char* defense_name,
                             attacks::AttackKind attack,
                             const std::string& codec, bool smoke) {
  fl::ExperimentConfig config = FidelityConfig(smoke);
  config.defense = defense;
  config.attack = attack;
  config.compress = codec;
  const fl::SimulationResult result = fl::RunExperiment(config);
  FidelityCell cell;
  cell.defense = defense_name;
  cell.attack = attacks::AttackKindName(attack);
  cell.codec = codec;
  cell.accuracy = result.final_accuracy;
  cell.precision = result.total_confusion.Precision();
  cell.recall = result.total_confusion.Recall();
  std::printf("  %-12s %-8s codec=%-10s acc=%.4f precision=%.2f recall=%.2f\n",
              cell.defense.c_str(), cell.attack.c_str(),
              codec.empty() ? "(none)" : codec.c_str(), cell.accuracy,
              cell.precision, cell.recall);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  flags.RejectUnknown({"smoke", "out"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_compress.json");

  std::mt19937_64 rng(20260806);
  std::printf("bench_micro_compress%s\n", smoke ? " (smoke)" : "");

  std::printf("Codec throughput and wire ratio\n");
  std::vector<CodecResult> micro;
  for (const std::string& name : compress::ListNames()) {
    const compress::Codec& codec = compress::Get(name);
    for (const ShapeCase& shape : kShapes) {
      if (smoke && shape.count > 600000) {
        continue;  // keep CI runs short; the full run covers the 4M shape
      }
      micro.push_back(BenchCodec(codec, shape, smoke, rng));
    }
  }

  // Acceptance shapes tracked per PR: the LeNet param vector must compress
  // ≥3.5× with int8 and ≥8× with topk-delta (k = 10%).
  bool ratio_targets_met = true;
  for (const CodecResult& r : micro) {
    if (r.shape != std::string("lenet_params_62k")) {
      continue;
    }
    if (r.codec == "int8" && r.ratio < 3.5) {
      ratio_targets_met = false;
    }
    if (r.codec == "topk-delta" && r.ratio < 8.0) {
      ratio_targets_met = false;
    }
  }
  std::printf("ratio targets (int8>=3.5x, topk-delta>=8x on LeNet): %s\n",
              ratio_targets_met ? "met" : "MISSED");

  std::printf("Defense fidelity under compression "
              "(AsyncFilter vs FedBuff, LIE and Min-Max)\n");
  const std::vector<std::string> fidelity_codecs = {"", "identity", "fp16",
                                                    "int8", "topk-delta"};
  std::vector<FidelityCell> fidelity;
  for (const auto& [defense, defense_name] :
       {std::pair{fl::DefenseKind::kAsyncFilter, "asyncfilter"},
        std::pair{fl::DefenseKind::kFedBuff, "fedbuff"}}) {
    for (attacks::AttackKind attack :
         {attacks::AttackKind::kLie, attacks::AttackKind::kMinMax}) {
      for (const std::string& codec : fidelity_codecs) {
        fidelity.push_back(
            RunFidelityCell(defense, defense_name, attack, codec, smoke));
      }
    }
  }

  // The fidelity acceptance: AsyncFilter's filtering recall under LIE for
  // fp16 and int8 within 5 points of the uncompressed run.
  double base_recall = 0.0;
  for (const FidelityCell& cell : fidelity) {
    if (cell.defense == "asyncfilter" && cell.attack == std::string("LIE") &&
        cell.codec.empty()) {
      base_recall = cell.recall;
    }
  }
  bool recall_within_5pts = true;
  for (const FidelityCell& cell : fidelity) {
    if (cell.defense == "asyncfilter" && cell.attack == std::string("LIE") &&
        (cell.codec == "fp16" || cell.codec == "int8")) {
      recall_within_5pts =
          recall_within_5pts &&
          std::fabs(cell.recall - base_recall) <= 0.05 + 1e-9;
    }
  }
  std::printf("recall fidelity (fp16/int8 within 5pts of uncompressed): %s\n",
              recall_within_5pts ? "met" : "MISSED");

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String("compress");
  json.Key("smoke").Bool(smoke);
  json.Key("ratio_targets_met").Bool(ratio_targets_met);
  json.Key("recall_within_5pts").Bool(recall_within_5pts);
  json.Key("codecs").BeginArray();
  for (const CodecResult& r : micro) {
    json.BeginObject();
    json.Key("codec").String(r.codec);
    json.Key("shape").String(r.shape);
    json.Key("count").UInt(r.count);
    json.Key("ratio").Number(r.ratio);
    json.Key("encode_mb_s").Number(r.encode_mb_s);
    json.Key("decode_mb_s").Number(r.decode_mb_s);
    json.EndObject();
  }
  json.EndArray();
  json.Key("fidelity").BeginArray();
  for (const FidelityCell& cell : fidelity) {
    json.BeginObject();
    json.Key("defense").String(cell.defense);
    json.Key("attack").String(cell.attack);
    json.Key("codec").String(cell.codec.empty() ? "uncompressed"
                                                : cell.codec);
    json.Key("accuracy").Number(cell.accuracy);
    json.Key("precision").Number(cell.precision);
    json.Key("recall").Number(cell.recall);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("perf record written to %s\n", out_path.c_str());
  return 0;
}

// Reproduces paper Table 9: doubled attacker presence (40%) on FashionMNIST.
//
// Expected shape (paper): GD is the most damaging; AsyncFilter beats both
// baselines on GD/Min-Max/Min-Sum and roughly ties on LIE.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  base.num_malicious = base.num_clients * 2 / 5;  // 40%
  bench::GridSpec spec;
  spec.title =
      "Table 9: AsyncFilter is robust against doubled attackers on "
      "FashionMNIST";
  spec.csv_name = "table9_attackers_fashionmnist.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Extension study (DESIGN.md): attacks beyond the paper's four — the
// defense-aware Adaptive attack (crafted to sit inside AsyncFilter's
// accepted score envelope) and the Label-Flip data-poisoning attack (the
// malicious update IS an honest update on corrupted data).
//
// Expected shape: both attacks are harder to *detect* than GD (they are
// built to look benign), but also intrinsically weaker; AsyncFilter should
// degrade gracefully rather than collapse, matching the paper's argument
// that weak attackers admitted to the aggregate do limited damage.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  bench::GridSpec spec;
  spec.title =
      "Extension: defense-aware Adaptive and data-level Label-Flip attacks "
      "(FashionMNIST)";
  spec.csv_name = "ablation_adaptive_attacks.csv";
  spec.attacks = {attacks::AttackKind::kAdaptive,
                  attacks::AttackKind::kLabelFlip, attacks::AttackKind::kGd};
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = true;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

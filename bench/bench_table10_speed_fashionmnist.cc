// Reproduces paper Table 10: system speed heterogeneity on FashionMNIST
// with the Zipf exponent raised from 1.2 to 2.5 (a few very fast devices,
// the rest much slower — staleness becomes more extreme).
//
// Expected shape (paper): AsyncFilter defends all four attacks and is the
// only method that does not lose accuracy relative to FedBuff; FLDetector
// drops hard on Min-Max.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base =
      bench::StandardConfig(data::Profile::kFashionMnist);
  base.sim.zipf_s = 2.5;
  bench::GridSpec spec;
  spec.title =
      "Table 10: AsyncFilter is robust against speed heterogeneity on "
      "FashionMNIST (Zipf 2.5)";
  spec.csv_name = "table10_speed_fashionmnist.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = false;
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Micro-benchmark: server-side cost of defense scoring, per arrival and per
// aggregation round.
//
// Part 1 measures the streaming rescoring path — the operation AsyncFilter
// performs every time the buffer changes: evict the oldest update, insert
// the arrival, recompute every buffered update's suspicious score, and
// re-cluster. Three lanes over buffer sizes 64→8192 at the LeNet-surrogate
// dimension:
//   exact        AF_SCORER=exact semantics — every distance recomputed,
//                cold k-means++ with restarts each arrival (the pre-scorer
//                behaviour).
//   incremental  cached norms/reference distances (only the new arrival's
//                distance is computed) + warm-started Lloyd.
//   quantized    int8 candidate scoring (certified-bound approximations).
// Per-arrival latency is reported as p50/p95. Acceptance tracked per PR:
// incremental ≥5× faster than exact at buffer 4096 (p50), with incremental
// p95 under a millisecond.
//
// Part 2 keeps the historical defense-comparison table: median
// Defense::Process() latency for AsyncFilter, FLDetector and Multi-Krum on
// a 40-update buffer.
//
// Emits BENCH_defense.json (folded into bench_results/trajectory.jsonl by
// tools/collect_bench.py). `--smoke` shrinks sample counts for CI;
// `--out=FILE` redirects the JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "core/async_filter.h"
#include "core/suspicious_score.h"
#include "defense/fldetector.h"
#include "defense/krum.h"
#include "fl/types.h"
#include "obs/json.h"
#include "score/scorer.h"
#include "score/warm_kmeans.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDim = 4704;         // LeNet-surrogate delta size
constexpr std::size_t kStalenessLevels = 6;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

void FillDelta(std::span<float> delta, std::mt19937_64& rng) {
  std::normal_distribution<float> noise(0.0f, 1.0f);
  for (float& x : delta) {
    x = noise(rng);
  }
}

struct LaneResult {
  std::string mode;
  std::size_t buffer = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  std::size_t samples = 0;
};

// One (mode, buffer-size) lane of the per-arrival streaming sweep.
LaneResult RunLane(score::ScorerMode mode, std::size_t buffer_size,
                   bool smoke) {
  auto rng = util::RngFactory(7).Stream("stream");
  std::uniform_int_distribution<std::size_t> tau(0, kStalenessLevels - 1);

  // Update pool: slot storage the scorer borrows. The mirror ModelUpdates
  // only carry staleness (what normalization reads); payloads live here.
  std::vector<std::vector<float>> deltas(buffer_size,
                                         std::vector<float>(kDim));
  std::vector<fl::ModelUpdate> buffer(buffer_size);
  std::vector<std::vector<float>> references(kStalenessLevels,
                                             std::vector<float>(kDim));
  for (auto& ref : references) {
    FillDelta(ref, rng);
  }

  score::StreamingScorer scorer(mode);
  std::vector<int> slots(buffer_size);
  for (std::size_t i = 0; i < buffer_size; ++i) {
    FillDelta(deltas[i], rng);
    buffer[i].client_id = static_cast<int>(i);
    buffer[i].staleness = tau(rng);
    slots[i] = scorer.Insert(deltas[i]);
  }
  for (std::size_t t = 0; t < kStalenessLevels; ++t) {
    scorer.SetReference(t, references[t]);
  }

  auto kmeans_rng = util::RngFactory(11).Stream("kmeans");
  score::WarmKMeansState warm;
  std::vector<double> own(buffer_size, 0.0);

  // The measured operation: absorb one arrival and fully rescore the buffer
  // — exactly what AsyncFilter's streaming path does per buffer mutation.
  const auto score_arrival = [&](std::size_t pos) {
    scorer.Evict(slots[pos]);
    slots[pos] = scorer.Insert(deltas[pos]);
    if (mode == score::ScorerMode::kQuantized) {
      for (std::size_t i = 0; i < buffer_size; ++i) {
        own[i] =
            scorer.ApproxDistanceToReference(buffer[i].staleness, slots[i])
                .value;
      }
    } else {
      for (std::size_t i = 0; i < buffer_size; ++i) {
        own[i] = scorer.DistanceToReference(buffer[i].staleness, slots[i]);
      }
    }
    const std::vector<double> scores = core::NormalizeOwnDistances(
        buffer, own, core::ScoreNormalization::kGroupRms);
    if (mode == score::ScorerMode::kExact) {
      // Pre-scorer behaviour: cold k-means++ with restarts every arrival.
      auto clustering = cluster::KMeans1D(scores, 3, kmeans_rng);
      return clustering.inertia;
    }
    auto clustering = score::WarmKMeans1D(scores, 3, kmeans_rng, warm);
    return clustering.inertia;
  };

  // Exact recomputes ~3 full-buffer passes per arrival; cap its sample count
  // at large sizes so the sweep stays tractable.
  std::size_t samples = smoke ? 8 : 32;
  if (mode == score::ScorerMode::kExact && buffer_size >= 4096) {
    samples = smoke ? 4 : 8;
  }
  const std::size_t warmup = 2;

  double sink = 0.0;
  std::vector<double> times;
  times.reserve(samples);
  std::size_t arrival = 0;
  for (std::size_t s = 0; s < warmup + samples; ++s) {
    const std::size_t pos = arrival++ % buffer_size;
    FillDelta(deltas[pos], rng);  // payload generation is not scoring cost
    buffer[pos].staleness = tau(rng);
    const auto start = Clock::now();
    sink += score_arrival(pos);
    if (s >= warmup) {
      times.push_back(MicrosSince(start));
    }
  }
  if (sink < 0.0) {
    std::printf("impossible\n");  // keep `sink` (and the work) alive
  }

  LaneResult result;
  result.mode = score::ScorerModeName(mode);
  result.buffer = buffer_size;
  result.p50_us = Percentile(times, 0.50);
  result.p95_us = Percentile(times, 0.95);
  result.samples = times.size();
  std::printf("  %-12s buffer %5zu  p50 %10.1f us  p95 %10.1f us\n",
              result.mode.c_str(), result.buffer, result.p50_us,
              result.p95_us);
  return result;
}

std::vector<fl::ModelUpdate> MakeBuffer(std::size_t count, std::size_t dim,
                                        std::uint64_t seed) {
  auto rng = util::RngFactory(seed).Stream("micro");
  std::uniform_int_distribution<std::size_t> tau(0, kStalenessLevels - 1);
  std::vector<fl::ModelUpdate> buffer(count);
  for (std::size_t i = 0; i < count; ++i) {
    buffer[i].client_id = static_cast<int>(i);
    buffer[i].staleness = tau(rng);
    buffer[i].num_samples = 100;
    std::vector<float> delta(dim);
    FillDelta(delta, rng);
    buffer[i].delta = std::move(delta);
  }
  return buffer;
}

struct ProcessResult {
  std::string defense;
  std::size_t buffer = 0;
  std::size_t dim = 0;
  double p50_us = 0.0;
};

ProcessResult RunProcess(defense::Defense& defense, const char* name,
                         std::size_t count, std::size_t dim, bool smoke) {
  auto buffer = MakeBuffer(count, dim, 42);
  std::vector<float> global(dim, 0.0f);
  auto rng = util::RngFactory(1).Stream("server");
  defense::FilterContext ctx;
  ctx.global_model = global;
  ctx.rng = &rng;

  const std::size_t rounds = smoke ? 6 : 20;
  std::vector<double> times;
  times.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    ctx.round = r;
    const auto start = Clock::now();
    auto result = defense.Process(ctx, buffer);
    times.push_back(MicrosSince(start));
    if (result.verdicts.empty()) {
      std::printf("impossible\n");
    }
  }

  ProcessResult result;
  result.defense = name;
  result.buffer = count;
  result.dim = dim;
  result.p50_us = Percentile(times, 0.50);
  std::printf("  %-12s buffer %4zu dim %6zu  p50 %10.1f us\n",
              result.defense.c_str(), count, dim, result.p50_us);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  flags.RejectUnknown({"smoke", "out"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_defense.json");

  std::printf("bench_micro_filter_overhead%s\n", smoke ? " (smoke)" : "");

  std::printf("Per-arrival streaming rescoring (dim %zu)\n", kDim);
  const std::size_t buffer_sizes[] = {64, 256, 1024, 4096, 8192};
  const score::ScorerMode modes[] = {score::ScorerMode::kExact,
                                     score::ScorerMode::kIncremental,
                                     score::ScorerMode::kQuantized};
  std::vector<LaneResult> lanes;
  for (std::size_t buffer_size : buffer_sizes) {
    for (score::ScorerMode mode : modes) {
      lanes.push_back(RunLane(mode, buffer_size, smoke));
    }
  }

  // Acceptance tracked per PR, at the paper-scale 4096 buffer.
  double exact_4096 = 0.0;
  double incremental_4096 = 0.0;
  double incremental_4096_p95 = 0.0;
  for (const LaneResult& lane : lanes) {
    if (lane.buffer != 4096) {
      continue;
    }
    if (lane.mode == "exact") {
      exact_4096 = lane.p50_us;
    } else if (lane.mode == "incremental") {
      incremental_4096 = lane.p50_us;
      incremental_4096_p95 = lane.p95_us;
    }
  }
  const double speedup_4096 =
      incremental_4096 > 0.0 ? exact_4096 / incremental_4096 : 0.0;
  const bool speedup_met = speedup_4096 >= 5.0;
  const bool p95_sub_ms = incremental_4096_p95 < 1000.0;
  std::printf("speedup@4096 %.1fx (target >=5x): %s\n", speedup_4096,
              speedup_met ? "met" : "MISSED");
  std::printf("incremental p95@4096 %.1f us (target <1000us): %s\n",
              incremental_4096_p95, p95_sub_ms ? "met" : "MISSED");

  std::printf("Defense::Process comparison\n");
  std::vector<ProcessResult> process;
  {
    core::AsyncFilter filter;
    process.push_back(RunProcess(filter, "asyncfilter", 40, kDim, smoke));
  }
  {
    core::AsyncFilter filter;
    process.push_back(RunProcess(filter, "asyncfilter", 160, kDim, smoke));
  }
  {
    defense::FlDetector detector;
    process.push_back(RunProcess(detector, "fldetector", 40, kDim, smoke));
  }
  {
    defense::Krum krum(0.2, /*multi=*/true);
    process.push_back(RunProcess(krum, "multikrum", 40, kDim, smoke));
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String("defense");
  json.Key("smoke").Bool(smoke);
  json.Key("dim").UInt(kDim);
  json.Key("speedup_4096").Number(speedup_4096);
  json.Key("speedup_target_met").Bool(speedup_met);
  json.Key("incremental_p95_4096_us").Number(incremental_4096_p95);
  json.Key("p95_sub_ms").Bool(p95_sub_ms);
  json.Key("lanes").BeginArray();
  for (const LaneResult& lane : lanes) {
    json.BeginObject();
    json.Key("mode").String(lane.mode);
    json.Key("buffer").UInt(lane.buffer);
    json.Key("p50_us").Number(lane.p50_us);
    json.Key("p95_us").Number(lane.p95_us);
    json.Key("samples").UInt(lane.samples);
    json.EndObject();
  }
  json.EndArray();
  json.Key("process").BeginArray();
  for (const ProcessResult& r : process) {
    json.BeginObject();
    json.Key("defense").String(r.defense);
    json.Key("buffer").UInt(r.buffer);
    json.Key("dim").UInt(r.dim);
    json.Key("p50_us").Number(r.p50_us);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("perf record written to %s\n", out_path.c_str());
  return 0;
}

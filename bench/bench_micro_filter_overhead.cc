// Micro-benchmarks (google-benchmark): server-side overhead of the defense
// itself, independent of client training. AsyncFilter's plug-and-play claim
// implies the filter must be cheap next to an aggregation round; this
// measures Process() latency against buffer size and model dimensionality,
// with FLDetector and Multi-Krum for comparison.
#include <benchmark/benchmark.h>

#include <random>

#include "core/async_filter.h"
#include "defense/fldetector.h"
#include "defense/krum.h"
#include "fl/types.h"
#include "util/rng.h"

namespace {

std::vector<fl::ModelUpdate> MakeBuffer(std::size_t count, std::size_t dim,
                                        std::uint64_t seed) {
  auto rng = util::RngFactory(seed).Stream("micro");
  std::normal_distribution<float> noise(0.0f, 1.0f);
  std::uniform_int_distribution<std::size_t> tau(0, 5);
  std::vector<fl::ModelUpdate> buffer(count);
  for (std::size_t i = 0; i < count; ++i) {
    buffer[i].client_id = static_cast<int>(i);
    buffer[i].staleness = tau(rng);
    buffer[i].num_samples = 100;
    std::vector<float> delta(dim);
    for (float& x : delta) {
      x = noise(rng);
    }
    buffer[i].delta = std::move(delta);
  }
  return buffer;
}

void RunDefense(benchmark::State& state, defense::Defense& defense) {
  const auto buffer_size = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  auto buffer = MakeBuffer(buffer_size, dim, 42);
  std::vector<float> global(dim, 0.0f);
  auto rng = util::RngFactory(1).Stream("server");
  defense::FilterContext ctx;
  ctx.global_model = global;
  ctx.rng = &rng;
  for (auto _ : state) {
    ctx.round++;
    auto result = defense.Process(ctx, buffer);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer_size));
}

void BM_AsyncFilterProcess(benchmark::State& state) {
  core::AsyncFilter filter;
  RunDefense(state, filter);
}

void BM_FlDetectorProcess(benchmark::State& state) {
  defense::FlDetector detector;
  RunDefense(state, detector);
}

void BM_MultiKrumProcess(benchmark::State& state) {
  defense::Krum krum(0.2, /*multi=*/true);
  RunDefense(state, krum);
}

}  // namespace

// Buffer size sweep at the LeNet-surrogate dimension, and dimension sweep at
// the paper's buffer bound.
BENCHMARK(BM_AsyncFilterProcess)
    ->Args({20, 4704})
    ->Args({40, 4704})
    ->Args({80, 4704})
    ->Args({160, 4704})
    ->Args({40, 1000})
    ->Args({40, 20000})
    ->Args({40, 100000})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FlDetectorProcess)
    ->Args({40, 4704})
    ->Args({40, 20000})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultiKrumProcess)
    ->Args({40, 4704})
    ->Args({40, 20000})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();

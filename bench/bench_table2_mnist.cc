// Reproduces paper Table 2: defense grid on the MNIST-like workload
// (LeNet-5 surrogate, SGD+momentum, Dirichlet 0.1, 20% attackers).
//
// Expected shape (paper): GD and Min-Max hurt FedBuff hard (~10%),
// AsyncFilter recovers most of the loss; FLDetector loses accuracy even
// without an attack; LIE and Min-Sum are weak on MNIST.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base = bench::StandardConfig(data::Profile::kMnist);
  bench::GridSpec spec;
  spec.title = "Table 2: AsyncFilter defends against attacks on MNIST";
  spec.csv_name = "table2_mnist.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

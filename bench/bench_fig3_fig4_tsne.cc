// Reproduces the paper's Fig. 3 / Fig. 4 observation study (§4.2):
// t-SNE embeddings of per-round local updates, labelled with staleness,
// once on IID partitions (Fig. 3) and once on highly non-IID partitions
// (Dirichlet 0.01, Fig. 4).
//
// The paper's visual claims are made quantitative here:
//  (1) updates sharing a staleness level cluster around a common centre —
//      measured as the staleness-cohesion ratio (mean distance to own
//      staleness-group centre / mean distance to the global centre), which
//      is < 1 when the claim holds;
//  (2) non-IID data disperses updates — measured as the mean distance to
//      the own-group centre growing from Fig. 3 to Fig. 4.
// The raw 2-D embeddings are written to fig3_tsne_iid.csv /
// fig4_tsne_noniid.csv for plotting.
#include <array>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "cluster/tsne.h"
#include "stats/vec_ops.h"
#include "util/csv.h"
#include "util/rng.h"

namespace {

struct StudyResult {
  double cohesion_ratio = 0.0;  // < 1 → staleness groups are real clusters
  double own_group_spread = 0.0;
  std::size_t updates = 0;
  std::size_t staleness_levels = 0;
};

StudyResult RunStudy(bool iid, const std::string& csv_name) {
  // Observation-study setting (§4.2), scaled like every bench: the paper
  // uses 500 clients / buffer 150; we keep the 30% ratio.
  fl::ExperimentConfig config =
      bench::StandardConfig(data::Profile::kMnist);
  config.num_clients = 60;
  config.num_malicious = 0;
  config.sim.buffer_goal = 24;
  config.iid = iid;
  config.dirichlet_alpha = 0.01;
  config.attack = attacks::AttackKind::kNone;
  config.defense = fl::DefenseKind::kFedBuff;
  config.sim.rounds = bench::ScaledRounds(10);

  // Collect the buffered updates of the last few aggregation rounds.
  std::vector<std::vector<float>> updates;
  std::vector<std::size_t> staleness;
  const std::size_t first_collected_round = config.sim.rounds >= 4
                                                ? config.sim.rounds - 4
                                                : 0;
  fl::RunExperiment(config, [&](std::size_t round,
                                const std::vector<fl::ModelUpdate>& buffer) {
    if (round < first_collected_round) {
      return;
    }
    for (const auto& u : buffer) {
      updates.push_back(u.delta.ToVector());
      staleness.push_back(u.staleness);
    }
  });

  // Embed with t-SNE and write the scatter data.
  util::RngFactory rngs(bench::BenchSeed());
  auto rng = rngs.Stream("tsne");
  auto embedding = cluster::TsneEmbed(updates, rng);
  util::CsvWriter csv(csv_name);
  csv.WriteHeader({"x", "y", "staleness"});
  for (std::size_t i = 0; i < embedding.size(); ++i) {
    csv.WriteRow({util::FormatFixed(embedding[i][0], 4),
                  util::FormatFixed(embedding[i][1], 4),
                  std::to_string(staleness[i])});
  }

  // Quantify the two visual claims in the *original* update space — t-SNE
  // embeddings have no comparable absolute scale across runs.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    groups[staleness[i]].push_back(i);
  }
  std::vector<float> global_centre = stats::Mean(updates);
  std::map<std::size_t, std::vector<float>> group_centre;
  for (const auto& [tau, members] : groups) {
    std::vector<std::vector<float>> subset;
    for (std::size_t i : members) {
      subset.push_back(updates[i]);
    }
    group_centre[tau] = stats::Mean(subset);
  }
  double own = 0.0, global = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    own += stats::Distance(updates[i], group_centre[staleness[i]]);
    global += stats::Distance(updates[i], global_centre);
    norm += stats::L2Norm(updates[i]);
  }
  StudyResult result;
  result.updates = updates.size();
  result.staleness_levels = groups.size();
  // Own-group spread normalised by the mean update norm: comparable across
  // the IID and non-IID settings.
  result.own_group_spread = norm > 1e-12 ? own / norm : 0.0;
  result.cohesion_ratio = global > 1e-12 ? own / global : 0.0;
  return result;
}

}  // namespace

int main() {
  std::printf("== Fig. 3 / Fig. 4: t-SNE of local updates by staleness ==\n");
  StudyResult iid = RunStudy(/*iid=*/true, "fig3_tsne_iid.csv");
  StudyResult noniid = RunStudy(/*iid=*/false, "fig4_tsne_noniid.csv");

  std::printf("Fig. 3 (IID):     %zu updates, %zu staleness levels, "
              "cohesion ratio %.3f, own-group spread %.3f\n",
              iid.updates, iid.staleness_levels, iid.cohesion_ratio,
              iid.own_group_spread);
  std::printf("Fig. 4 (non-IID): %zu updates, %zu staleness levels, "
              "cohesion ratio %.3f, own-group spread %.3f\n",
              noniid.updates, noniid.staleness_levels, noniid.cohesion_ratio,
              noniid.own_group_spread);
  std::printf("Claim 1 (same-staleness updates share a centre): cohesion "
              "ratio < 1 in both settings → %s\n",
              (iid.cohesion_ratio < 1.0 && noniid.cohesion_ratio < 1.0)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("Claim 2 (non-IID disperses updates): own-group spread grows "
              "IID → non-IID → %s\n",
              noniid.own_group_spread > iid.own_group_spread ? "HOLDS"
                                                             : "VIOLATED");
  std::printf("Embeddings written to fig3_tsne_iid.csv / fig4_tsne_noniid.csv\n");
  return 0;
}

// Reproduces paper Table 5: defense grid on the CINIC-10-like workload —
// the hardest dataset, where FedBuff collapses (to ~10%) under GD and
// AsyncFilter keeps the model usable.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base = bench::StandardConfig(data::Profile::kCinic10);
  // CINIC is the slowest-converging profile; give it a little more runway
  // (the paper's strongest divergence findings are on this dataset).
  base.sim.rounds = bench::ScaledRounds(22);
  bench::GridSpec spec;
  spec.title = "Table 5: AsyncFilter defends against attacks on CINIC-10";
  spec.csv_name = "table5_cinic10.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Reproduces paper Table 6: data-heterogeneity robustness on CINIC-10 with
// the Dirichlet concentration tightened from 0.1 to 0.05.
//
// Expected shape (paper): every attack hurts more under stronger non-IID;
// AsyncFilter stays the best or near-best defense on most columns.
#include "bench_common.h"

int main() {
  fl::ExperimentConfig base = bench::StandardConfig(data::Profile::kCinic10);
  base.dirichlet_alpha = 0.05;
  base.sim.rounds = bench::ScaledRounds(22);
  bench::GridSpec spec;
  spec.title =
      "Table 6: AsyncFilter is robust against data heterogeneity on CINIC-10 "
      "(Dirichlet 0.05)";
  spec.csv_name = "table6_hetero_cinic10.csv";
  spec.attacks = bench::PaperAttacks();
  spec.defenses = bench::PaperDefenses();
  spec.include_no_attack = false;  // the paper's Table 6 has no clean column
  bench::RunAttackDefenseGrid(base, spec);
  return 0;
}

// Micro-benchmark for the blocked SGEMM core (tensor/gemm.h) against the
// seed's naive triple-loop MatMul, plus the reduction kernels behind the
// defense distance math and an end-to-end training-step throughput record.
//
// Emits BENCH_gemm.json (see docs/PERFORMANCE.md for the schema) so the
// kernel perf trajectory is tracked per PR alongside the table/figure
// records. `--smoke` shrinks repetitions for CI; `--out=FILE` redirects the
// JSON; `--threads=N` sizes the pool used for the multi-threaded columns.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "nn/loss.h"
#include "nn/models.h"
#include "obs/json.h"
#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The seed repo's tensor::MatMul before this PR: ikj loop order with the
// `av == 0.0f` skip, kept verbatim as the baseline the speedup is measured
// against.
void SeedMatMul(const float* a, const float* b, float* c, std::size_t m,
                std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      crow[j] = 0.0f;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// Median-of-`runs` wall time of fn(), each run `reps` back-to-back calls.
template <typename Fn>
double MedianSecondsPerCall(std::size_t runs, std::size_t reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      fn();
    }
    times.push_back(SecondsSince(start) / static_cast<double>(reps));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct GemmCase {
  const char* label;  // which layer/pass this shape stands in for
  std::size_t m, n, k;
};

// LeNet-surrogate working set (batch 64) plus a square reference point.
// 64×120×400 is the acceptance shape from ISSUE 3.
const GemmCase kCases[] = {
    {"fc1_forward_64x120x400", 64, 120, 400},
    {"fc1_dgrad_64x400x120", 64, 400, 120},
    {"fc1_wgrad_120x400x64", 120, 400, 64},
    {"conv2_forward_12x9216x150", 12, 9216, 150},
    {"square_256", 256, 256, 256},
};

struct GemmResult {
  GemmCase shape;
  double seed_sec = 0.0;
  double blocked_sec = 0.0;
  double blocked_mt_sec = 0.0;
};

struct ReductionResult {
  const char* op;
  std::size_t n;
  double sec = 0.0;
  double gbytes_per_sec = 0.0;
};

struct TrainResult {
  std::string model;
  std::size_t batch = 0;
  std::size_t steps = 0;
  double wall_seconds = 0.0;
  double steps_per_sec = 0.0;
  double samples_per_sec = 0.0;
};

double Gflops(const GemmCase& s, double sec) {
  return sec > 0.0
             ? 2.0 * static_cast<double>(s.m) * s.n * s.k / sec / 1e9
             : 0.0;
}

GemmResult BenchGemm(const GemmCase& shape, bool smoke,
                     util::ThreadPool& pool, std::mt19937_64& rng) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> a(shape.m * shape.k), b(shape.k * shape.n);
  std::vector<float> c(shape.m * shape.n);
  for (float& x : a) {
    x = dist(rng);
  }
  for (float& x : b) {
    x = dist(rng);
  }

  // Size repetitions so each measured run lasts long enough to time
  // reliably (~60ms full, ~6ms smoke) without letting big shapes crawl.
  const double target = smoke ? 0.006 : 0.06;
  const std::size_t runs = smoke ? 3 : 7;
  auto reps_for = [&](double sec_per_call) {
    const double reps = target / std::max(sec_per_call, 1e-9);
    return std::max<std::size_t>(1, static_cast<std::size_t>(reps));
  };
  // One untimed warm-up call calibrates reps and touches the buffers.
  const auto warm = Clock::now();
  SeedMatMul(a.data(), b.data(), c.data(), shape.m, shape.n, shape.k);
  const double warm_sec = std::max(SecondsSince(warm), 1e-9);

  GemmResult result{shape};
  result.seed_sec = MedianSecondsPerCall(runs, reps_for(warm_sec), [&] {
    SeedMatMul(a.data(), b.data(), c.data(), shape.m, shape.n, shape.k);
  });
  const double est_blocked = warm_sec / 4.0;  // reps guess; self-corrects fast
  result.blocked_sec = MedianSecondsPerCall(runs, reps_for(est_blocked), [&] {
    tensor::Sgemm(tensor::Op::kNone, tensor::Op::kNone, shape.m, shape.n,
                  shape.k, a.data(), shape.k, b.data(), shape.n, c.data(),
                  shape.n);
  });
  result.blocked_mt_sec =
      MedianSecondsPerCall(runs, reps_for(result.blocked_sec), [&] {
        tensor::Sgemm(tensor::Op::kNone, tensor::Op::kNone, shape.m, shape.n,
                      shape.k, a.data(), shape.k, b.data(), shape.n, c.data(),
                      shape.n, nullptr, 0.0f, &pool);
      });
  std::printf(
      "  %-28s seed %8.2f ms (%6.2f GF/s)  blocked %8.2f ms (%6.2f GF/s)  "
      "x%-5.1f  mt %8.2f ms (x%.1f)\n",
      shape.label, result.seed_sec * 1e3, Gflops(shape, result.seed_sec),
      result.blocked_sec * 1e3, Gflops(shape, result.blocked_sec),
      result.seed_sec / result.blocked_sec, result.blocked_mt_sec * 1e3,
      result.seed_sec / result.blocked_mt_sec);
  return result;
}

ReductionResult BenchReduction(const char* op, std::size_t n, bool smoke,
                               std::mt19937_64& rng) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  const std::size_t runs = smoke ? 3 : 7;
  const std::size_t reps = (smoke ? 400000u : 4000000u) / std::max<std::size_t>(n, 1) + 1;
  volatile double sink = 0.0;
  ReductionResult result{op, n};
  if (std::string(op) == "dot") {
    result.sec = MedianSecondsPerCall(
        runs, reps, [&] { sink = tensor::kernels::Dot(a.data(), b.data(), n); });
  } else {
    result.sec = MedianSecondsPerCall(runs, reps, [&] {
      sink = tensor::kernels::SquaredDistance(a.data(), b.data(), n);
    });
  }
  (void)sink;
  // Two float streams in.
  result.gbytes_per_sec =
      result.sec > 0.0
          ? 2.0 * static_cast<double>(n) * sizeof(float) / result.sec / 1e9
          : 0.0;
  std::printf("  %-28s n=%-8zu %8.1f ns/call  %6.2f GB/s\n", op, n,
              result.sec * 1e9, result.gbytes_per_sec);
  return result;
}

TrainResult BenchTrainingStep(bool smoke, std::mt19937_64& rng) {
  const nn::ModelSpec spec = nn::MakeLeNet5Surrogate();
  auto model = spec.factory(/*seed=*/17);
  const std::size_t batch = 32;
  tensor::Shape shape{batch};
  shape.insert(shape.end(), spec.sample_shape.begin(),
               spec.sample_shape.end());
  tensor::Tensor input(shape);
  input.FillNormal(0.0f, 1.0f, rng);
  std::vector<std::int64_t> labels(batch);
  std::uniform_int_distribution<std::int64_t> label_dist(
      0, static_cast<std::int64_t>(spec.num_classes) - 1);
  for (std::int64_t& l : labels) {
    l = label_dist(rng);
  }

  auto step = [&] {
    model->ZeroGrads();
    tensor::Tensor logits = model->Forward(input);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    model->Backward(loss.grad_logits);
  };
  step();  // warm-up: sizes the Conv2d arenas outside the timed region

  const std::size_t steps = smoke ? 5 : 50;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    step();
  }
  TrainResult result;
  result.model = spec.name;
  result.batch = batch;
  result.steps = steps;
  result.wall_seconds = SecondsSince(start);
  result.steps_per_sec =
      result.wall_seconds > 0.0 ? steps / result.wall_seconds : 0.0;
  result.samples_per_sec = result.steps_per_sec * static_cast<double>(batch);
  std::printf(
      "  %s batch=%zu: %.1f steps/s, %.0f samples/s over %zu steps (%.2fs)\n",
      result.model.c_str(), batch, result.steps_per_sec,
      result.samples_per_sec, steps, result.wall_seconds);
  return result;
}

const char* IsaName() {
  return tensor::kernels::ActiveIsa() == tensor::kernels::Isa::kAvx2
             ? "avx2"
             : "scalar";
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  flags.RejectUnknown({"smoke", "out", "threads"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_gemm.json");
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 4));

  util::ThreadPool pool(threads);
  std::mt19937_64 rng(20240806);

  std::printf("bench_micro_gemm (isa=%s, mt threads=%zu%s)\n", IsaName(),
              pool.size(), smoke ? ", smoke" : "");
  std::printf("GEMM: blocked SGEMM vs seed triple loop\n");
  std::vector<GemmResult> gemm_results;
  for (const GemmCase& shape : kCases) {
    gemm_results.push_back(BenchGemm(shape, smoke, pool, rng));
  }
  std::printf("Reduction kernels (defense distance math)\n");
  std::vector<ReductionResult> red_results;
  red_results.push_back(BenchReduction("dot", 4704, smoke, rng));
  red_results.push_back(BenchReduction("squared_distance", 4704, smoke, rng));
  red_results.push_back(
      BenchReduction("squared_distance", 100000, smoke, rng));
  std::printf("Training step (LeNet surrogate, full fwd+loss+bwd)\n");
  const TrainResult train = BenchTrainingStep(smoke, rng);

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("name").String("gemm");
  json.Key("smoke").Bool(smoke);
  json.Key("isa").String(IsaName());
  json.Key("mt_threads").UInt(pool.size());
  json.Key("gemm").BeginArray();
  for (const GemmResult& r : gemm_results) {
    json.BeginObject();
    json.Key("label").String(r.shape.label);
    json.Key("m").UInt(r.shape.m);
    json.Key("n").UInt(r.shape.n);
    json.Key("k").UInt(r.shape.k);
    json.Key("seed_ms").Number(r.seed_sec * 1e3);
    json.Key("blocked_ms").Number(r.blocked_sec * 1e3);
    json.Key("blocked_mt_ms").Number(r.blocked_mt_sec * 1e3);
    json.Key("seed_gflops").Number(Gflops(r.shape, r.seed_sec));
    json.Key("blocked_gflops").Number(Gflops(r.shape, r.blocked_sec));
    json.Key("blocked_mt_gflops").Number(Gflops(r.shape, r.blocked_mt_sec));
    json.Key("speedup").Number(r.blocked_sec > 0.0
                                   ? r.seed_sec / r.blocked_sec
                                   : 0.0);
    json.Key("speedup_mt").Number(r.blocked_mt_sec > 0.0
                                      ? r.seed_sec / r.blocked_mt_sec
                                      : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.Key("reductions").BeginArray();
  for (const ReductionResult& r : red_results) {
    json.BeginObject();
    json.Key("op").String(r.op);
    json.Key("n").UInt(r.n);
    json.Key("ns_per_call").Number(r.sec * 1e9);
    json.Key("gbytes_per_sec").Number(r.gbytes_per_sec);
    json.EndObject();
  }
  json.EndArray();
  json.Key("training_step").BeginObject();
  json.Key("model").String(train.model);
  json.Key("batch").UInt(train.batch);
  json.Key("steps").UInt(train.steps);
  json.Key("wall_seconds").Number(train.wall_seconds);
  json.Key("steps_per_sec").Number(train.steps_per_sec);
  json.Key("samples_per_sec").Number(train.samples_per_sec);
  json.EndObject();
  json.EndObject();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str() << '\n';
  std::printf("perf record written to %s\n", out_path.c_str());
  return 0;
}

// Reproduces paper Fig. 6: AsyncFilter accuracy on FashionMNIST under the
// GD and LIE attacks as the server staleness limit sweeps {5, 10, 15, 20},
// three seeds per point (mean ± std, like the paper's error bars).
//
// Expected shape (paper): accuracy mildly decreases as the limit grows
// (staler updates hinder convergence) but stays high and stable under both
// attacks.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  const std::size_t limits[] = {5, 10, 15, 20};
  const attacks::AttackKind attack_grid[] = {attacks::AttackKind::kGd,
                                             attacks::AttackKind::kLie};
  const std::vector<std::uint64_t> seeds = {bench::BenchSeed(),
                                            bench::BenchSeed() + 101,
                                            bench::BenchSeed() + 202};

  std::printf("== Fig. 6: AsyncFilter vs server staleness limits "
              "(FashionMNIST, 3 seeds) ==\n");
  util::ConsoleTable table({"Attack", "limit=5", "limit=10", "limit=15",
                            "limit=20"});
  util::CsvWriter csv("fig6_staleness_sweep.csv");
  csv.WriteHeader({"attack", "staleness_limit", "mean_accuracy",
                   "std_accuracy"});

  for (auto attack : attack_grid) {
    std::vector<std::string> row{attacks::AttackKindName(attack)};
    for (std::size_t limit : limits) {
      fl::ExperimentConfig config =
          bench::StandardConfig(data::Profile::kFashionMnist);
      config.attack = attack;
      config.defense = fl::DefenseKind::kAsyncFilter;
      config.sim.staleness_limit = limit;
      config.sim.rounds = bench::ScaledRounds(15);
      std::vector<double> finals = fl::RunRepeated(config, seeds);
      for (double& f : finals) {
        f *= 100.0;
      }
      stats::Summary summary = stats::Summarize(finals);
      row.push_back(util::FormatFixed(summary.mean) + "±" +
                    util::FormatFixed(summary.stddev));
      csv.WriteRow({attacks::AttackKindName(attack), std::to_string(limit),
                    util::FormatFixed(summary.mean, 2),
                    util::FormatFixed(summary.stddev, 2)});
      std::fprintf(stderr, "  [%s limit=%zu] %.1f ± %.1f\n",
                   attacks::AttackKindName(attack), limit, summary.mean,
                   summary.stddev);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Series written to fig6_staleness_sweep.csv\n");
  return 0;
}

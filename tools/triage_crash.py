#!/usr/bin/env python3
"""Triage fuzzing crash artifacts: dedupe by failure signature, minimize.

Usage:
    tools/triage_crash.py BINARY CRASH [CRASH...] [--minimize] [-o DIR]

BINARY is a fuzz target built by this repo (fuzz_params, fuzz_frame, ...);
each CRASH is a crash-* artifact file or a directory of them. Every input
is replayed with `BINARY -runs=0 FILE` and bucketed by a stable signature:

  1. the top sanitizer stack frame   (`#0 0x... in frame file:line`)
  2. an UBSan runtime-error line     (`file:line:col: runtime error: ...`)
  3. the engine's crash line         (`fuzz: CRASH (what) — ...`)
  4. otherwise: "no-repro" (the input no longer crashes this binary)

with decimal digits stripped so varying offsets/sizes/addresses collapse
into one bucket per defect. One representative per bucket is reported with
a copy-pasteable repro command; --minimize greedily shrinks each
representative (chunk removal, then byte removal) while the signature is
preserved and writes the result next to the original as `<name>.min`.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Signature extractors, tried in order. Digits are stripped afterwards so
# addresses/sizes never split one defect into many buckets.
_PATTERNS = [
    re.compile(r"#0 0x[0-9a-f]+ in (.+)$", re.M),
    re.compile(r"ERROR: (?:Address|Memory|Leak)Sanitizer:? ([^\n(]+)", re.M),
    re.compile(r"runtime error: (.+)$", re.M),
    re.compile(r"fuzz: CRASH \((.+?)\) — ", re.M),
]


def run_target(binary, path, timeout):
    env = dict(os.environ)
    env.setdefault("ASAN_OPTIONS", "abort_on_error=1")
    try:
        proc = subprocess.run(
            [binary, "-runs=0", path],
            capture_output=True,
            text=True,
            errors="replace",
            timeout=timeout,
            env=env,
        )
        return proc.returncode, proc.stderr + proc.stdout
    except subprocess.TimeoutExpired as e:
        out = (e.stderr or b"").decode("utf-8", "replace") if isinstance(
            e.stderr, bytes) else (e.stderr or "")
        return -1, out + "\n<timeout>"


def signature(returncode, output):
    for pattern in _PATTERNS:
        match = pattern.search(output)
        if match:
            return re.sub(r"\d+", "", match.group(1)).strip()
    if returncode != 0:
        return "unrecognized-failure (exit %d)" % returncode
    return None  # clean run


def classify(binary, path, timeout):
    return signature(*run_target(binary, path, timeout))


def minimize(binary, data, sig, timeout):
    """Greedy shrink: drop chunks (halving sizes), then single bytes, as
    long as the input still reproduces the same signature."""

    def still_crashes(candidate):
        with tempfile.NamedTemporaryFile(delete=False) as tmp:
            tmp.write(candidate)
            name = tmp.name
        try:
            return classify(binary, name, timeout) == sig
        finally:
            os.unlink(name)

    improved = True
    while improved:
        improved = False
        chunk = max(1, len(data) // 2)
        while chunk >= 1:
            start = 0
            while start < len(data):
                candidate = data[:start] + data[start + chunk:]
                if candidate != data and still_crashes(candidate):
                    data = candidate
                    improved = True
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2
    return data


def collect(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, f) for f in sorted(os.listdir(path))
                if os.path.isfile(os.path.join(path, f)))
        else:
            files.append(path)
    return files


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("binary", help="fuzz target executable")
    parser.add_argument("crashes", nargs="+",
                        help="crash artifact files or directories of them")
    parser.add_argument("--minimize", action="store_true",
                        help="greedily shrink one representative per bucket")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="seconds per replay (default 30)")
    args = parser.parse_args()

    buckets = {}  # signature -> [paths]
    clean = []
    for path in collect(args.crashes):
        sig = classify(args.binary, path, args.timeout)
        if sig is None:
            clean.append(path)
        else:
            buckets.setdefault(sig, []).append(path)

    if clean:
        print("no longer reproduce (%d):" % len(clean))
        for path in clean:
            print("  %s" % path)
        print()

    if not buckets:
        print("no crashing inputs.")
        return 0

    print("%d distinct failure signature(s):\n" % len(buckets))
    for sig, paths in sorted(buckets.items()):
        rep = min(paths, key=os.path.getsize)
        print("[%d input(s)] %s" % (len(paths), sig))
        if args.minimize:
            with open(rep, "rb") as f:
                data = f.read()
            small = minimize(args.binary, data, sig, args.timeout)
            if len(small) < len(data):
                out = rep + ".min"
                with open(out, "wb") as f:
                    f.write(small)
                print("  minimized %d -> %d bytes: %s" %
                      (len(data), len(small), out))
                rep = out
        print("  repro: %s -runs=0 %s\n" % (args.binary, rep))
    return 1


if __name__ == "__main__":
    sys.exit(main())

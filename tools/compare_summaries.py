#!/usr/bin/env python3
"""Diff two run-summary JSON files, ignoring wall-clock timing.

Used by the CI kill-and-resume job: a checkpointed, killed, and resumed run
must produce a summary identical to an uninterrupted reference except for
fields measuring host wall-clock time (which can never be bit-identical).

`--ignore=field1,field2` excludes additional top-level fields. Runs with a
lossy checkpoint codec (e.g. `--compress=fp16`) restore a rounded model, so
accuracy-derived fields legitimately drift between a straight-through run
and a resumed one; the kill-resume CI leg passes the known-lossy set
explicitly rather than loosening the default bit-exact comparison.

Exit status: 0 when equivalent, 1 with a field-by-field diff, 2 when a
summary file is missing or not valid JSON (so CI distinguishes "the runs
disagreed" from "a run never produced its summary").
"""

import argparse
import json
import sys

# Wall-clock measurements: legitimately different between runs.
TIMING_FIELDS = ("wall_seconds", "defense_latency")


def strip_fields(summary, ignored):
    return {k: v for k, v in summary.items() if k not in ignored}


def load_summary(path, ignored):
    try:
        with open(path) as f:
            summary = json.load(f)
    except OSError as e:
        print(f"error: cannot read summary {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(summary, dict):
        print(f"error: {path} is not a JSON object "
              f"(got {type(summary).__name__})", file=sys.stderr)
        sys.exit(2)
    return strip_fields(summary, ignored)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff run summaries, ignoring timing fields.")
    parser.add_argument("reference", help="uninterrupted reference summary")
    parser.add_argument("candidate", help="resumed-run summary to compare")
    parser.add_argument(
        "--ignore", default="", metavar="FIELDS",
        help="comma-separated extra top-level fields to exclude "
             "(for known-lossy runs, e.g. final_accuracy with a lossy "
             "checkpoint codec)")
    args = parser.parse_args(argv[1:])

    ignored = set(TIMING_FIELDS)
    ignored.update(f for f in args.ignore.split(",") if f)

    reference = load_summary(args.reference, ignored)
    candidate = load_summary(args.candidate, ignored)
    if reference == candidate:
        extra = sorted(ignored - set(TIMING_FIELDS))
        suffix = f", also ignoring {', '.join(extra)}" if extra else ""
        print(f"summaries match (timing fields excluded{suffix})")
        return 0
    print("summaries differ:", file=sys.stderr)
    for key in sorted(set(reference) | set(candidate)):
        ref_value = reference.get(key, "<missing>")
        cand_value = candidate.get(key, "<missing>")
        if ref_value != cand_value:
            print(f"  {key}: {ref_value!r} != {cand_value!r}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff two run-summary JSON files, ignoring wall-clock timing.

Used by the CI kill-and-resume job: a checkpointed, killed, and resumed run
must produce a summary identical to an uninterrupted reference except for
fields measuring host wall-clock time (which can never be bit-identical).

Exit status: 0 when equivalent, 1 with a field-by-field diff otherwise.
"""

import json
import sys

# Wall-clock measurements: legitimately different between runs.
TIMING_FIELDS = ("wall_seconds", "defense_latency")


def strip_timing(summary):
    return {k: v for k, v in summary.items() if k not in TIMING_FIELDS}


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} reference.json candidate.json", file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        reference = strip_timing(json.load(f))
    with open(argv[2]) as f:
        candidate = strip_timing(json.load(f))
    if reference == candidate:
        print("summaries match (timing fields excluded)")
        return 0
    print("summaries differ:", file=sys.stderr)
    for key in sorted(set(reference) | set(candidate)):
        ref_value = reference.get(key, "<missing>")
        cand_value = candidate.get(key, "<missing>")
        if ref_value != cand_value:
            print(f"  {key}: {ref_value!r} != {cand_value!r}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Merge Chrome trace files into one cross-process timeline.

Each input file (written by `run_experiment --trace-out` or
TraceRecorder::WriteChromeTrace) becomes one process in the merged view:
events keep their thread ids but get a distinct pid plus process_name
metadata, so chrome://tracing / ui.perfetto.dev shows the sources stacked
in one timeline.

Spans that carry trace-context ids (args.trace_id, attached when a run
propagates trace context — see docs/OBSERVABILITY.md) are the join key:
a client's `net.worker.train` span and the server's
`defense.process.update` span for the same training job share a trace_id,
which is what makes the merged timeline causal rather than merely
concurrent. The tool reports how many trace ids link a train span to a
defense span; `--require-shared` turns "none" into exit status 1, which is
how tests assert end-to-end propagation actually happened.

Usage:
  merge_traces.py --out merged.json server.json client0.json ...
  merge_traces.py --out merged.json --require-shared run.json
"""

import argparse
import json
import os
import sys

TRAIN_SPAN = "net.worker.train"
DEFENSE_SPAN = "defense.process.update"


def load_events(path):
    try:
        with open(path) as f:
            trace = json.load(f)
    except OSError as e:
        print(f"error: cannot read trace {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        print(f"error: {path} has no traceEvents array", file=sys.stderr)
        sys.exit(2)
    return events


def main(argv):
    parser = argparse.ArgumentParser(
        description="Merge Chrome traces into one timeline, joined on "
                    "trace-context ids.")
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="Chrome trace JSON files to merge")
    parser.add_argument("--out", required=True, metavar="FILE",
                        help="merged Chrome trace output path")
    parser.add_argument(
        "--require-shared", action="store_true",
        help=f"exit 1 unless at least one trace id appears on both a "
             f"{TRAIN_SPAN} span and a {DEFENSE_SPAN} span")
    args = parser.parse_args(argv[1:])

    merged = []
    train_ids = set()
    defense_ids = set()
    for pid, path in enumerate(args.traces):
        name = os.path.basename(path)
        merged.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        for event in load_events(path):
            event = dict(event)
            event["pid"] = pid
            merged.append(event)
            trace_id = (event.get("args") or {}).get("trace_id")
            if trace_id is None:
                continue
            if event.get("name") == TRAIN_SPAN:
                train_ids.add(trace_id)
            elif event.get("name") == DEFENSE_SPAN:
                defense_ids.add(trace_id)

    shared = train_ids & defense_ids
    with open(args.out, "w") as f:
        json.dump({"traceEvents": merged}, f)

    span_count = sum(1 for e in merged if e.get("ph") == "X")
    print(f"merged {len(args.traces)} trace(s): {span_count} spans -> "
          f"{args.out}")
    print(f"trace ids: {len(train_ids)} on {TRAIN_SPAN}, "
          f"{len(defense_ids)} on {DEFENSE_SPAN}, {len(shared)} shared")
    if args.require_shared and not shared:
        print("error: no trace id links a client train span to a server "
              "defense span (was the run traced with --transport=tcp and "
              "--trace-out?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Collect BENCH_*.json perf records into a bench trajectory.

Every bench grid run writes a machine-readable `BENCH_<csv stem>.json`
record next to its CSV (see docs/PERFORMANCE.md for the schema), but until
now nothing gathered them: the bench trajectory stayed empty because
records were produced and then thrown away. This tool appends one JSONL
line per record to `bench_results/trajectory.jsonl`, stamped with enough
provenance (collection time, optional git commit / CI run labels) to diff
perf across commits.

Appending rather than truncating is the point — rerunning after every
bench run (or every CI perf job) grows one monotone trajectory file.
Records are deduplicated by (name, commit): re-collecting the same bench
output for the same commit is a no-op, so CI retries don't double-count.

Usage:
  collect_bench.py                       # glob BENCH_*.json in cwd
  collect_bench.py BENCH_gemm.json ...   # explicit record files
  collect_bench.py --dir build/bench     # glob a directory instead
  collect_bench.py --out results/traj.jsonl --commit "$GITHUB_SHA"

Exit status: 0 on success (even with zero records found, reported as a
warning), 2 when a named record is missing or unparseable — the same
convention as compare_summaries.py, so CI distinguishes "nothing to
collect" from "a bench produced garbage".
"""

import argparse
import glob
import json
import os
import sys
import time


def load_record(path):
    try:
        with open(path) as f:
            record = json.load(f)
    except OSError as e:
        print(f"error: cannot read bench record {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(record, dict) or "name" not in record:
        print(f"error: {path} is not a bench record (no 'name' field)",
              file=sys.stderr)
        sys.exit(2)
    return record


def existing_keys(out_path):
    """(name, commit) pairs already in the trajectory, for dedup."""
    keys = set()
    if not os.path.exists(out_path):
        return keys
    with open(out_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate a torn tail line from a killed writer
            keys.add((entry.get("name"), entry.get("commit")))
    return keys


def main(argv):
    parser = argparse.ArgumentParser(
        description="Append BENCH_*.json perf records to the bench "
                    "trajectory JSONL.")
    parser.add_argument("records", nargs="*", metavar="RECORD",
                        help="bench record files (default: glob BENCH_*.json)")
    parser.add_argument("--dir", default=".", metavar="DIR",
                        help="directory to glob BENCH_*.json from when no "
                             "explicit records are given")
    parser.add_argument("--out", default="bench_results/trajectory.jsonl",
                        metavar="FILE", help="trajectory JSONL to append to")
    parser.add_argument("--commit", default="", metavar="SHA",
                        help="git commit to stamp on each entry "
                             "(e.g. $GITHUB_SHA)")
    parser.add_argument("--run-id", default="", metavar="ID",
                        help="CI run id to stamp on each entry")
    args = parser.parse_args(argv[1:])

    paths = args.records or sorted(
        glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not paths:
        print(f"warning: no BENCH_*.json records found in {args.dir}",
              file=sys.stderr)
        return 0

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    seen = existing_keys(args.out)

    collected = 0
    skipped = 0
    now = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    with open(args.out, "a") as out:
        for path in paths:
            record = load_record(path)
            entry = {
                "collected_at": now,
                "commit": args.commit or None,
                "run_id": args.run_id or None,
                "source": os.path.basename(path),
            }
            entry.update(record)
            if args.commit and (entry["name"], args.commit) in seen:
                skipped += 1
                continue
            out.write(json.dumps(entry, sort_keys=True) + "\n")
            collected += 1

    suffix = f", {skipped} already collected for this commit" if skipped else ""
    print(f"collected {collected} bench record(s) into {args.out}{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

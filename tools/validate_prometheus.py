#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) scrape.

Used by the CI scrape-smoke job: a live `/metrics` scrape from a running
experiment is piped through this parser, which enforces the parts of the
format a hand-rolled emitter is most likely to get wrong:

  * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match
    `[a-zA-Z_][a-zA-Z0-9_]*`
  * label values are properly escaped (`\\`, `\"`, `\n` only; no raw
    newline or unescaped quote can survive a correct emitter)
  * every sample is preceded by a `# TYPE` for its metric family
  * sample values parse as floats (incl. `+Inf`, `-Inf`, `NaN`)
  * histograms: bucket counts are cumulative (monotone non-decreasing in
    `le`), the last bucket is `le="+Inf"`, and `_count` equals the
    `+Inf` bucket, with `_sum` present — per label-set
  * counters and histogram buckets/counts are non-negative

`--require-prefix defense. --require-prefix net.` additionally asserts
that at least one metric family with each (pre-sanitization dots become
underscores) prefix appeared — the smoke test's "the run actually
exported its series" check.

Usage:
  curl -s localhost:9464/metrics | validate_prometheus.py
  validate_prometheus.py scrape.txt --require-prefix defense_ \
      --require-prefix net_ --require-prefix compress_

Exit status: 0 when valid, 1 with one line per violation otherwise.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Violations:
    def __init__(self):
        self.errors = []

    def add(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}"
                           if lineno else message)


def parse_labels(text, lineno, v):
    """Parse `key="value",...` (inside braces) -> dict, validating escapes."""
    labels = {}
    i = 0
    n = len(text)
    while i < n:
        match = re.match(r'\s*([^=\s]+)\s*=\s*"', text[i:])
        if not match:
            v.add(lineno, f"malformed label pair at ...{text[i:]!r}")
            return labels
        name = match.group(1)
        if not LABEL_NAME.match(name):
            v.add(lineno, f"invalid label name {name!r}")
        i += match.end()
        value = []
        closed = False
        while i < n:
            c = text[i]
            if c == "\\":
                if i + 1 >= n or text[i + 1] not in ('\\', '"', 'n'):
                    v.add(lineno, f"invalid escape in label {name!r}")
                    i += 1
                    continue
                value.append({"\\": "\\", '"': '"', "n": "\n"}[text[i + 1]])
                i += 2
            elif c == '"':
                closed = True
                i += 1
                break
            elif c == "\n":
                v.add(lineno, f"raw newline in label {name!r}")
                i += 1
            else:
                value.append(c)
                i += 1
        if not closed:
            v.add(lineno, f"unterminated label value for {name!r}")
        labels[name] = "".join(value)
        rest = re.match(r"\s*,", text[i:])
        if rest:
            i += rest.end()
        elif text[i:].strip():
            v.add(lineno, f"junk after label pair: {text[i:]!r}")
            break
    return labels


def parse_value(text, lineno, v):
    text = text.strip()
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        v.add(lineno, f"unparseable sample value {text!r}")
        return None


def base_family(name):
    """Strip histogram/summary sample suffixes to the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text, require_prefixes):
    v = Violations()
    types = {}          # family -> declared type
    # (family, frozenset(labels minus le)) -> {"buckets": [(le, val)],
    #                                          "sum": x, "count": n}
    histograms = {}
    families_seen = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    v.add(lineno, "malformed # TYPE line")
                    continue
                family, family_type = parts[2], parts[3].strip()
                if not METRIC_NAME.match(family):
                    v.add(lineno, f"invalid family name {family!r}")
                if family_type not in TYPES:
                    v.add(lineno, f"unknown type {family_type!r}")
                if family in types:
                    v.add(lineno, f"duplicate # TYPE for {family!r}")
                types[family] = family_type
            continue

        match = re.match(r"^([^\s{]+)(\{(.*)\})?\s+(\S+)(\s+\S+)?\s*$", line)
        if not match:
            v.add(lineno, f"unparseable sample line {line!r}")
            continue
        name, _, label_text, value_text, _ = match.groups()
        if not METRIC_NAME.match(name):
            v.add(lineno, f"invalid metric name {name!r}")
        labels = (parse_labels(label_text, lineno, v)
                  if label_text is not None else {})
        value = parse_value(value_text, lineno, v)

        family = base_family(name)
        families_seen.add(family)
        families_seen.add(name)
        family_type = types.get(family) or types.get(name)
        if family_type is None:
            v.add(lineno, f"sample {name!r} has no preceding # TYPE")
            continue

        if family_type == "counter" and value is not None and value < 0:
            v.add(lineno, f"counter {name!r} is negative ({value})")

        if family_type == "histogram":
            key = (family,
                   frozenset((k, val) for k, val in labels.items()
                             if k != "le"))
            hist = histograms.setdefault(
                key, {"buckets": [], "sum": None, "count": None,
                      "lineno": lineno})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    v.add(lineno, f"{name!r} bucket missing le label")
                else:
                    le = (math.inf if labels["le"] == "+Inf"
                          else parse_value(labels["le"], lineno, v))
                    hist["buckets"].append((le, value, lineno))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
            else:
                v.add(lineno, f"bare sample {name!r} for histogram family")

    for (family, _), hist in histograms.items():
        buckets = hist["buckets"]
        lineno = hist["lineno"]
        if not buckets:
            v.add(lineno, f"histogram {family!r} has no buckets")
            continue
        les = [b[0] for b in buckets]
        if sorted(les) != les:
            v.add(lineno, f"histogram {family!r} buckets not sorted by le")
        if les[-1] != math.inf:
            v.add(lineno, f"histogram {family!r} missing le=\"+Inf\" bucket")
        prev = -math.inf
        for le, value, bucket_lineno in buckets:
            if value is None:
                continue
            if value < prev:
                v.add(bucket_lineno,
                      f"histogram {family!r} bucket le={le} count {value} "
                      f"below previous bucket ({prev}) — not cumulative")
            if value < 0:
                v.add(bucket_lineno,
                      f"histogram {family!r} negative bucket count")
            prev = max(prev, value if value is not None else prev)
        if hist["count"] is None:
            v.add(lineno, f"histogram {family!r} missing _count")
        elif les[-1] == math.inf and buckets[-1][1] is not None:
            if hist["count"] != buckets[-1][1]:
                v.add(lineno,
                      f"histogram {family!r} _count ({hist['count']}) != "
                      f"+Inf bucket ({buckets[-1][1]})")
        if hist["sum"] is None:
            v.add(lineno, f"histogram {family!r} missing _sum")

    for prefix in require_prefixes:
        if not any(f.startswith(prefix) for f in families_seen):
            v.add(0, f"no metric family with required prefix {prefix!r}")

    return v


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate Prometheus text exposition (0.0.4).")
    parser.add_argument("scrape", nargs="?", metavar="FILE",
                        help="scrape to validate (default: stdin)")
    parser.add_argument("--require-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a metric family with this prefix "
                             "is present (repeatable)")
    args = parser.parse_args(argv[1:])

    if args.scrape:
        try:
            with open(args.scrape) as f:
                text = f.read()
        except OSError as e:
            print(f"error: cannot read scrape {args.scrape}: {e}",
                  file=sys.stderr)
            return 2
    else:
        text = sys.stdin.read()

    if not text.strip():
        print("error: empty scrape", file=sys.stderr)
        return 1

    v = validate(text, args.require_prefix)
    if v.errors:
        for error in v.errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"{len(v.errors)} violation(s)", file=sys.stderr)
        return 1

    families = len([1 for line in text.splitlines()
                    if line.startswith("# TYPE")])
    samples = len([1 for line in text.splitlines()
                   if line.strip() and not line.startswith("#")])
    print(f"scrape valid: {families} families, {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

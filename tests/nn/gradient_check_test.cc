// End-to-end analytic-vs-numeric gradient verification for every layer type
// through full models — the strongest correctness evidence the training
// substrate has.
#include "nn/gradient_check.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/models.h"
#include "util/rng.h"

namespace nn {
namespace {

struct GradCase {
  const char* name;
  ModelSpec spec;
  std::size_t batch;
};

class GradientCheckTest : public ::testing::TestWithParam<int> {};

std::vector<GradCase> Cases() {
  std::vector<GradCase> cases;
  cases.push_back({"mlp-1layer", MakeMlp(6, {}, 3), 4});
  cases.push_back({"mlp-2layer", MakeMlp(10, {8}, 5), 3});
  cases.push_back({"mlp-deep", MakeMlp(12, {16, 8}, 10), 2});
  cases.push_back({"lenet", MakeLeNet5Surrogate(8), 2});
  cases.push_back({"vgg", MakeVggSurrogate(8), 2});
  return cases;
}

TEST_P(GradientCheckTest, AnalyticMatchesNumeric) {
  const GradCase c = Cases()[static_cast<std::size_t>(GetParam())];
  auto model = c.spec.factory(31 + GetParam());
  util::RngFactory rngs(17);
  auto rng = rngs.Stream("gradcheck", GetParam());

  tensor::Shape batch_shape;
  batch_shape.push_back(c.batch);
  for (std::size_t d : c.spec.sample_shape) {
    batch_shape.push_back(d);
  }
  tensor::Tensor input(batch_shape);
  input.FillNormal(0.0f, 1.0f, rng);
  std::vector<std::int64_t> labels(c.batch);
  std::uniform_int_distribution<std::int64_t> pick(
      0, static_cast<std::int64_t>(c.spec.num_classes) - 1);
  for (auto& label : labels) {
    label = pick(rng);
  }

  // ε must stay small: larger perturbations flip max-pool argmaxes and ReLU
  // activation masks, making the numeric gradient measure a different
  // function than the analytic one differentiates.
  GradientCheckResult result =
      CheckGradients(*model, input, labels, 1e-3, 150);
  EXPECT_GE(result.checked + result.skipped,
            std::min<std::size_t>(50, model->NumParameters()));
  EXPECT_GT(result.checked, 10u);
  // float32 central differences: a few percent is the achievable bar.
  EXPECT_LT(result.max_relative_error, 5e-2)
      << "model " << c.name << " disagrees with finite differences";
}

INSTANTIATE_TEST_SUITE_P(Models, GradientCheckTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace nn

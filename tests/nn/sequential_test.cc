#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "nn/dense.h"
#include "nn/relu.h"
#include "util/check.h"
#include "util/rng.h"

namespace nn {
namespace {

std::unique_ptr<Sequential> SmallModel(std::uint64_t seed = 1) {
  auto rng = util::RngFactory(seed).Stream("m");
  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Dense>(4, 3, rng))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Dense>(3, 2, rng));
  return model;
}

TEST(SequentialTest, ForwardProducesLogits) {
  auto model = SmallModel();
  tensor::Tensor in({5, 4});
  tensor::Tensor out = model->Forward(in);
  EXPECT_EQ(out.dim(0), 5u);
  EXPECT_EQ(out.dim(1), 2u);
}

TEST(SequentialTest, NumParametersCountsAllLayers) {
  auto model = SmallModel();
  EXPECT_EQ(model->NumParameters(), 4u * 3 + 3 + 3 * 2 + 2);
  EXPECT_EQ(model->NumLayers(), 3u);
}

TEST(SequentialTest, FlatParamsRoundTrip) {
  auto model = SmallModel(1);
  std::vector<float> flat = model->GetFlatParams();
  ASSERT_EQ(flat.size(), model->NumParameters());
  for (auto& v : flat) {
    v += 0.25f;
  }
  model->SetFlatParams(flat);
  std::vector<float> back = model->GetFlatParams();
  EXPECT_EQ(back, flat);
}

TEST(SequentialTest, SetFlatParamsSizeMismatchThrows) {
  auto model = SmallModel();
  std::vector<float> wrong(model->NumParameters() + 1, 0.0f);
  EXPECT_THROW(model->SetFlatParams(wrong), util::CheckError);
}

TEST(SequentialTest, SameSeedSameInitialParams) {
  auto a = SmallModel(42);
  auto b = SmallModel(42);
  EXPECT_EQ(a->GetFlatParams(), b->GetFlatParams());
}

TEST(SequentialTest, TransferringFlatParamsAlignsModels) {
  auto a = SmallModel(1);
  auto b = SmallModel(2);
  b->SetFlatParams(a->GetFlatParams());
  tensor::Tensor in({1, 4}, {1.0f, -1.0f, 0.5f, 2.0f});
  tensor::Tensor out_a = a->Forward(in);
  tensor::Tensor out_b = b->Forward(in);
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
  }
}

TEST(SequentialTest, ZeroGradsClearsAllAccumulators) {
  auto model = SmallModel();
  tensor::Tensor in({2, 4});
  in.Fill(1.0f);
  tensor::Tensor out = model->Forward(in);
  tensor::Tensor grad(out.shape());
  grad.Fill(1.0f);
  model->Backward(grad);
  bool any_nonzero = false;
  for (float g : model->GetFlatGrads()) {
    any_nonzero |= (g != 0.0f);
  }
  EXPECT_TRUE(any_nonzero);
  model->ZeroGrads();
  for (float g : model->GetFlatGrads()) {
    EXPECT_FLOAT_EQ(g, 0.0f);
  }
}

TEST(SequentialTest, EmptyModelForwardThrows) {
  Sequential model;
  tensor::Tensor in({1, 1});
  EXPECT_THROW(model.Forward(in), util::CheckError);
}

TEST(SequentialTest, AddNullLayerThrows) {
  Sequential model;
  EXPECT_THROW(model.Add(nullptr), util::CheckError);
}

}  // namespace
}  // namespace nn

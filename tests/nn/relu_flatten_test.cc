#include <gtest/gtest.h>

#include "nn/flatten.h"
#include "nn/relu.h"

namespace nn {
namespace {

TEST(ReLUTest, ClampsNegativesToZero) {
  ReLU relu;
  tensor::Tensor in({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  tensor::Tensor out = relu.Forward(in);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  tensor::Tensor in({1, 3}, {-1.0f, 0.5f, 0.0f});
  relu.Forward(in);
  tensor::Tensor grad_out({1, 3}, {10.0f, 10.0f, 10.0f});
  tensor::Tensor grad_in = relu.Backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 10.0f);
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);  // gradient at exactly 0 is 0
}

TEST(ReLUTest, HasNoParameters) {
  ReLU relu;
  EXPECT_TRUE(relu.Params().empty());
  EXPECT_TRUE(relu.Grads().empty());
}

TEST(FlattenTest, CollapsesTrailingDims) {
  Flatten flatten;
  tensor::Tensor in({2, 3, 4, 4});
  tensor::Tensor out = flatten.Forward(in);
  EXPECT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 48u);
}

TEST(FlattenTest, BackwardRestoresShape) {
  Flatten flatten;
  tensor::Tensor in({2, 3, 2, 2});
  flatten.Forward(in);
  tensor::Tensor grad_out({2, 12});
  tensor::Tensor grad_in = flatten.Backward(grad_out);
  EXPECT_EQ(grad_in.shape(), in.shape());
}

TEST(FlattenTest, DataOrderPreserved) {
  Flatten flatten;
  tensor::Tensor in({1, 2, 1, 2}, {1, 2, 3, 4});
  tensor::Tensor out = flatten.Forward(in);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(out[i], static_cast<float>(i + 1));
  }
}

}  // namespace
}  // namespace nn

#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <tuple>

#include "nn/models.h"
#include "util/check.h"

namespace nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  // Unique per test: ctest runs each case as its own process in parallel,
  // so a shared fixed name races between cases.
  std::string path_ = ::testing::TempDir() +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      "_params_test.afpm";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, RoundTripsExactly) {
  std::vector<float> params{1.5f, -2.25f, 0.0f, 3.14159f};
  SaveFlatParams(path_, params);
  EXPECT_EQ(LoadFlatParams(path_), params);
}

TEST_F(SerializeTest, EmptyVectorRoundTrips) {
  SaveFlatParams(path_, {});
  EXPECT_TRUE(LoadFlatParams(path_).empty());
}

TEST_F(SerializeTest, RealModelRoundTrips) {
  auto model = MakeLeNet5Surrogate(8).factory(3);
  std::vector<float> params = model->GetFlatParams();
  SaveFlatParams(path_, params);
  std::vector<float> loaded = LoadFlatParams(path_);
  ASSERT_EQ(loaded.size(), params.size());
  model->SetFlatParams(loaded);  // must be accepted verbatim
  EXPECT_EQ(model->GetFlatParams(), params);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(LoadFlatParams("/nonexistent/params.afpm"), util::CheckError);
}

TEST_F(SerializeTest, BadMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTMAGIC-and-some-garbage";
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);
}

TEST_F(SerializeTest, TruncatedPayloadThrows) {
  SaveFlatParams(path_, std::vector<float>(100, 1.0f));
  // Chop the file mid-payload.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);
}

TEST_F(SerializeTest, TruncatedHeaderThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "AFPM";  // magic only, no version/count
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);
}

TEST_F(SerializeTest, HugeDeclaredCountThrowsInsteadOfAllocating) {
  // A corrupt (or hostile) count field must be rejected by comparing it
  // against the bytes actually present — not by attempting the allocation.
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, std::vector<float>{1.0f, 2.0f});
  const std::uint64_t absurd = ~std::uint64_t{0} / sizeof(float);
  std::memcpy(bytes.data() + 8, &absurd, sizeof(absurd));  // count field
  std::ofstream out(path_, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);

  std::size_t offset = 0;
  EXPECT_THROW(ParseFlatParams(bytes, &offset), util::CheckError);
}

TEST_F(SerializeTest, BufferFormRoundTripsAndTracksOffset) {
  const std::vector<float> first{1.0f, -2.5f};
  const std::vector<float> second{3.0f};
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, first);
  AppendFlatParams(bytes, second);
  EXPECT_EQ(bytes.size(),
            FlatParamsWireSize(first.size()) + FlatParamsWireSize(second.size()));

  std::size_t offset = 0;
  EXPECT_EQ(ParseFlatParams(bytes, &offset), first);
  EXPECT_EQ(offset, FlatParamsWireSize(first.size()));
  EXPECT_EQ(ParseFlatParams(bytes, &offset), second);
  EXPECT_EQ(offset, bytes.size());
}

// Returns e.what() of the util::CheckError `fn` must throw.
template <typename Fn>
std::string ThrownMessage(Fn&& fn) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::CheckError";
  return {};
}

TEST_F(SerializeTest, TruncatedHeaderErrorNamesByteOffset) {
  const std::vector<std::uint8_t> bytes{'A', 'F', 'P', 'M', 1};
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { std::ignore = ParseFlatParams(bytes, &offset); });
  EXPECT_NE(message.find("truncated AFPM header at byte offset 0"),
            std::string::npos)
      << message;
}

TEST_F(SerializeTest, OversizedDeclaredCountErrorNamesByteOffset) {
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, std::vector<float>{1.0f, 2.0f});
  const std::uint64_t absurd = 1u << 20;
  std::memcpy(bytes.data() + 8, &absurd, sizeof(absurd));  // count field
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { std::ignore = ParseFlatParams(bytes, &offset); });
  EXPECT_NE(message.find("truncated AFPM payload at byte offset 16"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("1048576 floats"), std::string::npos) << message;
}

TEST_F(SerializeTest, ErrorOffsetIsAbsoluteForSecondBlock) {
  // Corruption in the second of two back-to-back blocks must be reported at
  // the second block's absolute offset, not at zero.
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, std::vector<float>{1.0f, 2.0f, 3.0f});
  const std::size_t second_at = bytes.size();
  AppendFlatParams(bytes, std::vector<float>{4.0f});
  bytes[second_at] = 'X';  // second block's magic
  std::size_t offset = 0;
  std::ignore = ParseFlatParams(bytes, &offset);  // first block parses fine
  const std::string message =
      ThrownMessage([&] { std::ignore = ParseFlatParams(bytes, &offset); });
  EXPECT_NE(message.find("bad AFPM magic at byte offset " +
                         std::to_string(second_at)),
            std::string::npos)
      << message;
}

TEST_F(SerializeTest, TrailingGarbageAfterFileBlockThrows) {
  SaveFlatParams(path_, std::vector<float>{1.0f, 2.0f});
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  const std::string message =
      ThrownMessage([&] { std::ignore = LoadFlatParams(path_); });
  EXPECT_NE(message.find("trailing garbage after AFPM block at byte offset"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("4 extra bytes"), std::string::npos) << message;
}

TEST_F(SerializeTest, BufferFormCorruptMagicThrows) {
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, std::vector<float>{1.0f});
  bytes[0] = 'X';
  std::size_t offset = 0;
  EXPECT_THROW(ParseFlatParams(bytes, &offset), util::CheckError);
}

TEST_F(SerializeTest, ViewFormAliasesBufferAndTracksOffset) {
  const std::vector<float> first{1.0f, -2.5f};
  const std::vector<float> second{3.0f, 4.0f, 5.0f};
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, first);
  AppendFlatParams(bytes, second);

  std::size_t offset = 0;
  auto view = TryParseFlatParamsView(bytes, &offset);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(std::vector<float>(view->begin(), view->end()), first);
  EXPECT_EQ(offset, FlatParamsWireSize(first.size()));
  // Zero copy: the span points into `bytes`, not at a fresh allocation.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view->data()), bytes.data());
  EXPECT_LE(reinterpret_cast<const std::uint8_t*>(view->data() + view->size()),
            bytes.data() + bytes.size());

  auto view2 = TryParseFlatParamsView(bytes, &offset);
  ASSERT_TRUE(view2.has_value());
  EXPECT_EQ(std::vector<float>(view2->begin(), view2->end()), second);
  EXPECT_EQ(offset, bytes.size());
}

TEST_F(SerializeTest, ViewFormDeclinesMisalignedPayloadWithoutAdvancing) {
  // A block whose float payload lands off 4-byte alignment must return
  // nullopt with the offset untouched, so the caller can fall back to the
  // copying parser from the same position.
  std::vector<std::uint8_t> bytes(1, 0);  // 1 pad byte misaligns everything
  AppendFlatParams(bytes, std::vector<float>{1.0f, 2.0f});
  std::size_t offset = 1;
  const auto view = TryParseFlatParamsView(bytes, &offset);
  EXPECT_FALSE(view.has_value());
  EXPECT_EQ(offset, 1u);  // untouched
  // The copying parser accepts the identical block from the same offset.
  EXPECT_EQ(ParseFlatParams(bytes, &offset), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(offset, bytes.size());
}

TEST_F(SerializeTest, ViewFormValidatesLikeCopyingParser) {
  // Malformed input throws exactly as ParseFlatParams does — the view form
  // must not trade validation for speed.
  std::vector<std::uint8_t> bytes;
  AppendFlatParams(bytes, std::vector<float>{1.0f, 2.0f});

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  std::size_t offset = 0;
  EXPECT_THROW(std::ignore = TryParseFlatParamsView(bad_magic, &offset),
               util::CheckError);

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  offset = 0;
  EXPECT_THROW(std::ignore = TryParseFlatParamsView(truncated, &offset),
               util::CheckError);

  std::vector<std::uint8_t> absurd_count = bytes;
  const std::uint64_t absurd = ~std::uint64_t{0} / sizeof(float);
  std::memcpy(absurd_count.data() + 8, &absurd, sizeof(absurd));
  offset = 0;
  EXPECT_THROW(std::ignore = TryParseFlatParamsView(absurd_count, &offset),
               util::CheckError);
}

TEST_F(SerializeTest, FileAndWireBytesAreIdentical) {
  const std::vector<float> params{0.5f, 1.5f, -3.0f};
  SaveFlatParams(path_, params);
  std::ifstream in(path_, std::ios::binary);
  std::string file_bytes((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<std::uint8_t> wire_bytes;
  AppendFlatParams(wire_bytes, params);
  ASSERT_EQ(file_bytes.size(), wire_bytes.size());
  EXPECT_EQ(std::memcmp(file_bytes.data(), wire_bytes.data(),
                        wire_bytes.size()), 0);
}

}  // namespace
}  // namespace nn

#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/models.h"
#include "util/check.h"

namespace nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "params_test.afpm";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, RoundTripsExactly) {
  std::vector<float> params{1.5f, -2.25f, 0.0f, 3.14159f};
  SaveFlatParams(path_, params);
  EXPECT_EQ(LoadFlatParams(path_), params);
}

TEST_F(SerializeTest, EmptyVectorRoundTrips) {
  SaveFlatParams(path_, {});
  EXPECT_TRUE(LoadFlatParams(path_).empty());
}

TEST_F(SerializeTest, RealModelRoundTrips) {
  auto model = MakeLeNet5Surrogate(8).factory(3);
  std::vector<float> params = model->GetFlatParams();
  SaveFlatParams(path_, params);
  std::vector<float> loaded = LoadFlatParams(path_);
  ASSERT_EQ(loaded.size(), params.size());
  model->SetFlatParams(loaded);  // must be accepted verbatim
  EXPECT_EQ(model->GetFlatParams(), params);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(LoadFlatParams("/nonexistent/params.afpm"), util::CheckError);
}

TEST_F(SerializeTest, BadMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTMAGIC-and-some-garbage";
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);
}

TEST_F(SerializeTest, TruncatedPayloadThrows) {
  SaveFlatParams(path_, std::vector<float>(100, 1.0f));
  // Chop the file mid-payload.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(LoadFlatParams(path_), util::CheckError);
}

}  // namespace
}  // namespace nn

#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  tensor::Tensor logits({1, 4});
  std::vector<std::int64_t> labels{2};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-9);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionHasLowLoss) {
  tensor::Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<std::int64_t> labels{0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 1u);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongPredictionHasHighLoss) {
  tensor::Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<std::int64_t> labels{1};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_GT(r.loss, 5.0);
  EXPECT_EQ(r.correct, 0u);
}

TEST(SoftmaxCrossEntropyTest, GradientSumsToZeroPerRow) {
  tensor::Tensor logits({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1});
  std::vector<std::int64_t> labels{0, 4};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  for (std::size_t row = 0; row < 2; ++row) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      sum += r.grad_logits.At(row, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesSoftmaxMinusOneHot) {
  tensor::Tensor logits({1, 2}, {0.0f, 0.0f});
  std::vector<std::int64_t> labels{0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_NEAR(r.grad_logits[0], -0.5, 1e-6);  // (0.5 - 1) / batch 1
  EXPECT_NEAR(r.grad_logits[1], 0.5, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientScaledByBatchSize) {
  tensor::Tensor logits({2, 2});
  std::vector<std::int64_t> labels{0, 0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_NEAR(r.grad_logits[0], -0.25, 1e-6);  // (0.5 - 1) / 2
}

TEST(SoftmaxCrossEntropyTest, LargeLogitsAreStable) {
  tensor::Tensor logits({1, 3}, {1000.0f, 999.0f, 0.0f});
  std::vector<std::int64_t> labels{0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_LT(r.loss, 1.0);
}

TEST(SoftmaxCrossEntropyTest, InvalidLabelThrows) {
  tensor::Tensor logits({1, 3});
  std::vector<std::int64_t> bad{3};
  EXPECT_THROW(SoftmaxCrossEntropy(logits, bad), util::CheckError);
  std::vector<std::int64_t> negative{-1};
  EXPECT_THROW(SoftmaxCrossEntropy(logits, negative), util::CheckError);
}

TEST(CountCorrectTest, CountsArgmaxMatches) {
  tensor::Tensor logits({3, 2}, {1.0f, 0.0f, 0.0f, 1.0f, 2.0f, 1.0f});
  std::vector<std::int64_t> labels{0, 1, 1};
  EXPECT_EQ(CountCorrect(logits, labels), 2u);
}

}  // namespace
}  // namespace nn

#include "nn/dense.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace nn {
namespace {

std::mt19937_64 Rng(std::uint64_t seed = 1) {
  return util::RngFactory(seed).Stream("test");
}

TEST(DenseTest, OutputShape) {
  auto rng = Rng();
  Dense layer(4, 3, rng);
  tensor::Tensor in({2, 4});
  tensor::Tensor out = layer.Forward(in);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 3u);
}

TEST(DenseTest, ZeroWeightsGiveBiasOutput) {
  auto rng = Rng();
  Dense layer(2, 2, rng);
  // Overwrite params: W = 0, b = {1, 2}.
  layer.Params()[0]->Fill(0.0f);
  (*layer.Params()[1])[0] = 1.0f;
  (*layer.Params()[1])[1] = 2.0f;
  tensor::Tensor in({1, 2}, {5.0f, 7.0f});
  tensor::Tensor out = layer.Forward(in);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(DenseTest, KnownLinearMap) {
  auto rng = Rng();
  Dense layer(2, 1, rng);
  // W = [[2, 3]] (out×in), b = [1]: y = 2x0 + 3x1 + 1.
  (*layer.Params()[0])[0] = 2.0f;
  (*layer.Params()[0])[1] = 3.0f;
  (*layer.Params()[1])[0] = 1.0f;
  tensor::Tensor in({1, 2}, {10.0f, 100.0f});
  EXPECT_FLOAT_EQ(layer.Forward(in)[0], 321.0f);
}

TEST(DenseTest, BackwardShapesAndInputGradient) {
  auto rng = Rng();
  Dense layer(2, 2, rng);
  (*layer.Params()[0]) = tensor::Tensor({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  layer.Params()[1]->Fill(0.0f);
  tensor::Tensor in({1, 2}, {1.0f, 1.0f});
  layer.Forward(in);
  tensor::Tensor grad_out({1, 2}, {1.0f, 0.0f});
  tensor::Tensor grad_in = layer.Backward(grad_out);
  // dX = grad_out * W → row 0 of W.
  EXPECT_FLOAT_EQ(grad_in[0], 1.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 2.0f);
}

TEST(DenseTest, GradientsAccumulateAcrossBackwardCalls) {
  auto rng = Rng();
  Dense layer(2, 1, rng);
  tensor::Tensor in({1, 2}, {1.0f, 2.0f});
  tensor::Tensor grad_out({1, 1}, {1.0f});
  layer.Forward(in);
  layer.Backward(grad_out);
  layer.Forward(in);
  layer.Backward(grad_out);
  // dW = in accumulated twice.
  EXPECT_FLOAT_EQ((*layer.Grads()[0])[0], 2.0f);
  EXPECT_FLOAT_EQ((*layer.Grads()[0])[1], 4.0f);
  EXPECT_FLOAT_EQ((*layer.Grads()[1])[0], 2.0f);
  layer.ZeroGrads();
  EXPECT_FLOAT_EQ((*layer.Grads()[0])[0], 0.0f);
}

TEST(DenseTest, InitializationIsBoundedAndSeedStable) {
  auto rng1 = Rng(9);
  auto rng2 = Rng(9);
  Dense a(16, 8, rng1);
  Dense b(16, 8, rng2);
  const auto& wa = a.Params()[0]->vec();
  const auto& wb = b.Params()[0]->vec();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_FLOAT_EQ(wa[i], wb[i]);
    EXPECT_LE(std::abs(wa[i]), std::sqrt(6.0f / 16.0f) + 1e-6f);
  }
  // Bias starts at zero.
  for (float v : a.Params()[1]->vec()) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(DenseTest, WrongInputWidthThrows) {
  auto rng = Rng();
  Dense layer(4, 3, rng);
  tensor::Tensor in({2, 5});
  EXPECT_THROW(layer.Forward(in), util::CheckError);
}

}  // namespace
}  // namespace nn

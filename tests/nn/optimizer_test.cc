#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nn {
namespace {

// One scalar parameter/gradient pair.
struct Scalar {
  tensor::Tensor param{tensor::Shape{1}};
  tensor::Tensor grad{tensor::Shape{1}};
  std::vector<tensor::Tensor*> params() { return {&param}; }
  std::vector<tensor::Tensor*> grads() { return {&grad}; }
};

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Scalar s;
  s.param[0] = 1.0f;
  s.grad[0] = 2.0f;
  SgdOptimizer sgd(0.1, 0.0);
  sgd.Step(s.params(), s.grads());
  EXPECT_NEAR(s.param[0], 0.8f, 1e-6);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  Scalar s;
  s.grad[0] = 1.0f;
  SgdOptimizer sgd(0.1, 0.9);
  sgd.Step(s.params(), s.grads());  // v=1, p=-0.1
  EXPECT_NEAR(s.param[0], -0.1f, 1e-6);
  sgd.Step(s.params(), s.grads());  // v=1.9, p=-0.29
  EXPECT_NEAR(s.param[0], -0.29f, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksParameter) {
  Scalar s;
  s.param[0] = 1.0f;
  s.grad[0] = 0.0f;
  SgdOptimizer sgd(0.1, 0.0, 0.5);
  sgd.Step(s.params(), s.grads());
  EXPECT_NEAR(s.param[0], 0.95f, 1e-6);  // grad_eff = 0.5
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimise f(x) = (x-3)²; grad = 2(x-3).
  Scalar s;
  s.param[0] = 0.0f;
  SgdOptimizer sgd(0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    s.grad[0] = 2.0f * (s.param[0] - 3.0f);
    sgd.Step(s.params(), s.grads());
  }
  EXPECT_NEAR(s.param[0], 3.0f, 1e-3);
}

TEST(AdamTest, FirstStepIsScaledLearningRate) {
  Scalar s;
  s.grad[0] = 123.0f;  // Adam's bias-corrected first step ≈ lr, sign(grad)
  AdamOptimizer adam(0.01);
  adam.Step(s.params(), s.grads());
  EXPECT_NEAR(s.param[0], -0.01f, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Scalar s;
  s.param[0] = -5.0f;
  AdamOptimizer adam(0.1);
  for (int i = 0; i < 500; ++i) {
    s.grad[0] = 2.0f * (s.param[0] - 1.0f);
    adam.Step(s.params(), s.grads());
  }
  EXPECT_NEAR(s.param[0], 1.0f, 1e-2);
}

TEST(AdamTest, HandlesZeroGradient) {
  Scalar s;
  s.param[0] = 2.0f;
  AdamOptimizer adam(0.1);
  adam.Step(s.params(), s.grads());
  EXPECT_NEAR(s.param[0], 2.0f, 1e-6);
}

TEST(MakeOptimizerTest, BuildsConfiguredKind) {
  OptimizerConfig sgd_config{OptimizerKind::kSgd, 0.01, 0.9, 0.0};
  OptimizerConfig adam_config{OptimizerKind::kAdam, 0.001, 0.0, 0.0};
  EXPECT_EQ(MakeOptimizer(sgd_config)->Name(), "SGD");
  EXPECT_EQ(MakeOptimizer(adam_config)->Name(), "Adam");
}

TEST(OptimizerTest, MultipleParamsSteppedIndependently) {
  Scalar a, b;
  a.grad[0] = 1.0f;
  b.grad[0] = -1.0f;
  SgdOptimizer sgd(0.5, 0.0);
  std::vector<tensor::Tensor*> params{&a.param, &b.param};
  std::vector<tensor::Tensor*> grads{&a.grad, &b.grad};
  sgd.Step(params, grads);
  EXPECT_NEAR(a.param[0], -0.5f, 1e-6);
  EXPECT_NEAR(b.param[0], 0.5f, 1e-6);
}

}  // namespace
}  // namespace nn

#include "nn/maxpool2d.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nn {
namespace {

TEST(MaxPool2dTest, SelectsWindowMaxima) {
  MaxPool2d pool(2);
  tensor::Tensor in({1, 1, 2, 4}, {1, 5, 2, 0,
                                   3, 4, 8, 7});
  tensor::Tensor out = pool.Forward(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

TEST(MaxPool2dTest, OutputShapeHalves) {
  MaxPool2d pool(2);
  tensor::Tensor in({3, 2, 8, 8});
  tensor::Tensor out = pool.Forward(in);
  EXPECT_EQ(out.dim(0), 3u);
  EXPECT_EQ(out.dim(1), 2u);
  EXPECT_EQ(out.dim(2), 4u);
  EXPECT_EQ(out.dim(3), 4u);
}

TEST(MaxPool2dTest, BackwardRoutesGradientToArgmax) {
  MaxPool2d pool(2);
  tensor::Tensor in({1, 1, 2, 2}, {1, 9, 3, 2});
  pool.Forward(in);
  tensor::Tensor grad_out({1, 1, 1, 1}, {2.5f});
  tensor::Tensor grad_in = pool.Backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 2.5f);  // the max cell
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[3], 0.0f);
}

TEST(MaxPool2dTest, TiesGoToFirstScanned) {
  MaxPool2d pool(2);
  tensor::Tensor in({1, 1, 2, 2}, {4, 4, 4, 4});
  pool.Forward(in);
  tensor::Tensor grad_out({1, 1, 1, 1}, {1.0f});
  tensor::Tensor grad_in = pool.Backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in[0], 1.0f);
  EXPECT_FLOAT_EQ(grad_in[1] + grad_in[2] + grad_in[3], 0.0f);
}

TEST(MaxPool2dTest, NonDivisibleInputThrows) {
  MaxPool2d pool(2);
  tensor::Tensor in({1, 1, 3, 4});
  EXPECT_THROW(pool.Forward(in), util::CheckError);
}

TEST(MaxPool2dTest, NegativeInputsHandled) {
  MaxPool2d pool(2);
  tensor::Tensor in({1, 1, 2, 2}, {-5, -1, -3, -2});
  tensor::Tensor out = pool.Forward(in);
  EXPECT_FLOAT_EQ(out[0], -1.0f);
}

}  // namespace
}  // namespace nn

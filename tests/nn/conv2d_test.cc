#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nn {
namespace {

std::mt19937_64 Rng(std::uint64_t seed = 1) {
  return util::RngFactory(seed).Stream("test");
}

TEST(Conv2dTest, OutputShapeWithPadding) {
  auto rng = Rng();
  Conv2d conv(1, 4, 3, 1, rng);
  tensor::Tensor in({2, 1, 8, 8});
  tensor::Tensor out = conv.Forward(in);
  EXPECT_EQ(out.dim(0), 2u);
  EXPECT_EQ(out.dim(1), 4u);
  EXPECT_EQ(out.dim(2), 8u);  // same padding
  EXPECT_EQ(out.dim(3), 8u);
}

TEST(Conv2dTest, OutputShapeWithoutPadding) {
  auto rng = Rng();
  Conv2d conv(1, 2, 3, 0, rng);
  tensor::Tensor in({1, 1, 5, 5});
  tensor::Tensor out = conv.Forward(in);
  EXPECT_EQ(out.dim(2), 3u);
  EXPECT_EQ(out.dim(3), 3u);
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  auto rng = Rng();
  Conv2d conv(1, 1, 3, 1, rng);
  // Kernel = delta at centre, bias = 0.
  conv.Params()[0]->Fill(0.0f);
  (*conv.Params()[0])[4] = 1.0f;  // centre of 3×3
  conv.Params()[1]->Fill(0.0f);
  tensor::Tensor in({1, 1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i);
  }
  tensor::Tensor out = conv.Forward(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(Conv2dTest, AveragingKernelComputesLocalMean) {
  auto rng = Rng();
  Conv2d conv(1, 1, 3, 0, rng);
  conv.Params()[0]->Fill(1.0f / 9.0f);
  conv.Params()[1]->Fill(0.0f);
  tensor::Tensor in({1, 1, 3, 3});
  in.Fill(2.0f);
  tensor::Tensor out = conv.Forward(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 2.0f, 1e-6);
}

TEST(Conv2dTest, BiasIsAddedPerChannel) {
  auto rng = Rng();
  Conv2d conv(1, 2, 1, 0, rng);
  conv.Params()[0]->Fill(0.0f);
  (*conv.Params()[1])[0] = 1.5f;
  (*conv.Params()[1])[1] = -2.5f;
  tensor::Tensor in({1, 1, 2, 2});
  tensor::Tensor out = conv.Forward(in);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.At(0, 1, 1, 1), -2.5f);
}

TEST(Conv2dTest, BackwardReturnsInputShapedGradient) {
  auto rng = Rng();
  Conv2d conv(2, 3, 3, 1, rng);
  tensor::Tensor in({2, 2, 4, 4});
  in.FillNormal(0.0f, 1.0f, rng);
  tensor::Tensor out = conv.Forward(in);
  tensor::Tensor grad_out(out.shape());
  grad_out.Fill(1.0f);
  tensor::Tensor grad_in = conv.Backward(grad_out);
  EXPECT_EQ(grad_in.shape(), in.shape());
}

TEST(Conv2dTest, BiasGradientIsSumOfOutputGradients) {
  auto rng = Rng();
  Conv2d conv(1, 1, 3, 1, rng);
  tensor::Tensor in({1, 1, 4, 4});
  conv.Forward(in);
  tensor::Tensor grad_out({1, 1, 4, 4});
  grad_out.Fill(0.5f);
  conv.Backward(grad_out);
  EXPECT_NEAR((*conv.Grads()[1])[0], 8.0f, 1e-5);  // 16 cells × 0.5
}

TEST(Conv2dTest, OneByOneConvEqualsPerPixelDense) {
  // A 1×1 convolution is a Dense layer applied at every pixel; verify the
  // two implementations agree on shared weights.
  auto rng = Rng(5);
  Conv2d conv(3, 2, 1, 0, rng);
  tensor::Tensor in({1, 3, 2, 2});
  in.FillNormal(0.0f, 1.0f, rng);
  tensor::Tensor out = conv.Forward(in);
  const auto& w = conv.Params()[0]->vec();   // (2, 3, 1, 1)
  const auto& b = conv.Params()[1]->vec();   // (2)
  for (std::size_t oc = 0; oc < 2; ++oc) {
    for (std::size_t px = 0; px < 4; ++px) {
      float expected = b[oc];
      for (std::size_t ic = 0; ic < 3; ++ic) {
        expected += w[oc * 3 + ic] * in[ic * 4 + px];
      }
      EXPECT_NEAR(out[oc * 4 + px], expected, 1e-5);
    }
  }
}

TEST(Conv2dTest, TranslationEquivariance) {
  // Shifting the input by one pixel shifts the (interior of the) output by
  // the same amount — the defining property of a convolution.
  auto rng = Rng(6);
  Conv2d conv(1, 1, 3, 1, rng);
  tensor::Tensor a({1, 1, 6, 6});
  a.FillNormal(0.0f, 1.0f, rng);
  tensor::Tensor b({1, 1, 6, 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j + 1 < 6; ++j) {
      b.At(0, 0, i, j + 1) = a.At(0, 0, i, j);
    }
  }
  tensor::Tensor oa = conv.Forward(a);
  tensor::Tensor ob = conv.Forward(b);
  for (std::size_t i = 1; i + 1 < 6; ++i) {
    for (std::size_t j = 1; j + 2 < 6; ++j) {
      EXPECT_NEAR(ob.At(0, 0, i, j + 1), oa.At(0, 0, i, j), 1e-5);
    }
  }
}

}  // namespace
}  // namespace nn

#include "nn/models.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nn {
namespace {

TEST(ModelsTest, LeNetSurrogateShapes) {
  ModelSpec spec = MakeLeNet5Surrogate(12);
  EXPECT_EQ(spec.sample_shape, (tensor::Shape{1, 12, 12}));
  auto model = spec.factory(1);
  tensor::Tensor in({3, 1, 12, 12});
  tensor::Tensor out = model->Forward(in);
  EXPECT_EQ(out.dim(0), 3u);
  EXPECT_EQ(out.dim(1), 10u);
}

TEST(ModelsTest, VggSurrogateShapes) {
  ModelSpec spec = MakeVggSurrogate(8);
  EXPECT_EQ(spec.sample_shape, (tensor::Shape{3, 8, 8}));
  auto model = spec.factory(1);
  tensor::Tensor in({2, 3, 8, 8});
  tensor::Tensor out = model->Forward(in);
  EXPECT_EQ(out.dim(1), 10u);
}

TEST(ModelsTest, MlpShapes) {
  ModelSpec spec = MakeMlp(20, {16, 8}, 4);
  auto model = spec.factory(1);
  tensor::Tensor in({5, 20});
  tensor::Tensor out = model->Forward(in);
  EXPECT_EQ(out.dim(1), 4u);
}

TEST(ModelsTest, FactoryIsSeedDeterministic) {
  ModelSpec spec = MakeLeNet5Surrogate(8);
  auto a = spec.factory(77);
  auto b = spec.factory(77);
  auto c = spec.factory(78);
  EXPECT_EQ(a->GetFlatParams(), b->GetFlatParams());
  EXPECT_NE(a->GetFlatParams(), c->GetFlatParams());
}

TEST(ModelsTest, SideMustBeDivisibleByFour) {
  EXPECT_THROW(MakeLeNet5Surrogate(10), util::CheckError);
  EXPECT_THROW(MakeVggSurrogate(9), util::CheckError);
}

TEST(ModelsTest, ParameterCountsAreModest) {
  // Guard against accidental blow-ups that would wreck bench runtimes.
  auto lenet = MakeLeNet5Surrogate(12).factory(1);
  auto vgg = MakeVggSurrogate(8).factory(1);
  EXPECT_LT(lenet->NumParameters(), 20000u);
  EXPECT_LT(vgg->NumParameters(), 20000u);
  EXPECT_GT(lenet->NumParameters(), 1000u);
  EXPECT_GT(vgg->NumParameters(), 1000u);
}

TEST(ModelsTest, MlpZeroInputDimThrows) {
  EXPECT_THROW(MakeMlp(0, {4}), util::CheckError);
}

}  // namespace
}  // namespace nn

// Tests for the virtual-client pool (fl/client_pool.h): the engine's drain
// semantics, the spec's default resolution, and — the PR's determinism
// gate — a 5k-virtual-client run against a real net::Server that must be
// bit-identical whether one worker thread or eight drain the job queue.
#include "fl/client_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "util/rng.h"

namespace fl {
namespace {

TEST(ClientPoolSpecTest, ConnectionDefaultsScaleWithPopulation) {
  // 0 → one connection per 64 clients, clamped to [1, 256].
  EXPECT_EQ(ResolvePoolConnections(0, 1), 1);
  EXPECT_EQ(ResolvePoolConnections(0, 64), 1);
  EXPECT_EQ(ResolvePoolConnections(0, 65), 2);
  EXPECT_EQ(ResolvePoolConnections(0, 5000), 79);
  EXPECT_EQ(ResolvePoolConnections(0, 100000), 256);   // clamp high
  EXPECT_EQ(ResolvePoolConnections(0, 1000000), 256);  // 1M stays at 256
  // An explicit request wins but never exceeds the population.
  EXPECT_EQ(ResolvePoolConnections(8, 5000), 8);
  EXPECT_EQ(ResolvePoolConnections(64, 10), 10);
}

TEST(ClientPoolSpecTest, WorkerDefaultsFollowHardware) {
  EXPECT_EQ(ResolvePoolWorkers(3), 3);
  const int resolved = ResolvePoolWorkers(0);
  EXPECT_GE(resolved, 1);
}

TEST(VirtualClientEngineTest, DrainWaitsForQueuedAndInFlightTasks) {
  VirtualClientEngine engine(4);
  EXPECT_EQ(engine.worker_count(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    engine.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  }
  engine.Drain();
  EXPECT_EQ(done.load(), 64);

  // Drain is reusable: a second batch after the first drain still runs.
  for (int i = 0; i < 16; ++i) {
    engine.Submit([&done] { done.fetch_add(1); });
  }
  engine.Drain();
  EXPECT_EQ(done.load(), 80);
}

TEST(VirtualClientEngineTest, TasksSubmittedFromWorkersStillDrain) {
  // A task may enqueue follow-up work (the pump does this when a broadcast
  // arrives while workers run); Drain must cover the transitive closure.
  VirtualClientEngine engine(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    engine.Submit([&engine, &done] {
      engine.Submit([&done] { done.fetch_add(1); });
      done.fetch_add(1);
    });
  }
  engine.Drain();
  EXPECT_EQ(done.load(), 16);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: a 5k-client virtual pool against a real server.
// ---------------------------------------------------------------------------

// Drives `kClients` virtual clients through `waves` broadcast waves (every
// client gets one job per wave) and returns the per-job deltas, indexed by
// job_index. The training function mirrors the production driver: a delta
// drawn from the (client_id, job_index)-keyed RNG stream, so any change in
// which worker/connection handled a job would show up as a bit difference.
std::vector<std::vector<float>> RunVirtualFleet(int kClients, int waves,
                                                int connections, int workers) {
  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.io_timeout_ms = 30000;
  server_options.reactor_shards = 4;
  net::Server server(server_options);

  const std::size_t total_jobs =
      static_cast<std::size_t>(kClients) * static_cast<std::size_t>(waves);
  std::vector<std::vector<float>> results(total_jobs);
  std::atomic<std::size_t> completed{0};
  server.SetUpdateHandler([&](int client_id, net::ClientUpdateMsg msg) {
    ASSERT_LT(msg.job_index, total_jobs);
    ASSERT_EQ(static_cast<int>(msg.job_index) % kClients, client_id);
    results[msg.job_index] = msg.delta.ToVector();
    completed.fetch_add(1);
  });

  util::RngFactory rngs(/*seed=*/17);
  VirtualPoolOptions options;
  options.port = server.port();
  options.num_clients = kClients;
  options.connections = connections;
  options.workers = workers;
  options.seed = 99;
  VirtualClientPool pool(
      options,
      [&rngs](const VirtualJob& job) {
        const std::uint64_t stream =
            (static_cast<std::uint64_t>(job.client_id) << 32) | job.job_index;
        auto rng = rngs.Stream("client-train", stream);
        std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
        std::vector<float> delta(job.base.size());
        for (std::size_t i = 0; i < delta.size(); ++i) {
          delta[i] = job.base[i] + dist(rng);
        }
        return delta;
      },
      [](int client_id) {
        return static_cast<std::uint64_t>(10 + client_id % 7);
      });
  pool.Start();
  EXPECT_EQ(pool.connection_count(), connections);
  EXPECT_EQ(pool.worker_count(), workers);

  EXPECT_TRUE(server.WaitForClients(static_cast<std::size_t>(kClients), 30000))
      << "pool handshake stalled at " << server.ConnectedCount();

  const std::vector<float> base = {0.5f, -0.25f, 1.0f, 2.0f};
  for (int wave = 0; wave < waves; ++wave) {
    for (int c = 0; c < kClients; ++c) {
      net::ModelBroadcastMsg msg;
      msg.round = static_cast<std::uint64_t>(wave);
      msg.job_index =
          static_cast<std::uint64_t>(wave) * static_cast<std::uint64_t>(kClients) +
          static_cast<std::uint64_t>(c);
      msg.params = base;
      msg.client_id = c;  // mux sessions demux broadcasts by AFVC block
      EXPECT_TRUE(server.SendTo(c, net::EncodeModelBroadcast(msg)));
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    const std::size_t wave_goal =
        static_cast<std::size_t>(wave + 1) * static_cast<std::size_t>(kClients);
    while (completed.load() < wave_goal &&
           std::chrono::steady_clock::now() < deadline) {
      server.PollOnce(1);
    }
    EXPECT_EQ(completed.load(), wave_goal) << "wave " << wave << " stalled";
    if (completed.load() < wave_goal) {
      break;
    }
  }

  pool.Stop();
  return results;
}

TEST(VirtualClientPoolTest, FiveThousandClientsBitIdenticalAcrossWorkerCounts) {
  // The determinism gate: same fleet, same jobs, 1 worker vs 8 workers over
  // differing connection fan-in — every per-job delta must match bit for
  // bit, because the RNG streams are keyed by (client, job), not by which
  // thread or socket carried the work.
  const int kClients = 5000;
  const auto serial = RunVirtualFleet(kClients, /*waves=*/2,
                                      /*connections=*/16, /*workers=*/1);
  const auto parallel = RunVirtualFleet(kClients, /*waves=*/2,
                                        /*connections=*/64, /*workers=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t job = 0; job < serial.size(); ++job) {
    ASSERT_FALSE(serial[job].empty()) << "job " << job << " never completed";
    ASSERT_EQ(serial[job], parallel[job]) << "job " << job << " diverged";
  }
}

TEST(VirtualClientPoolTest, SmallPoolRoundTripsJobs) {
  // Quick smoke at toy scale so failures here localize the plumbing before
  // the 5k gate runs.
  const auto results = RunVirtualFleet(/*kClients=*/9, /*waves=*/3,
                                       /*connections=*/2, /*workers=*/2);
  ASSERT_EQ(results.size(), 27u);
  for (const auto& delta : results) {
    ASSERT_EQ(delta.size(), 4u);
  }
}

TEST(VirtualClientPoolTest, StopIsIdempotentAndStartRejectsReuse) {
  net::ServerOptions server_options;
  server_options.port = 0;
  net::Server server(server_options);

  VirtualPoolOptions options;
  options.port = server.port();
  options.num_clients = 4;
  options.connections = 1;
  options.workers = 1;
  VirtualClientPool pool(
      options, [](const VirtualJob& job) { return job.base; },
      [](int) { return std::uint64_t{1}; });
  pool.Start();
  EXPECT_TRUE(server.WaitForClients(4, 10000));
  pool.Stop();
  pool.Stop();  // second stop is a no-op, not a crash
}

}  // namespace
}  // namespace fl

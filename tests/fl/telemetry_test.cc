// Structured run telemetry (fl/telemetry.h) plus the observability smoke
// test ISSUE 1 mandates: a short instrumented run must produce the expected
// spans and metrics while leaving SimulationResult bit-identical.
#include "fl/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fl/experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fl {
namespace {

SimulationResult MakeFakeResult() {
  SimulationResult result;
  for (std::size_t i = 0; i < 3; ++i) {
    RoundRecord r;
    r.round = i;
    r.sim_time = 1.5 * static_cast<double>(i + 1);
    r.test_accuracy = (i == 1) ? -1.0 : 0.5 + 0.1 * static_cast<double>(i);
    r.buffered = 6;
    r.accepted = 4;
    r.rejected = 1;
    r.deferred = 1;
    r.dropped_stale = i;
    r.mean_staleness = 0.5;
    r.defense_micros = static_cast<long long>(100 * (i + 1));
    r.staleness_histogram[0] = 4;
    r.staleness_histogram[3] = 2;
    r.confusion.true_positive = 1;
    r.confusion.true_negative = 5;
    result.rounds.push_back(r);
  }
  FinalizeResult(result);
  return result;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryTest, JsonlHasOneValidLinePerRound) {
  const SimulationResult result = MakeFakeResult();
  const std::string path = ::testing::TempDir() + "rounds_test.jsonl";
  WriteRoundsJsonl(result, path);
  const std::vector<std::string> lines = ReadLines(path);
  std::remove(path.c_str());

  ASSERT_EQ(lines.size(), result.rounds.size());
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(obs::JsonLint(line, &error)) << error << "\n" << line;
    EXPECT_NE(line.find("\"round\""), std::string::npos);
    EXPECT_NE(line.find("\"defense_micros\""), std::string::npos);
    EXPECT_NE(line.find("\"staleness_histogram\""), std::string::npos);
    EXPECT_NE(line.find("\"confusion\""), std::string::npos);
  }
  // Round 1 was not evaluated: accuracy must be JSON null, not -1.
  EXPECT_NE(lines[1].find("\"test_accuracy\":null"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"test_accuracy\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"staleness_histogram\":{\"0\":4,\"3\":2}"),
            std::string::npos);
}

TEST(TelemetryTest, RunSummaryJsonIsValidAndCarriesLatencyPercentiles) {
  const SimulationResult result = MakeFakeResult();
  const std::string json = RunSummaryJson(result);
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"final_accuracy\""), std::string::npos);
  EXPECT_NE(json.find("\"defense_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_micros\""), std::string::npos);
}

TEST(TelemetryTest, FinalizeResultSummarisesDefenseLatency) {
  const SimulationResult result = MakeFakeResult();  // 100/200/300 μs rounds
  EXPECT_EQ(result.defense_latency.samples, 3u);
  EXPECT_EQ(result.defense_latency.total_micros, 600);
  EXPECT_DOUBLE_EQ(result.defense_latency.max_micros, 300.0);
  EXPECT_GT(result.defense_latency.p50_micros, 0.0);
  EXPECT_LE(result.defense_latency.p50_micros,
            result.defense_latency.p95_micros);
  EXPECT_LE(result.defense_latency.p95_micros,
            result.defense_latency.p99_micros);
  EXPECT_LE(result.defense_latency.p99_micros, 300.0);
}

ExperimentConfig SmokeConfig(std::uint64_t seed) {
  ExperimentConfig config =
      MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 20;
  config.num_malicious = 4;
  config.train_pool = 800;
  config.test_samples = 200;
  config.partition_size = 40;
  config.sim.buffer_goal = 8;
  config.sim.rounds = 2;
  config.sim.local.epochs = 1;
  config.threads = 2;
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kAsyncFilter;
  return config;
}

// The ISSUE 1 acceptance smoke test: a 2-round instrumented run emits the
// expected spans and metrics, and turning tracing on changes nothing about
// the simulation's output.
TEST(ObservabilitySmokeTest, TwoRoundRunEmitsSpansAndMetricsWithoutDrift) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();

  // Baseline: tracing off.
  recorder.SetEnabled(false);
  recorder.Clear();
  obs::DefaultRegistry().Reset();
  const SimulationResult baseline = RunExperiment(SmokeConfig(21));
  EXPECT_EQ(recorder.SpanCount(), 0u);

  // Instrumented: tracing on, same seed.
  recorder.SetEnabled(true);
  recorder.Clear();
  obs::DefaultRegistry().Reset();
  const SimulationResult traced = RunExperiment(SmokeConfig(21));
  recorder.SetEnabled(false);

  // Zero behavioural change: bit-identical model and identical round records.
  ASSERT_EQ(traced.rounds.size(), baseline.rounds.size());
  EXPECT_EQ(traced.final_model, baseline.final_model);
  EXPECT_DOUBLE_EQ(traced.final_accuracy, baseline.final_accuracy);
  for (std::size_t i = 0; i < baseline.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(traced.rounds[i].test_accuracy,
                     baseline.rounds[i].test_accuracy);
    EXPECT_EQ(traced.rounds[i].accepted, baseline.rounds[i].accepted);
    EXPECT_EQ(traced.rounds[i].rejected, baseline.rounds[i].rejected);
    EXPECT_EQ(traced.rounds[i].staleness_histogram,
              baseline.rounds[i].staleness_histogram);
  }

  // The hot paths all reported spans.
  std::set<std::string> names;
  for (const obs::SpanEvent& event : recorder.Snapshot()) {
    names.insert(event.name);
  }
  for (const char* expected :
       {"sim.run", "train.wave", "client.train", "defense.process",
        "filter.process", "filter.score", "filter.cluster", "kmeans.run",
        "kmeans.iter", "eval.accuracy", "threadpool.task"}) {
    EXPECT_TRUE(names.count(expected) == 1) << "missing span: " << expected;
  }

  // And the metrics registry saw the run.
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  const obs::Labels labels{{"defense", "AsyncFilter"}};
  EXPECT_EQ(registry.GetCounter("sim.rounds", labels).Value(), 2u);
  EXPECT_EQ(registry.GetHistogram("defense.latency_us", labels).Count(), 2u);
  EXPECT_GT(registry.GetHistogram("sim.update_staleness", labels).Count(), 0u);
  const std::string snapshot = registry.SnapshotJson();
  std::string error;
  EXPECT_TRUE(obs::JsonLint(snapshot, &error)) << error;
  EXPECT_NE(snapshot.find("\"defense.latency_us\""), std::string::npos);

  recorder.Clear();
  obs::DefaultRegistry().Reset();
}

}  // namespace
}  // namespace fl

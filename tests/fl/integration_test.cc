// System-level integration tests: the paper's headline claims at miniature
// scale. These are the slowest tests in the suite (a few seconds each).
#include <gtest/gtest.h>

#include "fl/experiment.h"

namespace fl {
namespace {

ExperimentConfig BaseConfig(std::uint64_t seed) {
  ExperimentConfig config =
      MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 30;
  config.num_malicious = 6;
  config.train_pool = 2000;
  config.test_samples = 400;
  config.partition_size = 60;
  config.sim.buffer_goal = 12;
  config.sim.rounds = 14;
  config.sim.local.epochs = 3;
  config.threads = 2;
  return config;
}

TEST(IntegrationTest, AsyncFilterBeatsFedBuffUnderGdAttack) {
  ExperimentConfig config = BaseConfig(41);
  config.attack = attacks::AttackKind::kGd;
  config.gd_scale = 3.0;
  config.num_malicious = 9;

  config.defense = DefenseKind::kFedBuff;
  double undefended = RunExperiment(config).final_accuracy;
  config.defense = DefenseKind::kAsyncFilter;
  double defended = RunExperiment(config).final_accuracy;
  EXPECT_GT(defended, undefended - 0.02)
      << "AsyncFilter must not lose to no-defense under GD";
}

TEST(IntegrationTest, AsyncFilterPreservesCleanAccuracy) {
  // Defense goal 1 (paper §3.2): with all-benign clients AsyncFilter must
  // match FedBuff's accuracy.
  ExperimentConfig config = BaseConfig(42);
  config.sim.rounds = 18;  // past the steep part of the curve, less variance
  config.attack = attacks::AttackKind::kNone;
  config.defense = DefenseKind::kFedBuff;
  double fedbuff = RunExperiment(config).final_accuracy;
  config.defense = DefenseKind::kAsyncFilter;
  double asyncfilter = RunExperiment(config).final_accuracy;
  EXPECT_GT(asyncfilter, fedbuff - 0.1);
}

TEST(IntegrationTest, AsyncFilterDetectsGdAttackersWithSignal) {
  ExperimentConfig config = BaseConfig(43);
  config.attack = attacks::AttackKind::kGd;
  config.gd_scale = 2.0;
  config.defense = DefenseKind::kAsyncFilter;
  SimulationResult result = RunExperiment(config);
  // Detection must be materially better than random rejection: the malicious
  // share of the population is 20%, so precision must beat that baseline.
  EXPECT_GT(result.total_confusion.Precision(), 0.25);
  EXPECT_GT(result.total_confusion.Recall(), 0.2);
}

TEST(IntegrationTest, GdAttackActuallyHurtsUndefendedTraining) {
  // The threat model is only meaningful if the attack works.
  ExperimentConfig config = BaseConfig(44);
  config.defense = DefenseKind::kFedBuff;
  config.attack = attacks::AttackKind::kNone;
  double clean = RunExperiment(config).final_accuracy;
  config.attack = attacks::AttackKind::kGd;
  config.gd_scale = 3.0;
  config.num_malicious = 9;  // 30%
  double attacked = RunExperiment(config).final_accuracy;
  EXPECT_LT(attacked, clean - 0.05);
}

TEST(IntegrationTest, StalenessLimitControlsDrops) {
  ExperimentConfig config = BaseConfig(45);
  config.sim.rounds = 8;
  config.sim.staleness_limit = 0;  // only fresh updates allowed
  SimulationResult strict = RunExperiment(config);
  config.sim.staleness_limit = 20;
  SimulationResult loose = RunExperiment(config);
  EXPECT_GT(strict.total_dropped_stale, loose.total_dropped_stale);
}

}  // namespace
}  // namespace fl

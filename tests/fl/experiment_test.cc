#include "fl/experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fl {
namespace {

TEST(DefenseRegistryTest, NamesRoundTripThroughParse) {
  for (DefenseKind kind :
       {DefenseKind::kFedBuff, DefenseKind::kFlDetector,
        DefenseKind::kAsyncFilter, DefenseKind::kAsyncFilter2Means,
        DefenseKind::kAsyncFilterDeferMid, DefenseKind::kAsyncFilterRejectMid,
        DefenseKind::kKrum, DefenseKind::kMultiKrum, DefenseKind::kTrimmedMean,
        DefenseKind::kMedian, DefenseKind::kZenoPlusPlus,
        DefenseKind::kAflGuard, DefenseKind::kNnm, DefenseKind::kFlTrust,
        DefenseKind::kBucketing}) {
    EXPECT_EQ(ParseDefenseKind(DefenseKindName(kind)), kind);
  }
}

TEST(DefenseRegistryTest, ParseToleratesVariants) {
  EXPECT_EQ(ParseDefenseKind("fedbuff"), DefenseKind::kFedBuff);
  EXPECT_EQ(ParseDefenseKind("no-defense"), DefenseKind::kFedBuff);
  EXPECT_EQ(ParseDefenseKind("async_filter"), DefenseKind::kAsyncFilter);
  EXPECT_EQ(ParseDefenseKind("Zeno++"), DefenseKind::kZenoPlusPlus);
  EXPECT_THROW(ParseDefenseKind("unknown"), util::CheckError);
}

TEST(DefenseRegistryTest, MakeDefenseBuildsWorkingObjects) {
  for (DefenseKind kind :
       {DefenseKind::kFedBuff, DefenseKind::kFlDetector,
        DefenseKind::kAsyncFilter, DefenseKind::kKrum,
        DefenseKind::kTrimmedMean, DefenseKind::kMedian,
        DefenseKind::kZenoPlusPlus, DefenseKind::kAflGuard,
        DefenseKind::kNnm, DefenseKind::kFlTrust, DefenseKind::kBucketing}) {
    auto defense = MakeDefense(kind);
    ASSERT_NE(defense, nullptr);
    EXPECT_FALSE(defense->Name().empty());
  }
  EXPECT_TRUE(MakeDefense(DefenseKind::kZenoPlusPlus)->RequiresServerReference());
  EXPECT_FALSE(MakeDefense(DefenseKind::kAsyncFilter)->RequiresServerReference());
}

TEST(MakeDefaultConfigTest, MatchesPaperTableOne) {
  auto mnist = MakeDefaultConfig(data::Profile::kMnist, 1);
  EXPECT_EQ(mnist.sim.local.optimizer.kind, nn::OptimizerKind::kSgd);
  EXPECT_DOUBLE_EQ(mnist.sim.local.optimizer.momentum, 0.9);
  EXPECT_EQ(mnist.sim.local.epochs, 5u);
  EXPECT_EQ(mnist.sim.local.batch_size, 32u);

  auto cifar = MakeDefaultConfig(data::Profile::kCifar10, 1);
  EXPECT_EQ(cifar.sim.local.optimizer.kind, nn::OptimizerKind::kAdam);
  EXPECT_GT(cifar.partition_size, mnist.partition_size);
}

TEST(ModelForProfileTest, LeNetForSmallVggForColour) {
  EXPECT_EQ(ModelForProfile(data::Profile::kMnist, 12).name,
            "lenet5-surrogate");
  EXPECT_EQ(ModelForProfile(data::Profile::kFashionMnist, 12).name,
            "lenet5-surrogate");
  EXPECT_EQ(ModelForProfile(data::Profile::kCifar10, 8).name, "vgg-surrogate");
  EXPECT_EQ(ModelForProfile(data::Profile::kCinic10, 8).name, "vgg-surrogate");
}

// Minimal end-to-end configuration shared by the experiment smoke tests.
ExperimentConfig TinyConfig(std::uint64_t seed) {
  ExperimentConfig config = MakeDefaultConfig(data::Profile::kMnist, seed);
  config.num_clients = 10;
  config.num_malicious = 2;
  config.train_pool = 500;
  config.test_samples = 120;
  config.partition_size = 30;
  config.sim.buffer_goal = 5;
  config.sim.rounds = 3;
  config.sim.local.epochs = 1;
  config.threads = 2;
  return config;
}

TEST(RunExperimentTest, EndToEndSmoke) {
  ExperimentConfig config = TinyConfig(21);
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kAsyncFilter;
  SimulationResult result = RunExperiment(config);
  EXPECT_EQ(result.rounds.size(), 3u);
  EXPECT_GE(result.final_accuracy, 0.0);
  EXPECT_LE(result.final_accuracy, 1.0);
}

TEST(RunExperimentTest, DeterministicAcrossInvocations) {
  ExperimentConfig config = TinyConfig(22);
  config.attack = attacks::AttackKind::kLie;
  SimulationResult a = RunExperiment(config);
  SimulationResult b = RunExperiment(config);
  EXPECT_EQ(a.final_model, b.final_model);
}

TEST(RunExperimentTest, NoAttackMeansNoMaliciousGroundTruth) {
  ExperimentConfig config = TinyConfig(23);
  config.attack = attacks::AttackKind::kNone;
  SimulationResult result = RunExperiment(config);
  EXPECT_EQ(result.total_confusion.false_negative, 0u);
  EXPECT_EQ(result.total_confusion.true_positive, 0u);
}

TEST(RunExperimentTest, CleanDatasetDefenseGetsServerReference) {
  ExperimentConfig config = TinyConfig(24);
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kZenoPlusPlus;
  // Would throw inside Zeno++::Process if the reference were missing.
  EXPECT_NO_THROW(RunExperiment(config));
}

TEST(RunExperimentTest, ObserverReceivesBuffers) {
  ExperimentConfig config = TinyConfig(25);
  std::size_t calls = 0;
  RunExperiment(config, [&](std::size_t, const std::vector<ModelUpdate>&) {
    ++calls;
  });
  EXPECT_EQ(calls, config.sim.rounds);
}

TEST(RunExperimentTest, LabelFlipPoisonsThroughTheDataPath) {
  // Label-flip malicious clients send honest updates computed on rotated
  // labels; ground truth must still mark them malicious and their presence
  // must hurt accuracy relative to no attack.
  ExperimentConfig config = TinyConfig(28);
  config.num_malicious = 4;
  config.sim.rounds = 5;
  config.defense = DefenseKind::kFedBuff;
  config.attack = attacks::AttackKind::kNone;
  double clean = RunExperiment(config).final_accuracy;
  config.attack = attacks::AttackKind::kLabelFlip;
  SimulationResult flipped = RunExperiment(config);
  EXPECT_GT(flipped.total_confusion.false_negative, 0u);  // malicious seen
  EXPECT_LT(flipped.final_accuracy, clean + 0.02);
}

TEST(RunExperimentTest, AdaptiveAttackRunsEndToEnd) {
  ExperimentConfig config = TinyConfig(29);
  config.attack = attacks::AttackKind::kAdaptive;
  config.defense = DefenseKind::kAsyncFilter;
  SimulationResult result = RunExperiment(config);
  EXPECT_EQ(result.rounds.size(), config.sim.rounds);
}

TEST(RunExperimentTest, StalenessWeightingIsConfigurable) {
  ExperimentConfig config = TinyConfig(30);
  config.sim.staleness_weighting.kind = defense::StalenessWeighting::kNone;
  SimulationResult none = RunExperiment(config);
  config.sim.staleness_weighting.kind =
      defense::StalenessWeighting::kInverseSqrt;
  SimulationResult sqrt_w = RunExperiment(config);
  // Different weighting → different trained model (same everything else).
  EXPECT_NE(none.final_model, sqrt_w.final_model);
}

TEST(RunRepeatedTest, OneAccuracyPerSeed) {
  ExperimentConfig config = TinyConfig(26);
  auto accuracies = RunRepeated(config, {1, 2, 3});
  ASSERT_EQ(accuracies.size(), 3u);
  for (double a : accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(RunExperimentTest, EvalEverySkipsIntermediateRounds) {
  ExperimentConfig config = TinyConfig(31);
  config.sim.rounds = 4;
  config.sim.eval_every = 2;
  SimulationResult result = RunExperiment(config);
  std::size_t evaluated = 0;
  for (const auto& r : result.rounds) {
    evaluated += (r.test_accuracy >= 0.0) ? 1 : 0;
  }
  EXPECT_EQ(evaluated, 2u);
}

TEST(RunExperimentTest, InvalidParticipationThrows) {
  ExperimentConfig config = TinyConfig(32);
  config.sim.participation = 0.0;
  EXPECT_THROW(RunExperiment(config), util::CheckError);
  config.sim.participation = 1.5;
  EXPECT_THROW(RunExperiment(config), util::CheckError);
}

TEST(RunExperimentTest, BufferGoalEqualToClientsWorks) {
  ExperimentConfig config = TinyConfig(33);
  config.sim.buffer_goal = config.num_clients;
  SimulationResult result = RunExperiment(config);
  EXPECT_EQ(result.rounds.size(), config.sim.rounds);
}

TEST(RunExperimentTest, TooManyMaliciousThrows) {
  ExperimentConfig config = TinyConfig(27);
  config.num_malicious = config.num_clients + 1;
  EXPECT_THROW(RunExperiment(config), util::CheckError);
}

}  // namespace
}  // namespace fl

#include "fl/simulation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/partition.h"
#include "attacks/registry.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace fl {
namespace {

// Shared fixture building a tiny but complete simulation.
class SimulationTest : public ::testing::Test {
 protected:
  struct Parts {
    data::Dataset train;
    data::Dataset test;
    nn::ModelSpec spec;
    std::vector<std::unique_ptr<Client>> clients;
  };

  // Fills the fixture-owned Parts so the clients' dataset pointers stay
  // valid for the test's lifetime.
  Parts& MakeParts(std::size_t num_clients, std::uint64_t seed) {
    Parts& parts = parts_;
    parts = Parts{};
    data::SyntheticGenerator gen(
        data::MakeProfileSpec(data::Profile::kMnist, 8), seed);
    parts.train = gen.Generate(600, "train");
    parts.test = gen.Generate(150, "test");
    parts.train.sample_shape = {parts.train.sample_dim()};
    parts.test.sample_shape = {parts.test.sample_dim()};
    parts.spec = nn::MakeMlp(parts.train.sample_dim(), {12});
    auto rng = util::RngFactory(seed).Stream("partition");
    auto partition =
        data::DirichletPartition(parts.train, num_clients, 40, 0.5, rng);
    for (std::size_t c = 0; c < num_clients; ++c) {
      parts.clients.push_back(std::make_unique<Client>(
          static_cast<int>(c), &parts.train, std::move(partition[c]),
          parts.spec, seed));
    }
    return parts;
  }

  Parts parts_;

  SimulationConfig SmallConfig(std::uint64_t seed) {
    SimulationConfig config;
    config.buffer_goal = 6;
    config.staleness_limit = 10;
    config.rounds = 5;
    config.seed = seed;
    config.local.epochs = 1;
    config.local.batch_size = 20;
    config.local.optimizer = {nn::OptimizerKind::kSgd, 0.05, 0.9, 0.0};
    return config;
  }

  // Consumes parts.clients; NoDefense unless the caller overrides it.
  std::unique_ptr<Simulation> BuildSim(
      Parts& parts, SimulationConfig config, util::ThreadPool* pool,
      std::vector<int> malicious = {},
      attacks::AttackKind attack = attacks::AttackKind::kNone) {
    attacks::AttackParams params;
    params.total_clients = parts.clients.size();
    params.malicious_clients = std::max<std::size_t>(malicious.size(), 1);
    ExperimentSpec spec;
    spec.sim = config;
    spec.model = parts.spec;
    spec.clients = std::move(parts.clients);
    spec.pool = pool;
    spec.malicious_ids = std::move(malicious);
    spec.attack = attacks::MakeAttack(attack, params);
    spec.defense = std::make_unique<defense::NoDefense>();
    spec.test_set = &parts.test;
    return BuildSimulation(std::move(spec));
  }

  SimulationResult RunOnce(std::uint64_t seed,
                           std::vector<int> malicious = {},
                           attacks::AttackKind attack = attacks::AttackKind::kNone,
                           std::size_t rounds = 5) {
    Parts& parts = MakeParts(12, seed);
    SimulationConfig config = SmallConfig(seed);
    config.rounds = rounds;
    util::ThreadPool pool(2);
    return BuildSim(parts, config, &pool, std::move(malicious), attack)->Run();
  }
};

TEST_F(SimulationTest, RunsRequestedRounds) {
  SimulationResult result = RunOnce(1);
  EXPECT_EQ(result.rounds.size(), 5u);
  EXPECT_FALSE(result.final_model.empty());
}

TEST_F(SimulationTest, EveryRoundAggregatesAtLeastBufferGoal) {
  SimulationResult result = RunOnce(2);
  for (const auto& record : result.rounds) {
    EXPECT_GE(record.buffered, 6u);
    EXPECT_EQ(record.accepted + record.deferred, record.buffered - record.rejected);
  }
}

TEST_F(SimulationTest, SimulatedClockIsMonotonic) {
  SimulationResult result = RunOnce(3);
  double prev = -1.0;
  for (const auto& record : result.rounds) {
    EXPECT_GE(record.sim_time, prev);
    prev = record.sim_time;
  }
}

TEST_F(SimulationTest, BitDeterministicAcrossRuns) {
  SimulationResult a = RunOnce(4);
  SimulationResult b = RunOnce(4);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.final_model, b.final_model);
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
    EXPECT_EQ(a.rounds[i].buffered, b.rounds[i].buffered);
  }
}

TEST_F(SimulationTest, DifferentSeedsDiverge) {
  SimulationResult a = RunOnce(5);
  SimulationResult b = RunOnce(6);
  EXPECT_NE(a.final_model, b.final_model);
}

TEST_F(SimulationTest, LearningMakesProgressOverRounds) {
  SimulationResult result = RunOnce(7, {}, attacks::AttackKind::kNone, 12);
  double first = result.rounds.front().test_accuracy;
  EXPECT_GT(result.final_accuracy, first + 0.2);
}

TEST_F(SimulationTest, GroundTruthConfusionTracksMaliciousClients) {
  SimulationResult result =
      RunOnce(8, {0, 1, 2}, attacks::AttackKind::kGd, 6);
  const auto& total = result.total_confusion;
  // NoDefense rejects nothing: all malicious arrivals are false negatives.
  EXPECT_EQ(total.true_positive + total.false_positive, 0u);
  EXPECT_GT(total.false_negative, 0u);
  EXPECT_GT(total.true_negative, 0u);
}

TEST_F(SimulationTest, StalenessNeverExceedsLimit) {
  Parts& parts = MakeParts(12, 9);
  SimulationConfig config = SmallConfig(9);
  config.staleness_limit = 2;
  config.rounds = 8;
  util::ThreadPool pool(2);
  std::size_t max_staleness_seen = 0;
  auto sim = BuildSim(parts, config, &pool);
  sim->SetBufferObserver([&](std::size_t, const std::vector<ModelUpdate>& buf) {
    for (const auto& u : buf) {
      max_staleness_seen = std::max(max_staleness_seen, u.staleness);
    }
  });
  sim->Run();
  EXPECT_LE(max_staleness_seen, 2u);
}

TEST_F(SimulationTest, ObserverSeesEveryAggregation) {
  Parts& parts = MakeParts(12, 10);
  SimulationConfig config = SmallConfig(10);
  util::ThreadPool pool(2);
  auto sim = BuildSim(parts, config, &pool);
  std::size_t calls = 0;
  sim->SetBufferObserver(
      [&](std::size_t, const std::vector<ModelUpdate>&) { ++calls; });
  sim->Run();
  EXPECT_EQ(calls, config.rounds);
}

TEST_F(SimulationTest, ZipfSpeedsProduceStaleness) {
  Parts& parts = MakeParts(12, 11);
  SimulationConfig config = SmallConfig(11);
  config.rounds = 10;
  config.zipf_s = 1.2;
  util::ThreadPool pool(2);
  auto sim = BuildSim(parts, config, &pool);
  bool saw_stale_update = false;
  sim->SetBufferObserver([&](std::size_t, const std::vector<ModelUpdate>& buf) {
    for (const auto& u : buf) {
      saw_stale_update |= (u.staleness > 0);
    }
  });
  sim->Run();
  EXPECT_TRUE(saw_stale_update);
}

TEST_F(SimulationTest, ServerLearningRateScalesTheStep) {
  Parts& parts = MakeParts(12, 12);
  SimulationConfig config = SmallConfig(12);
  config.rounds = 1;
  util::ThreadPool pool(2);
  SimulationResult full = BuildSim(parts, config, &pool)->Run();

  Parts& parts2 = MakeParts(12, 12);
  config.server_learning_rate = 0.5;
  SimulationResult half = BuildSim(parts2, config, &pool)->Run();

  // Same seed → same aggregate; the applied step is exactly halved.
  auto init = parts2.spec.factory(config.seed)->GetFlatParams();
  ASSERT_EQ(full.final_model.size(), half.final_model.size());
  for (std::size_t i = 0; i < init.size(); i += 97) {
    const float full_step = full.final_model[i] - init[i];
    const float half_step = half.final_model[i] - init[i];
    EXPECT_NEAR(half_step, 0.5f * full_step, 5e-3f);
  }
}

TEST_F(SimulationTest, PartialParticipationSlowsTheClock) {
  Parts& parts = MakeParts(12, 13);
  SimulationConfig config = SmallConfig(13);
  config.rounds = 4;
  util::ThreadPool pool(2);
  SimulationResult always = BuildSim(parts, config, &pool)->Run();

  Parts& parts2 = MakeParts(12, 13);
  config.participation = 0.5;
  SimulationResult sometimes = BuildSim(parts2, config, &pool)->Run();

  // Resting clients make every aggregation arrive later in simulated time.
  EXPECT_GT(sometimes.rounds.back().sim_time, always.rounds.back().sim_time);
}

TEST_F(SimulationTest, DefenseOverheadIsRecorded) {
  SimulationResult result = RunOnce(14);
  for (const auto& record : result.rounds) {
    EXPECT_GE(record.defense_micros, 0);
  }
}

// The spec form is the only constructor (the deprecated positional shims
// completed their one-release grace period and were removed).
TEST_F(SimulationTest, SpecConstructorRuns) {
  Parts& parts = MakeParts(12, 15);
  SimulationConfig config = SmallConfig(15);
  config.rounds = 2;
  util::ThreadPool pool(2);
  attacks::AttackParams params;
  params.total_clients = 12;
  ExperimentSpec spec;
  spec.sim = config;
  spec.model = parts.spec;
  spec.clients = std::move(parts.clients);
  spec.pool = &pool;
  spec.attack = attacks::MakeAttack(attacks::AttackKind::kNone, params);
  spec.defense = std::make_unique<defense::NoDefense>();
  spec.test_set = &parts.test;
  Simulation sim(std::move(spec));
  SimulationResult result = sim.Run();
  EXPECT_EQ(result.rounds.size(), 2u);
}

}  // namespace
}  // namespace fl

// Kill-and-resume equivalence: a simulation checkpointed mid-run, thrown
// away, rebuilt from its ExperimentSpec and restored from disk must finish
// with results bit-identical to an uninterrupted run (wall-clock timing
// fields excepted — those can never match).
#include "fl/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <numeric>
#include <utility>

#include "attacks/registry.h"
#include "core/async_filter.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "defense/fldetector.h"
#include "defense/timeseries.h"
#include "fl/simulation.h"
#include "util/check.h"
#include "util/rng.h"

namespace fl {
namespace {

// Defers the entire buffer of one chosen round and accepts everything else:
// a deterministic probe for the mid-band deferral path (every deferred
// update must re-enter the next round's buffer exactly once). Stateless
// across rounds — the deferred buffer itself is simulator state.
class DeferAtRound : public defense::Defense {
 public:
  explicit DeferAtRound(std::size_t target) : target_(target) {}

  defense::AggregationResult Process(
      const defense::FilterContext& context,
      const std::vector<ModelUpdate>& updates) override {
    defense::AggregationResult out;
    if (context.round == target_) {
      out.verdicts.assign(updates.size(), defense::Verdict::kDeferred);
      out.deferred = updates;
      return out;
    }
    out.verdicts.assign(updates.size(), defense::Verdict::kAccepted);
    std::vector<std::size_t> accepted(updates.size());
    std::iota(accepted.begin(), accepted.end(), 0u);
    out.aggregated_delta = defense::WeightedAverage(
        updates, accepted, context.staleness_weighting);
    return out;
  }
  std::string Name() const override { return "DeferAtRound"; }

 private:
  std::size_t target_;
};

class CheckpointTest : public ::testing::Test {
 protected:
  struct Parts {
    data::Dataset train;
    data::Dataset test;
    nn::ModelSpec spec;
    std::vector<std::unique_ptr<Client>> clients;
  };

  // Each Build() consumes one Parts; the deque keeps every generation's
  // datasets alive for the clients that point into them.
  Parts& MakeParts(std::size_t num_clients, std::uint64_t seed) {
    parts_list_.emplace_back();
    Parts& parts = parts_list_.back();
    data::SyntheticGenerator gen(
        data::MakeProfileSpec(data::Profile::kMnist, 8), seed);
    parts.train = gen.Generate(600, "train");
    parts.test = gen.Generate(150, "test");
    parts.train.sample_shape = {parts.train.sample_dim()};
    parts.test.sample_shape = {parts.test.sample_dim()};
    parts.spec = nn::MakeMlp(parts.train.sample_dim(), {12});
    auto rng = util::RngFactory(seed).Stream("partition");
    auto partition =
        data::DirichletPartition(parts.train, num_clients, 40, 0.5, rng);
    for (std::size_t c = 0; c < num_clients; ++c) {
      parts.clients.push_back(std::make_unique<Client>(
          static_cast<int>(c), &parts.train, std::move(partition[c]),
          parts.spec, seed));
    }
    return parts;
  }

  SimulationConfig SmallConfig(std::uint64_t seed, std::size_t rounds) {
    SimulationConfig config;
    config.buffer_goal = 6;
    config.staleness_limit = 10;
    config.rounds = rounds;
    config.seed = seed;
    config.local.epochs = 1;
    config.local.batch_size = 20;
    config.local.optimizer = {nn::OptimizerKind::kSgd, 0.05, 0.9, 0.0};
    return config;
  }

  std::unique_ptr<Simulation> Build(
      std::uint64_t seed, std::size_t rounds,
      std::unique_ptr<defense::Defense> defense,
      std::vector<int> malicious = {},
      attacks::AttackKind attack = attacks::AttackKind::kNone) {
    Parts& parts = MakeParts(12, seed);
    attacks::AttackParams params;
    params.total_clients = 12;
    params.malicious_clients = std::max<std::size_t>(malicious.size(), 1);
    ExperimentSpec spec;
    spec.sim = SmallConfig(seed, rounds);
    spec.model = parts.spec;
    spec.clients = std::move(parts.clients);
    spec.pool = &pool_;
    spec.malicious_ids = std::move(malicious);
    spec.attack = attacks::MakeAttack(attack, params);
    spec.defense = std::move(defense);
    spec.test_set = &parts.test;
    return BuildSimulation(std::move(spec));
  }

  // Everything except wall-clock timing must match bit-for-bit.
  static void ExpectBitIdentical(const SimulationResult& a,
                                 const SimulationResult& b) {
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
      const RoundRecord& ra = a.rounds[i];
      const RoundRecord& rb = b.rounds[i];
      EXPECT_EQ(ra.round, rb.round) << i;
      EXPECT_EQ(ra.sim_time, rb.sim_time) << i;
      EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << i;
      EXPECT_EQ(ra.buffered, rb.buffered) << i;
      EXPECT_EQ(ra.accepted, rb.accepted) << i;
      EXPECT_EQ(ra.rejected, rb.rejected) << i;
      EXPECT_EQ(ra.deferred, rb.deferred) << i;
      EXPECT_EQ(ra.dropped_stale, rb.dropped_stale) << i;
      EXPECT_EQ(ra.mean_staleness, rb.mean_staleness) << i;
      EXPECT_EQ(ra.staleness_histogram, rb.staleness_histogram) << i;
      EXPECT_EQ(ra.confusion.true_positive, rb.confusion.true_positive) << i;
      EXPECT_EQ(ra.confusion.false_positive, rb.confusion.false_positive) << i;
      EXPECT_EQ(ra.confusion.true_negative, rb.confusion.true_negative) << i;
      EXPECT_EQ(ra.confusion.false_negative, rb.confusion.false_negative) << i;
      // defense_micros is wall-clock: excluded by design.
    }
    EXPECT_EQ(a.final_model, b.final_model);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.total_dropped_stale, b.total_dropped_stale);
  }

  // Runs the full kill-and-resume protocol for one defense configuration:
  // straight run vs (checkpoint at `stop_round`, discard, rebuild, restore,
  // finish).
  void RunKillResumeTest(
      const std::string& tag,
      const std::function<std::unique_ptr<defense::Defense>()>& make_defense,
      std::vector<int> malicious, attacks::AttackKind attack,
      std::size_t rounds = 8, std::size_t stop_round = 3) {
    const std::uint64_t seed = 21;
    const std::string path = ::testing::TempDir() + "ckpt_" + tag + ".bin";
    std::remove(path.c_str());

    SimulationResult full =
        Build(seed, rounds, make_defense(), malicious, attack)->Run();
    EXPECT_FALSE(full.interrupted);

    auto victim = Build(seed, rounds, make_defense(), malicious, attack);
    std::atomic<bool> stop{false};
    victim->SetCheckpointPolicy({path, 0, &stop});
    victim->SetBufferObserver(
        [&](std::size_t round, const std::vector<ModelUpdate>&) {
          if (round == stop_round) {
            stop.store(true, std::memory_order_relaxed);
          }
        });
    SimulationResult partial = victim->Run();
    EXPECT_TRUE(partial.interrupted);
    ASSERT_EQ(partial.rounds.size(), stop_round + 1);
    ASSERT_TRUE(CheckpointExists(path));
    victim.reset();  // the "kill": all in-memory state is gone

    auto resumed_sim = Build(seed, rounds, make_defense(), malicious, attack);
    ASSERT_TRUE(RestoreCheckpoint(path, *resumed_sim));
    EXPECT_EQ(resumed_sim->current_round(), stop_round + 1);
    SimulationResult resumed = resumed_sim->Run();
    EXPECT_FALSE(resumed.interrupted);

    ExpectBitIdentical(full, resumed);
    std::remove(path.c_str());
  }

  util::ThreadPool pool_{2};
  std::deque<Parts> parts_list_;
};

TEST_F(CheckpointTest, RestoreIntoMissingFileReturnsFalse) {
  auto sim = Build(3, 2, std::make_unique<defense::NoDefense>());
  EXPECT_FALSE(
      RestoreCheckpoint(::testing::TempDir() + "no_such_ckpt.bin", *sim));
}

TEST_F(CheckpointTest, CorruptCheckpointIsRejected) {
  const std::string path = ::testing::TempDir() + "ckpt_corrupt.bin";
  {
    auto victim = Build(5, 4, std::make_unique<defense::NoDefense>());
    std::atomic<bool> stop{false};
    victim->SetCheckpointPolicy({path, 0, &stop});
    victim->SetBufferObserver(
        [&](std::size_t round, const std::vector<ModelUpdate>&) {
          if (round == 1) {
            stop.store(true, std::memory_order_relaxed);
          }
        });
    victim->Run();
  }
  // Flip one payload byte: the checksum must catch it.
  auto bytes = util::serial::ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;
  util::serial::AtomicWriteFile(path, bytes);
  auto sim = Build(5, 4, std::make_unique<defense::NoDefense>());
  EXPECT_THROW(RestoreCheckpoint(path, *sim), util::CheckError);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MismatchedExperimentIsRejected) {
  const std::string path = ::testing::TempDir() + "ckpt_mismatch.bin";
  {
    auto victim = Build(6, 4, std::make_unique<defense::NoDefense>());
    std::atomic<bool> stop{false};
    victim->SetCheckpointPolicy({path, 0, &stop});
    victim->SetBufferObserver(
        [&](std::size_t round, const std::vector<ModelUpdate>&) {
          if (round == 1) {
            stop.store(true, std::memory_order_relaxed);
          }
        });
    victim->Run();
  }
  // Different seed → different experiment identity.
  auto other_seed = Build(7, 4, std::make_unique<defense::NoDefense>());
  EXPECT_THROW(RestoreCheckpoint(path, *other_seed), util::CheckError);
  // Different defense → also rejected.
  auto other_defense = Build(6, 4, std::make_unique<core::AsyncFilter>());
  EXPECT_THROW(RestoreCheckpoint(path, *other_defense), util::CheckError);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, KillResumeBitIdenticalNoDefense) {
  RunKillResumeTest(
      "nodefense", [] { return std::make_unique<defense::NoDefense>(); }, {},
      attacks::AttackKind::kNone);
}

// The two defenses with real cross-round state, under attack so the
// detection path (and the attacker coordinator's window) carries state
// across the checkpoint boundary.
TEST_F(CheckpointTest, KillResumeBitIdenticalAsyncFilter) {
  RunKillResumeTest(
      "asyncfilter", [] { return std::make_unique<core::AsyncFilter>(); },
      {0, 1, 2}, attacks::AttackKind::kGd);
}

TEST_F(CheckpointTest, KillResumeBitIdenticalAsyncFilterDeferMid) {
  // kDefer routes the mid band into the next buffer, so deferred updates
  // and the deferral ledger must survive the checkpoint round boundary.
  RunKillResumeTest(
      "asyncfilter_defermid",
      [] {
        core::AsyncFilterOptions options;
        options.mid_band = core::MidBandPolicy::kDefer;
        return std::make_unique<core::AsyncFilter>(options);
      },
      {0, 1, 2}, attacks::AttackKind::kGd);
}

TEST_F(CheckpointTest, KillResumeBitIdenticalFlDetector) {
  RunKillResumeTest(
      "fldetector", [] { return std::make_unique<defense::FlDetector>(); },
      {0, 1, 2}, attacks::AttackKind::kGd);
}

TEST_F(CheckpointTest, KillResumeBitIdenticalTsDetect) {
  // Per-client trajectory rings + the previous aggregate must cross the
  // checkpoint boundary bit-exactly or post-resume z-scores drift.
  RunKillResumeTest(
      "tsdetect",
      [] { return std::make_unique<defense::TimeSeriesDetector>(); },
      {0, 1, 2}, attacks::AttackKind::kGd);
}

TEST_F(CheckpointTest, PeriodicCheckpointKeepsLatestRoundBoundary) {
  const std::string path = ::testing::TempDir() + "ckpt_periodic.bin";
  std::remove(path.c_str());
  auto sim = Build(9, 6, std::make_unique<defense::NoDefense>());
  sim->SetCheckpointPolicy({path, /*every=*/2, nullptr});
  sim->Run();
  // Rounds 2 and 4 were checkpointed; the final round is not (the run
  // finished). The file on disk is the round-4 state.
  ASSERT_TRUE(CheckpointExists(path));
  auto restored = Build(9, 6, std::make_unique<defense::NoDefense>());
  ASSERT_TRUE(RestoreCheckpoint(path, *restored));
  EXPECT_EQ(restored->current_round(), 4u);
  std::remove(path.c_str());
}

// Mid-band deferral semantics: every update deferred at round R re-enters
// the round-R+1 buffer exactly once and is gone from round R+2 onwards.
// Updates are identified by their delta payload (bit-identical on re-entry;
// distinct across jobs because every job draws a distinct RNG stream).
TEST_F(CheckpointTest, DeferredUpdateReentersNextBufferExactlyOnce) {
  constexpr std::size_t kDeferRound = 2;
  auto sim = Build(31, 6, std::make_unique<DeferAtRound>(kDeferRound));
  std::map<std::size_t, std::vector<std::vector<float>>> buffers;
  sim->SetBufferObserver(
      [&](std::size_t round, const std::vector<ModelUpdate>& buffer) {
        for (const ModelUpdate& u : buffer) {
          buffers[round].push_back(u.delta.ToVector());
        }
      });
  SimulationResult result = sim->Run();

  ASSERT_TRUE(buffers.count(kDeferRound));
  ASSERT_TRUE(buffers.count(kDeferRound + 1));
  ASSERT_FALSE(buffers[kDeferRound].empty());
  EXPECT_EQ(result.rounds[kDeferRound].deferred,
            buffers[kDeferRound].size());
  for (const auto& deferred : buffers[kDeferRound]) {
    std::size_t next = 0;
    for (const auto& delta : buffers[kDeferRound + 1]) {
      next += (delta == deferred) ? 1 : 0;
    }
    EXPECT_EQ(next, 1u) << "deferred update must re-enter exactly once";
    for (std::size_t round = kDeferRound + 2; round < 6; ++round) {
      for (const auto& delta : buffers[round]) {
        EXPECT_NE(delta, deferred) << "deferred update re-entered twice";
      }
    }
  }
}

// Same exactly-once property when the checkpoint boundary lands between the
// deferring round and the re-entry round: the deferred buffer rides the
// checkpoint, and the restored run matches the straight one bit for bit.
TEST_F(CheckpointTest, DeferredUpdateSurvivesCheckpointRestore) {
  constexpr std::size_t kDeferRound = 2;
  const std::string path = ::testing::TempDir() + "ckpt_defer.bin";
  std::remove(path.c_str());

  auto straight = Build(33, 6, std::make_unique<DeferAtRound>(kDeferRound));
  std::vector<std::vector<float>> straight_reentry;
  straight->SetBufferObserver(
      [&](std::size_t round, const std::vector<ModelUpdate>& buffer) {
        if (round == kDeferRound + 1) {
          for (const ModelUpdate& u : buffer) {
            straight_reentry.push_back(u.delta.ToVector());
          }
        }
      });
  SimulationResult full = straight->Run();

  // Checkpoint exactly at the deferring round's boundary.
  auto victim = Build(33, 6, std::make_unique<DeferAtRound>(kDeferRound));
  std::atomic<bool> stop{false};
  victim->SetCheckpointPolicy({path, 0, &stop});
  std::vector<std::vector<float>> deferred_deltas;
  victim->SetBufferObserver(
      [&](std::size_t round, const std::vector<ModelUpdate>& buffer) {
        if (round == kDeferRound) {
          for (const ModelUpdate& u : buffer) {
            deferred_deltas.push_back(u.delta.ToVector());
          }
          stop.store(true, std::memory_order_relaxed);
        }
      });
  SimulationResult partial = victim->Run();
  EXPECT_TRUE(partial.interrupted);
  ASSERT_FALSE(deferred_deltas.empty());
  victim.reset();

  auto resumed_sim = Build(33, 6, std::make_unique<DeferAtRound>(kDeferRound));
  ASSERT_TRUE(RestoreCheckpoint(path, *resumed_sim));
  std::vector<std::vector<float>> resumed_reentry;
  resumed_sim->SetBufferObserver(
      [&](std::size_t round, const std::vector<ModelUpdate>& buffer) {
        if (round == kDeferRound + 1) {
          for (const ModelUpdate& u : buffer) {
            resumed_reentry.push_back(u.delta.ToVector());
          }
        }
      });
  SimulationResult resumed = resumed_sim->Run();

  // The restored first buffer equals the straight run's, and every deferred
  // delta is present in it exactly once.
  EXPECT_EQ(resumed_reentry, straight_reentry);
  for (const auto& deferred : deferred_deltas) {
    std::size_t count = 0;
    for (const auto& delta : resumed_reentry) {
      count += (delta == deferred) ? 1 : 0;
    }
    EXPECT_EQ(count, 1u);
  }
  ExpectBitIdentical(full, resumed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fl

#include "fl/client.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic.h"
#include "stats/vec_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace fl {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticGenerator gen(
        data::MakeProfileSpec(data::Profile::kMnist, 8), 3);
    train_ = gen.Generate(400, "train");
    test_ = gen.Generate(200, "test");
    spec_ = nn::MakeMlp(train_.sample_dim(), {16});
    // MLP expects flat samples.
    train_.sample_shape = {train_.sample_dim()};
    test_.sample_shape = {test_.sample_dim()};
  }

  LocalTrainConfig Config() {
    LocalTrainConfig config;
    config.epochs = 2;
    config.batch_size = 32;
    config.optimizer = {nn::OptimizerKind::kSgd, 0.05, 0.9, 0.0};
    return config;
  }

  std::vector<std::size_t> Partition(std::size_t n) {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), 0u);
    return p;
  }

  data::Dataset train_;
  data::Dataset test_;
  nn::ModelSpec spec_;
};

TEST_F(ClientTest, DeltaHasModelDimension) {
  Client client(0, &train_, Partition(100), spec_, 1);
  auto model = spec_.factory(1);
  auto base = model->GetFlatParams();
  auto rng = util::RngFactory(2).Stream("train");
  auto delta = client.TrainOnce(base, Config(), rng);
  EXPECT_EQ(delta.size(), base.size());
  EXPECT_GT(stats::L2Norm(delta), 0.0);
}

TEST_F(ClientTest, TrainingIsRngDeterministic) {
  Client a(0, &train_, Partition(100), spec_, 1);
  Client b(0, &train_, Partition(100), spec_, 1);
  auto base = spec_.factory(1)->GetFlatParams();
  auto r1 = util::RngFactory(9).Stream("train");
  auto r2 = util::RngFactory(9).Stream("train");
  EXPECT_EQ(a.TrainOnce(base, Config(), r1), b.TrainOnce(base, Config(), r2));
}

TEST_F(ClientTest, RepeatedJobsFromSameBaseAreIndependent) {
  // The optimizer is rebuilt per job: training twice from the same base with
  // the same rng stream yields the same delta (no state leakage).
  Client client(0, &train_, Partition(100), spec_, 1);
  auto base = spec_.factory(1)->GetFlatParams();
  auto r1 = util::RngFactory(10).Stream("t");
  auto delta1 = client.TrainOnce(base, Config(), r1);
  auto r2 = util::RngFactory(10).Stream("t");
  auto delta2 = client.TrainOnce(base, Config(), r2);
  EXPECT_EQ(delta1, delta2);
}

TEST_F(ClientTest, TrainingReducesLocalLoss) {
  Client client(0, &train_, Partition(200), spec_, 1);
  auto model = spec_.factory(1);
  auto base = model->GetFlatParams();
  auto rng = util::RngFactory(3).Stream("train");
  auto delta = client.TrainOnce(base, Config(), rng);

  // Accuracy on the client's own data should improve after applying delta.
  auto trained = base;
  for (std::size_t i = 0; i < trained.size(); ++i) {
    trained[i] += delta[i];
  }
  double before = EvaluateAccuracy(spec_, *model, base, train_);
  double after = EvaluateAccuracy(spec_, *model, trained, train_);
  EXPECT_GT(after, before + 0.1);
}

TEST_F(ClientTest, EmptyPartitionThrows) {
  EXPECT_THROW(Client(0, &train_, {}, spec_, 1), util::CheckError);
}

TEST_F(ClientTest, NumSamplesReflectsPartition) {
  Client client(4, &train_, Partition(37), spec_, 1);
  EXPECT_EQ(client.num_samples(), 37u);
  EXPECT_EQ(client.id(), 4);
}

TEST_F(ClientTest, EvaluateAccuracyBoundsAndDeterminism) {
  auto model = spec_.factory(1);
  auto params = model->GetFlatParams();
  double acc1 = EvaluateAccuracy(spec_, *model, params, test_);
  double acc2 = EvaluateAccuracy(spec_, *model, params, test_);
  EXPECT_GE(acc1, 0.0);
  EXPECT_LE(acc1, 1.0);
  EXPECT_DOUBLE_EQ(acc1, acc2);
}

}  // namespace
}  // namespace fl

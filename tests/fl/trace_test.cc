#include "fl/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fl {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

SimulationResult FakeResult() {
  SimulationResult result;
  for (std::size_t r = 0; r < 3; ++r) {
    RoundRecord record;
    record.round = r;
    record.sim_time = static_cast<double>(r) * 1.5;
    record.test_accuracy = r == 1 ? -1.0 : 0.5 + 0.1 * static_cast<double>(r);
    record.buffered = 20;
    record.accepted = 15;
    record.rejected = 3;
    record.deferred = 2;
    record.dropped_stale = r;
    record.mean_staleness = 1.25;
    record.defense_micros = 7;
    record.confusion.true_positive = 2;
    record.confusion.false_positive = 1;
    record.confusion.true_negative = 14;
    record.confusion.false_negative = 3;
    result.rounds.push_back(record);
  }
  FinalizeResult(result);
  return result;
}

class TraceTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "trace_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceTest, RoundTraceHasHeaderAndOneRowPerRound) {
  WriteRoundTraceCsv(FakeResult(), path_);
  std::string contents = ReadAll(path_);
  std::size_t lines = static_cast<std::size_t>(
      std::count(contents.begin(), contents.end(), '\n'));
  EXPECT_EQ(lines, 4u);  // header + 3 rounds
  EXPECT_NE(contents.find("round,sim_time,test_accuracy"), std::string::npos);
  EXPECT_NE(contents.find("0,0.0000,0.5000,20,15,3,2,0,1.250,7,2,1,14,3"),
            std::string::npos);
}

TEST_F(TraceTest, UnevaluatedRoundsHaveEmptyAccuracyCell) {
  WriteRoundTraceCsv(FakeResult(), path_);
  std::string contents = ReadAll(path_);
  EXPECT_NE(contents.find("1,1.5000,,20,15,3,2,1,1.250,7"), std::string::npos);
}

TEST_F(TraceTest, SummaryHoldsFinalAccuracyAndDetection) {
  SimulationResult result = FakeResult();
  WriteSummaryCsv(result, path_);
  std::string contents = ReadAll(path_);
  EXPECT_NE(contents.find("final_accuracy,rounds,total_dropped_stale"),
            std::string::npos);
  // Precision = 2·2 / (2·2 + 1·2)... per-round counts are aggregated: TP=6,
  // FP=3 → precision 0.6667.
  EXPECT_NE(contents.find("0.6667"), std::string::npos);
}

}  // namespace
}  // namespace fl

// End-to-end tests of the distributed run mode (--transport=tcp): the same
// simulation round-tripped over real loopback TCP connections must match the
// in-process run, and must degrade gracefully when the fault injector turns
// the wire hostile. These are the slowest tests in the suite.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "fl/experiment.h"
#include "obs/trace.h"

namespace fl {
namespace {

ExperimentConfig SmallConfig(std::uint64_t seed) {
  ExperimentConfig config =
      MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 20;
  config.num_malicious = 4;
  config.train_pool = 1500;
  config.test_samples = 300;
  config.partition_size = 50;
  config.sim.buffer_goal = 8;
  config.sim.rounds = 10;
  config.sim.local.epochs = 2;
  config.threads = 2;
  return config;
}

TEST(DistributedTest, TcpMatchesInprocUnderLieAttack) {
  // The acceptance bar for the transport: a 10-round FedBuff + AsyncFilter
  // run under the LIE attack must reach the same accuracy over TCP as in
  // process. Scheduling, attack crafting, and RNG streams all live on the
  // server side, so with a quiet wire the runs are bit-identical — the
  // tolerance below is pure paranoia, not an expected gap.
  ExperimentConfig config = SmallConfig(61);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  config.transport = TransportKind::kTcp;
  const SimulationResult tcp = RunExperiment(config);

  ASSERT_EQ(tcp.rounds.size(), inproc.rounds.size());
  EXPECT_NEAR(tcp.final_accuracy, inproc.final_accuracy, 1e-6);
  EXPECT_EQ(tcp.final_model, inproc.final_model);  // bit-exact
  EXPECT_EQ(tcp.evicted_clients, 0u);
}

TEST(DistributedTest, ShmMatchesInprocAndTcpBitExactly) {
  // The shm transport moves the exact same frame bytes over mmap'd rings,
  // so all three transports must produce one SimulationResult, bit for bit.
  ExperimentConfig config = SmallConfig(67);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.sim.rounds = 6;

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  config.transport = TransportKind::kTcp;
  const SimulationResult tcp = RunExperiment(config);

  config.transport = TransportKind::kShm;
  const SimulationResult shm = RunExperiment(config);

  ASSERT_EQ(shm.rounds.size(), inproc.rounds.size());
  EXPECT_EQ(shm.final_model, inproc.final_model);  // bit-exact
  EXPECT_EQ(shm.final_model, tcp.final_model);     // bit-exact
  EXPECT_NEAR(shm.final_accuracy, inproc.final_accuracy, 0.0);
  EXPECT_EQ(shm.evicted_clients, 0u);
}

TEST(DistributedTest, ShmWithCodecMatchesInproc) {
  // Compressed frames ride the rings unchanged too: shm + fp16 must equal
  // inproc + fp16 (which mirrors the wire's lossy round trip).
  ExperimentConfig config = SmallConfig(68);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.sim.rounds = 5;
  config.compress = "fp16";

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  config.transport = TransportKind::kShm;
  const SimulationResult shm = RunExperiment(config);

  ASSERT_EQ(shm.rounds.size(), inproc.rounds.size());
  EXPECT_EQ(shm.final_model, inproc.final_model);  // bit-exact
  EXPECT_EQ(shm.evicted_clients, 0u);
}

TEST(DistributedTest, SurvivesFaultyWireWithSameResult) {
  // Drops are resent, duplicates deduped, delays absorbed — none of them may
  // change what the server aggregates.
  ExperimentConfig config = SmallConfig(62);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.sim.rounds = 6;

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  config.transport = TransportKind::kTcp;
  config.net.faults.drop_prob = 0.1;
  config.net.faults.duplicate_prob = 0.1;
  config.net.faults.delay_prob = 0.1;
  config.net.faults.delay_ms = 2.0;
  config.net.faults.seed = 62;
  const SimulationResult tcp = RunExperiment(config);

  EXPECT_EQ(tcp.final_model, inproc.final_model);
  EXPECT_EQ(tcp.evicted_clients, 0u);
}

TEST(DistributedTest, CompressedTcpMatchesInprocBitExactly) {
  // The compression acceptance bar: for every codec, a tcp run and an
  // inproc run under the same --compress setting produce the same final
  // model bit-for-bit. identity is trivially exact; fp16 and topk-delta
  // work because the inproc backend mirrors the wire's lossy round trip
  // (including the per-client error-feedback stream for topk-delta).
  for (const char* codec : {"identity", "fp16", "topk-delta"}) {
    SCOPED_TRACE(codec);
    ExperimentConfig config = SmallConfig(64);
    config.sim.rounds = 5;
    config.attack = attacks::AttackKind::kLie;
    config.defense = DefenseKind::kAsyncFilter;
    config.compress = codec;

    config.transport = TransportKind::kInproc;
    const SimulationResult inproc = RunExperiment(config);

    config.transport = TransportKind::kTcp;
    const SimulationResult tcp = RunExperiment(config);

    ASSERT_EQ(tcp.rounds.size(), inproc.rounds.size());
    EXPECT_EQ(tcp.final_model, inproc.final_model);  // bit-exact
    EXPECT_EQ(tcp.evicted_clients, 0u);
  }
}

TEST(DistributedTest, IdentityCompressionLeavesResultUnchanged) {
  // --compress=identity must be a true no-op: same bytes on the wire as a
  // legacy run, same simulation result as no --compress at all.
  ExperimentConfig config = SmallConfig(65);
  config.sim.rounds = 5;
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.transport = TransportKind::kTcp;

  const SimulationResult plain = RunExperiment(config);
  config.compress = "identity";
  const SimulationResult identity = RunExperiment(config);

  EXPECT_EQ(identity.final_model, plain.final_model);
  EXPECT_NEAR(identity.final_accuracy, plain.final_accuracy, 1e-9);
}

TEST(DistributedTest, SurvivesTruncatedCompressedFrames) {
  // Truncated frames hard-close the sender's connection mid-frame; with a
  // codec negotiated, the server must still reject the partial stream
  // cleanly, evict, and finish every round from the survivors.
  ExperimentConfig config = SmallConfig(66);
  config.sim.rounds = 5;
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.transport = TransportKind::kTcp;
  config.compress = "fp16";
  config.net.faults.truncate_prob = 0.03;
  config.net.faults.seed = 66;
  config.net.job_timeout_ms = 30000;

  const SimulationResult result = RunExperiment(config);

  EXPECT_EQ(result.rounds.size(), config.sim.rounds);
  EXPECT_LT(result.evicted_clients, config.num_clients);
  EXPECT_GT(result.final_accuracy, 0.1);
}

TEST(DistributedTest, TraceContextLinksClientTrainToServerDefenseSpans) {
  // Cross-process trace propagation, end to end over real TCP: a client's
  // net.worker.train span and the server's defense.process.update span for
  // the same training job must share a trace id — and negotiating the
  // extension must not perturb the simulation (bit-identical to inproc).
  ExperimentConfig config = SmallConfig(67);
  config.sim.rounds = 5;
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  config.transport = TransportKind::kTcp;
  config.net.trace_context = true;
  const SimulationResult tcp = RunExperiment(config);
  recorder.SetEnabled(false);

  std::set<std::uint64_t> train_ids;
  std::set<std::uint64_t> defense_ids;
  for (const obs::SpanEvent& event : recorder.Snapshot()) {
    if (event.context.trace_id == 0) {
      continue;
    }
    const std::string_view name(event.name);
    if (name == "net.worker.train") {
      train_ids.insert(event.context.trace_id);
    } else if (name == "defense.process.update") {
      defense_ids.insert(event.context.trace_id);
    }
  }
  recorder.Clear();

  EXPECT_FALSE(train_ids.empty());
  EXPECT_FALSE(defense_ids.empty());
  std::size_t shared = 0;
  for (std::uint64_t id : defense_ids) {
    shared += train_ids.count(id);
  }
  EXPECT_GT(shared, 0u) << "no trace id links a client train span to a "
                           "server defense span";

  EXPECT_EQ(tcp.final_model, inproc.final_model);  // propagation is free
  EXPECT_EQ(tcp.evicted_clients, 0u);
}

TEST(DistributedTest, VirtualPoolTcpMatchesInprocBitExactly) {
  // The virtual-client pool multiplexes the whole fleet over a handful of
  // TCP connections and a worker crew — but it draws from the same
  // (client, job)-keyed RNG streams and the server assigns results by job
  // position, so the run must stay bit-identical to inproc.
  ExperimentConfig config = SmallConfig(69);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.sim.rounds = 6;

  config.transport = TransportKind::kInproc;
  const SimulationResult inproc = RunExperiment(config);

  config.transport = TransportKind::kTcp;
  config.pool.mode = ClientPoolSpec::Mode::kVirtual;
  config.pool.connections = 4;
  config.pool.workers = 3;
  const SimulationResult virt = RunExperiment(config);

  ASSERT_EQ(virt.rounds.size(), inproc.rounds.size());
  EXPECT_EQ(virt.final_model, inproc.final_model);  // bit-exact
  EXPECT_NEAR(virt.final_accuracy, inproc.final_accuracy, 0.0);
  EXPECT_EQ(virt.evicted_clients, 0u);
}

TEST(DistributedTest, ShardedReactorMatchesSingleShardBitExactly) {
  // Reactor sharding only changes which epoll fd wakes the loop; per-shard
  // staging buffers are combined by job position before the defense pass,
  // so shard count must never leak into the result.
  ExperimentConfig config = SmallConfig(70);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.sim.rounds = 5;
  config.transport = TransportKind::kTcp;

  config.net.reactor_shards = 1;
  const SimulationResult one_shard = RunExperiment(config);

  config.net.reactor_shards = 4;
  const SimulationResult four_shards = RunExperiment(config);

  // And the virtual pool over a sharded reactor, all at once.
  config.pool.mode = ClientPoolSpec::Mode::kVirtual;
  config.pool.connections = 5;
  config.pool.workers = 2;
  const SimulationResult pooled = RunExperiment(config);

  EXPECT_EQ(four_shards.final_model, one_shard.final_model);  // bit-exact
  EXPECT_EQ(pooled.final_model, one_shard.final_model);       // bit-exact
  EXPECT_EQ(four_shards.evicted_clients, 0u);
  EXPECT_EQ(pooled.evicted_clients, 0u);
}

TEST(DistributedTest, CompletesWhenFifthOfClientsDieMidRun) {
  // The graceful-degradation bar: kill 20% of the client connections mid-run
  // and the server must still finish every round, aggregating from the
  // survivors.
  ExperimentConfig config = SmallConfig(63);
  config.attack = attacks::AttackKind::kLie;
  config.defense = DefenseKind::kAsyncFilter;
  config.transport = TransportKind::kTcp;
  config.net.faults.kill_fraction = 0.2;
  config.net.faults.seed = 63;
  config.net.job_timeout_ms = 30000;

  const SimulationResult result = RunExperiment(config);

  EXPECT_EQ(result.rounds.size(), config.sim.rounds);
  EXPECT_GE(result.evicted_clients, 1u);
  EXPECT_LT(result.evicted_clients, config.num_clients);
  // The run must still have learned something (random guessing is 0.1).
  EXPECT_GT(result.final_accuracy, 0.1);
}

}  // namespace
}  // namespace fl

// The live observability plane's correctness contracts: the audit trail
// reconciles exactly with SimulationResult, the /metrics exporter is
// observation-only (bit-identical results on or off), and trace ids are
// deterministic pure functions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "fl/experiment.h"
#include "fl/trace_context.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/json.h"

namespace fl {
namespace {

ExperimentConfig TinyConfig(std::uint64_t seed) {
  ExperimentConfig config =
      MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 12;
  config.num_malicious = 3;
  config.train_pool = 600;
  config.test_samples = 200;
  config.partition_size = 40;
  config.sim.buffer_goal = 6;
  config.sim.rounds = 6;
  config.sim.local.epochs = 1;
  config.threads = 2;
  return config;
}

// Close and clear the global audit trail around each test: it is
// process-wide state shared with every other simulation-running test.
class ObservabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::AuditTrail::Global().Close(); }
};

TEST_F(ObservabilityTest, AuditCountsReconcileExactlyWithSimulationResult) {
  const std::string path = ::testing::TempDir() + "obs_audit_run.jsonl";
  ExperimentConfig config = TinyConfig(71);
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kAsyncFilter;

  obs::AuditTrail& audit = obs::AuditTrail::Global();
  audit.Open(path);
  const SimulationResult result = RunExperiment(config);
  audit.Close();

  // The audit trail and RoundRecord are tallied in the same loop; their
  // totals must agree exactly, per verdict.
  std::size_t accepted = 0, rejected = 0, deferred = 0, buffered = 0;
  for (const RoundRecord& round : result.rounds) {
    accepted += round.accepted;
    rejected += round.rejected;
    deferred += round.deferred;
    buffered += round.buffered;
  }
  std::uint64_t kept_total = 0, filtered_total = 0, deferred_total = 0;
  for (const auto& [client, counts] : audit.CountsByClient()) {
    EXPECT_GE(client, 0);
    EXPECT_LT(client, static_cast<int>(config.num_clients));
    kept_total += counts.kept;
    filtered_total += counts.filtered;
    deferred_total += counts.deferred;
  }
  EXPECT_EQ(kept_total, accepted);
  EXPECT_EQ(filtered_total, rejected);
  EXPECT_EQ(deferred_total, deferred);
  EXPECT_EQ(audit.RecordCount(), buffered);

  // Every line is one valid JSON object carrying a legal verdict, and the
  // file has exactly one line per update the defense saw.
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    std::string error;
    ASSERT_TRUE(obs::JsonLint(line, &error)) << error << "\n" << line;
    const bool legal = line.find("\"verdict\":\"kept\"") != std::string::npos ||
                       line.find("\"verdict\":\"filtered\"") !=
                           std::string::npos ||
                       line.find("\"verdict\":\"deferred\"") !=
                           std::string::npos;
    EXPECT_TRUE(legal) << line;
    ++lines;
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(lines, buffered);
}

TEST_F(ObservabilityTest, AuditOnLeavesResultsBitIdentical) {
  const std::string path = ::testing::TempDir() + "obs_audit_identical.jsonl";
  ExperimentConfig config = TinyConfig(72);
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kAsyncFilter;

  const SimulationResult plain = RunExperiment(config);
  obs::AuditTrail::Global().Open(path);
  const SimulationResult audited = RunExperiment(config);
  obs::AuditTrail::Global().Close();
  std::remove(path.c_str());

  EXPECT_EQ(audited.final_model, plain.final_model);  // bit-exact
  EXPECT_EQ(audited.final_accuracy, plain.final_accuracy);
}

TEST_F(ObservabilityTest, ExporterOnLeavesResultsBitIdentical) {
  ExperimentConfig config = TinyConfig(73);
  config.attack = attacks::AttackKind::kGd;
  config.defense = DefenseKind::kAsyncFilter;

  const SimulationResult off = RunExperiment(config);
  SimulationResult on;
  {
    obs::MetricsExporter exporter;  // live on an ephemeral port for the run
    ASSERT_NE(exporter.port(), 0);
    on = RunExperiment(config);
  }
  EXPECT_EQ(on.final_model, off.final_model);  // bit-exact
  EXPECT_EQ(on.final_accuracy, off.final_accuracy);
  EXPECT_EQ(on.rounds.size(), off.rounds.size());
}

TEST(TraceContextTest, TraceIdsAreDeterministicNonZeroAndDistinct) {
  // Same (seed, client, job) → same id on server and client; trace-plane
  // zero ("no context") can never be produced.
  EXPECT_EQ(TraceIdFor(42, 3, 7), TraceIdFor(42, 3, 7));
  std::set<std::uint64_t> ids;
  for (int client = 0; client < 8; ++client) {
    for (std::uint64_t job = 0; job < 8; ++job) {
      const std::uint64_t id = TraceIdFor(42, client, job);
      EXPECT_NE(id, 0u);
      ids.insert(id);
    }
  }
  EXPECT_EQ(ids.size(), 64u);  // no collisions across a small grid
  EXPECT_NE(TraceIdFor(42, 3, 7), TraceIdFor(43, 3, 7));  // seed matters

  // Span ids within a trace are distinct from each other and the trace id.
  const std::uint64_t trace = TraceIdFor(42, 3, 7);
  const std::set<std::uint64_t> span_ids{trace, DispatchSpanId(trace),
                                         TrainSpanId(trace),
                                         DefenseSpanId(trace)};
  EXPECT_EQ(span_ids.size(), 4u);
}

}  // namespace
}  // namespace fl

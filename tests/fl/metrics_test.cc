#include "fl/metrics.h"

#include <gtest/gtest.h>

namespace fl {
namespace {

TEST(ConfusionCountsTest, PrecisionRecall) {
  ConfusionCounts c;
  c.true_positive = 8;
  c.false_positive = 2;
  c.false_negative = 8;
  c.true_negative = 80;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.5);
}

TEST(ConfusionCountsTest, EmptyDenominatorsGiveZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
}

TEST(ConfusionCountsTest, AddAccumulates) {
  ConfusionCounts a, b;
  a.true_positive = 1;
  b.true_positive = 2;
  b.false_negative = 3;
  a.Add(b);
  EXPECT_EQ(a.true_positive, 3u);
  EXPECT_EQ(a.false_negative, 3u);
}

TEST(FinalizeResultTest, FinalAccuracyIsMeanOfLastThreeEvals) {
  SimulationResult result;
  for (double acc : {0.1, 0.2, -1.0, 0.4, 0.6, 0.8}) {  // -1 = not evaluated
    RoundRecord r;
    r.test_accuracy = acc;
    result.rounds.push_back(r);
  }
  FinalizeResult(result);
  EXPECT_NEAR(result.final_accuracy, (0.4 + 0.6 + 0.8) / 3.0, 1e-12);
}

TEST(FinalizeResultTest, FewerThanThreeEvalsAveragesWhatExists) {
  SimulationResult result;
  RoundRecord r;
  r.test_accuracy = 0.5;
  result.rounds.push_back(r);
  FinalizeResult(result);
  EXPECT_DOUBLE_EQ(result.final_accuracy, 0.5);
}

TEST(FinalizeResultTest, NoEvalsGivesZero) {
  SimulationResult result;
  RoundRecord r;
  r.test_accuracy = -1.0;
  result.rounds.push_back(r);
  FinalizeResult(result);
  EXPECT_DOUBLE_EQ(result.final_accuracy, 0.0);
}

TEST(FinalizeResultTest, AggregatesConfusionAndDrops) {
  SimulationResult result;
  for (int i = 0; i < 3; ++i) {
    RoundRecord r;
    r.confusion.true_positive = 2;
    r.confusion.false_positive = 1;
    r.dropped_stale = 4;
    r.test_accuracy = 0.5;
    result.rounds.push_back(r);
  }
  FinalizeResult(result);
  EXPECT_EQ(result.total_confusion.true_positive, 6u);
  EXPECT_EQ(result.total_confusion.false_positive, 3u);
  EXPECT_EQ(result.total_dropped_stale, 12u);
}

}  // namespace
}  // namespace fl

// Tests for the bundled coverage-guided fuzzing engine itself: dictionary
// parsing, mutator determinism, AFL-style corpus culling, and an
// end-to-end check that the engine actually explores the frame parser
// (fuzz_frame.cc is linked into this binary for its
// LLVMFuzzerTestOneInput).
#include "engine.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace fuzz {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes ToBytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// --- ParseDictionary ----------------------------------------------------

TEST(DictionaryTest, ParsesTokensCommentsAndBlankLines) {
  const auto tokens = ParseDictionary(
      "# AFL++ dictionary\n"
      "\n"
      "magic=\"AFCZ\"\n"
      "  hello = \"hi\"  \n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], ToBytes("AFCZ"));
  EXPECT_EQ(tokens[1], ToBytes("hi"));
}

TEST(DictionaryTest, DecodesHexAndBackslashEscapes) {
  const auto tokens =
      ParseDictionary("t=\"\\x41\\x00\\\\\\\"\"\n");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], (Bytes{'A', 0x00, '\\', '"'}));
}

TEST(DictionaryTest, MalformedLinesThrowCheckError) {
  EXPECT_THROW(ParseDictionary("novalue=\n"), util::CheckError);
  EXPECT_THROW(ParseDictionary("unterminated=\"abc\n"), util::CheckError);
  EXPECT_THROW(ParseDictionary("badescape=\"\\q\"\n"), util::CheckError);
}

// --- Mutator ------------------------------------------------------------

TEST(MutatorTest, SameSeedSameSequenceIsDeterministic) {
  const std::vector<Bytes> dict = {ToBytes("AFCZ"), ToBytes("AFPM")};
  Mutator a(42, dict);
  Mutator b(42, dict);
  const Bytes base = ToBytes("the quick brown fox");
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Mutate(base, 64), b.Mutate(base, 64)) << "call " << i;
  }
}

TEST(MutatorTest, DifferentSeedsDiverge) {
  Mutator a(1, {});
  Mutator b(2, {});
  const Bytes base = ToBytes("the quick brown fox");
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = a.Mutate(base, 64) != b.Mutate(base, 64);
  }
  EXPECT_TRUE(diverged);
}

TEST(MutatorTest, RespectsMaxLen) {
  Mutator m(7, {ToBytes("a-token-longer-than-the-cap")});
  const Bytes base(24, 0xAB);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(m.Mutate(base, 16).size(), 16u);
  }
}

// --- Corpus culling -----------------------------------------------------

// Feature layout for CullTarget: inputs starting with 'F' hit one shared
// feature; a 'G' in the second byte hits another.
int CullTarget(const std::uint8_t* data, std::size_t size) {
  if (size > 0 && data[0] == 'F') {
    Observe(0xF00D);
  }
  if (size > 1 && data[1] == 'G') {
    Observe(0xBEEF);
  }
  return 0;
}

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("af_fuzz_engine_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name, const Bytes& bytes) {
    const std::string full = (path_ / name).string();
    std::ofstream out(full, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return full;
  }

 private:
  std::filesystem::path path_;
};

TEST(CullingTest, ShorterInputTakesOverFavoredStatus) {
  TempDir dir;
  // Both seeds land in the same length bucket (8..15 bytes) and hit the
  // shared 0xF00D feature; the second is shorter and adds 0xBEEF, so after
  // culling it must own every feature and be the only favored entry.
  Bytes longer = ToBytes("Fxxxxxxxxxxxxxx");  // 15 bytes, feature F only
  Bytes shorter = ToBytes("FGxxxxxx");        // 8 bytes, features F and G

  Options options;
  options.runs = 0;  // replay seeds only
  options.seed_files = {dir.File("a_long", longer),
                        dir.File("b_short", shorter)};
  Engine engine(&CullTarget, options);
  const Stats stats = engine.Run();

  EXPECT_EQ(stats.crashes, 0u);
  const auto corpus = engine.CorpusForTest();
  ASSERT_EQ(corpus.size(), 2u);
  ASSERT_EQ(corpus[0], longer);
  ASSERT_EQ(corpus[1], shorter);
  const auto favored = engine.FavoredForTest();
  ASSERT_EQ(favored.size(), 1u);
  EXPECT_EQ(favored[0], 1u) << "the shorter entry must be the favored one";
}

// --- End to end over the frame parser -----------------------------------

TEST(EngineEndToEndTest, FrameTargetReachesFeaturesWithinBudget) {
  TempDir dir;
  // One well-formed frame as the seed so mutation starts from the happy
  // path rather than having to invent the magic.
  const Bytes seed = net::EncodeFrame(net::EncodeAck({7}));

  Options options;
  options.runs = 4000;
  options.seed = 3;
  options.max_len = 256;
  options.seed_files = {dir.File("ack_frame", seed)};
  Engine engine(&LLVMFuzzerTestOneInput, options);
  const Stats stats = engine.Run();

  EXPECT_EQ(stats.crashes, 0u) << stats.last_crash_what;
  EXPECT_GE(stats.execs, 4000u);
  // Fallback novelty alone (length buckets + distinct CheckError sites +
  // harness Observes) must clear this bar comfortably; instrumented builds
  // land far above it.
  EXPECT_GE(stats.features, 12u);
  EXPECT_GE(engine.CorpusForTest().size(), 4u);
}

}  // namespace
}  // namespace fuzz

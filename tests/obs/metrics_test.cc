#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "obs/json.h"
#include "util/thread_pool.h"

namespace obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsFromThreadPoolAreExact) {
  Counter counter;
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  pool.ParallelFor(kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      counter.Increment();
    }
  });
  EXPECT_EQ(counter.Value(), kTasks * kPerTask);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
}

TEST(GaugeTest, ConcurrentAddsFromThreadPoolAreExact) {
  Gauge gauge;
  util::ThreadPool pool(4);
  pool.ParallelFor(64, [&](std::size_t) {
    for (int i = 0; i < 100; ++i) {
      gauge.Add(0.5);
    }
  });
  EXPECT_DOUBLE_EQ(gauge.Value(), 64 * 100 * 0.5);
}

TEST(HistogramTest, ExponentialBucketBounds) {
  Histogram h({.first_bound = 1.0, .growth = 2.0, .bucket_count = 4});
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(2), 4.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(4)));  // overflow bucket
}

TEST(HistogramTest, RecordLandsInTheRightBucket) {
  Histogram h({.first_bound = 1.0, .growth = 2.0, .bucket_count = 4});
  h.Record(0.5);   // bucket 0: (-inf, 1]
  h.Record(1.0);   // bucket 0 (bound is inclusive)
  h.Record(1.5);   // bucket 1: (1, 2]
  h.Record(7.9);   // bucket 3: (4, 8]
  h.Record(100.0); // overflow
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(1), 1u);
  EXPECT_EQ(h.BucketValue(2), 0u);
  EXPECT_EQ(h.BucketValue(3), 1u);
  EXPECT_EQ(h.BucketValue(4), 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 7.9 + 100.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, PercentilesBracketTheDistribution) {
  Histogram h;
  // 1000 samples uniform over (0, 1000].
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<double>(i));
  }
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  // Exponential buckets are coarse; accept the true value within one
  // bucket's width (factor-of-2 bounds around the exact percentile).
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p95, 512.0);
  EXPECT_LE(p95, 1000.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
  EXPECT_LE(h.Percentile(1.0), 1000.0);
  EXPECT_GE(h.Percentile(0.0), 0.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapseToIt) {
  Histogram h;
  h.Record(37.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 37.0);
}

TEST(HistogramTest, SamplesAboveTopBucketLandInOverflowAndClampToMax) {
  // 4 finite buckets with bounds 1, 2, 4, 8 — everything beyond 8 goes
  // into the implicit overflow bucket, and percentile extraction must
  // clamp to the observed max instead of reporting +inf or a bucket edge.
  Histogram h({.first_bound = 1.0, .growth = 2.0, .bucket_count = 4});
  h.Record(1000.0);
  h.Record(2000.0);
  ASSERT_EQ(h.BucketCount(), 5u);  // 4 finite + overflow
  EXPECT_EQ(h.BucketValue(4), 2u);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(4)));
  EXPECT_DOUBLE_EQ(h.Max(), 2000.0);
  // Percentiles interpolate within the overflow bucket but must stay
  // clamped to the observed [min, max] — finite, never +inf.
  EXPECT_GE(h.Percentile(0.99), 1000.0);
  EXPECT_LE(h.Percentile(0.99), 2000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2000.0);
  EXPECT_GE(h.Percentile(0.25), 1000.0);  // ≥ observed min
}

TEST(HistogramTest, PercentileBoundsAreClampedOnPathologicalInputs) {
  Histogram h;
  h.Record(5.0);
  // p outside [0,1] must not read outside the bucket array.
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 5.0);
}

TEST(RegistryTest, SnapshotCountMatchesBucketSumUnderConcurrentRecords) {
  // The snapshot's hist_count is derived from the summed bucket reads, not
  // the live count atomic, so a scrape racing Record() can never report
  // _count != the +Inf cumulative bucket (Prometheus consistency).
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("race.us");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h.Record(static_cast<double>(i++ % 1024));
    }
  });
  for (int i = 0; i < 50; ++i) {
    for (const MetricSnapshot& snapshot : registry.Snapshot()) {
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t count : snapshot.bucket_counts) {
        bucket_sum += count;
      }
      EXPECT_EQ(snapshot.hist_count, bucket_sum);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(HistogramTest, ConcurrentRecordsFromThreadPoolCountExactly) {
  Histogram h;
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kPerTask = 500;
  pool.ParallelFor(kTasks, [&](std::size_t t) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      h.Record(static_cast<double>(t * kPerTask + i + 1));
    }
  });
  EXPECT_EQ(h.Count(), kTasks * kPerTask);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.BucketCount(); ++i) {
    bucket_total += h.BucketValue(i);
  }
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
  // Sum of 1..N.
  const double n = static_cast<double>(kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(h.Sum(), n * (n + 1.0) / 2.0);
}

TEST(RegistryTest, SameNameAndLabelsReturnSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits", {{"path", "/x"}});
  Counter& b = registry.GetCounter("hits", {{"path", "/x"}});
  Counter& c = registry.GetCounter("hits", {{"path", "/y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.MetricCount(), 2u);
}

TEST(RegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW(registry.GetGauge("x"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("x"), std::logic_error);
}

TEST(RegistryTest, ConcurrentLookupsAndRecordsAreSafe) {
  MetricsRegistry registry;
  util::ThreadPool pool(4);
  pool.ParallelFor(64, [&](std::size_t i) {
    registry.GetCounter("shared").Increment();
    registry.GetHistogram("latency").Record(static_cast<double>(i + 1));
    registry.GetGauge("level", {{"shard", std::to_string(i % 4)}})
        .Set(static_cast<double>(i));
  });
  EXPECT_EQ(registry.GetCounter("shared").Value(), 64u);
  EXPECT_EQ(registry.GetHistogram("latency").Count(), 64u);
  EXPECT_EQ(registry.MetricCount(), 2u + 4u);
}

TEST(RegistryTest, SnapshotJsonIsValidAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("sim.rounds", {{"defense", "AsyncFilter"}}).Increment(18);
  registry.GetGauge("filter.staleness_groups").Set(5.0);
  Histogram& h = registry.GetHistogram("defense.latency_us");
  h.Record(120.0);
  h.Record(450.0);
  h.Record(9000.0);

  const std::string json = registry.SnapshotJson();
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"sim.rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"AsyncFilter\""), std::string::npos);
  EXPECT_NE(json.find("\"filter.staleness_groups\""), std::string::npos);
  EXPECT_NE(json.find("\"defense.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(RegistryTest, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("a").Increment();
  registry.GetGauge("b").Set(1.0);
  registry.Reset();
  EXPECT_EQ(registry.MetricCount(), 0u);
  EXPECT_EQ(registry.GetCounter("a").Value(), 0u);
}

TEST(JsonWriterTest, NestedStructuresAndEscaping) {
  JsonWriter json;
  json.BeginObject();
  json.Key("quote\"and\\slash").String("line\nbreak\ttab");
  json.Key("values").BeginArray().Int(-3).Number(1.5).Bool(true).Null()
      .EndArray();
  json.EndObject();
  std::string error;
  EXPECT_TRUE(JsonLint(json.str(), &error)) << error << "\n" << json.str();
  EXPECT_EQ(json.str(),
            "{\"quote\\\"and\\\\slash\":\"line\\nbreak\\ttab\","
            "\"values\":[-3,1.5,true,null]}");
}

TEST(JsonLintTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonLint("{\"a\":[1,2.5e-3,\"x\",null,false]}"));
  EXPECT_TRUE(JsonLint("  [ ]  "));
  EXPECT_FALSE(JsonLint("{\"a\":}"));
  EXPECT_FALSE(JsonLint("[1,2,]"));
  EXPECT_FALSE(JsonLint("{\"a\":1} extra"));
  EXPECT_FALSE(JsonLint("\"unterminated"));
  EXPECT_FALSE(JsonLint("01abc"));
  std::string error;
  EXPECT_FALSE(JsonLint("{\"a\" 1}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(0.25), "0.25");
}

}  // namespace
}  // namespace obs

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.h"
#include "util/thread_pool.h"

namespace obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The global recorder is process-wide state; keep it clean between tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecorderCollectsNothing) {
  {
    AF_TRACE_SPAN("should.not.appear");
  }
  EXPECT_EQ(TraceRecorder::Global().SpanCount(), 0u);
}

TEST_F(TraceTest, EnabledRecorderCollectsScopedSpans) {
  TraceRecorder::Global().SetEnabled(true);
  {
    AF_TRACE_SPAN("outer");
    AF_TRACE_SPAN("inner");
  }
  TraceRecorder::Global().SetEnabled(false);
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by begin time: outer starts first and ends last.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].begin_ns, events[1].begin_ns);
  EXPECT_GE(events[0].end_ns, events[1].end_ns);
  EXPECT_GE(events[0].end_ns, events[0].begin_ns);
}

TEST_F(TraceTest, SpansFromWorkerThreadsCarryDistinctThreadIds) {
  TraceRecorder::Global().SetEnabled(true);
  util::ThreadPool pool(3);
  pool.ParallelFor(12, [&](std::size_t) {
    AF_TRACE_SPAN("worker.span");
  });
  TraceRecorder::Global().SetEnabled(false);
  const auto events = TraceRecorder::Global().Snapshot();
  // ≥ 12: the pool itself records threadpool.task spans while tracing is on.
  EXPECT_GE(events.size(), 12u);
  std::size_t named = 0;
  for (const auto& event : events) {
    if (std::string_view(event.name) == "worker.span") {
      ++named;
    }
  }
  EXPECT_EQ(named, 12u);
}

TEST_F(TraceTest, RingBufferWrapsAndCountsDrops) {
  TraceRecorder recorder({.shard_count = 1, .shard_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    recorder.Record("span", static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(recorder.SpanCount(), 4u);
  EXPECT_EQ(recorder.DroppedCount(), 6u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The oldest entries were overwritten; the newest four survive.
  EXPECT_EQ(events.front().begin_ns, 6u);
  EXPECT_EQ(events.back().begin_ns, 9u);
  recorder.Clear();
  EXPECT_EQ(recorder.SpanCount(), 0u);
  EXPECT_EQ(recorder.DroppedCount(), 0u);
}

TEST_F(TraceTest, ChromeTraceExportIsValidJsonWithExpectedFields) {
  TraceRecorder recorder;
  recorder.Record("defense.process", 1000, 5000);
  recorder.Record("kmeans.iter", 2000, 2500);
  const std::string path = ::testing::TempDir() + "chrome_trace_test.json";
  recorder.WriteChromeTrace(path);

  const std::string contents = ReadAll(path);
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(JsonLint(contents, &error)) << error << "\n" << contents;
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"defense.process\""), std::string::npos);
  EXPECT_NE(contents.find("\"kmeans.iter\""), std::string::npos);
  EXPECT_NE(contents.find("\"ph\":\"X\""), std::string::npos);
  // Timestamps are normalised: the earliest span starts at ts 0 and the
  // second starts 1μs later.
  EXPECT_NE(contents.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(contents.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(contents.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(contents.find("\"dropped_spans\":0"), std::string::npos);
}

TEST_F(TraceTest, EmptyRecorderStillWritesValidTraceFile) {
  TraceRecorder recorder;
  const std::string path = ::testing::TempDir() + "chrome_trace_empty.json";
  recorder.WriteChromeTrace(path);
  const std::string contents = ReadAll(path);
  std::remove(path.c_str());
  std::string error;
  EXPECT_TRUE(JsonLint(contents, &error)) << error;
  EXPECT_NE(contents.find("\"traceEvents\":[]"), std::string::npos);
}

TEST_F(TraceTest, TraceContextRidesAlongWithSpans) {
  TraceRecorder recorder;
  recorder.Record("plain", 10, 20);
  recorder.Record("traced", 30, 40, {0x1234ull, 0x5678ull, 0x9ABCull});
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].context.trace_id, 0u);
  EXPECT_EQ(events[1].context.trace_id, 0x1234ull);
  EXPECT_EQ(events[1].context.span_id, 0x5678ull);
  EXPECT_EQ(events[1].context.parent_id, 0x9ABCull);
}

TEST_F(TraceTest, ChromeTraceExportCarriesHexTraceIdArgs) {
  TraceRecorder recorder;
  recorder.Record("plain", 1000, 2000);
  recorder.Record("traced", 3000, 4000, {0xDEADBEEFull, 7, 3});
  const std::string path = ::testing::TempDir() + "chrome_trace_context.json";
  recorder.WriteChromeTrace(path);
  const std::string contents = ReadAll(path);
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(JsonLint(contents, &error)) << error << "\n" << contents;
  // Ids appear as 16-hex-digit strings (64-bit ids do not survive JSON
  // doubles); a context-free span emits no trace_id arg at all.
  EXPECT_NE(contents.find("\"trace_id\":\"" + TraceIdHex(0xDEADBEEFull)),
            std::string::npos);
  EXPECT_EQ(contents.find("\"trace_id\":\"" + TraceIdHex(0)),
            std::string::npos);
}

TEST_F(TraceTest, TraceIdHexIsZeroPadded16DigitLowercase) {
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(TraceIdHex(0xABCull), "0000000000000abc");
  EXPECT_EQ(TraceIdHex(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

TEST_F(TraceTest, ScopedSpanPropagatesItsContext) {
  TraceRecorder::Global().SetEnabled(true);
  {
    ScopedSpan span("ctx.span", {42, 43, 44});
  }
  TraceRecorder::Global().SetEnabled(false);
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].context.trace_id, 42u);
  EXPECT_EQ(events[0].context.span_id, 43u);
  EXPECT_EQ(events[0].context.parent_id, 44u);
}

TEST_F(TraceTest, ConcurrentRecordingNeverLosesUnwrappedSpans) {
  TraceRecorder recorder;  // default capacity far exceeds this load
  util::ThreadPool pool(4);
  constexpr std::size_t kSpansPerTask = 200;
  pool.ParallelFor(16, [&](std::size_t) {
    for (std::size_t i = 0; i < kSpansPerTask; ++i) {
      const std::uint64_t now = TraceRecorder::NowNs();
      recorder.Record("hammer", now, now + 10);
    }
  });
  EXPECT_EQ(recorder.SpanCount(), 16u * kSpansPerTask);
  EXPECT_EQ(recorder.DroppedCount(), 0u);
}

}  // namespace
}  // namespace obs

// The defense-decision audit trail: JSONL schema (null rules included),
// in-memory tallies, and closed-trail no-op behaviour.
#include "obs/audit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(AuditTrailTest, WritesOneValidJsonObjectPerRecord) {
  const std::string path = ::testing::TempDir() + "audit_basic.jsonl";
  AuditTrail trail;
  trail.Open(path);
  EXPECT_TRUE(trail.enabled());

  AuditRecord scored;
  scored.round = 3;
  scored.client_id = 7;
  scored.staleness = 2;
  scored.has_score = true;
  scored.score = 0.8125;
  scored.verdict = AuditVerdict::kFiltered;
  scored.codec = "fp16";
  scored.wire_bytes = 1234;
  scored.queue_wait_us = 55.5;
  scored.scoring_us = 12.0;
  scored.trace_id = 0xDEADBEEFull;
  trail.Append(scored);

  AuditRecord bare;  // every optional field at its "unknown" default
  bare.round = 4;
  bare.client_id = 1;
  bare.verdict = AuditVerdict::kKept;
  trail.Append(bare);
  trail.Close();
  EXPECT_FALSE(trail.enabled());

  const auto lines = ReadLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(JsonLint(line, &error)) << error << "\n" << line;
  }
  EXPECT_TRUE(Contains(lines[0], "\"verdict\":\"filtered\""));
  EXPECT_TRUE(Contains(lines[0], "\"score\":0.8125"));
  EXPECT_TRUE(Contains(lines[0], "\"codec\":\"fp16\""));
  EXPECT_TRUE(Contains(lines[0], "\"wire_bytes\":1234"));
  EXPECT_TRUE(
      Contains(lines[0], "\"trace_id\":\"" + TraceIdHex(0xDEADBEEFull)));
  // Unknowns are explicit nulls, never absent and never fake zeros.
  EXPECT_TRUE(Contains(lines[1], "\"verdict\":\"kept\""));
  EXPECT_TRUE(Contains(lines[1], "\"score\":null"));
  EXPECT_TRUE(Contains(lines[1], "\"codec\":null"));
  EXPECT_TRUE(Contains(lines[1], "\"wire_bytes\":null"));
  EXPECT_TRUE(Contains(lines[1], "\"queue_wait_us\":null"));
  EXPECT_TRUE(Contains(lines[1], "\"trace_id\":null"));
}

TEST(AuditTrailTest, TalliesPerClientVerdicts) {
  const std::string path = ::testing::TempDir() + "audit_tallies.jsonl";
  AuditTrail trail;
  trail.Open(path);
  for (int i = 0; i < 3; ++i) {
    AuditRecord r;
    r.client_id = 5;
    r.verdict = AuditVerdict::kKept;
    trail.Append(r);
  }
  AuditRecord filtered;
  filtered.client_id = 5;
  filtered.verdict = AuditVerdict::kFiltered;
  trail.Append(filtered);
  AuditRecord deferred;
  deferred.client_id = 9;
  deferred.verdict = AuditVerdict::kDeferred;
  trail.Append(deferred);
  trail.Close();
  std::remove(path.c_str());

  EXPECT_EQ(trail.RecordCount(), 5u);
  const auto counts = trail.CountsByClient();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at(5).kept, 3u);
  EXPECT_EQ(counts.at(5).filtered, 1u);
  EXPECT_EQ(counts.at(5).deferred, 0u);
  EXPECT_EQ(counts.at(9).deferred, 1u);
}

TEST(AuditTrailTest, ClosedTrailDropsAppendsSilently) {
  AuditTrail trail;
  EXPECT_FALSE(trail.enabled());
  trail.Append({});  // must be a no-op, not a crash
  EXPECT_EQ(trail.RecordCount(), 0u);
  trail.Close();  // closing a closed trail is fine too
}

TEST(AuditTrailTest, ReopenTruncatesAndResetsTallies) {
  const std::string path = ::testing::TempDir() + "audit_reopen.jsonl";
  AuditTrail trail;
  trail.Open(path);
  AuditRecord r;
  r.client_id = 2;
  trail.Append(r);
  trail.Close();

  trail.Open(path);  // same file: truncate, zero the counters
  EXPECT_EQ(trail.RecordCount(), 0u);
  EXPECT_TRUE(trail.CountsByClient().empty());
  trail.Close();
  EXPECT_TRUE(ReadLines(path).empty());
  std::remove(path.c_str());
}

TEST(AuditTrailTest, OpenThrowsOnUnwritablePath) {
  AuditTrail trail;
  EXPECT_THROW(trail.Open("/nonexistent-dir/audit.jsonl"),
               std::runtime_error);
  EXPECT_FALSE(trail.enabled());
}

TEST(AuditVerdictNameTest, CoversEveryVerdict) {
  EXPECT_STREQ(AuditVerdictName(AuditVerdict::kKept), "kept");
  EXPECT_STREQ(AuditVerdictName(AuditVerdict::kFiltered), "filtered");
  EXPECT_STREQ(AuditVerdictName(AuditVerdict::kDeferred), "deferred");
}

}  // namespace
}  // namespace obs

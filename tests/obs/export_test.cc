// The live observability endpoint: Prometheus text formatting (pure
// functions over a registry) and the embedded HTTP exporter end to end
// over a real loopback socket.
#include "obs/export.h"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <sstream>
#include <string>
#include <vector>

#include "net/socket.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(PrometheusTextTest, SanitizesNamesAndEmitsTypes) {
  MetricsRegistry registry;
  registry.GetCounter("sim.updates_accepted").Increment(7);
  registry.GetGauge("net.server.connected_clients").Set(12.0);

  const std::string text = PrometheusText(registry);
  // Dots become underscores; every family gets a # TYPE before samples.
  EXPECT_TRUE(Contains(text, "# TYPE net_server_connected_clients gauge"));
  EXPECT_TRUE(Contains(text, "net_server_connected_clients 12"));
  EXPECT_TRUE(Contains(text, "# TYPE sim_updates_accepted counter"));
  EXPECT_TRUE(Contains(text, "sim_updates_accepted 7"));
  EXPECT_FALSE(Contains(text, "sim.updates"));  // no raw dots survive
}

TEST(PrometheusTextTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("evil.counter", {{"defense", "back\\slash\"quote\n"}})
      .Increment(1);
  const std::string text = PrometheusText(registry);
  EXPECT_TRUE(
      Contains(text, "evil_counter{defense=\"back\\\\slash\\\"quote\\n\"} 1"));
  // No raw newline may survive inside a sample line.
  for (const std::string& line : Lines(text)) {
    EXPECT_EQ(line.find("quote\n"), std::string::npos);
  }
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeEndingInInf) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram(
      "lat.us", {}, {.first_bound = 1.0, .growth = 2.0, .bucket_count = 4});
  hist.Record(0.5);   // bucket le=1
  hist.Record(1.5);   // bucket le=2
  hist.Record(100.0); // overflow → only +Inf

  const std::string text = PrometheusText(registry);
  EXPECT_TRUE(Contains(text, "# TYPE lat_us histogram"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"1\"} 1"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"2\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"4\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"8\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(Contains(text, "lat_us_count 3"));
  EXPECT_TRUE(Contains(text, "lat_us_sum 102"));

  // The +Inf bucket is the last bucket line and equals _count.
  const auto lines = Lines(text);
  std::string last_bucket;
  for (const std::string& line : lines) {
    if (line.rfind("lat_us_bucket", 0) == 0) {
      last_bucket = line;
    }
  }
  EXPECT_TRUE(Contains(last_bucket, "le=\"+Inf\""));
}

TEST(PrometheusTextTest, EmptyRegistryProducesEmptyExposition) {
  MetricsRegistry registry;
  EXPECT_TRUE(PrometheusText(registry).empty());
}

TEST(HealthzJsonTest, IsValidJsonWithExpectedKeys) {
  MetricsRegistry registry;
  registry.GetGauge("sim.round", {{"defense", "AsyncFilter"}}).Set(17.0);
  registry.GetCounter("net.server.evictions").Increment(2);
  TraceRecorder recorder;
  recorder.Record("x", 1, 2);

  const std::string json = HealthzJson(registry, recorder);
  std::string error;
  ASSERT_TRUE(JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_TRUE(Contains(json, "\"status\":\"ok\""));
  EXPECT_TRUE(Contains(json, "\"round\":17"));
  EXPECT_TRUE(Contains(json, "\"evictions\":2"));
  EXPECT_TRUE(Contains(json, "\"spans\":1"));
}

TEST(SpansJsonTest, TailsSpansWithHexTraceIds) {
  TraceRecorder recorder;
  recorder.Record("plain", 10, 20);
  recorder.Record("traced", 30, 40, {0xABCDull, 2, 1});

  const std::string json = SpansJson(recorder, 16);
  std::string error;
  ASSERT_TRUE(JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_TRUE(Contains(json, "\"traced\""));
  EXPECT_TRUE(Contains(json, TraceIdHex(0xABCDull)));
  // The plain span carries no trace id field.
  EXPECT_TRUE(Contains(json, "\"plain\""));
}

// --- HTTP round trips over a real loopback socket ----------------------

std::string HttpGet(std::uint16_t port, const std::string& path) {
  net::Connection conn = net::ConnectWithRetry(port, {}, 1);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  conn.SendBytes(
      {reinterpret_cast<const std::uint8_t*>(request.data()), request.size()},
      2000);
  // The Connection fd may be non-blocking; poll before every read and stop
  // on EOF (the server closes after each response — HTTP/1.0).
  std::string response;
  char buf[4096];
  for (;;) {
    pollfd pfd{conn.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) {
      ADD_FAILURE() << "timed out waiting for the exporter's response";
      break;
    }
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string Body(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(MetricsExporterTest, ServesMetricsOverHttp) {
  DefaultRegistry().GetCounter("export_test.requests").Increment(3);
  MetricsExporter exporter;  // ephemeral port
  ASSERT_NE(exporter.port(), 0);

  const std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_TRUE(Contains(response, "HTTP/1.0 200 OK"));
  EXPECT_TRUE(Contains(response, "text/plain; version=0.0.4"));
  EXPECT_TRUE(Contains(Body(response), "export_test_requests 3"));
  exporter.Stop();
  EXPECT_GE(exporter.requests_served(), 1u);
}

TEST(MetricsExporterTest, ServesHealthzAndSpansAsValidJson) {
  MetricsExporter exporter;
  for (const char* path : {"/healthz", "/spans"}) {
    SCOPED_TRACE(path);
    const std::string response = HttpGet(exporter.port(), path);
    EXPECT_TRUE(Contains(response, "HTTP/1.0 200 OK"));
    EXPECT_TRUE(Contains(response, "application/json"));
    std::string error;
    EXPECT_TRUE(JsonLint(Body(response), &error)) << error;
  }
}

TEST(MetricsExporterTest, UnknownPathIs404) {
  MetricsExporter exporter;
  const std::string response = HttpGet(exporter.port(), "/nope");
  EXPECT_TRUE(Contains(response, "HTTP/1.0 404"));
}

TEST(MetricsExporterTest, StopIsIdempotentAndJoinsTheThread) {
  MetricsExporter exporter;
  exporter.Stop();
  exporter.Stop();  // second call must be a no-op, not a crash
}

}  // namespace
}  // namespace obs

// Property-style check: anything JsonWriter emits must pass JsonLint, across
// nesting depths, escapes, and awkward numbers.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace obs {
namespace {

TEST(JsonRoundtripTest, DeeplyNestedStructuresLint) {
  JsonWriter json;
  json.BeginObject();
  json.Key("levels").BeginArray();
  for (int i = 0; i < 10; ++i) {
    json.BeginObject();
    json.Key("depth").Int(i);
    json.Key("children").BeginArray().Int(i).Int(i + 1).EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("empty_object").BeginObject().EndObject();
  json.Key("empty_array").BeginArray().EndArray();
  json.EndObject();
  std::string error;
  EXPECT_TRUE(JsonLint(json.str(), &error)) << error << "\n" << json.str();
}

TEST(JsonRoundtripTest, EveryControlCharacterIsEscaped) {
  std::string nasty;
  for (char c = 1; c < 0x20; ++c) {
    nasty.push_back(c);
  }
  nasty += "\"\\/ plain text";
  JsonWriter json;
  json.BeginObject();
  json.Key(nasty).String(nasty);
  json.EndObject();
  std::string error;
  EXPECT_TRUE(JsonLint(json.str(), &error)) << error << "\n" << json.str();
}

TEST(JsonRoundtripTest, AwkwardNumbersLint) {
  JsonWriter json;
  json.BeginArray();
  json.Number(0.0);
  json.Number(-0.0);
  json.Number(1e-300);
  json.Number(1e300);
  json.Number(std::numeric_limits<double>::quiet_NaN());       // -> null
  json.Number(-std::numeric_limits<double>::infinity());       // -> null
  json.Int(std::numeric_limits<long long>::min());
  json.UInt(std::numeric_limits<unsigned long long>::max());
  json.EndArray();
  std::string error;
  EXPECT_TRUE(JsonLint(json.str(), &error)) << error << "\n" << json.str();
}

TEST(JsonRoundtripTest, TakeStringResetsTheWriter) {
  JsonWriter json;
  json.BeginObject().Key("a").Int(1).EndObject();
  const std::string first = json.TakeString();
  EXPECT_TRUE(JsonLint(first));
  json.BeginArray().Bool(false).EndArray();
  const std::string second = json.TakeString();
  EXPECT_TRUE(JsonLint(second));
  EXPECT_EQ(first, "{\"a\":1}");
  EXPECT_EQ(second, "[false]");
}

}  // namespace
}  // namespace obs

#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <random>

#include "util/check.h"
#include "util/rng.h"

namespace tensor {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c({2, 2});
  MatMul(a, b, c);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityLeavesMatrixUnchanged) {
  Tensor eye({3, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    eye.At(i, i) = 1.0f;
  }
  Tensor m({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out({3, 3});
  MatMul(eye, m, out);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(out[i], m[i]);
  }
}

TEST(MatMulTest, DimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  Tensor c({2, 2});
  EXPECT_THROW(MatMul(a, b, c), util::CheckError);
}

TEST(MatMulTransposeBTest, MatchesExplicitTranspose) {
  util::RngFactory rngs(11);
  auto rng = rngs.Stream("ops");
  Tensor a({4, 5});
  Tensor b({3, 5});  // B^T is 5×3
  a.FillNormal(0.0f, 1.0f, rng);
  b.FillNormal(0.0f, 1.0f, rng);
  Tensor bt({5, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      bt.At(j, i) = b.At(i, j);
    }
  }
  Tensor expected({4, 3});
  MatMul(a, bt, expected);
  Tensor actual({4, 3});
  MatMulTransposeB(a, b, actual);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4);
  }
}

TEST(MatMulTransposeATest, MatchesExplicitTranspose) {
  util::RngFactory rngs(12);
  auto rng = rngs.Stream("ops");
  Tensor a({6, 4});  // A^T is 4×6
  Tensor b({6, 3});
  a.FillNormal(0.0f, 1.0f, rng);
  b.FillNormal(0.0f, 1.0f, rng);
  Tensor at({4, 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      at.At(j, i) = a.At(i, j);
    }
  }
  Tensor expected({4, 3});
  MatMul(at, b, expected);
  Tensor actual({4, 3});
  MatMulTransposeA(a, b, actual);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4);
  }
}

TEST(AddOpsTest, AddIntoAndInPlace) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  Tensor out({3});
  AddInto(a, b, out);
  EXPECT_FLOAT_EQ(out[2], 33.0f);
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a[0], 11.0f);
}

TEST(AddRowBiasTest, AddsBiasToEveryRow) {
  Tensor m({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {1, 2, 3});
  AddRowBias(m, bias);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 3.0f);
}

TEST(SumRowsTest, ColumnSums) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out({3});
  SumRows(m, out);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
  EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(SumRowsTest, WrongOutputSizeThrows) {
  Tensor m({2, 3});
  Tensor out({2});
  EXPECT_THROW(SumRows(m, out), util::CheckError);
}

}  // namespace
}  // namespace tensor

#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "obs/metrics.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace tensor {
namespace {

float LogicalAt(const Tensor& t, Op op, std::size_t i, std::size_t j) {
  return op == Op::kNone ? t.At(i, j) : t.At(j, i);
}

// Naive triple-loop reference with double accumulation.
void ReferenceGemm(Op op_a, Op op_b, const Tensor& a, const Tensor& b,
                   Tensor& c, const float* bias, float beta) {
  const std::size_t m = c.dim(0), n = c.dim(1);
  const std::size_t k = op_a == Op::kNone ? a.dim(1) : a.dim(0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(LogicalAt(a, op_a, i, p)) *
               LogicalAt(b, op_b, p, j);
      }
      if (bias != nullptr) {
        acc += bias[j];
      }
      const double base = beta != 0.0f ? c.At(i, j) : 0.0;
      c.At(i, j) = static_cast<float>(base + acc);
    }
  }
}

Tensor RandomTensor(Shape shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  t.FillNormal(0.0f, 1.0f, rng);
  return t;
}

struct GemmShape {
  std::size_t m, n, k;
};

// Shapes chosen to cross every blocking boundary: micro-tile remainders
// (6/16 non-multiples), the MC=96 row-tile edge, the KC=256 reduction
// blocks, degenerate 0/1 extents, and LeNet-scale layers.
const GemmShape kShapes[] = {
    {0, 4, 3},   {4, 0, 3},    {4, 3, 0},   {1, 1, 1},   {2, 3, 4},
    {6, 16, 8},  {7, 17, 9},   {5, 20, 513}, {13, 17, 300}, {97, 33, 31},
    {100, 10, 5}, {64, 120, 400}, {12, 130, 37},
};

TEST(GemmTest, MatchesNaiveReferenceAcrossShapesAndTransposes) {
  std::mt19937_64 rng(1234);
  for (const GemmShape& s : kShapes) {
    for (Op op_a : {Op::kNone, Op::kTranspose}) {
      for (Op op_b : {Op::kNone, Op::kTranspose}) {
        Tensor a = RandomTensor(op_a == Op::kNone ? Shape{s.m, s.k}
                                                  : Shape{s.k, s.m},
                                rng);
        Tensor b = RandomTensor(op_b == Op::kNone ? Shape{s.k, s.n}
                                                  : Shape{s.n, s.k},
                                rng);
        Tensor c({s.m, s.n});
        Tensor expected({s.m, s.n});
        Gemm(op_a, op_b, a, b, c);
        ReferenceGemm(op_a, op_b, a, b, expected, nullptr, 0.0f);
        const double tol = 1e-4 * static_cast<double>(s.k + 10);
        for (std::size_t i = 0; i < c.size(); ++i) {
          ASSERT_NEAR(c[i], expected[i], tol)
              << "shape " << s.m << "x" << s.n << "x" << s.k << " ops "
              << static_cast<int>(op_a) << "," << static_cast<int>(op_b)
              << " index " << i;
        }
      }
    }
  }
}

TEST(GemmTest, BiasEpilogueAndAccumulateMatchReference) {
  std::mt19937_64 rng(99);
  for (const GemmShape& s : kShapes) {
    Tensor a = RandomTensor({s.m, s.k}, rng);
    Tensor b = RandomTensor({s.k, s.n}, rng);
    Tensor bias = RandomTensor({s.n}, rng);

    Tensor c({s.m, s.n});
    Tensor expected({s.m, s.n});
    Gemm(Op::kNone, Op::kNone, a, b, c, bias.data().data());
    ReferenceGemm(Op::kNone, Op::kNone, a, b, expected, bias.data().data(),
                  0.0f);
    const double tol = 1e-4 * static_cast<double>(s.k + 10);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expected[i], tol) << "bias, index " << i;
    }

    // beta = 1 accumulates on top of existing contents.
    Tensor acc = RandomTensor({s.m, s.n}, rng);
    Tensor acc_expected = acc;
    Gemm(Op::kNone, Op::kNone, a, b, acc, nullptr, 1.0f);
    ReferenceGemm(Op::kNone, Op::kNone, a, b, acc_expected, nullptr, 1.0f);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      ASSERT_NEAR(acc[i], acc_expected[i], tol) << "beta=1, index " << i;
    }
  }
}

TEST(GemmTest, KZeroWritesBiasOrZero) {
  Tensor a({3, 0});
  Tensor b({0, 4});
  Tensor c({3, 4}, std::vector<float>(12, 7.0f));
  Gemm(Op::kNone, Op::kNone, a, b, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_FLOAT_EQ(c[i], 0.0f);
  }
  Tensor bias({4}, {1, 2, 3, 4});
  Gemm(Op::kNone, Op::kNone, a, b, c, bias.data().data());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(c.At(i, j), bias[j]);
    }
  }
}

TEST(GemmTest, BitIdenticalAcrossRunsAndThreadCounts) {
  std::mt19937_64 rng(7);
  Tensor a = RandomTensor({200, 520}, rng);
  Tensor b = RandomTensor({520, 300}, rng);

  Tensor serial1({200, 300});
  Tensor serial2({200, 300});
  Gemm(Op::kNone, Op::kNone, a, b, serial1);
  Gemm(Op::kNone, Op::kNone, a, b, serial2);
  ASSERT_EQ(std::memcmp(serial1.data().data(), serial2.data().data(),
                        serial1.size() * sizeof(float)),
            0)
      << "repeated serial runs differ";

  for (std::size_t threads : {2u, 4u, 7u}) {
    util::ThreadPool pool(threads);
    Tensor parallel({200, 300});
    Sgemm(Op::kNone, Op::kNone, 200, 300, 520, a.data().data(), 520,
          b.data().data(), 300, parallel.data().data(), 300, nullptr, 0.0f,
          &pool);
    ASSERT_EQ(std::memcmp(serial1.data().data(), parallel.data().data(),
                          serial1.size() * sizeof(float)),
              0)
        << "serial vs " << threads << " threads differ";
  }
}

TEST(GemmTest, ScalarAndAvx2PathsAgree) {
  if (!kernels::Avx2Available()) {
    GTEST_SKIP() << "no AVX2 on this machine";
  }
  std::mt19937_64 rng(21);
  Tensor a = RandomTensor({37, 301}, rng);
  Tensor b = RandomTensor({301, 45}, rng);
  Tensor scalar({37, 45});
  Tensor avx2({37, 45});
  kernels::ForceIsa(kernels::Isa::kScalar);
  Gemm(Op::kNone, Op::kNone, a, b, scalar);
  kernels::ForceIsa(kernels::Isa::kAvx2);
  Gemm(Op::kNone, Op::kNone, a, b, avx2);
  kernels::ResetForcedIsa();
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_NEAR(scalar[i], avx2[i], 1e-3) << "index " << i;
  }
}

// Regression for the seed's `if (av == 0.0f) continue;` shortcut, which
// silently dropped NaN/Inf propagation from the other operand.
TEST(GemmTest, ZeroTimesNaNPropagates) {
  Tensor a({2, 2});  // all zeros
  Tensor b({2, 2});
  b.At(0, 0) = std::numeric_limits<float>::quiet_NaN();
  Tensor c({2, 2});
  MatMul(a, b, c);
  EXPECT_TRUE(std::isnan(c.At(0, 0)));
  EXPECT_TRUE(std::isnan(c.At(1, 0)));

  Tensor at({2, 2});
  Tensor ct({2, 2});
  MatMulTransposeA(at, b, ct);
  EXPECT_TRUE(std::isnan(ct.At(0, 0)));
}

TEST(GemmTest, RecordsObsCounters) {
  auto& reg = obs::DefaultRegistry();
  const std::uint64_t calls_before = reg.GetCounter("gemm.calls").Value();
  const std::uint64_t flops_before = reg.GetCounter("gemm.flops").Value();
  std::mt19937_64 rng(3);
  Tensor a = RandomTensor({8, 12}, rng);
  Tensor b = RandomTensor({12, 5}, rng);
  Tensor c({8, 5});
  Gemm(Op::kNone, Op::kNone, a, b, c);
  EXPECT_EQ(reg.GetCounter("gemm.calls").Value(), calls_before + 1);
  EXPECT_EQ(reg.GetCounter("gemm.flops").Value(),
            flops_before + 2ull * 8 * 5 * 12);
  EXPECT_GT(reg.GetCounter("gemm.bytes_packed").Value(), 0u);
}

TEST(GemmTest, MismatchedShapesThrow) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  Tensor c({2, 2});
  EXPECT_THROW(Gemm(Op::kNone, Op::kNone, a, b, c), util::CheckError);
  Tensor bias({2});
  Tensor b_ok({3, 2});
  EXPECT_THROW(Gemm(Op::kNone, Op::kNone, a, b_ok, c, bias.data().data(), 1.0f),
               util::CheckError);
}

}  // namespace
}  // namespace tensor

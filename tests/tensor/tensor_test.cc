#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace tensor {
namespace {

TEST(TensorTest, NumElements) {
  EXPECT_EQ(NumElements({}), 0u);
  EXPECT_EQ(NumElements({5}), 5u);
  EXPECT_EQ(NumElements({2, 3, 4}), 24u);
  EXPECT_EQ(NumElements({2, 0, 4}), 0u);
}

TEST(TensorTest, ShapeConstructionZeroInitialises) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, DataConstructionChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f}));
  EXPECT_THROW(Tensor({2, 2}, {1.0f}), util::CheckError);
}

TEST(TensorTest, TwoDimAccessorRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.At(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(t.At(1, 0), 3.0f);
  t.At(1, 1) = 9.0f;
  EXPECT_FLOAT_EQ(t[4], 9.0f);
}

TEST(TensorTest, FourDimAccessorNchw) {
  Tensor t({2, 3, 4, 5});
  t.At(1, 2, 3, 4) = 1.5f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 1.5f);
}

TEST(TensorTest, AccessorRankMismatchThrows) {
  Tensor t({6});
  EXPECT_THROW(t.At(0, 0), util::CheckError);
  EXPECT_THROW(t.At(0, 0, 0, 0), util::CheckError);
}

TEST(TensorTest, ReshapePreservesDataAndChecksCount) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  t.Reshape({3, 2});
  EXPECT_FLOAT_EQ(t.At(2, 1), 5.0f);
  EXPECT_THROW(t.Reshape({4, 2}), util::CheckError);
}

TEST(TensorTest, FillSetsEveryElement) {
  Tensor t({3, 3});
  t.Fill(2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 2.5f);
  }
}

TEST(TensorTest, FillUniformRespectsBounds) {
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("t");
  Tensor t({1000});
  t.FillUniform(-0.5f, 0.5f, rng);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LE(t[i], 0.5f);
  }
}

TEST(TensorTest, FillNormalHasRequestedMoments) {
  util::RngFactory rngs(2);
  auto rng = rngs.Stream("t");
  Tensor t({20000});
  t.FillNormal(1.0f, 2.0f, rng);
  double mean = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    mean += t[i];
  }
  mean /= static_cast<double>(t.size());
  EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(TensorTest, DefaultTensorIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

}  // namespace
}  // namespace tensor

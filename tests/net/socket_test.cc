#include "net/socket.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "compress/codec.h"
#include "net/server.h"
#include "util/check.h"

namespace net {
namespace {

TEST(BackoffTest, DelaysStayWithinDecorrelatedBounds) {
  // Every delay must land in [base, cap], and — decorrelated jitter — in
  // [base, prev * multiplier] before the cap binds.
  RetryConfig config;
  config.initial_backoff_ms = 10.0;
  config.multiplier = 3.0;
  config.max_backoff_ms = 200.0;
  BackoffSchedule schedule(config, 42);
  double prev = config.initial_backoff_ms;
  for (int i = 0; i < 200; ++i) {
    const double delay = schedule.NextDelayMs();
    EXPECT_GE(delay, config.initial_backoff_ms);
    EXPECT_LE(delay, config.max_backoff_ms);
    EXPECT_LE(delay, std::max(config.initial_backoff_ms,
                              prev * config.multiplier) +
                         1e-9);
    prev = delay;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndDecorrelatedAcrossSeeds) {
  RetryConfig config;
  BackoffSchedule a(config, 7);
  BackoffSchedule b(config, 7);
  BackoffSchedule c(config, 8);
  bool any_differs = false;
  for (int i = 0; i < 50; ++i) {
    const double da = a.NextDelayMs();
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs());  // same seed → same schedule
    any_differs = any_differs || da != c.NextDelayMs();
  }
  EXPECT_TRUE(any_differs);  // different seeds → different schedules
}

TEST(BackoffTest, ResetRestartsAtBaseButKeepsAdvancingRng) {
  RetryConfig config;
  config.initial_backoff_ms = 5.0;
  config.multiplier = 2.0;
  config.max_backoff_ms = 1000.0;
  BackoffSchedule schedule(config, 99);
  // First post-Reset draw is bounded by base * multiplier (prev == base).
  for (int cycle = 0; cycle < 5; ++cycle) {
    schedule.Reset();
    const double first = schedule.NextDelayMs();
    EXPECT_GE(first, config.initial_backoff_ms);
    EXPECT_LE(first, config.initial_backoff_ms * config.multiplier);
  }
}

TEST(BackoffTest, DegenerateConfigPinsToBase) {
  // multiplier <= 1 (or cap == base) collapses the window to a point.
  RetryConfig config;
  config.initial_backoff_ms = 10.0;
  config.multiplier = 1.0;
  config.max_backoff_ms = 10.0;
  BackoffSchedule schedule(config, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 10.0);
  }
}

TEST(SocketTest, FrameRoundTripOverLoopback) {
  Listener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread peer([&listener] {
    Connection server_side(listener.Accept());
    Frame frame;
    ASSERT_TRUE(server_side.RecvFrame(&frame, 2000));
    const AckMsg hello = DecodeAck(frame);
    server_side.SendFrame(EncodeAck({hello.value + 1}), 2000);
  });

  Connection client = ConnectWithRetry(listener.port(), RetryConfig{}, 3);
  client.SendFrame(EncodeAck({41}), 2000);
  Frame reply;
  ASSERT_TRUE(client.RecvFrame(&reply, 2000));
  EXPECT_EQ(DecodeAck(reply).value, 42u);
  peer.join();
}

TEST(SocketTest, RecvTimesOutOnSilentPeer) {
  Listener listener(0);
  Connection client = ConnectWithRetry(listener.port(), RetryConfig{}, 3);
  util::UniqueFd server_side = listener.Accept();  // connected, says nothing
  Frame frame;
  EXPECT_EQ(client.TryRecvFrame(&frame, 50), Connection::RecvStatus::kTimeout);
  EXPECT_THROW(client.RecvFrame(&frame, 50), util::CheckError);
}

TEST(SocketTest, CleanEofAtFrameBoundary) {
  Listener listener(0);
  Connection client = ConnectWithRetry(listener.port(), RetryConfig{}, 3);
  {
    Connection server_side(listener.Accept());
    server_side.SendFrame(EncodeAck({1}), 2000);
  }  // peer closes after one whole frame
  Frame frame;
  ASSERT_TRUE(client.RecvFrame(&frame, 2000));
  EXPECT_EQ(frame.type, MessageType::kAck);
  EXPECT_FALSE(client.RecvFrame(&frame, 2000));  // clean EOF
}

TEST(SocketTest, EofMidFrameThrows) {
  Listener listener(0);
  Connection client = ConnectWithRetry(listener.port(), RetryConfig{}, 3);
  {
    Connection server_side(listener.Accept());
    const std::vector<std::uint8_t> bytes = EncodeFrame(EncodeAck({1}));
    server_side.SendBytes(std::span(bytes).first(bytes.size() - 3), 2000);
  }  // hard close mid-frame
  Frame frame;
  EXPECT_THROW(client.RecvFrame(&frame, 2000), util::CheckError);
}

TEST(SocketTest, ConnectRetryFailsAfterBoundedAttempts) {
  // Grab an ephemeral port, then close the listener so nothing answers.
  std::uint16_t dead_port;
  {
    Listener listener(0);
    dead_port = listener.port();
  }
  RetryConfig retry;
  retry.max_attempts = 2;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 2.0;
  EXPECT_THROW(ConnectWithRetry(dead_port, retry, 3), util::CheckError);
}

TEST(ServerTest, HandshakeUpdateAckAndDedup) {
  ServerOptions server_options;
  server_options.io_timeout_ms = 2000;
  Server server(server_options);
  std::vector<std::pair<int, std::uint64_t>> delivered;
  server.SetUpdateHandler([&](int client_id, ClientUpdateMsg msg) {
    delivered.emplace_back(client_id, msg.job_index);
  });

  std::atomic<int> acks_received{0};
  std::thread client_thread([&acks_received, port = server.port()] {
    Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
    conn.SendFrame(EncodeAck({7}), 2000);  // hello: client_id = 7
    ClientUpdateMsg update;
    update.client_id = 7;
    update.job_index = 1;
    update.num_samples = 10;
    update.delta = {0.5f};
    const Frame frame = EncodeClientUpdate(update);
    conn.SendFrame(frame, 2000);
    conn.SendFrame(frame, 2000);  // duplicate: must be re-acked, not re-delivered
    Frame ack;
    while (acks_received < 2 &&
           conn.TryRecvFrame(&ack, 5000) == Connection::RecvStatus::kFrame) {
      EXPECT_EQ(DecodeAck(ack).value, 1u);
      ++acks_received;
    }
  });

  ASSERT_TRUE(server.WaitForClients(1, 5000));
  EXPECT_TRUE(server.IsConnected(7));
  // Keep pumping until the client has both receipts: the duplicate may
  // arrive a tick after the original.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (acks_received < 2 && std::chrono::steady_clock::now() < deadline) {
    server.PollOnce(20);
  }
  client_thread.join();

  EXPECT_EQ(acks_received, 2);
  ASSERT_EQ(delivered.size(), 1u);  // duplicate filtered
  EXPECT_EQ(delivered[0], (std::pair<int, std::uint64_t>{7, 1}));
}

TEST(ServerTest, EvictFiresDisconnectHandler) {
  Server server(ServerOptions{});
  std::vector<int> gone;
  server.SetDisconnectHandler([&](int client_id) { gone.push_back(client_id); });

  std::thread client_thread([port = server.port()] {
    Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
    conn.SendFrame(EncodeAck({3}), 2000);
    Frame frame;  // wait for the server to cut us off
    while (conn.TryRecvFrame(&frame, 100) != Connection::RecvStatus::kEof) {
    }
  });

  ASSERT_TRUE(server.WaitForClients(1, 5000));
  server.Evict(3, "test eviction");
  EXPECT_FALSE(server.IsConnected(3));
  ASSERT_EQ(gone.size(), 1u);
  EXPECT_EQ(gone[0], 3);
  client_thread.join();
}

TEST(ServerTest, CodecNegotiationCompletesHandshake) {
  ServerOptions options;
  options.advertised_codecs = {"fp16"};
  Server server(options);

  std::atomic<bool> got_offer{false};
  std::thread client_thread([&got_offer, port = server.port()] {
    Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
    conn.SendFrame(EncodeAck({9}), 2000);  // hello
    Frame frame;
    EXPECT_TRUE(conn.RecvFrame(&frame, 5000));
    const CodecOfferMsg offer = DecodeCodecOffer(frame);
    EXPECT_EQ(offer.codecs, std::vector<std::string>{"fp16"});
    got_offer = true;
    conn.SendFrame(EncodeCodecSelect({"fp16"}), 2000);
    // Stay connected until the server has seen the select and the test has
    // asserted; the eviction below is our cue to leave.
    while (conn.TryRecvFrame(&frame, 100) != Connection::RecvStatus::kEof) {
    }
  });

  // WaitForClients counts completed handshakes, which here means the offer
  // went out AND the select came back.
  ASSERT_TRUE(server.WaitForClients(1, 5000));
  EXPECT_TRUE(got_offer);
  ASSERT_NE(server.ClientCodec(9), nullptr);
  EXPECT_EQ(std::string(server.ClientCodec(9)->name()), "fp16");
  server.Evict(9, "test done");
  client_thread.join();
}

TEST(ServerTest, IdentitySelectionIsAlwaysAcceptedAndMapsToNull) {
  ServerOptions options;
  options.advertised_codecs = {"int8"};  // identity deliberately not listed
  Server server(options);

  std::thread client_thread([port = server.port()] {
    Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
    conn.SendFrame(EncodeAck({2}), 2000);
    Frame frame;
    EXPECT_TRUE(conn.RecvFrame(&frame, 5000));  // the offer
    conn.SendFrame(EncodeCodecSelect({"identity"}), 2000);
    while (conn.TryRecvFrame(&frame, 100) != Connection::RecvStatus::kEof) {
    }
  });

  ASSERT_TRUE(server.WaitForClients(1, 5000));
  EXPECT_EQ(server.ClientCodec(2), nullptr);  // null = legacy AFPM payloads
  server.Evict(2, "test done");
  client_thread.join();
}

TEST(ServerTest, MalformedCompressedUpdateEvictsClientNotServer) {
  // A structurally valid frame whose compressed payload is corrupt (here: a
  // flipped body byte that breaks the AFCZ checksum) must evict only that
  // connection — the reactor keeps serving everyone else.
  Server server(ServerOptions{});
  std::vector<int> gone;
  server.SetDisconnectHandler([&](int client_id) { gone.push_back(client_id); });

  std::thread bad_client([port = server.port()] {
    try {
      Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
      conn.SendFrame(EncodeAck({4}), 2000);
      Frame frame = EncodeClientUpdate(
          {.client_id = 4, .job_index = 0, .base_round = 0, .num_samples = 8,
           .delta = {1.0f, 2.0f, 3.0f, 4.0f}},
          &compress::Get("fp16"));
      frame.payload.back() ^= 0x01;
      conn.SendFrame(frame, 2000);
      Frame reply;  // wait to be cut off
      while (conn.TryRecvFrame(&reply, 100) != Connection::RecvStatus::kEof) {
      }
    } catch (const util::CheckError&) {
      // Eviction can surface as ECONNRESET rather than a clean EOF; either
      // way the server cut us off, which is exactly what this test wants.
    }
  });

  // Don't gate on WaitForClients here: under load the hello and the corrupt
  // update can land in one poll tick, so the connection is identified and
  // evicted inside a single PollOnce and the transient connected state is
  // never observable. The disconnect callback is the durable signal.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (gone.empty() && std::chrono::steady_clock::now() < deadline) {
    server.PollOnce(10);
  }
  bad_client.join();
  ASSERT_EQ(gone, std::vector<int>{4});
  EXPECT_EQ(server.ConnectedCount(), 0u);

  // The server is still alive: a fresh client can complete a handshake and
  // deliver a (well-formed) compressed update.
  std::vector<std::uint64_t> delivered;
  server.SetUpdateHandler([&](int /*client_id*/, ClientUpdateMsg msg) {
    delivered.push_back(msg.job_index);
  });
  std::thread good_client([port = server.port()] {
    try {
      Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
      conn.SendFrame(EncodeAck({5}), 2000);
      conn.SendFrame(EncodeClientUpdate({.client_id = 5, .job_index = 7,
                                         .num_samples = 8, .delta = {0.5f}},
                                        &compress::Get("fp16")),
                     2000);
      Frame ack;
      if (conn.RecvFrame(&ack, 10000)) {
        EXPECT_EQ(DecodeAck(ack).value, 7u);
      } else {
        ADD_FAILURE() << "no ack for the well-formed compressed update";
      }
    } catch (const util::CheckError& error) {
      ADD_FAILURE() << "good client failed: " << error.what();
    }
  });
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (delivered.empty() && std::chrono::steady_clock::now() < deadline2) {
    server.PollOnce(10);
  }
  good_client.join();
  ASSERT_EQ(delivered, std::vector<std::uint64_t>{7});
}

TEST(ServerTest, MalformedHelloClosesConnection) {
  Server server(ServerOptions{});
  std::thread client_thread([port = server.port()] {
    Connection conn = ConnectWithRetry(port, RetryConfig{}, 3);
    // First frame must be an Ack hello; a ClientUpdate is a protocol error.
    conn.SendFrame(EncodeClientUpdate({.client_id = 1, .job_index = 0,
                                       .num_samples = 1, .delta = {}}),
                   2000);
    Frame frame;
    while (conn.TryRecvFrame(&frame, 100) != Connection::RecvStatus::kEof) {
    }
  });

  for (int tick = 0; tick < 25; ++tick) {
    server.PollOnce(10);  // let the bad hello arrive and be rejected
  }
  EXPECT_EQ(server.ConnectedCount(), 0u);
  client_thread.join();
}

}  // namespace
}  // namespace net

// Tests for the sharded fd-readiness reactor (net/reactor.h) and the
// server built on it, run against BOTH backends: the platform default
// (epoll on Linux) and the poll() fallback forced via AF_REACTOR=poll.
// The backend is chosen at Reactor construction, so flipping the
// environment inside a fixture covers the fallback on the primary
// platform instead of leaving it to exotic CI runners.
//
// The soak test at the bottom is the PR's scale gate: ~1k concurrent
// connections accepted, a slice evicted, and the evicted ids reconnected
// against one single-threaded server loop.
#include "net/reactor.h"

#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace net {
namespace {

net::RetryConfig FastRetry() {
  net::RetryConfig retry;
  retry.max_attempts = 20;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 50.0;
  return retry;
}

// A pipe whose read end can sit in the reactor's wait set.
struct Pipe {
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    ::close(read_fd);
    ::close(write_fd);
  }
  void WriteByte() const {
    const char byte = 'x';
    EXPECT_EQ(::write(write_fd, &byte, 1), 1);
  }
  void DrainOne() const {
    char byte = 0;
    EXPECT_EQ(::read(read_fd, &byte, 1), 1);
  }
  int read_fd = -1;
  int write_fd = -1;
};

// Param "poll" forces the fallback; "default" leaves the platform choice
// (epoll on Linux) in place.
class ReactorBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "poll") {
      ::setenv("AF_REACTOR", "poll", 1);
    } else {
      ::unsetenv("AF_REACTOR");
    }
  }
  void TearDown() override { ::unsetenv("AF_REACTOR"); }

  static bool HasEventFor(const std::vector<ReactorEvent>& events, int fd) {
    return std::any_of(events.begin(), events.end(),
                       [fd](const ReactorEvent& e) { return e.fd == fd; });
  }
};

TEST_P(ReactorBackendTest, BackendNameMatchesEnvironment) {
  Reactor reactor;
  if (std::string(GetParam()) == "poll") {
    EXPECT_STREQ(reactor.backend_name(), "poll");
  } else {
#if defined(__linux__)
    EXPECT_STREQ(reactor.backend_name(), "epoll");
#else
    EXPECT_STREQ(reactor.backend_name(), "poll");
#endif
  }
}

TEST_P(ReactorBackendTest, ReportsReadReadinessLevelTriggered) {
  Reactor reactor;
  Pipe pipe;
  reactor.Add(pipe.read_fd);

  std::vector<ReactorEvent> events;
  EXPECT_EQ(reactor.Wait(0, &events), 0u) << "idle fd reported ready";

  pipe.WriteByte();
  events.clear();
  ASSERT_GE(reactor.Wait(1000, &events), 1u);
  ASSERT_TRUE(HasEventFor(events, pipe.read_fd));
  for (const ReactorEvent& e : events) {
    if (e.fd == pipe.read_fd) {
      EXPECT_TRUE(e.readable);
    }
  }

  // Level-triggered: unread bytes keep the fd ready on the next Wait.
  events.clear();
  ASSERT_GE(reactor.Wait(0, &events), 1u);
  EXPECT_TRUE(HasEventFor(events, pipe.read_fd));

  pipe.DrainOne();
  events.clear();
  EXPECT_EQ(reactor.Wait(0, &events), 0u);

  reactor.Remove(pipe.read_fd);
  pipe.WriteByte();
  events.clear();
  EXPECT_EQ(reactor.Wait(0, &events), 0u) << "removed fd still watched";
}

TEST_P(ReactorBackendTest, WriteInterestTogglesWritableEvents) {
  Reactor reactor;
  Pipe pipe;
  reactor.Add(pipe.write_fd);

  // Read interest only: an empty pipe's write end reports nothing.
  std::vector<ReactorEvent> events;
  EXPECT_EQ(reactor.Wait(0, &events), 0u);

  reactor.SetWantWrite(pipe.write_fd, true);
  events.clear();
  ASSERT_GE(reactor.Wait(1000, &events), 1u);
  ASSERT_TRUE(HasEventFor(events, pipe.write_fd));
  for (const ReactorEvent& e : events) {
    if (e.fd == pipe.write_fd) {
      EXPECT_TRUE(e.writable);
    }
  }

  reactor.SetWantWrite(pipe.write_fd, false);
  events.clear();
  EXPECT_EQ(reactor.Wait(0, &events), 0u);
}

TEST_P(ReactorBackendTest, WakeupInterruptsBlockedWait) {
  Reactor reactor;
  const auto start = std::chrono::steady_clock::now();
  std::thread waker([&reactor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reactor.Wakeup();
  });
  std::vector<ReactorEvent> events;
  reactor.Wait(5000, &events);
  waker.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 4000) << "Wakeup did not interrupt Wait";
  EXPECT_TRUE(events.empty()) << "wakeup surfaced as an fd event";
}

TEST_P(ReactorBackendTest, WakeupIsStickyAcrossWaits) {
  Reactor reactor;
  reactor.Wakeup();  // posted while nothing is waiting
  const auto start = std::chrono::steady_clock::now();
  std::vector<ReactorEvent> events;
  reactor.Wait(5000, &events);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 1000) << "pending wakeup did not short-circuit";

  // Consumed: the next Wait blocks for its full (short) timeout again.
  events.clear();
  EXPECT_EQ(reactor.Wait(0, &events), 0u);
}

TEST_P(ReactorBackendTest, ShardAssignmentIsStableAndInRange) {
  ReactorOptions options;
  options.shards = 4;
  Reactor reactor(options);
  EXPECT_EQ(reactor.shard_count(), 4);

  std::vector<Pipe> pipes(16);
  std::set<int> shards_used;
  for (const Pipe& p : pipes) {
    reactor.Add(p.read_fd);
    const int shard = reactor.ShardOf(p.read_fd);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(reactor.ShardOf(p.read_fd), shard) << "assignment not stable";
    shards_used.insert(shard);
  }
  EXPECT_EQ(reactor.watched_count(), pipes.size());
  // The Knuth hash must actually spread sequential fds, not pile them up.
  EXPECT_GT(shards_used.size(), 1u);
  EXPECT_EQ(reactor.ShardOf(999999), -1);

  for (const Pipe& p : pipes) {
    reactor.Remove(p.read_fd);
  }
  EXPECT_EQ(reactor.watched_count(), 0u);
}

TEST_P(ReactorBackendTest, EventsOnManyShardsSurfaceInOneWait) {
  ReactorOptions options;
  options.shards = 4;
  Reactor reactor(options);
  std::vector<Pipe> pipes(12);
  for (const Pipe& p : pipes) {
    reactor.Add(p.read_fd);
    p.WriteByte();
  }
  std::vector<ReactorEvent> events;
  std::size_t seen = 0;
  // Level-triggered, so a couple of ticks gather every ready fd even when a
  // backend caps its per-wait batch.
  for (int tick = 0; tick < 10 && seen < pipes.size(); ++tick) {
    events.clear();
    reactor.Wait(100, &events);
    std::set<int> fds;
    for (const ReactorEvent& e : events) {
      fds.insert(e.fd);
    }
    seen = 0;
    for (const Pipe& p : pipes) {
      seen += fds.count(p.read_fd);
    }
  }
  EXPECT_EQ(seen, pipes.size());
}

TEST_P(ReactorBackendTest, HangupIsReported) {
  Reactor reactor;
  Pipe pipe;
  reactor.Add(pipe.read_fd);
  ::close(pipe.write_fd);
  pipe.write_fd = -1;  // dtor's close(-1) is a harmless EBADF

  std::vector<ReactorEvent> events;
  ASSERT_GE(reactor.Wait(1000, &events), 1u);
  ASSERT_TRUE(HasEventFor(events, pipe.read_fd));
  for (const ReactorEvent& e : events) {
    if (e.fd == pipe.read_fd) {
      EXPECT_TRUE(e.hangup || e.readable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackendTest,
                         ::testing::Values("default", "poll"),
                         [](const auto& info) {
                           return std::string(info.param) == "poll"
                                      ? std::string("poll_fallback")
                                      : std::string("platform_default");
                         });

// ---------------------------------------------------------------------------
// Scale soak: ~1k concurrent connections through one Server loop, with an
// eviction wave and reconnects. This is the accept/evict/reconnect gate for
// the sharded reactor (reactor_shards=4 so cross-shard dispatch is real).
// ---------------------------------------------------------------------------

// Raises RLIMIT_NOFILE toward its hard cap and returns the soft limit we
// ended up with.
rlim_t RaiseFdLimit() {
  struct rlimit lim {};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return 1024;
  }
  if (lim.rlim_cur < lim.rlim_max) {
    struct rlimit want = lim;
    want.rlim_cur = std::min<rlim_t>(lim.rlim_max, 65536);
    if (::setrlimit(RLIMIT_NOFILE, &want) == 0) {
      lim = want;
    }
  }
  return lim.rlim_cur;
}

TEST(ReactorSoakTest, ThousandConnectionsAcceptEvictReconnect) {
  const rlim_t soft = RaiseFdLimit();
  // Each connection costs two fds (client + server side); leave headroom
  // for the suite's own files, the listener, and the reactor plumbing.
  const int kClients = static_cast<int>(std::min<rlim_t>(
      1000, soft > 256 ? (soft - 128) / 2 : 64));
  ASSERT_GE(kClients, 64) << "fd limit too low to exercise scale";

  ServerOptions options;
  options.port = 0;
  options.io_timeout_ms = 30000;
  options.reactor_shards = 4;
  Server server(options);
  EXPECT_EQ(server.reactor_shards(), 4);

  std::vector<int> disconnected;
  server.SetDisconnectHandler(
      [&disconnected](int id) { disconnected.push_back(id); });

  auto connect_client = [&server](int id) {
    Connection conn = ConnectWithRetry(server.port(), FastRetry(),
                                       0x50A7 + static_cast<uint64_t>(id));
    conn.SendFrame(EncodeAck({static_cast<std::uint64_t>(id)}), 1000);
    return conn;
  };

  std::vector<Connection> clients;
  clients.reserve(static_cast<std::size_t>(kClients));
  for (int id = 0; id < kClients; ++id) {
    clients.push_back(connect_client(id));
    if (id % 64 == 0) {
      server.PollOnce(0);  // drain the accept backlog as we go
    }
  }
  ASSERT_TRUE(server.WaitForClients(static_cast<std::size_t>(kClients), 30000))
      << "only " << server.ConnectedCount() << " of " << kClients
      << " clients completed their handshake";

  // Connections must be spread across every shard, or the hash is broken.
  std::set<int> shards_used;
  for (int id = 0; id < kClients; ++id) {
    const int shard = server.ShardOfClient(id);
    ASSERT_GE(shard, 0) << "client " << id << " has no shard";
    shards_used.insert(shard);
  }
  EXPECT_EQ(shards_used.size(), 4u);

  // Evict every 10th client; only those ids may fire the disconnect hook.
  std::set<int> evicted;
  for (int id = 0; id < kClients; id += 10) {
    server.Evict(id, "soak eviction wave");
    evicted.insert(id);
  }
  for (int tick = 0; tick < 50; ++tick) {
    server.PollOnce(1);
  }
  EXPECT_EQ(server.ConnectedCount(),
            static_cast<std::size_t>(kClients) - evicted.size());
  for (int id : disconnected) {
    EXPECT_TRUE(evicted.count(id)) << "survivor " << id << " was dropped";
  }
  for (int id = 0; id < kClients; ++id) {
    EXPECT_EQ(server.IsConnected(id), evicted.count(id) == 0u);
  }

  // Reconnect the evicted ids on fresh sockets; the server must accept the
  // same ids again and return to full strength.
  for (int id : evicted) {
    clients[static_cast<std::size_t>(id)] = connect_client(id);
    server.PollOnce(0);
  }
  ASSERT_TRUE(server.WaitForClients(static_cast<std::size_t>(kClients), 30000))
      << "reconnect wave stalled at " << server.ConnectedCount();
  for (int id : evicted) {
    EXPECT_TRUE(server.IsConnected(id));
  }

  // Prove the reconnected sessions actually serve: broadcast to a sample
  // and read the frame back on the client side.
  for (int id : {0, 10, kClients - 1}) {
    ModelBroadcastMsg msg;
    msg.round = 1;
    msg.job_index = static_cast<std::uint64_t>(id);
    msg.params = {1.0f, 2.0f, 3.0f};
    ASSERT_TRUE(server.SendTo(id, EncodeModelBroadcast(msg)));
    server.Flush(5000);
    Frame frame;
    bool got = false;
    for (int tick = 0; tick < 200 && !got; ++tick) {
      server.PollOnce(1);
      got = clients[static_cast<std::size_t>(id)].TryRecvFrame(&frame, 5) ==
            Connection::RecvStatus::kFrame;
    }
    ASSERT_TRUE(got) << "broadcast never reached client " << id;
    EXPECT_EQ(DecodeModelBroadcast(frame).job_index,
              static_cast<std::uint64_t>(id));
  }
}

}  // namespace
}  // namespace net

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/codec.h"
#include "util/check.h"

namespace net {
namespace {

std::vector<std::uint8_t> Corrupted(const Frame& frame, std::size_t at,
                                    std::uint8_t value) {
  std::vector<std::uint8_t> bytes = EncodeFrame(frame);
  bytes[at] = value;
  return bytes;
}

TEST(FrameTest, RoundTripsEveryMessageType) {
  ModelBroadcastMsg broadcast;
  broadcast.round = 7;
  broadcast.job_index = 42;
  broadcast.params = {1.5f, -2.0f, 0.0f, 3.25f};

  ClientUpdateMsg update;
  update.client_id = 13;
  update.job_index = 42;
  update.base_round = 7;
  update.num_samples = 100;
  update.delta = {-0.5f, 0.25f};

  AckMsg ack{99};

  for (const Frame& frame :
       {EncodeModelBroadcast(broadcast), EncodeClientUpdate(update),
        EncodeAck(ack), MakeShutdownFrame()}) {
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame);
    Frame decoded;
    ASSERT_EQ(DecodeFrame(bytes, &decoded), bytes.size());
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.payload, frame.payload);
  }

  // Decoded views alias the frame payload, so the frames must stay alive
  // for as long as the messages are inspected (a temporary here is a
  // compile error by design).
  const Frame broadcast_frame = EncodeModelBroadcast(broadcast);
  const ModelBroadcastMsg b2 = DecodeModelBroadcast(broadcast_frame);
  EXPECT_EQ(b2.round, broadcast.round);
  EXPECT_EQ(b2.job_index, broadcast.job_index);
  EXPECT_EQ(b2.params, broadcast.params);

  const Frame update_frame = EncodeClientUpdate(update);
  const ClientUpdateMsg u2 = DecodeClientUpdate(update_frame);
  EXPECT_EQ(u2.client_id, update.client_id);
  EXPECT_EQ(u2.job_index, update.job_index);
  EXPECT_EQ(u2.base_round, update.base_round);
  EXPECT_EQ(u2.num_samples, update.num_samples);
  EXPECT_EQ(u2.delta, update.delta);

  EXPECT_EQ(DecodeAck(EncodeAck(ack)).value, ack.value);
}

TEST(FrameTest, PartialFrameConsumesNothing) {
  const std::vector<std::uint8_t> bytes = EncodeFrame(EncodeAck({5}));
  Frame out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(DecodeFrame(std::span(bytes).first(len), &out), 0u)
        << "prefix of " << len << " bytes decoded as a whole frame";
  }
  EXPECT_EQ(DecodeFrame(bytes, &out), bytes.size());
}

TEST(FrameTest, BadMagicThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 0, 0xFF);
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, WrongVersionThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 4, 0x7F);  // version low byte
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, UnknownTypeThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 6, 0x66);  // type low byte
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, OversizedLengthThrows) {
  std::vector<std::uint8_t> bytes = EncodeFrame(EncodeAck({5}));
  const std::uint64_t absurd = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &absurd, sizeof(absurd));
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsWrongFrameType) {
  EXPECT_THROW(DecodeAck(EncodeModelBroadcast({})), util::CheckError);
  const Frame ack = EncodeAck({1});
  EXPECT_THROW(DecodeModelBroadcast(ack), util::CheckError);
  const Frame shutdown = MakeShutdownFrame();
  EXPECT_THROW(DecodeClientUpdate(shutdown), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsTruncatedPayload) {
  Frame frame = EncodeClientUpdate(
      {.client_id = 1, .job_index = 2, .base_round = 3, .num_samples = 4,
       .delta = {1.0f, 2.0f, 3.0f}});
  frame.payload.resize(frame.payload.size() / 2);
  EXPECT_THROW(DecodeClientUpdate(frame), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsTrailingBytes) {
  Frame frame = EncodeAck({17});
  frame.payload.push_back(0);
  EXPECT_THROW(DecodeAck(frame), util::CheckError);
}

TEST(FrameTest, EmptyModelRoundTrips) {
  const Frame frame = EncodeModelBroadcast({});
  const ModelBroadcastMsg msg = DecodeModelBroadcast(frame);
  EXPECT_TRUE(msg.params.empty());
}

TEST(FrameTest, CodecOfferAndSelectRoundTrip) {
  const CodecOfferMsg offer =
      DecodeCodecOffer(EncodeCodecOffer({{"fp16", "int8", "identity"}}));
  EXPECT_EQ(offer.codecs,
            (std::vector<std::string>{"fp16", "int8", "identity"}));
  EXPECT_TRUE(DecodeCodecOffer(EncodeCodecOffer({})).codecs.empty());
  EXPECT_EQ(DecodeCodecSelect(EncodeCodecSelect({"topk-delta"})).codec,
            "topk-delta");
}

TEST(FrameTest, TraceOfferAndSelectRoundTrip) {
  DecodeTraceOffer(EncodeTraceOffer({}));  // empty payload, must not throw
  EXPECT_TRUE(DecodeTraceSelect(EncodeTraceSelect({true})).enabled);
  EXPECT_FALSE(DecodeTraceSelect(EncodeTraceSelect({false})).enabled);
}

TEST(FrameTest, TraceContextRoundTripsOnBroadcastAndUpdate) {
  ModelBroadcastMsg broadcast;
  broadcast.round = 2;
  broadcast.job_index = 5;
  broadcast.params = {1.0f, -1.0f};
  broadcast.trace_id = 0x1111222233334444ull;
  broadcast.parent_span_id = 0x5555666677778888ull;
  const Frame traced_frame = EncodeModelBroadcast(broadcast);
  const ModelBroadcastMsg b2 = DecodeModelBroadcast(traced_frame);
  EXPECT_EQ(b2.params, broadcast.params);
  EXPECT_EQ(b2.trace_id, broadcast.trace_id);
  EXPECT_EQ(b2.parent_span_id, broadcast.parent_span_id);

  ClientUpdateMsg update;
  update.client_id = 3;
  update.job_index = 5;
  update.delta = {0.5f};
  update.trace_id = 0xAAAAull;
  update.parent_span_id = 0xBBBBull;
  const Frame frame = EncodeClientUpdate(update);
  const ClientUpdateMsg u2 = DecodeClientUpdate(frame);
  EXPECT_EQ(u2.delta, update.delta);
  EXPECT_EQ(u2.trace_id, update.trace_id);
  EXPECT_EQ(u2.parent_span_id, update.parent_span_id);
  // The decoder reports the wire cost of the whole payload.
  EXPECT_EQ(u2.wire_bytes, frame.payload.size());
}

TEST(FrameTest, UntracedMessagesStayByteIdenticalToLegacy) {
  // trace_id == 0 must not grow the payload by a single byte: legacy peers
  // and untraced runs see the exact pre-trace wire format.
  ModelBroadcastMsg broadcast{.round = 1, .job_index = 2,
                              .params = {3.0f, 4.0f}};
  const Frame untraced = EncodeModelBroadcast(broadcast);
  broadcast.trace_id = 0x77ull;
  const Frame traced = EncodeModelBroadcast(broadcast);
  EXPECT_EQ(traced.payload.size(), untraced.payload.size() + 20);

  ClientUpdateMsg update{.client_id = 1, .job_index = 2, .base_round = 0,
                         .num_samples = 10, .delta = {1.0f}};
  const Frame plain = EncodeClientUpdate(update);
  const ClientUpdateMsg decoded = DecodeClientUpdate(plain);
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.parent_span_id, 0u);
}

TEST(FrameTest, TrailingGarbageStillThrowsWithTraceBlocksInPlay) {
  // The trace block is sniffed by size + magic; arbitrary trailing bytes
  // that are not a well-formed block must still fail decoding.
  Frame frame = EncodeModelBroadcast({.round = 1, .params = {1.0f}});
  frame.payload.push_back(0xAB);
  EXPECT_THROW(DecodeModelBroadcast(frame), util::CheckError);

  // Exactly 20 trailing bytes with the wrong magic are garbage, not a block.
  Frame frame2 = EncodeModelBroadcast({.round = 1, .params = {1.0f}});
  frame2.payload.resize(frame2.payload.size() + 20, 0x00);
  EXPECT_THROW(DecodeModelBroadcast(frame2), util::CheckError);
}

TEST(FrameTest, IdentityCodecProducesLegacyBytes) {
  // The null codec and the identity codec must emit the exact pre-codec
  // wire format, so a mixed fleet interoperates frame-for-frame.
  const ModelBroadcastMsg msg{.round = 3, .job_index = 9,
                              .params = {1.0f, -2.0f, 0.5f}};
  const Frame legacy = EncodeModelBroadcast(msg);
  const Frame identity =
      EncodeModelBroadcast(msg, &compress::Get("identity"));
  EXPECT_EQ(identity.payload, legacy.payload);
}

TEST(FrameTest, CompressedBroadcastRoundTrips) {
  ModelBroadcastMsg msg;
  msg.round = 11;
  msg.job_index = 4;
  msg.params = {0.5f, -0.25f, 2.0f, 0.0f};  // half-representable → exact
  const Frame frame = EncodeModelBroadcast(msg, &compress::Get("fp16"));
  const ModelBroadcastMsg decoded = DecodeModelBroadcast(frame);
  EXPECT_EQ(decoded.round, msg.round);
  EXPECT_EQ(decoded.job_index, msg.job_index);
  EXPECT_EQ(decoded.params, msg.params);
}

TEST(FrameTest, CompressedUpdateRoundTripsWithFeedback) {
  ClientUpdateMsg msg;
  msg.client_id = 5;
  msg.job_index = 2;
  msg.base_round = 1;
  msg.num_samples = 64;
  std::vector<float> delta(40, 0.001f);
  delta[7] = 3.0f;
  delta[31] = -2.0f;
  msg.delta = std::move(delta);

  compress::FeedbackState feedback;
  const Frame frame =
      EncodeClientUpdate(msg, &compress::Get("topk-delta"), &feedback);
  const ClientUpdateMsg decoded = DecodeClientUpdate(frame);
  EXPECT_EQ(decoded.client_id, msg.client_id);
  EXPECT_EQ(decoded.job_index, msg.job_index);
  ASSERT_EQ(decoded.delta.size(), msg.delta.size());
  // k = 4 of 40: the two spikes survive (exactly — both are fp16 values),
  // ties at 0.001 fill the remaining slots from the lowest index up, and
  // every dropped element lands whole in the residual.
  EXPECT_EQ(decoded.delta[7], 3.0f);
  EXPECT_EQ(decoded.delta[31], -2.0f);
  EXPECT_EQ(decoded.delta[2], 0.0f);
  ASSERT_EQ(feedback.residual.size(), msg.delta.size());
  EXPECT_EQ(feedback.residual[7], 0.0f);
  EXPECT_FLOAT_EQ(feedback.residual[2], 0.001f);
}

TEST(FrameTest, CorruptCompressedPayloadThrows) {
  Frame frame = EncodeClientUpdate(
      {.client_id = 1, .job_index = 2, .base_round = 3, .num_samples = 4,
       .delta = {1.0f, 2.0f, 3.0f, 4.0f}},
      &compress::Get("fp16"));
  frame.payload.back() ^= 0x01;  // body byte → checksum mismatch
  EXPECT_THROW(DecodeClientUpdate(frame), util::CheckError);
}

TEST(FrameTest, DecodesBackToBackFramesIncrementally) {
  std::vector<std::uint8_t> stream = EncodeFrame(EncodeAck({1}));
  const std::vector<std::uint8_t> second =
      EncodeFrame(EncodeModelBroadcast({.round = 2, .job_index = 3,
                                        .params = {4.0f}}));
  stream.insert(stream.end(), second.begin(), second.end());

  Frame out;
  const std::size_t first_len = DecodeFrame(stream, &out);
  ASSERT_GT(first_len, 0u);
  EXPECT_EQ(out.type, MessageType::kAck);
  const std::size_t second_len =
      DecodeFrame(std::span(stream).subspan(first_len), &out);
  EXPECT_EQ(first_len + second_len, stream.size());
  EXPECT_EQ(out.type, MessageType::kModelBroadcast);
}

}  // namespace
}  // namespace net

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/codec.h"
#include "util/check.h"

namespace net {
namespace {

std::vector<std::uint8_t> Corrupted(const Frame& frame, std::size_t at,
                                    std::uint8_t value) {
  std::vector<std::uint8_t> bytes = EncodeFrame(frame);
  bytes[at] = value;
  return bytes;
}

TEST(FrameTest, RoundTripsEveryMessageType) {
  ModelBroadcastMsg broadcast;
  broadcast.round = 7;
  broadcast.job_index = 42;
  broadcast.params = {1.5f, -2.0f, 0.0f, 3.25f};

  ClientUpdateMsg update;
  update.client_id = 13;
  update.job_index = 42;
  update.base_round = 7;
  update.num_samples = 100;
  update.delta = {-0.5f, 0.25f};

  AckMsg ack{99};

  for (const Frame& frame :
       {EncodeModelBroadcast(broadcast), EncodeClientUpdate(update),
        EncodeAck(ack), MakeShutdownFrame()}) {
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame);
    Frame decoded;
    ASSERT_EQ(DecodeFrame(bytes, &decoded), bytes.size());
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.payload, frame.payload);
  }

  const ModelBroadcastMsg b2 = DecodeModelBroadcast(EncodeModelBroadcast(broadcast));
  EXPECT_EQ(b2.round, broadcast.round);
  EXPECT_EQ(b2.job_index, broadcast.job_index);
  EXPECT_EQ(b2.params, broadcast.params);

  const ClientUpdateMsg u2 = DecodeClientUpdate(EncodeClientUpdate(update));
  EXPECT_EQ(u2.client_id, update.client_id);
  EXPECT_EQ(u2.job_index, update.job_index);
  EXPECT_EQ(u2.base_round, update.base_round);
  EXPECT_EQ(u2.num_samples, update.num_samples);
  EXPECT_EQ(u2.delta, update.delta);

  EXPECT_EQ(DecodeAck(EncodeAck(ack)).value, ack.value);
}

TEST(FrameTest, PartialFrameConsumesNothing) {
  const std::vector<std::uint8_t> bytes = EncodeFrame(EncodeAck({5}));
  Frame out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(DecodeFrame(std::span(bytes).first(len), &out), 0u)
        << "prefix of " << len << " bytes decoded as a whole frame";
  }
  EXPECT_EQ(DecodeFrame(bytes, &out), bytes.size());
}

TEST(FrameTest, BadMagicThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 0, 0xFF);
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, WrongVersionThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 4, 0x7F);  // version low byte
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, UnknownTypeThrows) {
  const auto bytes = Corrupted(EncodeAck({5}), 6, 0x66);  // type low byte
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, OversizedLengthThrows) {
  std::vector<std::uint8_t> bytes = EncodeFrame(EncodeAck({5}));
  const std::uint64_t absurd = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &absurd, sizeof(absurd));
  Frame out;
  EXPECT_THROW(DecodeFrame(bytes, &out), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsWrongFrameType) {
  EXPECT_THROW(DecodeAck(EncodeModelBroadcast({})), util::CheckError);
  EXPECT_THROW(DecodeModelBroadcast(EncodeAck({1})), util::CheckError);
  EXPECT_THROW(DecodeClientUpdate(MakeShutdownFrame()), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsTruncatedPayload) {
  Frame frame = EncodeClientUpdate(
      {.client_id = 1, .job_index = 2, .base_round = 3, .num_samples = 4,
       .delta = {1.0f, 2.0f, 3.0f}});
  frame.payload.resize(frame.payload.size() / 2);
  EXPECT_THROW(DecodeClientUpdate(frame), util::CheckError);
}

TEST(FrameTest, TypedDecoderRejectsTrailingBytes) {
  Frame frame = EncodeAck({17});
  frame.payload.push_back(0);
  EXPECT_THROW(DecodeAck(frame), util::CheckError);
}

TEST(FrameTest, EmptyModelRoundTrips) {
  const ModelBroadcastMsg msg = DecodeModelBroadcast(EncodeModelBroadcast({}));
  EXPECT_TRUE(msg.params.empty());
}

TEST(FrameTest, CodecOfferAndSelectRoundTrip) {
  const CodecOfferMsg offer =
      DecodeCodecOffer(EncodeCodecOffer({{"fp16", "int8", "identity"}}));
  EXPECT_EQ(offer.codecs,
            (std::vector<std::string>{"fp16", "int8", "identity"}));
  EXPECT_TRUE(DecodeCodecOffer(EncodeCodecOffer({})).codecs.empty());
  EXPECT_EQ(DecodeCodecSelect(EncodeCodecSelect({"topk-delta"})).codec,
            "topk-delta");
}

TEST(FrameTest, IdentityCodecProducesLegacyBytes) {
  // The null codec and the identity codec must emit the exact pre-codec
  // wire format, so a mixed fleet interoperates frame-for-frame.
  const ModelBroadcastMsg msg{.round = 3, .job_index = 9,
                              .params = {1.0f, -2.0f, 0.5f}};
  const Frame legacy = EncodeModelBroadcast(msg);
  const Frame identity =
      EncodeModelBroadcast(msg, &compress::Get("identity"));
  EXPECT_EQ(identity.payload, legacy.payload);
}

TEST(FrameTest, CompressedBroadcastRoundTrips) {
  ModelBroadcastMsg msg;
  msg.round = 11;
  msg.job_index = 4;
  msg.params = {0.5f, -0.25f, 2.0f, 0.0f};  // half-representable → exact
  const ModelBroadcastMsg decoded = DecodeModelBroadcast(
      EncodeModelBroadcast(msg, &compress::Get("fp16")));
  EXPECT_EQ(decoded.round, msg.round);
  EXPECT_EQ(decoded.job_index, msg.job_index);
  EXPECT_EQ(decoded.params, msg.params);
}

TEST(FrameTest, CompressedUpdateRoundTripsWithFeedback) {
  ClientUpdateMsg msg;
  msg.client_id = 5;
  msg.job_index = 2;
  msg.base_round = 1;
  msg.num_samples = 64;
  msg.delta.assign(40, 0.001f);
  msg.delta[7] = 3.0f;
  msg.delta[31] = -2.0f;

  compress::FeedbackState feedback;
  const ClientUpdateMsg decoded = DecodeClientUpdate(
      EncodeClientUpdate(msg, &compress::Get("topk-delta"), &feedback));
  EXPECT_EQ(decoded.client_id, msg.client_id);
  EXPECT_EQ(decoded.job_index, msg.job_index);
  ASSERT_EQ(decoded.delta.size(), msg.delta.size());
  // k = 4 of 40: the two spikes survive (exactly — both are fp16 values),
  // ties at 0.001 fill the remaining slots from the lowest index up, and
  // every dropped element lands whole in the residual.
  EXPECT_EQ(decoded.delta[7], 3.0f);
  EXPECT_EQ(decoded.delta[31], -2.0f);
  EXPECT_EQ(decoded.delta[2], 0.0f);
  ASSERT_EQ(feedback.residual.size(), msg.delta.size());
  EXPECT_EQ(feedback.residual[7], 0.0f);
  EXPECT_FLOAT_EQ(feedback.residual[2], 0.001f);
}

TEST(FrameTest, CorruptCompressedPayloadThrows) {
  Frame frame = EncodeClientUpdate(
      {.client_id = 1, .job_index = 2, .base_round = 3, .num_samples = 4,
       .delta = {1.0f, 2.0f, 3.0f, 4.0f}},
      &compress::Get("fp16"));
  frame.payload.back() ^= 0x01;  // body byte → checksum mismatch
  EXPECT_THROW(DecodeClientUpdate(frame), util::CheckError);
}

TEST(FrameTest, DecodesBackToBackFramesIncrementally) {
  std::vector<std::uint8_t> stream = EncodeFrame(EncodeAck({1}));
  const std::vector<std::uint8_t> second =
      EncodeFrame(EncodeModelBroadcast({.round = 2, .job_index = 3,
                                        .params = {4.0f}}));
  stream.insert(stream.end(), second.begin(), second.end());

  Frame out;
  const std::size_t first_len = DecodeFrame(stream, &out);
  ASSERT_GT(first_len, 0u);
  EXPECT_EQ(out.type, MessageType::kAck);
  const std::size_t second_len =
      DecodeFrame(std::span(stream).subspan(first_len), &out);
  EXPECT_EQ(first_len + second_len, stream.size());
  EXPECT_EQ(out.type, MessageType::kModelBroadcast);
}

}  // namespace
}  // namespace net

#include "net/shm_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "util/check.h"

namespace net {
namespace {

std::vector<std::uint8_t> HeaderBlob(std::uint32_t magic,
                                     std::uint32_t version,
                                     std::uint64_t ring_bytes) {
  std::vector<std::uint8_t> blob(16);
  std::memcpy(blob.data(), &magic, 4);
  std::memcpy(blob.data() + 4, &version, 4);
  std::memcpy(blob.data() + 8, &ring_bytes, 8);
  return blob;
}

TEST(ShmHeaderTest, ValidHeaderPasses) {
  EXPECT_NO_THROW(
      ValidateShmHeader(HeaderBlob(kShmMagic, kShmVersion, 1 << 16)));
}

TEST(ShmHeaderTest, RejectsHostileHeaders) {
  // Truncated.
  EXPECT_THROW(ValidateShmHeader(std::vector<std::uint8_t>(7)),
               util::CheckError);
  // Bad magic.
  EXPECT_THROW(
      ValidateShmHeader(HeaderBlob(0xDEADBEEF, kShmVersion, 1 << 16)),
      util::CheckError);
  // Unknown version.
  EXPECT_THROW(ValidateShmHeader(HeaderBlob(kShmMagic, 99, 1 << 16)),
               util::CheckError);
  // Ring size not a power of two.
  EXPECT_THROW(ValidateShmHeader(HeaderBlob(kShmMagic, kShmVersion, 12345)),
               util::CheckError);
  // Absurd ring size.
  EXPECT_THROW(
      ValidateShmHeader(HeaderBlob(kShmMagic, kShmVersion, 1ull << 40)),
      util::CheckError);
  // Zero.
  EXPECT_THROW(ValidateShmHeader(HeaderBlob(kShmMagic, kShmVersion, 0)),
               util::CheckError);
}

TEST(ShmSegmentTest, CreateOpenRoundTrip) {
  const std::string name = MakeShmName(12345, 7);
  auto server = ShmSegment::Create(name, 1 << 14);
  auto client = ShmSegment::Open(name, 1 << 14);

  // Client produces on the uplink, server consumes.
  std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  EXPECT_EQ(client->uplink().WriteSome(msg), msg.size());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(server->uplink().ReadSome(got), msg.size());
  EXPECT_EQ(got, msg);

  // Server produces on the downlink, client consumes.
  EXPECT_EQ(server->downlink().WriteSome(msg), msg.size());
  got.clear();
  EXPECT_EQ(client->downlink().ReadSome(got), msg.size());
  EXPECT_EQ(got, msg);
}

TEST(ShmSegmentTest, OpenRejectsRingSizeMismatch) {
  const std::string name = MakeShmName(12346, 8);
  auto server = ShmSegment::Create(name, 1 << 14);
  EXPECT_THROW(ShmSegment::Open(name, 1 << 15), util::CheckError);
}

TEST(ShmSegmentTest, OpenOfMissingNameThrows) {
  EXPECT_THROW(ShmSegment::Open("/afnt-does-not-exist-xyz", 1 << 14),
               util::CheckError);
}

TEST(ShmSegmentTest, CreateRejectsNonPowerOfTwo) {
  EXPECT_THROW(ShmSegment::Create(MakeShmName(12347, 9), 5000),
               util::CheckError);
}

TEST(ShmRingTest, StreamSurvivesManyWraparounds) {
  const std::string name = MakeShmName(12348, 10);
  auto server = ShmSegment::Create(name, 1 << 12);  // 4 KiB ring
  auto client = ShmSegment::Open(name, 1 << 12);

  // Push 64 KiB through in odd-sized chunks; bytes must come out exactly in
  // order across many wraps.
  std::vector<std::uint8_t> sent(64 * 1024);
  std::iota(sent.begin(), sent.end(), std::uint8_t{0});
  std::vector<std::uint8_t> received;
  std::size_t written = 0;
  while (received.size() < sent.size()) {
    if (written < sent.size()) {
      written += client->uplink().WriteSome(
          std::span<const std::uint8_t>(sent).subspan(
              written, std::min<std::size_t>(997, sent.size() - written)));
    }
    server->uplink().ReadSome(received);
  }
  EXPECT_EQ(received, sent);
}

TEST(ShmRingTest, WriteSomeStopsAtCapacity) {
  const std::string name = MakeShmName(12349, 11);
  auto server = ShmSegment::Create(name, 1 << 12);
  auto client = ShmSegment::Open(name, 1 << 12);

  std::vector<std::uint8_t> big(3 * (1 << 12), 0x77);
  const std::size_t wrote = client->uplink().WriteSome(big);
  EXPECT_EQ(wrote, std::size_t{1} << 12);  // exactly one ring's worth
  EXPECT_EQ(server->uplink().AvailableToRead(), std::size_t{1} << 12);
}

TEST(ShmRingTest, WriteAllBlocksUntilConsumerDrains) {
  const std::string name = MakeShmName(12350, 12);
  auto server = ShmSegment::Create(name, 1 << 12);
  auto client = ShmSegment::Open(name, 1 << 12);

  std::vector<std::uint8_t> payload(3 * (1 << 12));
  std::iota(payload.begin(), payload.end(), std::uint8_t{1});

  std::thread producer([&] {
    ASSERT_TRUE(client->uplink().WriteAll(payload, 10000));
  });
  std::vector<std::uint8_t> received;
  while (received.size() < payload.size()) {
    if (server->uplink().ReadSome(received) == 0) {
      server->uplink().WaitReadable(50);
    }
  }
  producer.join();
  EXPECT_EQ(received, payload);
}

TEST(ShmRingTest, WriteAllTimesOutAgainstAbsentConsumer) {
  const std::string name = MakeShmName(12351, 13);
  auto server = ShmSegment::Create(name, 1 << 12);
  auto client = ShmSegment::Open(name, 1 << 12);
  (void)server;

  std::vector<std::uint8_t> too_big(2 * (1 << 12), 0x42);
  EXPECT_FALSE(client->uplink().WriteAll(too_big, 100));
}

TEST(ShmRingTest, WaitReadableTimesOutOnEmptyRing) {
  const std::string name = MakeShmName(12352, 14);
  auto server = ShmSegment::Create(name, 1 << 12);
  EXPECT_FALSE(server->uplink().WaitReadable(50));
}

TEST(ShmNameTest, NamesAreUniquePerCall) {
  EXPECT_NE(MakeShmName(1, 2), MakeShmName(1, 2));
}

}  // namespace
}  // namespace net

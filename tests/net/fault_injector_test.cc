#include "net/fault_injector.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace net {
namespace {

TEST(FaultInjectorTest, QuietConfigAlwaysDelivers) {
  FaultConfig config;  // all probabilities zero
  EXPECT_FALSE(config.Any());
  FaultInjector injector(config, /*client_id=*/3);
  EXPECT_FALSE(injector.doomed());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(injector.NextAction(), FaultInjector::Action::kDeliver);
  }
}

TEST(FaultInjectorTest, CertainDropAlwaysDrops) {
  FaultConfig config;
  config.drop_prob = 1.0;
  FaultInjector injector(config, 0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.NextAction(), FaultInjector::Action::kDrop);
  }
}

TEST(FaultInjectorTest, SameSeedSameClientSameFate) {
  FaultConfig config;
  config.drop_prob = 0.2;
  config.delay_prob = 0.2;
  config.duplicate_prob = 0.2;
  config.truncate_prob = 0.05;
  config.kill_fraction = 0.5;
  config.seed = 42;

  FaultInjector a(config, 7);
  FaultInjector b(config, 7);
  EXPECT_EQ(a.doomed(), b.doomed());
  EXPECT_EQ(a.kill_after_frame(), b.kill_after_frame());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextAction(), b.NextAction());
  }
}

TEST(FaultInjectorTest, DistinctClientsGetDistinctStreams) {
  FaultConfig config;
  config.drop_prob = 0.5;
  config.seed = 9;
  FaultInjector a(config, 0);
  FaultInjector b(config, 1);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    differing += a.NextAction() != b.NextAction();
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, KillFractionDoomsRoughlyThatShare) {
  FaultConfig config;
  config.kill_fraction = 0.3;
  config.seed = 11;
  int doomed = 0;
  const int n = 1000;
  for (int id = 0; id < n; ++id) {
    FaultInjector injector(config, id);
    if (injector.doomed()) {
      ++doomed;
      EXPECT_GE(injector.kill_after_frame(), 1u);
      EXPECT_LE(injector.kill_after_frame(), 5u);
    }
  }
  EXPECT_GT(doomed, n * 0.2);
  EXPECT_LT(doomed, n * 0.4);
}

TEST(FaultInjectorTest, MixedProbabilitiesApproximateTheirRates) {
  FaultConfig config;
  config.drop_prob = 0.25;
  config.duplicate_prob = 0.25;
  config.seed = 5;
  FaultInjector injector(config, 2);
  std::map<FaultInjector::Action, int> counts;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ++counts[injector.NextAction()];
  }
  EXPECT_NEAR(counts[FaultInjector::Action::kDrop] / double(n), 0.25, 0.05);
  EXPECT_GT(counts[FaultInjector::Action::kDuplicate], 0);
  EXPECT_GT(counts[FaultInjector::Action::kDeliver], 0);
  EXPECT_EQ(counts[FaultInjector::Action::kDelay], 0);
  EXPECT_EQ(counts[FaultInjector::Action::kTruncate], 0);
}

TEST(FaultInjectorTest, AnyReflectsEveryKnob) {
  FaultConfig config;
  EXPECT_FALSE(config.Any());
  config.kill_fraction = 0.1;
  EXPECT_TRUE(config.Any());
  config.kill_fraction = 0.0;
  config.truncate_prob = 0.1;
  EXPECT_TRUE(config.Any());
}

}  // namespace
}  // namespace net

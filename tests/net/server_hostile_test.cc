// Hostile-handshake regression tests distilled from the fuzzing subsystem
// (fuzz_server_session found the original defect; see
// fuzz/regressions/server_session/). A hello whose 64-bit id does not fit
// in an int used to truncate — 0xFFFFFFFF became −1, the "no id yet"
// sentinel, so one connection could register twice and leave a dangling
// by_client_ entry behind on close.
#include "net/server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace net {
namespace {

RetryConfig FastRetry() {
  RetryConfig retry;
  retry.max_attempts = 10;
  retry.initial_backoff_ms = 1.0;
  return retry;
}

void PumpUntilClosed(Server& server, Connection& conn) {
  Frame frame;
  for (int i = 0; i < 200; ++i) {
    server.PollOnce(1);
    if (conn.TryRecvFrame(&frame, 5) == Connection::RecvStatus::kEof) {
      return;
    }
  }
  FAIL() << "server never closed the hostile connection";
}

TEST(ServerHostileTest, UnrepresentableHelloIdsAreRejected) {
  Server server(ServerOptions{});
  for (const std::uint64_t id :
       {std::uint64_t{0xFFFFFFFFull},       // truncates to -1 (sentinel)
        std::uint64_t{0x100000000ull},      // truncates to 0
        std::uint64_t{0x80000000ull},       // INT_MAX + 1
        ~std::uint64_t{0}}) {               // all ones
    SCOPED_TRACE(id);
    Connection conn = ConnectWithRetry(server.port(), FastRetry(), 3);
    conn.SendFrame(EncodeAck({id}), 1000);
    PumpUntilClosed(server, conn);
    EXPECT_EQ(server.ConnectedCount(), 0u);
    EXPECT_FALSE(server.WaitForClients(1, 0));
  }
}

TEST(ServerHostileTest, BoundaryHelloIdStillWorks) {
  Server server(ServerOptions{});
  Connection conn = ConnectWithRetry(server.port(), FastRetry(), 3);
  const std::uint64_t id = 0x7FFFFFFFull;  // INT_MAX: representable, valid
  conn.SendFrame(EncodeAck({id}), 1000);
  for (int i = 0; i < 200 && !server.IsConnected(0x7FFFFFFF); ++i) {
    server.PollOnce(1);
  }
  EXPECT_TRUE(server.IsConnected(0x7FFFFFFF));
  EXPECT_TRUE(server.WaitForClients(1, 0));
}

TEST(ServerHostileTest, GoodClientSurvivesHostileHello) {
  Server server(ServerOptions{});
  std::vector<int> disconnected;
  server.SetDisconnectHandler(
      [&disconnected](int id) { disconnected.push_back(id); });

  Connection good = ConnectWithRetry(server.port(), FastRetry(), 3);
  good.SendFrame(EncodeAck({1}), 1000);
  for (int i = 0; i < 200 && !server.IsConnected(1); ++i) {
    server.PollOnce(1);
  }
  ASSERT_TRUE(server.IsConnected(1));

  Connection hostile = ConnectWithRetry(server.port(), FastRetry(), 3);
  hostile.SendFrame(EncodeAck({0xFFFFFFFFull}), 1000);
  PumpUntilClosed(server, hostile);

  // Only the hostile connection fell; the established session is intact
  // and the bookkeeping walk (WaitForClients dereferences every by_client_
  // entry) stays clean — the dangling-pointer failure mode under ASan.
  EXPECT_TRUE(server.IsConnected(1));
  EXPECT_TRUE(server.WaitForClients(1, 0));
  EXPECT_TRUE(disconnected.empty());

  // The surviving client still receives real traffic.
  ModelBroadcastMsg msg;
  msg.round = 1;
  msg.job_index = 9;
  msg.params = {1.0f, 2.0f};
  ASSERT_TRUE(server.SendTo(1, EncodeModelBroadcast(msg)));
  server.Flush(1000);
  Frame frame;
  bool delivered = false;
  for (int i = 0; i < 200 && !delivered; ++i) {
    server.PollOnce(1);
    delivered =
        good.TryRecvFrame(&frame, 5) == Connection::RecvStatus::kFrame;
  }
  ASSERT_TRUE(delivered);
  EXPECT_EQ(DecodeModelBroadcast(frame).job_index, 9u);
}

}  // namespace
}  // namespace net

#include "cluster/tsne.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace cluster {
namespace {

double Dist2D(const std::array<double, 2>& a, const std::array<double, 2>& b) {
  return std::hypot(a[0] - b[0], a[1] - b[1]);
}

TEST(TsneTest, OutputHasOnePointPerInput) {
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("tsne");
  std::vector<std::vector<float>> points(10, std::vector<float>(5, 0.0f));
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i][0] = static_cast<float>(i);
  }
  TsneOptions options;
  options.iterations = 50;
  auto embedding = TsneEmbed(points, rng, options);
  EXPECT_EQ(embedding.size(), 10u);
  for (const auto& p : embedding) {
    EXPECT_TRUE(std::isfinite(p[0]));
    EXPECT_TRUE(std::isfinite(p[1]));
  }
}

TEST(TsneTest, EmbeddingIsCentred) {
  util::RngFactory rngs(2);
  auto rng = rngs.Stream("tsne");
  std::vector<std::vector<float>> points(12, std::vector<float>(4));
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i][i % 4] = static_cast<float>(i);
  }
  TsneOptions options;
  options.iterations = 60;
  auto embedding = TsneEmbed(points, rng, options);
  double cx = 0.0, cy = 0.0;
  for (const auto& p : embedding) {
    cx += p[0];
    cy += p[1];
  }
  EXPECT_NEAR(cx / embedding.size(), 0.0, 1e-6);
  EXPECT_NEAR(cy / embedding.size(), 0.0, 1e-6);
}

TEST(TsneTest, PreservesTwoWellSeparatedClusters) {
  util::RngFactory rngs(3);
  auto rng = rngs.Stream("tsne");
  std::normal_distribution<float> noise(0.0f, 0.05f);
  std::vector<std::vector<float>> points;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      std::vector<float> p(8, static_cast<float>(c) * 20.0f);
      for (float& x : p) {
        x += noise(rng);
      }
      points.push_back(std::move(p));
    }
  }
  auto embedding = TsneEmbed(points, rng);
  // Mean intra-cluster distance ≪ inter-cluster distance in the embedding.
  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      const bool same = (i < 15) == (j < 15);
      (same ? intra : inter) += Dist2D(embedding[i], embedding[j]);
      (same ? n_intra : n_inter) += 1;
    }
  }
  EXPECT_LT(intra / n_intra, 0.5 * inter / n_inter);
}

TEST(TsneTest, DeterministicGivenRngState) {
  std::vector<std::vector<float>> points(8, std::vector<float>(3));
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i][0] = static_cast<float>(i * i);
  }
  TsneOptions options;
  options.iterations = 40;
  util::RngFactory rngs(4);
  auto r1 = rngs.Stream("tsne");
  auto r2 = rngs.Stream("tsne");
  auto e1 = TsneEmbed(points, r1, options);
  auto e2 = TsneEmbed(points, r2, options);
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1[i][0], e2[i][0]);
    EXPECT_DOUBLE_EQ(e1[i][1], e2[i][1]);
  }
}

TEST(TsneTest, FewerThanTwoPointsThrows) {
  util::RngFactory rngs(5);
  auto rng = rngs.Stream("tsne");
  std::vector<std::vector<float>> one{{1.0f}};
  EXPECT_THROW(TsneEmbed(one, rng), util::CheckError);
}

TEST(TsneTest, MismatchedDimensionsThrow) {
  util::RngFactory rngs(6);
  auto rng = rngs.Stream("tsne");
  std::vector<std::vector<float>> points{{1.0f, 2.0f}, {3.0f}};
  EXPECT_THROW(TsneEmbed(points, rng), util::CheckError);
}

}  // namespace
}  // namespace cluster

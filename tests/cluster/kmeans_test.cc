#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace cluster {
namespace {

std::mt19937_64 Rng(std::uint64_t seed = 1) {
  return util::RngFactory(seed).Stream("km");
}

TEST(KMeansTest, SeparatesThreeObviousClusters1D) {
  std::vector<double> values{0.0, 0.1, 0.05, 5.0, 5.1, 4.9, 10.0, 10.2, 9.8};
  auto rng = Rng();
  KMeansResult r = KMeans1D(values, 3, rng);
  // All points of one block share an assignment.
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[0], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_EQ(r.assignment[6], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_NE(r.assignment[3], r.assignment[6]);
  EXPECT_LT(r.inertia, 0.2);
}

TEST(KMeansTest, CentroidsNearClusterMeans) {
  std::vector<double> values{1.0, 1.2, 9.0, 9.2};
  auto rng = Rng(2);
  KMeansResult r = KMeans1D(values, 2, rng);
  std::vector<double> centroids{r.centroids[0][0], r.centroids[1][0]};
  std::sort(centroids.begin(), centroids.end());
  EXPECT_NEAR(centroids[0], 1.1, 1e-9);
  EXPECT_NEAR(centroids[1], 9.1, 1e-9);
}

TEST(KMeansTest, TwoDimensionalClusters) {
  std::vector<std::vector<double>> points;
  auto rng = Rng(3);
  std::normal_distribution<double> noise(0.0, 0.1);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 20; ++i) {
      points.push_back({c * 10.0 + noise(rng), c * 10.0 + noise(rng)});
    }
  }
  KMeansResult r = KMeans(points, 2, rng);
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(r.assignment[i], r.assignment[0]);
    EXPECT_EQ(r.assignment[20 + i], r.assignment[20]);
  }
  EXPECT_NE(r.assignment[0], r.assignment[20]);
}

TEST(KMeansTest, KEqualsNPointsGivesZeroInertia) {
  std::vector<double> values{1.0, 2.0, 3.0};
  auto rng = Rng(4);
  KMeansResult r = KMeans1D(values, 3, rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, IdenticalPointsHandled) {
  std::vector<double> values(10, 4.2);
  auto rng = Rng(5);
  KMeansResult r = KMeans1D(values, 3, rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, EmptyInputThrows) {
  auto rng = Rng(6);
  EXPECT_THROW(KMeans({}, 2, rng), util::CheckError);
  EXPECT_THROW(KMeans({{1.0}}, 0, rng), util::CheckError);
}

TEST(KMeansTest, MismatchedDimensionsThrow) {
  auto rng = Rng(7);
  std::vector<std::vector<double>> points{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(KMeans(points, 1, rng), util::CheckError);
}

class KMeansInertiaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansInertiaTest, InertiaIsNonIncreasingInK) {
  // Best-of-restarts k-means must not get worse when allowed more
  // centroids (a classic sanity property of the objective).
  auto rng = Rng(20 + GetParam());
  std::uniform_real_distribution<double> uniform(0.0, 10.0);
  std::vector<double> values(40);
  for (double& v : values) {
    v = uniform(rng);
  }
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= GetParam(); ++k) {
    KMeansOptions options;
    options.restarts = 8;
    double inertia = KMeans1D(values, k, rng, options).inertia;
    EXPECT_LE(inertia, prev * (1.0 + 1e-9));
    prev = inertia;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxK, KMeansInertiaTest, ::testing::Values(3u, 5u));

TEST(SilhouetteTest, WellSeparatedClustersScoreHigh) {
  std::vector<std::vector<double>> points{{0.0}, {0.1}, {10.0}, {10.1}};
  auto rng = Rng(8);
  KMeansResult r = KMeans(points, 2, rng);
  EXPECT_GT(Silhouette(points, r), 0.9);
}

TEST(SilhouetteTest, SingleClusterScoresZero) {
  std::vector<std::vector<double>> points{{0.0}, {1.0}};
  auto rng = Rng(9);
  KMeansResult r = KMeans(points, 1, rng);
  EXPECT_DOUBLE_EQ(Silhouette(points, r), 0.0);
}

TEST(GapStatisticTest, DetectsNoStructureInUniformData) {
  auto rng = Rng(10);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> values(60);
  for (double& v : values) {
    v = uniform(rng);
  }
  // Uniform 1-D data: the gap statistic should prefer k = 1 most of the time.
  std::size_t k = GapStatisticK(values, 3, rng);
  EXPECT_LE(k, 2u);
}

TEST(GapStatisticTest, DetectsTwoSeparatedBlobs) {
  auto rng = Rng(11);
  std::normal_distribution<double> a(0.0, 0.05), b(10.0, 0.05);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(a(rng));
    values.push_back(b(rng));
  }
  EXPECT_GE(GapStatisticK(values, 3, rng), 2u);
}

TEST(GapStatisticTest, ConstantScoresGiveOneCluster) {
  auto rng = Rng(12);
  std::vector<double> values(20, 0.5);
  EXPECT_EQ(GapStatisticK(values, 3, rng), 1u);
}

}  // namespace
}  // namespace cluster

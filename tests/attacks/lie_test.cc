#include "attacks/lie.h"

#include <gtest/gtest.h>

#include "stats/vec_ops.h"
#include "util/rng.h"

namespace attacks {
namespace {

TEST(LieAttackTest, ZMatchesFormulaRegime) {
  // n=100, m=20: s = 51-20 = 31, p = (100-20-31)/80 = 0.6125 → z ≈ 0.286,
  // floored at 0.3 by the implementation.
  LieAttack attack(100, 20);
  EXPECT_NEAR(attack.z(), 0.3, 1e-9);
  // n=50, m=5: s = 26-5 = 21, p = (50-5-21)/45 ≈ 0.533 → z ≈ 0.084 → 0.3 floor.
  LieAttack small(50, 5);
  EXPECT_GE(small.z(), 0.3);
}

TEST(LieAttackTest, OverrideBypassesFormula) {
  LieAttack attack(100, 20, 1.5);
  EXPECT_DOUBLE_EQ(attack.z(), 1.5);
}

TEST(LieAttackTest, CraftIsMeanMinusZStd) {
  LieAttack attack(100, 20, 2.0);
  std::vector<std::vector<float>> window{{0.0f, 10.0f}, {2.0f, 10.0f}};
  std::vector<float> honest{1.0f, 10.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  // dim 0: mean 1, std 1 → 1 - 2·1 = -1. dim 1: mean 10, std 0 → 10.
  EXPECT_FLOAT_EQ(poisoned[0], -1.0f);
  EXPECT_FLOAT_EQ(poisoned[1], 10.0f);
}

TEST(LieAttackTest, SmallWindowFallsBackToHonest) {
  LieAttack attack(100, 20);
  std::vector<std::vector<float>> window{{5.0f}};
  std::vector<float> honest{3.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  ctx.colluder_updates = &window;
  EXPECT_EQ(attack.Craft(ctx), honest);
}

TEST(LieAttackTest, SubtletyPropertyStaysNearBenignSpread) {
  // LIE's defining property: each coordinate stays within z standard
  // deviations of the benign mean.
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("lie");
  std::normal_distribution<float> noise(1.0f, 0.5f);
  std::vector<std::vector<float>> window(20, std::vector<float>(16));
  for (auto& u : window) {
    for (float& x : u) {
      x = noise(rng);
    }
  }
  LieAttack attack(100, 20);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  auto mean = stats::Mean(window);
  auto sd = stats::PerDimensionStd(window);
  for (std::size_t d = 0; d < poisoned.size(); ++d) {
    EXPECT_LE(std::abs(poisoned[d] - mean[d]),
              static_cast<float>(attack.z()) * sd[d] + 1e-5f);
  }
}

}  // namespace
}  // namespace attacks

#include "attacks/registry.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace attacks {
namespace {

TEST(ParseAttackKindTest, CanonicalNames) {
  EXPECT_EQ(ParseAttackKind("none"), AttackKind::kNone);
  EXPECT_EQ(ParseAttackKind("GD"), AttackKind::kGd);
  EXPECT_EQ(ParseAttackKind("LIE"), AttackKind::kLie);
  EXPECT_EQ(ParseAttackKind("Min-Max"), AttackKind::kMinMax);
  EXPECT_EQ(ParseAttackKind("Min-Sum"), AttackKind::kMinSum);
}

TEST(ParseAttackKindTest, ToleratesCaseAndSeparators) {
  EXPECT_EQ(ParseAttackKind("min_max"), AttackKind::kMinMax);
  EXPECT_EQ(ParseAttackKind("MINSUM"), AttackKind::kMinSum);
  EXPECT_EQ(ParseAttackKind("gradient-deviation"), AttackKind::kGd);
  EXPECT_EQ(ParseAttackKind("little is enough"), AttackKind::kLie);
}

TEST(ParseAttackKindTest, ExtensionAttacks) {
  EXPECT_EQ(ParseAttackKind("adaptive"), AttackKind::kAdaptive);
  EXPECT_EQ(ParseAttackKind("label-flip"), AttackKind::kLabelFlip);
  EXPECT_STREQ(AttackKindName(AttackKind::kAdaptive), "Adaptive");
  EXPECT_STREQ(AttackKindName(AttackKind::kLabelFlip), "Label-Flip");
  AttackParams params;
  EXPECT_EQ(MakeAttack(AttackKind::kAdaptive, params)->Name(), "Adaptive");
  // Label-flip is data-level: its update-level attack object is a no-op.
  EXPECT_EQ(MakeAttack(AttackKind::kLabelFlip, params)->Name(), "none");
}

TEST(ParseAttackKindTest, UnknownThrows) {
  EXPECT_THROW(ParseAttackKind("zeus"), util::CheckError);
}

TEST(AttackKindNameTest, RoundTripsDisplayNames) {
  EXPECT_STREQ(AttackKindName(AttackKind::kNone), "No attack");
  EXPECT_STREQ(AttackKindName(AttackKind::kGd), "GD");
  EXPECT_STREQ(AttackKindName(AttackKind::kLie), "LIE");
  EXPECT_STREQ(AttackKindName(AttackKind::kMinMax), "Min-Max");
  EXPECT_STREQ(AttackKindName(AttackKind::kMinSum), "Min-Sum");
}

TEST(MakeAttackTest, BuildsEveryKind) {
  AttackParams params;
  for (AttackKind kind : {AttackKind::kNone, AttackKind::kGd, AttackKind::kLie,
                          AttackKind::kMinMax, AttackKind::kMinSum}) {
    auto attack = MakeAttack(kind, params);
    ASSERT_NE(attack, nullptr);
    EXPECT_FALSE(attack->Name().empty());
  }
}

TEST(MakeAttackTest, ParamsReachTheAttack) {
  AttackParams params;
  params.gd_scale = 3.5;
  auto gd = MakeAttack(AttackKind::kGd, params);
  std::vector<float> honest{1.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  EXPECT_FLOAT_EQ(gd->Craft(ctx)[0], -3.5f);
}

}  // namespace
}  // namespace attacks

#include "attacks/min_opt.h"

#include <gtest/gtest.h>

#include "stats/vec_ops.h"
#include "util/rng.h"

namespace attacks {
namespace {

std::vector<std::vector<float>> BenignWindow(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  util::RngFactory rngs(seed);
  auto rng = rngs.Stream("benign");
  std::normal_distribution<float> noise(1.0f, 0.3f);
  std::vector<std::vector<float>> window(n, std::vector<float>(dim));
  for (auto& u : window) {
    for (float& x : u) {
      x = noise(rng);
    }
  }
  return window;
}

double MaxPairwiseSq(const std::vector<std::vector<float>>& v) {
  double worst = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      worst = std::max(worst, stats::SquaredDistance(v[i], v[j]));
    }
  }
  return worst;
}

TEST(MinMaxAttackTest, SatisfiesDistanceEnvelope) {
  auto window = BenignWindow(15, 32, 1);
  MinOptAttack attack(MinOptVariant::kMinMax);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  // Constraint: max_j ||poisoned - u_j||² ≤ max pairwise benign distance².
  const double envelope = MaxPairwiseSq(window);
  for (const auto& u : window) {
    EXPECT_LE(stats::SquaredDistance(poisoned, u), envelope * (1.0 + 1e-6));
  }
}

TEST(MinSumAttackTest, SatisfiesSumEnvelope) {
  auto window = BenignWindow(15, 32, 2);
  MinOptAttack attack(MinOptVariant::kMinSum);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  double attack_sum = 0.0;
  double worst_benign_sum = 0.0;
  for (const auto& u : window) {
    attack_sum += stats::SquaredDistance(poisoned, u);
  }
  for (const auto& u : window) {
    double total = 0.0;
    for (const auto& v : window) {
      total += stats::SquaredDistance(u, v);
    }
    worst_benign_sum = std::max(worst_benign_sum, total);
  }
  EXPECT_LE(attack_sum, worst_benign_sum * (1.0 + 1e-6));
}

TEST(MinOptAttackTest, MovesOppositeToTheBenignMean) {
  auto window = BenignWindow(10, 16, 3);
  MinOptAttack attack(MinOptVariant::kMinMax);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  auto mean = stats::Mean(window);
  // The poisoned update is mean + γ·(−mean/‖mean‖): its norm along the mean
  // direction must be strictly below the mean's.
  EXPECT_LT(stats::Dot(poisoned, mean), stats::Dot(mean, mean));
}

TEST(MinOptAttackTest, UsesNonTrivialGamma) {
  auto window = BenignWindow(10, 16, 4);
  MinOptAttack attack(MinOptVariant::kMinMax);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto poisoned = attack.Craft(ctx);
  auto mean = stats::Mean(window);
  // γ must be materially positive (not a no-op sending the plain mean).
  EXPECT_GT(stats::Distance(poisoned, mean), 0.1);
}

TEST(MinOptAttackTest, MinSumAllowsNoLargerDeviationThanMinMaxForbids) {
  // Sanity relation: both attacks deviate from the mean, and both stay
  // feasible within their own envelope definition.
  auto window = BenignWindow(12, 24, 5);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  MinOptAttack min_max(MinOptVariant::kMinMax);
  MinOptAttack min_sum(MinOptVariant::kMinSum);
  auto mean = stats::Mean(window);
  EXPECT_GT(stats::Distance(min_max.Craft(ctx), mean), 0.0);
  EXPECT_GT(stats::Distance(min_sum.Craft(ctx), mean), 0.0);
}

TEST(MinOptAttackTest, TinyWindowFallsBackToHonest) {
  std::vector<std::vector<float>> window{{1.0f}};
  MinOptAttack attack(MinOptVariant::kMinSum);
  std::vector<float> honest{2.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  ctx.colluder_updates = &window;
  EXPECT_EQ(attack.Craft(ctx), honest);
}

TEST(MinOptAttackTest, NamesReportVariant) {
  EXPECT_EQ(MinOptAttack(MinOptVariant::kMinMax).Name(), "Min-Max");
  EXPECT_EQ(MinOptAttack(MinOptVariant::kMinSum).Name(), "Min-Sum");
}

}  // namespace
}  // namespace attacks

#include "attacks/adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "stats/vec_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace attacks {
namespace {

std::vector<std::vector<float>> BenignWindow(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  auto rng = util::RngFactory(seed).Stream("benign");
  std::normal_distribution<float> noise(1.0f, 0.4f);
  std::vector<std::vector<float>> window(n, std::vector<float>(dim));
  for (auto& u : window) {
    for (float& x : u) {
      x = noise(rng);
    }
  }
  return window;
}

TEST(AdaptiveAttackTest, StaysWithinColluderScoreEnvelope) {
  auto window = BenignWindow(20, 24, 1);
  AdaptiveAttack attack(0.9);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto crafted = attack.Craft(ctx);

  // Replay the score the defense would assign: distance to the window mean
  // over the window's RMS deviation. The crafted update must not exceed the
  // colluders' own maximum score.
  auto mean = stats::Mean(window);
  double sum_sq = 0.0, worst = 0.0;
  for (const auto& u : window) {
    double d = stats::Distance(u, mean);
    sum_sq += d * d;
    worst = std::max(worst, d);
  }
  double rms = std::sqrt(sum_sq / static_cast<double>(window.size()));
  double crafted_score = stats::Distance(crafted, mean) / rms;
  double worst_benign_score = worst / rms;
  EXPECT_LE(crafted_score, worst_benign_score + 1e-6);
  EXPECT_GT(crafted_score, 0.1);  // but it does deviate
}

TEST(AdaptiveAttackTest, OpposesTheBenignDirection) {
  auto window = BenignWindow(15, 16, 2);
  AdaptiveAttack attack(0.9);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto crafted = attack.Craft(ctx);
  auto mean = stats::Mean(window);
  // Crafted = mean − γ·mean/‖mean‖ shrinks the component along the mean.
  EXPECT_LT(stats::Dot(crafted, mean), stats::Dot(mean, mean));
}

TEST(AdaptiveAttackTest, QuantileControlsAggressiveness) {
  auto window = BenignWindow(25, 16, 3);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto mean = stats::Mean(window);
  AdaptiveAttack timid(0.2);
  AdaptiveAttack bold(1.0);
  double timid_dev = stats::Distance(timid.Craft(ctx), mean);
  double bold_dev = stats::Distance(bold.Craft(ctx), mean);
  EXPECT_LT(timid_dev, bold_dev);
}

TEST(AdaptiveAttackTest, TinyWindowFallsBackToHonest) {
  std::vector<std::vector<float>> window{{1.0f}, {1.1f}};
  AdaptiveAttack attack(0.9);
  std::vector<float> honest{2.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  ctx.colluder_updates = &window;
  EXPECT_EQ(attack.Craft(ctx), honest);
}

TEST(AdaptiveAttackTest, DegenerateWindowReturnsMean) {
  std::vector<std::vector<float>> window(5, std::vector<float>{3.0f, 3.0f});
  AdaptiveAttack attack(0.9);
  AttackContext ctx;
  ctx.honest_update = window[0];
  ctx.colluder_updates = &window;
  auto crafted = attack.Craft(ctx);
  EXPECT_FLOAT_EQ(crafted[0], 3.0f);
}

TEST(AdaptiveAttackTest, InvalidQuantileThrows) {
  EXPECT_THROW(AdaptiveAttack(0.0), util::CheckError);
  EXPECT_THROW(AdaptiveAttack(1.5), util::CheckError);
}

}  // namespace
}  // namespace attacks

#include "attacks/coordinator.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace attacks {
namespace {

TEST(CoordinatorTest, AbsorbsUpToCapacity) {
  Coordinator coordinator(3);
  for (int i = 0; i < 5; ++i) {
    coordinator.Absorb(std::vector<float>{static_cast<float>(i)});
  }
  EXPECT_EQ(coordinator.size(), 3u);
  auto window = coordinator.Window();
  ASSERT_EQ(window.size(), 3u);
  // Oldest first; entries 0 and 1 were evicted.
  EXPECT_FLOAT_EQ(window[0][0], 2.0f);
  EXPECT_FLOAT_EQ(window[2][0], 4.0f);
}

TEST(CoordinatorTest, WindowIsASnapshot) {
  Coordinator coordinator(4);
  coordinator.Absorb(std::vector<float>{1.0f});
  auto window = coordinator.Window();
  coordinator.Absorb(std::vector<float>{2.0f});
  EXPECT_EQ(window.size(), 1u);  // unchanged snapshot
  EXPECT_EQ(coordinator.size(), 2u);
}

TEST(CoordinatorTest, ResetClears) {
  Coordinator coordinator(4);
  coordinator.Absorb(std::vector<float>{1.0f});
  coordinator.Reset();
  EXPECT_EQ(coordinator.size(), 0u);
}

TEST(CoordinatorTest, ZeroCapacityThrows) {
  EXPECT_THROW(Coordinator(0), util::CheckError);
}

}  // namespace
}  // namespace attacks

#include "attacks/gd.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace attacks {
namespace {

TEST(GdAttackTest, ReversesAndScalesHonestUpdate) {
  GdAttack attack(2.0);
  std::vector<float> honest{1.0f, -2.0f, 0.5f};
  AttackContext ctx;
  ctx.honest_update = honest;
  auto poisoned = attack.Craft(ctx);
  EXPECT_FLOAT_EQ(poisoned[0], -2.0f);
  EXPECT_FLOAT_EQ(poisoned[1], 4.0f);
  EXPECT_FLOAT_EQ(poisoned[2], -1.0f);
}

TEST(GdAttackTest, ScaleOneIsExactReversal) {
  // Theorem 1's model: the malicious client sends -δ.
  GdAttack attack(1.0);
  std::vector<float> honest{0.25f, -0.75f};
  AttackContext ctx;
  ctx.honest_update = honest;
  auto poisoned = attack.Craft(ctx);
  EXPECT_FLOAT_EQ(poisoned[0], -0.25f);
  EXPECT_FLOAT_EQ(poisoned[1], 0.75f);
}

TEST(GdAttackTest, InvalidScaleThrows) {
  EXPECT_THROW(GdAttack(0.0), util::CheckError);
  EXPECT_THROW(GdAttack(-1.0), util::CheckError);
}

TEST(NoAttackTest, PassesHonestUpdateThrough) {
  NoAttack attack;
  std::vector<float> honest{1.0f, 2.0f};
  AttackContext ctx;
  ctx.honest_update = honest;
  EXPECT_EQ(attack.Craft(ctx), honest);
}

}  // namespace
}  // namespace attacks

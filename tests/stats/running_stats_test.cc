#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace stats {
namespace {

TEST(RunningStatsTest, MeanAndVarianceMatchBatch) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.Add(x);
  }
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 4.0, 1e-12);  // classic population-variance set
  EXPECT_NEAR(rs.stddev(), 2.0, 1e-12);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats rs;
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, EmptyStatsAreZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, RestoreStateReproducesBitIdenticalEstimator) {
  RunningStats rs;
  for (double x : {0.1, 0.2, 0.35, 0.7}) {
    rs.Add(x);
  }
  RunningStats restored;
  restored.RestoreState(rs.count(), rs.mean(), rs.m2());
  EXPECT_EQ(restored.count(), rs.count());
  EXPECT_EQ(restored.mean(), rs.mean());
  EXPECT_EQ(restored.m2(), rs.m2());
  // Continuing both streams stays bit-identical.
  rs.Add(1.25);
  restored.Add(1.25);
  EXPECT_EQ(restored.mean(), rs.mean());
  EXPECT_EQ(restored.m2(), rs.m2());
}

TEST(RunningStatsTest, MergeEqualsSingleStreamAccumulation) {
  const std::vector<double> stream = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats whole;
  for (double x : stream) {
    whole.Add(x);
  }
  RunningStats left, right;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    (i < 3 ? left : right).Add(stream[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
}

TEST(RunningStatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats rs;
  rs.Add(1.0);
  rs.Add(3.0);
  const double mean = rs.mean();
  const double m2 = rs.m2();

  RunningStats empty;
  rs.Merge(empty);  // merging in an empty accumulator changes nothing
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_EQ(rs.mean(), mean);
  EXPECT_EQ(rs.m2(), m2);

  RunningStats target;
  target.Merge(rs);  // merging into an empty accumulator copies the state
  EXPECT_EQ(target.count(), 2u);
  EXPECT_NEAR(target.mean(), mean, 1e-15);
  EXPECT_NEAR(target.m2(), m2, 1e-15);
}

TEST(VectorMovingAverageTest, FirstObservationIsTheMean) {
  VectorMovingAverage ma;
  std::vector<float> v{1.0f, 2.0f};
  ma.Add(v);
  EXPECT_EQ(ma.count(), 1u);
  EXPECT_FLOAT_EQ(ma.mean()[0], 1.0f);
  EXPECT_FLOAT_EQ(ma.mean()[1], 2.0f);
}

TEST(VectorMovingAverageTest, ImplementsPaperEquationFive) {
  // MA ← t/(t+1)·MA + 1/(t+1)·ω is exactly a running arithmetic mean.
  VectorMovingAverage ma;
  std::vector<float> a{0.0f};
  std::vector<float> b{3.0f};
  std::vector<float> c{6.0f};
  ma.Add(a);
  ma.Add(b);
  EXPECT_FLOAT_EQ(ma.mean()[0], 1.5f);
  ma.Add(c);
  EXPECT_FLOAT_EQ(ma.mean()[0], 3.0f);
  EXPECT_EQ(ma.count(), 3u);
}

TEST(VectorMovingAverageTest, MeanBeforeAddThrows) {
  VectorMovingAverage ma;
  EXPECT_TRUE(ma.empty());
  EXPECT_THROW(ma.mean(), util::CheckError);
}

TEST(VectorMovingAverageTest, DimensionChangeThrows) {
  VectorMovingAverage ma;
  std::vector<float> v2{1.0f, 2.0f};
  std::vector<float> v3{1.0f, 2.0f, 3.0f};
  ma.Add(v2);
  EXPECT_THROW(ma.Add(v3), util::CheckError);
}

TEST(VectorMovingAverageTest, MeanIsStableAcrossRepeatedReads) {
  VectorMovingAverage ma;
  std::vector<float> v{2.5f};
  ma.Add(v);
  auto first = ma.mean();
  auto second = ma.mean();
  EXPECT_EQ(first.data(), second.data());  // cached view
  EXPECT_FLOAT_EQ(second[0], 2.5f);
}

TEST(VectorMovingAverageTest, ManyObservationsConvergeToTrueMean) {
  VectorMovingAverage ma;
  for (int i = 0; i < 1000; ++i) {
    std::vector<float> v{static_cast<float>(i % 2)};  // alternating 0/1
    ma.Add(v);
  }
  EXPECT_NEAR(ma.mean()[0], 0.5f, 1e-3);
}

}  // namespace
}  // namespace stats

#include "stats/dirichlet.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace stats {
namespace {

TEST(DirichletTest, SamplesLieOnSimplex) {
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("dir");
  for (int i = 0; i < 50; ++i) {
    auto sample = SampleSymmetricDirichlet(10, 0.5, rng);
    double total = 0.0;
    for (double x : sample) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DirichletTest, AsymmetricAlphasShiftMass) {
  util::RngFactory rngs(2);
  auto rng = rngs.Stream("dir");
  std::vector<double> alphas{10.0, 0.1, 0.1};
  double first_mass = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    first_mass += SampleDirichlet(alphas, rng)[0];
  }
  EXPECT_GT(first_mass / n, 0.8);  // E[x_0] = 10/10.2 ≈ 0.98
}

TEST(DirichletTest, NonPositiveAlphaThrows) {
  util::RngFactory rngs(3);
  auto rng = rngs.Stream("dir");
  EXPECT_THROW(SampleDirichlet({1.0, 0.0}, rng), util::CheckError);
  EXPECT_THROW(SampleDirichlet({}, rng), util::CheckError);
}

class DirichletConcentrationTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletConcentrationTest, SmallAlphaConcentratesOnFewLabels) {
  // The paper's non-IID knob: with α ≤ 0.1 each client's mass collapses onto
  // a handful of labels. Measure the mean max-coordinate.
  const double alpha = GetParam();
  util::RngFactory rngs(4);
  auto rng = rngs.Stream("dir");
  double mean_max = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    auto s = SampleSymmetricDirichlet(10, alpha, rng);
    mean_max += *std::max_element(s.begin(), s.end());
  }
  mean_max /= n;
  if (alpha <= 0.1) {
    EXPECT_GT(mean_max, 0.6);
  } else {
    EXPECT_LT(mean_max, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletConcentrationTest,
                         ::testing::Values(0.01, 0.05, 0.1, 1.0, 10.0));

TEST(DirichletTest, TinyAlphaDegeneratesToOneHot) {
  // Gamma draws can all underflow at extreme concentrations; the sampler
  // must still return a valid simplex point.
  util::RngFactory rngs(5);
  auto rng = rngs.Stream("dir");
  for (int i = 0; i < 20; ++i) {
    auto s = SampleSymmetricDirichlet(10, 1e-8, rng);
    double total = 0.0;
    for (double x : s) {
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace stats

#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace stats {
namespace {

TEST(SummaryTest, BasicStatistics) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  Summary s = Summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample stddev
}

TEST(SummaryTest, SingleValue) {
  std::vector<double> values{7.0};
  Summary s = Summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(SummaryTest, EmptyThrows) {
  EXPECT_THROW(Summarize({}), util::CheckError);
}

TEST(QuantileTest, EndpointsAndMidpoint) {
  std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 25.0);  // linear interpolation
}

TEST(QuantileTest, UnsortedInputHandled) {
  std::vector<double> values{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 25.0);
}

TEST(QuantileTest, OutOfRangeThrows) {
  std::vector<double> values{1.0};
  EXPECT_THROW(Quantile(values, -0.1), util::CheckError);
  EXPECT_THROW(Quantile(values, 1.1), util::CheckError);
}

}  // namespace
}  // namespace stats

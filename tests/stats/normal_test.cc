#include "stats/normal.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-9);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.84134474606), 1.0, 1e-6);
}

TEST(NormalQuantileTest, TailsAreAccurate) {
  EXPECT_NEAR(NormalQuantile(1e-6), -4.753424308822899, 1e-5);
  EXPECT_NEAR(NormalQuantile(1.0 - 1e-6), 4.753424308822899, 1e-5);
}

TEST(NormalQuantileTest, InverseOfCdf) {
  for (double x : {-2.5, -1.0, -0.3, 0.0, 0.7, 1.8, 3.0}) {
    EXPECT_NEAR(NormalQuantile(NormalCdf(x)), x, 1e-7);
  }
}

TEST(NormalQuantileTest, OutOfDomainThrows) {
  EXPECT_THROW(NormalQuantile(0.0), util::CheckError);
  EXPECT_THROW(NormalQuantile(1.0), util::CheckError);
  EXPECT_THROW(NormalQuantile(-0.5), util::CheckError);
}

TEST(NormalQuantileTest, Monotonic) {
  double prev = NormalQuantile(0.01);
  for (double p = 0.02; p < 1.0; p += 0.01) {
    double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace stats

#include "stats/vec_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "tensor/kernels.h"
#include "util/check.h"

namespace stats {
namespace {

TEST(VecOpsTest, L2NormOfUnitVectors) {
  std::vector<float> v{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(L2Norm(v), 5.0);
  std::vector<float> zero(10, 0.0f);
  EXPECT_DOUBLE_EQ(L2Norm(zero), 0.0);
}

TEST(VecOpsTest, DistanceMatchesHandComputation) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{4.0f, 6.0f, 3.0f};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
}

TEST(VecOpsTest, DistanceIsSymmetricAndZeroOnSelf) {
  std::vector<float> a{0.5f, -1.5f, 2.0f};
  std::vector<float> b{-0.25f, 0.75f, 1.0f};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(VecOpsTest, SizeMismatchThrows) {
  std::vector<float> a{1.0f};
  std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(SquaredDistance(a, b), util::CheckError);
  EXPECT_THROW(Dot(a, b), util::CheckError);
}

TEST(VecOpsTest, DotProduct) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
}

TEST(VecOpsTest, CosineSimilarityKnownAngles) {
  std::vector<float> x{1.0f, 0.0f};
  std::vector<float> y{0.0f, 2.0f};
  std::vector<float> neg_x{-3.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(x, x), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(x, y), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(x, neg_x), -1.0, 1e-12);
}

TEST(VecOpsTest, CosineSimilarityZeroVectorIsZero) {
  std::vector<float> zero{0.0f, 0.0f};
  std::vector<float> v{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, v), 0.0);
}

TEST(VecOpsTest, AxpyAccumulates) {
  std::vector<float> x{1.0f, 2.0f};
  std::vector<float> y{10.0f, 20.0f};
  Axpy(2.0, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(VecOpsTest, ScaleMultiplies) {
  std::vector<float> v{1.0f, -2.0f};
  Scale(v, -0.5);
  EXPECT_FLOAT_EQ(v[0], -0.5f);
  EXPECT_FLOAT_EQ(v[1], 1.0f);
}

TEST(VecOpsTest, MeanOfVectors) {
  std::vector<std::vector<float>> vs{{1.0f, 2.0f}, {3.0f, 6.0f}};
  auto mean = Mean(vs);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 4.0f);
}

TEST(VecOpsTest, MeanOfEmptySetThrows) {
  EXPECT_THROW(Mean(std::vector<std::vector<float>>{}), util::CheckError);
  EXPECT_THROW(Mean(std::vector<std::span<const float>>{}),
               util::CheckError);
}

TEST(VecOpsTest, WeightedMeanRespectsWeights) {
  std::vector<std::vector<float>> vs{{0.0f}, {10.0f}};
  std::vector<double> weights{1.0, 3.0};
  auto mean = WeightedMean(vs, weights);
  EXPECT_FLOAT_EQ(mean[0], 7.5f);
}

TEST(VecOpsTest, WeightedMeanZeroWeightSumThrows) {
  std::vector<std::vector<float>> vs{{1.0f}};
  std::vector<double> weights{0.0};
  EXPECT_THROW(WeightedMean(vs, weights), util::CheckError);
}

TEST(VecOpsTest, PerDimensionStdMatchesPopulationFormula) {
  std::vector<std::vector<float>> vs{{1.0f, 5.0f}, {3.0f, 5.0f}};
  auto sd = PerDimensionStd(vs);
  EXPECT_FLOAT_EQ(sd[0], 1.0f);  // values {1,3}: mean 2, var 1
  EXPECT_FLOAT_EQ(sd[1], 0.0f);
}

// The reductions dispatch to the unrolled multi-accumulator kernels
// (tensor/kernels.h); check them against a sequential naive loop across
// lengths that exercise every tail case, on every available ISA path.
TEST(VecOpsTest, UnrolledKernelsMatchNaiveAcrossLengthsAndIsas) {
  std::mt19937_64 rng(4242);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<tensor::kernels::Isa> isas{tensor::kernels::Isa::kScalar};
  if (tensor::kernels::Avx2Available()) {
    isas.push_back(tensor::kernels::Isa::kAvx2);
  }
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u, 1023u}) {
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    double naive_dot = 0.0, naive_sq = 0.0, naive_ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      naive_dot += static_cast<double>(a[i]) * b[i];
      const double d = static_cast<double>(a[i]) - b[i];
      naive_sq += d * d;
      naive_ss += static_cast<double>(a[i]) * a[i];
    }
    const double tol = 1e-10 * (static_cast<double>(n) + 1.0);
    for (tensor::kernels::Isa isa : isas) {
      tensor::kernels::ForceIsa(isa);
      EXPECT_NEAR(Dot(a, b), naive_dot, tol) << "n=" << n;
      EXPECT_NEAR(SquaredDistance(a, b), naive_sq, tol) << "n=" << n;
      EXPECT_NEAR(L2Norm(a), std::sqrt(naive_ss), tol) << "n=" << n;

      std::vector<float> y = b;
      Axpy(0.75, a, y);
      std::vector<float> scaled = a;
      Scale(scaled, -1.25);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_FLOAT_EQ(y[i], static_cast<float>(b[i] + 0.75 * a[i]));
        EXPECT_FLOAT_EQ(scaled[i], static_cast<float>(a[i] * -1.25));
      }
      tensor::kernels::ResetForcedIsa();
    }
  }
}

TEST(VecOpsTest, AddSubtractNegateElementwise) {
  std::vector<float> a{1.0f, 2.0f};
  std::vector<float> b{0.5f, -1.0f};
  auto sum = Add(a, b);
  auto diff = Subtract(a, b);
  auto neg = Negate(a);
  EXPECT_FLOAT_EQ(sum[0], 1.5f);
  EXPECT_FLOAT_EQ(diff[1], 3.0f);
  EXPECT_FLOAT_EQ(neg[0], -1.0f);
}

}  // namespace
}  // namespace stats

#include "stats/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace stats {
namespace {

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler sampler(50, 1.2);
  double total = 0.0;
  for (std::size_t r = 1; r <= 50; ++r) {
    total += sampler.Probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, ProbabilityDecreasesWithRank) {
  ZipfSampler sampler(20, 1.2);
  for (std::size_t r = 1; r < 20; ++r) {
    EXPECT_GT(sampler.Probability(r), sampler.Probability(r + 1));
  }
}

TEST(ZipfSamplerTest, RatioMatchesPowerLaw) {
  ZipfSampler sampler(100, 2.0);
  // P(1)/P(2) = 2^s.
  EXPECT_NEAR(sampler.Probability(1) / sampler.Probability(2), 4.0, 1e-9);
}

TEST(ZipfSamplerTest, SamplesStayInSupport) {
  ZipfSampler sampler(10, 1.2);
  util::RngFactory rngs(3);
  auto rng = rngs.Stream("zipf");
  for (int i = 0; i < 1000; ++i) {
    std::size_t r = sampler.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequencyTracksTheory) {
  ZipfSampler sampler(10, 1.2);
  util::RngFactory rngs(4);
  auto rng = rngs.Stream("zipf");
  std::vector<std::size_t> counts(11, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[sampler.Sample(rng)]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, sampler.Probability(1), 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, sampler.Probability(2), 0.02);
}

TEST(ZipfSamplerTest, InvalidParametersThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.2), util::CheckError);
  EXPECT_THROW(ZipfSampler(10, 0.0), util::CheckError);
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HigherExponentConcentratesMassOnFastRanks) {
  const double s = GetParam();
  ZipfSampler sampler(100, s);
  // With s > 1 the head (ranks 1-5) should hold most probability mass, more
  // so as s grows (the paper's s = 2.5 study).
  double head = 0.0;
  for (std::size_t r = 1; r <= 5; ++r) {
    head += sampler.Probability(r);
  }
  EXPECT_GT(head, s >= 2.0 ? 0.85 : 0.5);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSkewTest,
                         ::testing::Values(1.2, 2.0, 2.5, 3.0));

TEST(SampleClientLatenciesTest, LatenciesAreMultiplesOfBase) {
  util::RngFactory rngs(5);
  auto rng = rngs.Stream("lat");
  auto latencies = SampleClientLatencies(64, 1.2, 0.5, rng);
  ASSERT_EQ(latencies.size(), 64u);
  for (double latency : latencies) {
    EXPECT_GE(latency, 0.5);
    double ratio = latency / 0.5;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  }
}

TEST(SampleClientLatenciesTest, MajorityOfClientsAreFast) {
  util::RngFactory rngs(6);
  auto rng = rngs.Stream("lat");
  auto latencies = SampleClientLatencies(200, 1.2, 1.0, rng);
  std::size_t fast = 0;
  for (double latency : latencies) {
    if (latency <= 5.0) {
      ++fast;
    }
  }
  EXPECT_GT(fast, 95u);  // Zipf(1.2): ranks 1-5 carry ~57% of the mass
}

}  // namespace
}  // namespace stats

#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace util {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesPlainRows) {
  {
    CsvWriter writer(path_);
    writer.WriteHeader({"a", "b"});
    writer.WriteRow({"1", "2"});
  }
  EXPECT_EQ(ReadAll(path_), "a,b\n1,2\n");
}

TEST_F(CsvWriterTest, QuotesCellsWithCommas) {
  CsvWriter writer(path_);
  writer.WriteRow({"x,y", "plain"});
  EXPECT_EQ(ReadAll(path_), "\"x,y\",plain\n");
}

TEST_F(CsvWriterTest, EscapesEmbeddedQuotes) {
  CsvWriter writer(path_);
  writer.WriteRow({"say \"hi\""});
  EXPECT_EQ(ReadAll(path_), "\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvWriterTest, QuotesNewlines) {
  CsvWriter writer(path_);
  writer.WriteRow({"two\nlines"});
  EXPECT_EQ(ReadAll(path_), "\"two\nlines\"\n");
}

TEST_F(CsvWriterTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv"), CheckError);
}

TEST(FormatFixedTest, RoundsToRequestedDigits) {
  EXPECT_EQ(FormatFixed(86.456), "86.5");
  EXPECT_EQ(FormatFixed(86.456, 2), "86.46");
  EXPECT_EQ(FormatFixed(-1.25, 1), "-1.2");  // banker-ish; documents behaviour
  EXPECT_EQ(FormatFixed(7.0, 0), "7");
}

}  // namespace
}  // namespace util

#include "util/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace util {
namespace {

TEST(ConsoleTableTest, RendersHeaderSeparatorAndRows) {
  ConsoleTable table({"Attack", "Acc"});
  table.AddRow({"GD", "93.0"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| Attack | Acc  |"), std::string::npos);
  EXPECT_NE(out.find("|--------|------|"), std::string::npos);
  EXPECT_NE(out.find("| GD     | 93.0 |"), std::string::npos);
}

TEST(ConsoleTableTest, ColumnsWidenToLongestCell) {
  ConsoleTable table({"m"});
  table.AddRow({"longer-cell"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| m           |"), std::string::npos);
  EXPECT_NE(out.find("| longer-cell |"), std::string::npos);
}

TEST(ConsoleTableTest, MismatchedRowArityThrows) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), CheckError);
}

TEST(ConsoleTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(ConsoleTable({}), CheckError);
}

TEST(ConsoleTableTest, AccessorsExposeContents) {
  ConsoleTable table({"h"});
  table.AddRow({"r1"});
  table.AddRow({"r2"});
  EXPECT_EQ(table.header().size(), 1u);
  EXPECT_EQ(table.rows().size(), 2u);
  EXPECT_EQ(table.rows()[1][0], "r2");
}

}  // namespace
}  // namespace util

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace util {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena(1024);
  auto a = arena.Allocate(100);
  auto b = arena.Allocate(100);
  std::memset(a.bytes.data(), 0xAA, a.bytes.size());
  std::memset(b.bytes.data(), 0xBB, b.bytes.size());
  EXPECT_EQ(a.bytes[99], 0xAA);
  EXPECT_EQ(b.bytes[0], 0xBB);
  EXPECT_TRUE(a.bytes.data() + a.bytes.size() <= b.bytes.data() ||
              b.bytes.data() + b.bytes.size() <= a.bytes.data());
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(4096);
  arena.Allocate(1);  // misalign the bump cursor
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    auto a = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.bytes.data()) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, RejectsBadAlignment) {
  Arena arena(1024);
  EXPECT_THROW(arena.Allocate(8, 3), util::CheckError);  // not a power of two
  EXPECT_THROW(arena.Allocate(8, 2 * alignof(std::max_align_t)),
               util::CheckError);
}

TEST(ArenaTest, RollsOverToFreshBlockWhenFull) {
  Arena arena(256);
  arena.Allocate(200);
  const auto before = arena.stats().blocks_created;
  arena.Allocate(200);  // cannot fit in the remainder
  EXPECT_EQ(arena.stats().blocks_created, before + 1);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(256);
  arena.Allocate(16);  // establish the bump block
  auto big = arena.Allocate(10000);
  EXPECT_EQ(big.bytes.size(), 10000u);
  // The dedicated block must not consume the bump block: a small allocation
  // still fits in the original block without creating another one.
  const auto blocks = arena.stats().blocks_created;
  arena.Allocate(16);
  EXPECT_EQ(arena.stats().blocks_created, blocks);
}

TEST(ArenaTest, KeepaliveOutlivesArena) {
  Arena::Allocation a;
  {
    Arena arena(1024);
    a = arena.Allocate(64);
    std::memset(a.bytes.data(), 0x5C, a.bytes.size());
  }  // arena destroyed; the keepalive must keep the block mapped
  for (std::uint8_t byte : a.bytes) {
    ASSERT_EQ(byte, 0x5C);
  }
}

TEST(ArenaTest, TypedSpanIsAlignedAndSized) {
  Arena arena;
  arena.Allocate(1);
  auto floats = arena.AllocateSpan<float>(37);
  EXPECT_EQ(floats.data.size(), 37u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(floats.data.data()) %
                alignof(float),
            0u);
  for (std::size_t i = 0; i < floats.data.size(); ++i) {
    floats.data[i] = static_cast<float>(i);
  }
  EXPECT_EQ(floats.data[36], 36.0f);
}

TEST(ArenaTest, StatsTrackReservationAndUse) {
  Arena arena(512);
  EXPECT_EQ(arena.stats().blocks_created, 0u);
  arena.Allocate(100);
  EXPECT_EQ(arena.stats().blocks_created, 1u);
  EXPECT_EQ(arena.stats().bytes_reserved, 512u);
  EXPECT_GE(arena.stats().bytes_allocated, 100u);
  EXPECT_LE(arena.current_block_free(), 412u);
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  auto a = arena.Allocate(0);
  EXPECT_EQ(a.bytes.size(), 0u);
  EXPECT_TRUE(a.keepalive != nullptr);
}

}  // namespace
}  // namespace util

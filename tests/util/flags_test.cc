#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace util {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  auto flags = Parse({"--rounds=20", "--profile=mnist"});
  EXPECT_EQ(flags.GetInt("rounds", 0), 20);
  EXPECT_EQ(flags.GetString("profile", ""), "mnist");
}

TEST(FlagParserTest, SpaceSyntax) {
  auto flags = Parse({"--rounds", "15", "--alpha", "0.05"});
  EXPECT_EQ(flags.GetInt("rounds", 0), 15);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.05);
}

TEST(FlagParserTest, BareSwitchIsTrue) {
  auto flags = Parse({"--quiet", "--verbose=false"});
  EXPECT_TRUE(flags.GetBool("quiet", false));
  EXPECT_FALSE(flags.GetBool("verbose", true));
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  auto flags = Parse({});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(flags.GetBool("missing", true));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, PositionalArgumentsPreserved) {
  auto flags = Parse({"first", "--k=v", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(FlagParserTest, BoolVariantsAccepted) {
  auto flags = Parse({"--a=YES", "--b=0", "--c=on", "--d=Off"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagParserTest, MalformedValuesThrow) {
  auto flags = Parse({"--n=abc", "--x=1.2.3", "--b=maybe"});
  EXPECT_THROW(flags.GetInt("n", 0), CheckError);
  EXPECT_THROW(flags.GetDouble("x", 0.0), CheckError);
  EXPECT_THROW(flags.GetBool("b", false), CheckError);
}

TEST(FlagParserTest, NegativeNumbersParse) {
  auto flags = Parse({"--offset=-3", "--scale=-0.5"});
  EXPECT_EQ(flags.GetInt("offset", 0), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.0), -0.5);
}

TEST(FlagParserTest, NamesListsAllFlags) {
  auto flags = Parse({"--a=1", "--b"});
  auto names = flags.Names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(FlagParserTest, RejectUnknownPassesKnownFlags) {
  auto flags = Parse({"--rounds=20", "--quiet"});
  EXPECT_NO_THROW(flags.RejectUnknown({"rounds", "quiet", "seed"}));
}

TEST(FlagParserTest, RejectUnknownThrowsNamingOffenders) {
  auto flags = Parse({"--rounds=20", "--ronuds=21"});
  try {
    flags.RejectUnknown({"rounds"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("--ronuds"), std::string::npos);
  }
}

TEST(FlagParserTest, RejectUnknownIgnoresPositionals) {
  auto flags = Parse({"7", "--seed=3"});
  EXPECT_NO_THROW(flags.RejectUnknown({"seed"}));
}

}  // namespace
}  // namespace util

#include "util/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.h"

namespace util {
namespace {

TEST(CanonicalNameTest, StripsSeparatorsAndCase) {
  EXPECT_EQ(CanonicalName("Trimmed-Mean"), "trimmedmean");
  EXPECT_EQ(CanonicalName("trimmed_mean"), "trimmedmean");
  EXPECT_EQ(CanonicalName("TRIMMED MEAN"), "trimmedmean");
  EXPECT_EQ(CanonicalName("top-k+delta"), "topkdelta");
  EXPECT_EQ(CanonicalName(""), "");
  EXPECT_EQ(CanonicalName("-_ +"), "");
}

TEST(NamedRegistryTest, FindsByNameAliasAndAnySpelling) {
  NamedRegistry<int> registry("widget");
  registry.Register("Fast-Path", {"fp", "quick"}, 1);
  EXPECT_EQ(registry.Find("fast-path"), 1);
  EXPECT_EQ(registry.Find("FASTPATH"), 1);
  EXPECT_EQ(registry.Find("fast_path"), 1);
  EXPECT_EQ(registry.Find("fp"), 1);
  EXPECT_EQ(registry.Find("Quick"), 1);
  EXPECT_TRUE(registry.Has("fastpath"));
  EXPECT_TRUE(registry.Has("quick"));
  EXPECT_FALSE(registry.Has("slow"));
}

TEST(NamedRegistryTest, ReRegisterReplacesEntry) {
  NamedRegistry<int> registry("widget");
  registry.Register("thing", {}, 1);
  registry.Register("Thing", {}, 2);  // same canonical key
  EXPECT_EQ(registry.Find("thing"), 2);
  EXPECT_EQ(registry.ListNames().size(), 1u);
}

TEST(NamedRegistryTest, ListNamesIsSortedCanonicalWithoutAliases) {
  NamedRegistry<int> registry("widget");
  registry.Register("zeta", {"z"}, 1);
  registry.Register("Alpha-Two", {}, 2);
  EXPECT_EQ(registry.ListNames(),
            (std::vector<std::string>{"alphatwo", "zeta"}));
}

TEST(NamedRegistryTest, UnknownNameErrorNamesSubjectAndListsKnown) {
  NamedRegistry<int> registry("widget");
  registry.Register("alpha", {}, 1);
  registry.Register("beta", {}, 2);
  try {
    registry.Find("gamma");
    FAIL() << "expected util::CheckError";
  } catch (const util::CheckError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown widget name: gamma"), std::string::npos)
        << message;
    EXPECT_NE(message.find("alpha"), std::string::npos) << message;
    EXPECT_NE(message.find("beta"), std::string::npos) << message;
  }
}

TEST(NamedRegistryTest, EmptyNameRejected) {
  NamedRegistry<int> registry("widget");
  EXPECT_THROW(registry.Register("- -", {}, 1), util::CheckError);
  EXPECT_THROW(registry.Register("ok", {""}, 1), util::CheckError);
}

}  // namespace
}  // namespace util

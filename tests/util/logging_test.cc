#include "util/logging.h"

#include <gtest/gtest.h>

namespace util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, EmittingBelowThresholdDoesNotCrash) {
  SetLogLevel(LogLevel::kError);
  EXPECT_NO_THROW(AF_LOG(kDebug) << "suppressed " << 1);
  EXPECT_NO_THROW(AF_LOG(kInfo) << "suppressed");
}

TEST_F(LoggingTest, EmittingAboveThresholdDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_NO_THROW(AF_LOG(kWarn) << "visible " << 3.14);
}

}  // namespace
}  // namespace util

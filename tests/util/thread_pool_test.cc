#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace util {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  pool.ParallelFor(visits.size(), [&](std::size_t i) { visits[i]++; });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.ParallelFor(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(4);
  int value = 0;
  pool.ParallelFor(1, [&](std::size_t) { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, ParallelForAggregatesCorrectly) {
  ThreadPool pool(3);
  std::vector<long> out(1000);
  pool.ParallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<long>(i) * 2;
  });
  long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 999L * 1000L);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](std::size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(4, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.ParallelFor(16, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SequentialParallelForsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int iter = 0; iter < 50; ++iter) {
    pool.ParallelFor(10, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace util

#include "util/serial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace util::serial {
namespace {

TEST(SerialTest, ScalarsRoundTrip) {
  Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.14159);
  Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, DoublesRoundTripBitExactly) {
  const double values[] = {0.0, -0.0, 1e-308, -1e308,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           0.1 + 0.2};
  Writer w;
  for (double v : values) {
    w.F64(v);
  }
  Reader r(w.buffer());
  for (double v : values) {
    const double got = r.F64();
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, v);
      // Distinguishes -0.0 from 0.0.
      EXPECT_EQ(std::signbit(got), std::signbit(v));
    }
  }
}

TEST(SerialTest, StringsAndVectorsRoundTrip) {
  Writer w;
  w.Str("hello\0world");
  w.Str("");
  w.FloatVec(std::vector<float>{1.5f, -2.25f, 0.0f});
  w.DoubleVec(std::vector<double>{1e-9, 7.0});
  Reader r(w.buffer());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.FloatVec(), (std::vector<float>{1.5f, -2.25f, 0.0f}));
  EXPECT_EQ(r.DoubleVec(), (std::vector<double>{1e-9, 7.0}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, TruncatedReadThrows) {
  Writer w;
  w.U32(7);
  Reader r(w.buffer());
  EXPECT_THROW(r.U64(), util::CheckError);
}

TEST(SerialTest, CorruptLengthPrefixThrowsInsteadOfAllocating) {
  Writer w;
  w.U64(std::numeric_limits<std::uint64_t>::max());  // absurd element count
  Reader r(w.buffer());
  EXPECT_THROW(r.FloatVec(), util::CheckError);
}

TEST(SerialTest, RawAndTailAndSkip) {
  Writer inner;
  inner.U64(99);
  Writer w;
  w.U64(inner.size());
  w.Raw(inner.buffer());
  w.U8(7);
  Reader r(w.buffer());
  const std::uint64_t framed = r.U64();
  Reader sub(r.Tail().subspan(0, framed));
  EXPECT_EQ(sub.U64(), 99u);
  r.Skip(framed);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, AtomicWriteFileRoundTripsAndReplaces) {
  const std::string path = ::testing::TempDir() + "serial_atomic_test.bin";
  Writer first;
  first.Str("generation-1");
  AtomicWriteFile(path, first.buffer());
  Writer second;
  second.Str("generation-2 rather longer than the first");
  AtomicWriteFile(path, second.buffer());

  const auto bytes = ReadFileBytes(path);
  Reader r(bytes);
  EXPECT_EQ(r.Str(), "generation-2 rather longer than the first");
  EXPECT_TRUE(r.AtEnd());
  std::remove(path.c_str());
}

TEST(SerialTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadFileBytes("/nonexistent/definitely/missing.bin"),
               util::CheckError);
}

}  // namespace
}  // namespace util::serial

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace util {
namespace {

TEST(SplitMix64Test, AdvancesStateAndMixes) {
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

TEST(SplitMix64Test, DeterministicForSameState) {
  std::uint64_t a = 42, b = 42;
  EXPECT_EQ(SplitMix64(a), SplitMix64(b));
}

TEST(HashLabelTest, DistinctLabelsDistinctHashes) {
  std::set<std::uint64_t> hashes;
  for (const char* label : {"a", "b", "ab", "ba", "client/0", "client/1",
                            "latency", "partition", ""}) {
    hashes.insert(HashLabel(label));
  }
  EXPECT_EQ(hashes.size(), 9u);
}

TEST(RngFactoryTest, SameSeedSameStream) {
  RngFactory f1(7), f2(7);
  auto a = f1.Stream("x");
  auto b = f2.Stream("x");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngFactoryTest, DifferentSeedsDiffer) {
  RngFactory f1(7), f2(8);
  auto a = f1.Stream("x");
  auto b = f2.Stream("x");
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (a() != b());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngFactoryTest, DifferentLabelsGiveIndependentStreams) {
  RngFactory factory(7);
  auto a = factory.Stream("alpha");
  auto b = factory.Stream("beta");
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (a() != b());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngFactoryTest, IndexSelectsSubStream) {
  RngFactory factory(7);
  auto a = factory.Stream("client", 0);
  auto b = factory.Stream("client", 1);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (a() != b());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngFactoryTest, StreamRequestOrderIrrelevant) {
  RngFactory factory(9);
  auto first = factory.Stream("later");
  (void)factory.Stream("noise");
  RngFactory factory2(9);
  (void)factory2.Stream("noise");
  auto second = factory2.Stream("later");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(first(), second());
  }
}

}  // namespace
}  // namespace util

#include "util/check.h"

#include <gtest/gtest.h>

namespace util {
namespace {

TEST(CheckTest, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(AF_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingConditionThrowsCheckError) {
  EXPECT_THROW(AF_CHECK(false), CheckError);
}

TEST(CheckTest, MessageContainsConditionAndContext) {
  try {
    AF_CHECK(2 < 1) << "custom context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacrosIncludeValues) {
  try {
    int a = 3, b = 7;
    AF_CHECK_EQ(a, b);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3"), std::string::npos);
    EXPECT_NE(what.find("7"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacroSemantics) {
  EXPECT_NO_THROW(AF_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(AF_CHECK_NE(4, 5));
  EXPECT_NO_THROW(AF_CHECK_LT(4, 5));
  EXPECT_NO_THROW(AF_CHECK_LE(5, 5));
  EXPECT_NO_THROW(AF_CHECK_GT(6, 5));
  EXPECT_NO_THROW(AF_CHECK_GE(5, 5));
  EXPECT_THROW(AF_CHECK_NE(4, 4), CheckError);
  EXPECT_THROW(AF_CHECK_LT(5, 5), CheckError);
  EXPECT_THROW(AF_CHECK_GT(5, 5), CheckError);
}

TEST(CheckTest, CheckIsActiveInReleaseBuilds) {
  // The project compiles tests with the same flags as the library; this
  // documents that AF_CHECK must not be compiled out by NDEBUG.
  bool executed = false;
  auto probe = [&]() {
    AF_CHECK([&] {
      executed = true;
      return true;
    }());
  };
  probe();
  EXPECT_TRUE(executed);
}

}  // namespace
}  // namespace util

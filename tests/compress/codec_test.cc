#include "compress/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "nn/serialize.h"
#include "util/check.h"

namespace compress {
namespace {

// Ragged and degenerate shapes every codec must survive: empty, single
// element, non-multiple-of-anything lengths, and a LeNet-ish vector.
std::vector<std::vector<float>> PropertyShapes() {
  std::vector<std::vector<float>> shapes;
  shapes.push_back({});
  shapes.push_back({0.0f});
  shapes.push_back({-1.25f});
  shapes.push_back({1.0f, 1.0f, 1.0f});          // constant
  shapes.push_back({0.0f, 0.0f, 0.0f, 0.0f});    // all-zero
  shapes.push_back({-3.5f, 0.25f, 7.0f});        // mixed signs, ragged
  std::vector<float> wave(1237);                  // prime-ish length
  for (std::size_t i = 0; i < wave.size(); ++i) {
    wave[i] = 0.01f * std::sin(0.37f * static_cast<float>(i)) *
              static_cast<float>(i % 17);
  }
  shapes.push_back(std::move(wave));
  return shapes;
}

std::string ThrownMessage(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::CheckError";
  return {};
}

// Framed encode of `values` with `codec` (fresh buffer).
std::vector<std::uint8_t> Container(const Codec& codec,
                                    std::span<const float> values) {
  std::vector<std::uint8_t> out;
  AppendEncodedParams(out, codec, values);
  return out;
}

std::vector<float> ParseAll(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  std::vector<float> values = ParseAnyParams(bytes, &offset);
  EXPECT_EQ(offset, bytes.size());
  return values;
}

TEST(CodecTest, IdentityRoundTripsExactlyOverAllShapes) {
  const Codec& codec = Get("identity");
  EXPECT_TRUE(codec.lossless());
  EXPECT_TRUE(codec.broadcast_safe());
  for (const auto& values : PropertyShapes()) {
    EXPECT_EQ(ParseAll(Container(codec, values)), values);
    EXPECT_EQ(RoundTrip(codec, values), values);
  }
}

TEST(CodecTest, Fp16RoundTripIsIdempotent) {
  // fp16 is lossy once: re-encoding an already-decoded vector must be exact.
  const Codec& codec = Get("fp16");
  EXPECT_FALSE(codec.lossless());
  EXPECT_TRUE(codec.broadcast_safe());
  for (const auto& values : PropertyShapes()) {
    const std::vector<float> once = ParseAll(Container(codec, values));
    ASSERT_EQ(once.size(), values.size());
    EXPECT_EQ(ParseAll(Container(codec, once)), once);
    // Relative error of a single half-rounding is bounded by 2^-11.
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_NEAR(once[i], values[i], std::fabs(values[i]) * 0x1p-10f + 1e-7f);
    }
  }
}

TEST(CodecTest, Fp16ExactForHalfRepresentableValues) {
  const Codec& codec = Get("fp16");
  const std::vector<float> values{0.0f, -0.0f, 1.0f,   -2.0f, 0.5f,
                                  0.25f, 65504.0f, -65504.0f, 0x1p-24f};
  EXPECT_EQ(ParseAll(Container(codec, values)), values);
}

TEST(CodecTest, Fp16ScalarConversionEdgeCases) {
  // Max finite half survives; past it saturates to ±inf.
  EXPECT_EQ(HalfToFloat(FloatToHalf(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(100000.0f))));
  EXPECT_GT(HalfToFloat(FloatToHalf(100000.0f)), 0.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-100000.0f))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-100000.0f)), 0.0f);
  // Infinities and NaN keep their class.
  EXPECT_TRUE(std::isinf(
      HalfToFloat(FloatToHalf(std::numeric_limits<float>::infinity()))));
  EXPECT_TRUE(std::isnan(
      HalfToFloat(FloatToHalf(std::numeric_limits<float>::quiet_NaN()))));
  // Least subnormal half is exact; half of it ties-to-even down to zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(0x1p-24f)), 0x1p-24f);
  EXPECT_EQ(HalfToFloat(FloatToHalf(0x1p-25f)), 0.0f);
  // Signed zero survives.
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000u);
  // Round-to-nearest-even at the 10-bit mantissa boundary: 1 + 2^-11 is
  // exactly halfway between 1 and the next half; even mantissa wins.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 0x1p-11f)), 1.0f);
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 3 * 0x1p-11f)), 1.0f + 0x1p-9f);
}

TEST(CodecTest, Int8ErrorWithinHalfScale) {
  const Codec& codec = Get("int8");
  EXPECT_FALSE(codec.lossless());
  EXPECT_FALSE(codec.broadcast_safe());
  EXPECT_TRUE(codec.uses_feedback());
  for (const auto& values : PropertyShapes()) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -lo;
    for (float v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const float scale = lo < hi ? (hi - lo) / 255.0f : 0.0f;
    const std::vector<float> decoded = ParseAll(Container(codec, values));
    ASSERT_EQ(decoded.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_LE(std::fabs(decoded[i] - values[i]), scale * 0.5f + 1e-6f)
          << "element " << i;
    }
  }
}

TEST(CodecTest, Int8ConstantVectorDecodesExactly) {
  const Codec& codec = Get("int8");
  EXPECT_EQ(ParseAll(Container(codec, std::vector<float>(7, -3.25f))),
            std::vector<float>(7, -3.25f));
  EXPECT_EQ(ParseAll(Container(codec, std::vector<float>(4, 0.0f))),
            std::vector<float>(4, 0.0f));
}

TEST(CodecTest, Int8NonFiniteValuesDecodeToZeroPoint) {
  const Codec& codec = Get("int8");
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> decoded =
      ParseAll(Container(codec, std::vector<float>{inf, -inf, nan}));
  EXPECT_EQ(decoded, std::vector<float>({0.0f, 0.0f, 0.0f}));
}

TEST(CodecTest, TopkKeepsLargestTenthExactToHalf) {
  const Codec& codec = Get("topk-delta");
  EXPECT_FALSE(codec.broadcast_safe());
  EXPECT_TRUE(codec.uses_feedback());
  std::vector<float> values(200, 0.0f);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i % 10 == 3) ? 5.0f + static_cast<float>(i) : 0.001f;
  }
  const std::vector<float> decoded = ParseAll(Container(codec, values));
  ASSERT_EQ(decoded.size(), values.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i % 10 == 3) {  // the 20 large entries == k exactly
      EXPECT_EQ(decoded[i], HalfToFloat(FloatToHalf(values[i])));
      ++kept;
    } else {
      EXPECT_EQ(decoded[i], 0.0f) << "dropped entry must decode to zero";
    }
  }
  EXPECT_EQ(kept, 20u);
}

TEST(CodecTest, TopkDegenerateShapes) {
  const Codec& codec = Get("topk-delta");
  EXPECT_TRUE(ParseAll(Container(codec, std::vector<float>{})).empty());
  // count < 10 still keeps k = 1: the single largest survives.
  const std::vector<float> decoded =
      ParseAll(Container(codec, std::vector<float>{0.1f, -0.9f, 0.2f}));
  EXPECT_EQ(decoded[0], 0.0f);
  EXPECT_EQ(decoded[1], HalfToFloat(FloatToHalf(-0.9f)));
  EXPECT_EQ(decoded[2], 0.0f);
}

TEST(CodecTest, TopkTieBreaksTowardLowerIndex) {
  const Codec& codec = Get("topk-delta");
  const std::vector<float> decoded =
      ParseAll(Container(codec, std::vector<float>{1.0f, 1.0f, 1.0f}));
  EXPECT_EQ(decoded, std::vector<float>({1.0f, 0.0f, 0.0f}));
}

TEST(CodecTest, ErrorFeedbackFoldsResidualIntoNextEncode) {
  const Codec& codec = Get("int8");
  const std::vector<float> values{0.03f, -1.7f, 0.42f, 0.0f, 2.9f};
  FeedbackState feedback;
  const std::vector<float> first = RoundTrip(codec, values, &feedback);
  ASSERT_EQ(feedback.residual.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_FLOAT_EQ(feedback.residual[i], values[i] - first[i]);
  }
  const std::vector<float> prev_residual = feedback.residual;
  const std::vector<float> second = RoundTrip(codec, values, &feedback);
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Second encode quantized values + residual, so the new residual is
    // measured against that adjusted input.
    EXPECT_NEAR(feedback.residual[i],
                values[i] + prev_residual[i] - second[i], 1e-6f);
  }
}

TEST(CodecTest, ErrorFeedbackConservesSignalAcrossRounds) {
  // The point of error feedback: nothing a sparsifier drops is lost, it is
  // carried in the residual. After T rounds of the same delta, what the
  // server accumulated plus the client's residual equals the true total —
  // without feedback, every dropped element would lose T × its value.
  const Codec& codec = Get("topk-delta");
  std::vector<float> values(50);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.01f * static_cast<float>(i) - 0.2f;
  }
  FeedbackState feedback;
  std::vector<float> decoded_sum(values.size(), 0.0f);
  const int rounds = 20;
  for (int t = 0; t < rounds; ++t) {
    const std::vector<float> decoded = RoundTrip(codec, values, &feedback);
    for (std::size_t i = 0; i < values.size(); ++i) {
      decoded_sum[i] += decoded[i];
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float true_sum = static_cast<float>(rounds) * values[i];
    // Slack covers the fp16 rounding of each flushed value only.
    EXPECT_NEAR(decoded_sum[i] + feedback.residual[i], true_sum, 0.02f)
        << "element " << i;
  }
}

TEST(CodecTest, ParseAnyParamsAcceptsRawAfpmAndTracksOffsets) {
  // Legacy payloads (and identity-written checkpoints) are raw AFPM blocks;
  // compressed ones are AFCZ. A stream may mix both back-to-back.
  const std::vector<float> first{1.0f, -2.0f};
  const std::vector<float> second{0.5f, 0.5f, 0.5f};
  std::vector<std::uint8_t> bytes;
  nn::AppendFlatParams(bytes, first);
  AppendEncodedParams(bytes, Get("fp16"), second);
  std::size_t offset = 0;
  EXPECT_EQ(ParseAnyParams(bytes, &offset), first);
  EXPECT_EQ(ParseAnyParams(bytes, &offset), second);
  EXPECT_EQ(offset, bytes.size());
}

TEST(CodecTest, TruncatedContainerHeaderNamesByteOffset) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f, 2.0f});
  bytes.resize(10);  // mid-header
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { ParseAnyParams(bytes, &offset); });
  EXPECT_NE(message.find("truncated AFCZ"), std::string::npos) << message;
  EXPECT_NE(message.find("byte offset"), std::string::npos) << message;
}

TEST(CodecTest, OversizedDeclaredBodyThrowsWithoutAllocating) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f, 2.0f});
  // body_size field sits after magic(4) + version(4) + len(1) + "fp16"(4)
  // + count(8).
  const std::uint64_t absurd = ~std::uint64_t{0} / 2;
  std::memcpy(bytes.data() + 21, &absurd, sizeof(absurd));
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { ParseAnyParams(bytes, &offset); });
  EXPECT_NE(message.find("truncated AFCZ body"), std::string::npos) << message;
}

TEST(CodecTest, CorruptBodyFailsChecksum) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f, 2.0f, 3.0f});
  bytes.back() ^= 0x01;
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { ParseAnyParams(bytes, &offset); });
  EXPECT_NE(message.find("checksum mismatch"), std::string::npos) << message;
}

TEST(CodecTest, UnknownCodecNameInContainerThrows) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f});
  bytes[9] = 'x';  // first name byte: "fp16" → "xp16"
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { ParseAnyParams(bytes, &offset); });
  EXPECT_NE(message.find("unknown codec name"), std::string::npos) << message;
}

TEST(CodecTest, UnsupportedContainerVersionThrows) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f});
  bytes[4] = 0x7F;  // version low byte
  std::size_t offset = 0;
  const std::string message =
      ThrownMessage([&] { ParseAnyParams(bytes, &offset); });
  EXPECT_NE(message.find("unsupported AFCZ container version"),
            std::string::npos)
      << message;
}

TEST(CodecTest, BadMagicThrows) {
  std::vector<std::uint8_t> bytes =
      Container(Get("fp16"), std::vector<float>{1.0f});
  bytes[0] = 'X';
  std::size_t offset = 0;
  EXPECT_THROW(ParseAnyParams(bytes, &offset), util::CheckError);
}

TEST(CodecTest, RegistryResolvesAliasesAndCanonicalSpellings) {
  EXPECT_EQ(std::string(Get("fp16").name()), "fp16");
  EXPECT_EQ(std::string(Get("half").name()), "fp16");    // alias
  EXPECT_EQ(std::string(Get("FP-16").name()), "fp16");   // canonicalized
  EXPECT_EQ(std::string(Get("topk").name()), "topk-delta");
  EXPECT_EQ(std::string(Get("Top-K Delta").name()), "topk-delta");
  EXPECT_EQ(std::string(Get("none").name()), "identity");
  EXPECT_EQ(std::string(Get("q8").name()), "int8");
  EXPECT_TRUE(Has("int8"));
  EXPECT_FALSE(Has("lz77"));
  const std::string message = ThrownMessage([] { Get("lz77"); });
  EXPECT_NE(message.find("unknown codec name"), std::string::npos);
  EXPECT_NE(message.find("identity"), std::string::npos)
      << "error must list known codecs: " << message;
}

TEST(CodecTest, ListNamesContainsEveryBuiltin) {
  const std::vector<std::string> names = ListNames();
  for (const char* expected : {"identity", "fp16", "int8", "topkdelta"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
}

TEST(CodecTest, CompressionRatiosMeetTargets) {
  // The acceptance bar from the bench: ≥3.5× for int8 and ≥8× for
  // topk-delta (k = 10%) on a LeNet-sized parameter vector.
  std::vector<float> values(61706);  // LeNet-5 surrogate parameter count
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.05f * std::sin(0.11f * static_cast<float>(i));
  }
  const double raw = static_cast<double>(values.size() * sizeof(float));
  EXPECT_GE(raw / static_cast<double>(EncodedWireSize(Get("int8"), values)),
            3.5);
  EXPECT_GE(
      raw / static_cast<double>(EncodedWireSize(Get("topk-delta"), values)),
      8.0);
  EXPECT_GE(raw / static_cast<double>(EncodedWireSize(Get("fp16"), values)),
            1.9);
}

TEST(CodecTest, IsIdentityMatchesByCanonicalName) {
  EXPECT_TRUE(IsIdentity(Identity()));
  EXPECT_TRUE(IsIdentity(Get("none")));
  EXPECT_FALSE(IsIdentity(Get("fp16")));
}

}  // namespace
}  // namespace compress

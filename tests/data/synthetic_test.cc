#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "stats/vec_ops.h"

namespace data {
namespace {

TEST(SyntheticSpecTest, ProfilesHaveExpectedShapes) {
  EXPECT_EQ(MakeProfileSpec(Profile::kMnist, 12).sample_shape,
            (tensor::Shape{1, 12, 12}));
  EXPECT_EQ(MakeProfileSpec(Profile::kFashionMnist, 12).sample_shape,
            (tensor::Shape{1, 12, 12}));
  EXPECT_EQ(MakeProfileSpec(Profile::kCifar10, 8).sample_shape,
            (tensor::Shape{3, 8, 8}));
  EXPECT_EQ(MakeProfileSpec(Profile::kCinic10, 8).sample_shape,
            (tensor::Shape{3, 8, 8}));
}

TEST(SyntheticSpecTest, DifficultyOrderingMatchesPaper) {
  // Clean-accuracy ordering MNIST ≫ Fashion > CIFAR > CINIC is driven by
  // class separation and label noise; check the knobs are ordered that way.
  auto mnist = MakeProfileSpec(Profile::kMnist);
  auto fashion = MakeProfileSpec(Profile::kFashionMnist);
  auto cinic = MakeProfileSpec(Profile::kCinic10, 8);
  EXPECT_GT(mnist.class_separation, fashion.class_separation);
  EXPECT_LT(mnist.label_noise, cinic.label_noise);
}

TEST(SyntheticGeneratorTest, GeneratesRequestedCount) {
  SyntheticGenerator gen(MakeProfileSpec(Profile::kMnist, 8), 1);
  Dataset d = gen.Generate(100, "train");
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.sample_dim(), 64u);
  EXPECT_EQ(d.num_classes, 10u);
}

TEST(SyntheticGeneratorTest, LabelsSpanAllClasses) {
  SyntheticGenerator gen(MakeProfileSpec(Profile::kMnist, 8), 2);
  Dataset d = gen.Generate(2000, "train");
  std::vector<int> counts(10, 0);
  for (auto label : d.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
    counts[static_cast<std::size_t>(label)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 100);  // roughly uniform class marginal
  }
}

TEST(SyntheticGeneratorTest, DeterministicPerSeedAndStream) {
  SyntheticGenerator a(MakeProfileSpec(Profile::kFashionMnist, 8), 3);
  SyntheticGenerator b(MakeProfileSpec(Profile::kFashionMnist, 8), 3);
  Dataset da = a.Generate(50, "train");
  Dataset db = b.Generate(50, "train");
  EXPECT_EQ(da.features, db.features);
  EXPECT_EQ(da.labels, db.labels);
}

TEST(SyntheticGeneratorTest, StreamsAreIndependent) {
  SyntheticGenerator gen(MakeProfileSpec(Profile::kFashionMnist, 8), 3);
  Dataset train = gen.Generate(50, "train");
  Dataset test = gen.Generate(50, "test");
  EXPECT_NE(train.features, test.features);
}

TEST(SyntheticGeneratorTest, TrainAndTestShareClassStructure) {
  // Same prototypes: same-class samples across the two splits should be
  // closer on average than different-class samples.
  SyntheticGenerator gen(MakeProfileSpec(Profile::kMnist, 8), 4);
  Dataset train = gen.Generate(300, "train");
  Dataset test = gen.Generate(300, "test");
  double same = 0.0, diff = 0.0;
  std::size_t n_same = 0, n_diff = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 100; ++j) {
      double d = stats::Distance(train.Sample(i), test.Sample(j));
      if (train.labels[i] == test.labels[j]) {
        same += d;
        ++n_same;
      } else {
        diff += d;
        ++n_diff;
      }
    }
  }
  EXPECT_LT(same / n_same, diff / n_diff);
}

TEST(SyntheticGeneratorTest, LabelNoiseInjectsImpurity) {
  SyntheticSpec spec = MakeProfileSpec(Profile::kMnist, 8);
  spec.label_noise = 0.5;
  SyntheticGenerator noisy(spec, 5);
  SyntheticGenerator clean(MakeProfileSpec(Profile::kMnist, 8), 5);
  // With the same seed the underlying class draws match; count differing
  // labels as a proxy for injected noise.
  Dataset dn = noisy.Generate(1000, "train");
  Dataset dc = clean.Generate(1000, "train");
  std::size_t differing = 0;
  for (std::size_t i = 0; i < dn.size(); ++i) {
    differing += (dn.labels[i] != dc.labels[i]) ? 1 : 0;
  }
  EXPECT_GT(differing, 200u);
}

TEST(ProfileNameTest, AllNamed) {
  EXPECT_STREQ(ProfileName(Profile::kMnist), "MNIST");
  EXPECT_STREQ(ProfileName(Profile::kFashionMnist), "FashionMNIST");
  EXPECT_STREQ(ProfileName(Profile::kCifar10), "CIFAR-10");
  EXPECT_STREQ(ProfileName(Profile::kCinic10), "CINIC-10");
}

}  // namespace
}  // namespace data

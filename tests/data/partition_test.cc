#include "data/partition.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace data {
namespace {

Dataset TestPool(std::uint64_t seed = 1, std::size_t n = 2000) {
  SyntheticGenerator gen(MakeProfileSpec(Profile::kMnist, 8), seed);
  return gen.Generate(n, "train");
}

TEST(DirichletPartitionTest, ShapesAndBounds) {
  Dataset pool = TestPool();
  util::RngFactory rngs(2);
  auto rng = rngs.Stream("p");
  Partition p = DirichletPartition(pool, 10, 50, 0.1, rng);
  ASSERT_EQ(p.size(), 10u);
  for (const auto& client : p) {
    EXPECT_EQ(client.size(), 50u);
    for (std::size_t idx : client) {
      EXPECT_LT(idx, pool.size());
    }
  }
}

TEST(DirichletPartitionTest, SeedDeterministic) {
  Dataset pool = TestPool();
  util::RngFactory rngs(3);
  auto r1 = rngs.Stream("p");
  auto r2 = rngs.Stream("p");
  EXPECT_EQ(DirichletPartition(pool, 5, 20, 0.1, r1),
            DirichletPartition(pool, 5, 20, 0.1, r2));
}

class DirichletSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletSkewTest, SmallerAlphaMeansMoreSkew) {
  // The paper's heterogeneity studies move α from 0.1 to 0.05/0.01 and
  // expect increasingly non-IID partitions.
  const double alpha = GetParam();
  Dataset pool = TestPool();
  util::RngFactory rngs(4);
  auto rng = rngs.Stream("p");
  Partition p = DirichletPartition(pool, 30, 60, alpha, rng);
  const double skew = MeanLabelSkew(pool, p);
  if (alpha <= 0.1) {
    EXPECT_GT(skew, 0.5);
  } else {
    EXPECT_LT(skew, 0.45);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletSkewTest,
                         ::testing::Values(0.01, 0.05, 0.1, 5.0, 100.0));

TEST(DirichletPartitionTest, SkewOrderingAcrossAlphas) {
  Dataset pool = TestPool();
  util::RngFactory rngs(5);
  auto r1 = rngs.Stream("p1");
  auto r2 = rngs.Stream("p2");
  double skew_001 = MeanLabelSkew(pool, DirichletPartition(pool, 40, 50, 0.01, r1));
  double skew_10 = MeanLabelSkew(pool, DirichletPartition(pool, 40, 50, 10.0, r2));
  EXPECT_GT(skew_001, skew_10 + 0.2);
}

TEST(IidPartitionTest, LowSkew) {
  Dataset pool = TestPool();
  util::RngFactory rngs(6);
  auto rng = rngs.Stream("p");
  Partition p = IidPartition(pool, 20, 100, rng);
  EXPECT_LT(MeanLabelSkew(pool, p), 0.2);
}

TEST(IidPartitionTest, RespectsPartitionSize) {
  Dataset pool = TestPool();
  util::RngFactory rngs(7);
  auto rng = rngs.Stream("p");
  Partition p = IidPartition(pool, 3, 17, rng);
  for (const auto& client : p) {
    EXPECT_EQ(client.size(), 17u);
  }
}

TEST(DirichletPartitionTest, InvalidArgumentsThrow) {
  Dataset pool = TestPool();
  util::RngFactory rngs(8);
  auto rng = rngs.Stream("p");
  EXPECT_THROW(DirichletPartition(pool, 0, 10, 0.1, rng), util::CheckError);
  EXPECT_THROW(DirichletPartition(pool, 5, 0, 0.1, rng), util::CheckError);
}

TEST(DirichletPartitionTest, OversubscribedPoolCyclesWithReplacement) {
  // Total demand (clients × partition size) far beyond the pool: the
  // per-label cursors must cycle instead of running dry (PLATO-style
  // with-replacement sampling).
  Dataset pool = TestPool(3, 200);
  util::RngFactory rngs(9);
  auto rng = rngs.Stream("p");
  Partition p = DirichletPartition(pool, 50, 100, 0.1, rng);
  std::size_t total = 0;
  for (const auto& client : p) {
    total += client.size();
    for (std::size_t idx : client) {
      ASSERT_LT(idx, pool.size());
    }
  }
  EXPECT_EQ(total, 5000u);
}

TEST(MeanLabelSkewTest, PerfectlyMatchingPartitionIsNearZero) {
  Dataset pool = TestPool(2, 1000);
  // One client holding the full dataset reproduces the global distribution.
  Partition p(1);
  p[0].resize(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    p[0][i] = i;
  }
  EXPECT_NEAR(MeanLabelSkew(pool, p), 0.0, 1e-9);
}

}  // namespace
}  // namespace data

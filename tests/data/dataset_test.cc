#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/rng.h"

namespace data {
namespace {

Dataset SmallDataset() {
  Dataset d;
  d.sample_shape = {2};
  d.num_classes = 3;
  d.features = {0, 1, 10, 11, 20, 21, 30, 31};
  d.labels = {0, 1, 2, 1};
  return d;
}

TEST(DatasetTest, SizeAndSampleDim) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.sample_dim(), 2u);
}

TEST(DatasetTest, SampleReturnsCorrectSlice) {
  Dataset d = SmallDataset();
  auto s = d.Sample(2);
  EXPECT_FLOAT_EQ(s[0], 20.0f);
  EXPECT_FLOAT_EQ(s[1], 21.0f);
}

TEST(DatasetTest, SampleOutOfRangeThrows) {
  Dataset d = SmallDataset();
  EXPECT_THROW(d.Sample(4), util::CheckError);
}

TEST(MakeBatchTest, AssemblesSelectedSamples) {
  Dataset d = SmallDataset();
  std::vector<std::size_t> indices{3, 0};
  Batch batch = MakeBatch(d, indices);
  EXPECT_EQ(batch.features.shape(), (tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.features[0], 30.0f);
  EXPECT_FLOAT_EQ(batch.features[2], 0.0f);
  EXPECT_EQ(batch.labels[0], 1);
  EXPECT_EQ(batch.labels[1], 0);
}

TEST(MakeBatchTest, PreservesMultiDimSampleShape) {
  Dataset d;
  d.sample_shape = {1, 2, 2};
  d.num_classes = 2;
  d.features.assign(8, 1.0f);
  d.labels = {0, 1};
  std::vector<std::size_t> indices{0, 1};
  Batch batch = MakeBatch(d, indices);
  EXPECT_EQ(batch.features.shape(), (tensor::Shape{2, 1, 2, 2}));
}

TEST(MakeBatchTest, EmptyIndicesThrow) {
  Dataset d = SmallDataset();
  EXPECT_THROW(MakeBatch(d, {}), util::CheckError);
}

TEST(MakeMiniBatchesTest, CoversEveryIndexOnce) {
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("mb");
  auto batches = MakeMiniBatches(10, 3, rng);
  EXPECT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches.back().size(), 1u);
  std::set<std::size_t> seen;
  for (const auto& b : batches) {
    for (std::size_t i : b) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index";
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(MakeMiniBatchesTest, ShuffleIsSeedDeterministic) {
  util::RngFactory rngs(5);
  auto r1 = rngs.Stream("mb");
  auto r2 = rngs.Stream("mb");
  EXPECT_EQ(MakeMiniBatches(20, 4, r1), MakeMiniBatches(20, 4, r2));
}

TEST(MakeMiniBatchesTest, ZeroBatchSizeThrows) {
  util::RngFactory rngs(1);
  auto rng = rngs.Stream("mb");
  EXPECT_THROW(MakeMiniBatches(10, 0, rng), util::CheckError);
}

TEST(LabelHistogramTest, CountsPerClass) {
  Dataset d = SmallDataset();
  std::vector<std::size_t> indices{0, 1, 3};
  auto hist = LabelHistogram(d, indices);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 0u);
}

}  // namespace
}  // namespace data

#include "defense/aflguard.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

TEST(AflGuardTest, RequiresServerReference) {
  AflGuard guard;
  EXPECT_TRUE(guard.RequiresServerReference());
  std::vector<fl::ModelUpdate> updates{Update(0, {1.0f})};
  FilterContext ctx;
  EXPECT_THROW(guard.Process(ctx, updates), util::CheckError);
}

TEST(AflGuardTest, AcceptsWithinLambdaBall) {
  AflGuard guard(2.0);
  std::vector<float> reference{1.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.5f, 0.5f}));   // ‖Δ‖ ≈ 0.71 ≤ 2
  updates.push_back(Update(1, {-5.0f, 0.0f}));  // ‖Δ‖ = 6 > 2
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = guard.Process(ctx, updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
  EXPECT_EQ(result.verdicts[1], Verdict::kRejected);
}

TEST(AflGuardTest, BoundScalesWithServerNorm) {
  AflGuard guard(1.0);
  std::vector<float> big_reference{10.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates{Update(0, {18.0f, 0.0f})};
  FilterContext ctx;
  ctx.server_reference = big_reference;
  auto result = guard.Process(ctx, updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);  // ‖Δ‖=8 ≤ λ‖g_s‖=10
}

TEST(AflGuardTest, NeverRejectsEverything) {
  AflGuard guard(0.1);
  std::vector<float> reference{1.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {100.0f}));
  updates.push_back(Update(1, {-100.0f}));
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = guard.Process(ctx, updates);
  bool any_accepted = false;
  for (auto v : result.verdicts) {
    any_accepted |= (v == Verdict::kAccepted);
  }
  EXPECT_TRUE(any_accepted);
}

TEST(AflGuardTest, InvalidLambdaThrows) {
  EXPECT_THROW(AflGuard(0.0), util::CheckError);
  EXPECT_THROW(AflGuard(-1.0), util::CheckError);
}

}  // namespace
}  // namespace defense

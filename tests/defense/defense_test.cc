#include "defense/defense.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta,
                       std::size_t samples = 10, std::size_t staleness = 0) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = samples;
  u.staleness = staleness;
  return u;
}

TEST(WeightedAverageTest, UniformWeightsGiveMean) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {0.0f, 2.0f}));
  updates.push_back(Update(1, {2.0f, 4.0f}));
  auto avg = WeightedAverage(updates, {0, 1});
  EXPECT_FLOAT_EQ(avg[0], 1.0f);
  EXPECT_FLOAT_EQ(avg[1], 3.0f);
}

TEST(WeightedAverageTest, SampleCountsWeight) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {0.0f}, 30));
  updates.push_back(Update(1, {4.0f}, 10));
  auto avg = WeightedAverage(updates, {0, 1});
  EXPECT_FLOAT_EQ(avg[0], 1.0f);
}

TEST(WeightedAverageTest, StalenessDiscountDampsStaleUpdates) {
  // FedBuff weighting s(τ)=1/√(1+τ): a τ=3 update contributes half the
  // weight of a fresh one with equal samples.
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {0.0f}, 10, 0));
  updates.push_back(Update(1, {3.0f}, 10, 3));
  auto avg = WeightedAverage(updates, {0, 1});
  EXPECT_NEAR(avg[0], 3.0 * 0.5 / 1.5, 1e-6);
}

TEST(WeightedAverageTest, SubsetSelection) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  updates.push_back(Update(1, {100.0f}));
  updates.push_back(Update(2, {3.0f}));
  auto avg = WeightedAverage(updates, {0, 2});
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

TEST(WeightedAverageTest, EmptySelectionThrows) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  EXPECT_THROW(WeightedAverage(updates, {}), util::CheckError);
}

TEST(WeightedAverageTest, ZeroSampleCountTreatedAsOne) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {2.0f}, 0));
  auto avg = WeightedAverage(updates, {0});
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

TEST(MakeFilterResultTest, VerdictsAlignedWithSplit) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  updates.push_back(Update(1, {2.0f}));
  updates.push_back(Update(2, {3.0f}));
  auto result = MakeFilterResult(updates, {0, 2}, {1});
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
  EXPECT_EQ(result.verdicts[1], Verdict::kRejected);
  EXPECT_EQ(result.verdicts[2], Verdict::kAccepted);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.0f);
}

TEST(MakeFilterResultTest, IncompleteSplitThrows) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  updates.push_back(Update(1, {2.0f}));
  EXPECT_THROW(MakeFilterResult(updates, {0}, {}), util::CheckError);
}

TEST(MakeFilterResultTest, AllRejectedLeavesEmptyAggregate) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  auto result = MakeFilterResult(updates, {}, {0});
  EXPECT_TRUE(result.aggregated_delta.empty());
}

TEST(NoDefenseTest, AcceptsEverything) {
  NoDefense defense;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  updates.push_back(Update(1, {-50.0f}));
  FilterContext ctx;
  auto result = defense.Process(ctx, updates);
  for (auto v : result.verdicts) {
    EXPECT_EQ(v, Verdict::kAccepted);
  }
  EXPECT_EQ(defense.Name(), "FedBuff");
  EXPECT_FALSE(defense.RequiresServerReference());
}

}  // namespace
}  // namespace defense

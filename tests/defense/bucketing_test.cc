#include "defense/bucketing.h"

#include <gtest/gtest.h>

#include <random>

#include "util/check.h"
#include "util/rng.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

class BucketingTest : public ::testing::Test {
 protected:
  std::mt19937_64 rng_ = util::RngFactory(3).Stream("bucketing");
  FilterContext Context() {
    FilterContext ctx;
    ctx.rng = &rng_;
    return ctx;
  }
};

TEST_F(BucketingTest, RequiresRng) {
  Bucketing bucketing(2);
  std::vector<fl::ModelUpdate> updates{Update(0, {1.0f})};
  FilterContext ctx;  // rng missing
  EXPECT_THROW(bucketing.Process(ctx, updates), util::CheckError);
}

TEST_F(BucketingTest, IdenticalUpdatesPassThrough) {
  Bucketing bucketing(2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back(Update(i, {3.0f, -1.0f}));
  }
  auto ctx = Context();
  auto result = bucketing.Process(ctx, updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 3.0f);
  EXPECT_FLOAT_EQ(result.aggregated_delta[1], -1.0f);
}

TEST_F(BucketingTest, MinorityPoisonNeutralisedViaInnerMedian) {
  Bucketing bucketing(2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back(Update(i, {1.0f}));
  }
  updates.push_back(Update(8, {-100.0f}));
  updates.push_back(Update(9, {-100.0f}));
  auto ctx = Context();
  auto result = bucketing.Process(ctx, updates);
  // Worst case the two poisons share a bucket (bucket mean -100) or split
  // (two bucket means -49.5); the median of 5 bucket means still lands on
  // an honest-dominated value.
  EXPECT_GT(result.aggregated_delta[0], -50.0f);
}

TEST_F(BucketingTest, BucketSizeOneIsInnerRuleDirectly) {
  Bucketing bucketing(1);
  std::vector<fl::ModelUpdate> updates;
  for (float v : {1.0f, 2.0f, 3.0f}) {
    updates.push_back(Update(0, {v}));
  }
  auto ctx = Context();
  auto result = bucketing.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.0f);  // plain median
}

TEST_F(BucketingTest, VerdictsCoverEveryClient) {
  Bucketing bucketing(3);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 10; ++i) {
    updates.push_back(Update(i, {static_cast<float>(i)}));
  }
  auto ctx = Context();
  auto result = bucketing.Process(ctx, updates);
  EXPECT_EQ(result.verdicts.size(), updates.size());
}

TEST_F(BucketingTest, NameReflectsConfiguration) {
  Bucketing bucketing(2);
  EXPECT_EQ(bucketing.Name(), "Bucketing(2)+Median");
}

TEST_F(BucketingTest, ZeroBucketSizeThrows) {
  EXPECT_THROW(Bucketing{0}, util::CheckError);
}

}  // namespace
}  // namespace defense

#include "defense/timeseries.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "defense/registry.h"
#include "util/serial.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta,
                       std::size_t staleness = 0) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.staleness = staleness;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

FilterContext Context(const std::vector<float>& global) {
  FilterContext ctx;
  ctx.global_model = global;
  ctx.max_staleness = 20;
  return ctx;
}

// One round for a set of clients, each sending center + small deterministic
// jitter so the per-client trajectory has nonzero variance.
std::vector<fl::ModelUpdate> Round(std::mt19937_64& rng, int clients,
                                   float center) {
  std::normal_distribution<float> noise(0.0f, 0.05f);
  std::vector<fl::ModelUpdate> updates;
  for (int c = 0; c < clients; ++c) {
    std::vector<float> delta(8);
    for (float& x : delta) {
      x = center + noise(rng);
    }
    updates.push_back(Update(c, std::move(delta)));
  }
  return updates;
}

TEST(TimeSeriesDetectorTest, RegisteredAsTsDetect) {
  EXPECT_TRUE(Registry::Global().Has("tsdetect"));
  EXPECT_TRUE(Registry::Global().Has("timeseries"));  // alias
  auto built = Make("tsdetect");
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->Name(), "TSDetect");
  const auto names = ListNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "tsdetect"), names.end());
}

TEST(TimeSeriesDetectorTest, AcceptsEveryoneDuringWarmup) {
  TimeSeriesDetector detector;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(1);
  // min_history = 3: the first three rounds have no basis to judge.
  for (int round = 0; round < 3; ++round) {
    auto updates = Round(rng, 4, 1.0f);
    auto result = detector.Process(Context(global), updates);
    for (auto v : result.verdicts) {
      EXPECT_EQ(v, Verdict::kAccepted) << "round " << round;
    }
    for (double s : result.scores) {
      EXPECT_EQ(s, 0.0) << "round " << round;
    }
  }
}

TEST(TimeSeriesDetectorTest, RejectsTrajectoryJumpAfterWarmup) {
  TimeSeriesDetector detector;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(2);
  for (int round = 0; round < 6; ++round) {
    auto updates = Round(rng, 4, 1.0f);
    (void)detector.Process(Context(global), updates);
  }
  // Client 0 suddenly sends a 50× magnitude update in the opposite
  // direction; its own history convicts it, the steady clients pass.
  auto updates = Round(rng, 4, 1.0f);
  updates[0].delta = std::vector<float>(8, -50.0f);
  auto result = detector.Process(Context(global), updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kRejected);
  for (std::size_t i = 1; i < result.verdicts.size(); ++i) {
    EXPECT_EQ(result.verdicts[i], Verdict::kAccepted) << "client " << i;
  }
  EXPECT_GT(result.scores[0], 3.5);
}

TEST(TimeSeriesDetectorTest, RejectedUpdatesDoNotPoisonHistory) {
  TimeSeriesDetector detector;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(3);
  for (int round = 0; round < 6; ++round) {
    auto updates = Round(rng, 4, 1.0f);
    (void)detector.Process(Context(global), updates);
  }
  // The attacker repeats the same outlier every round. If rejected updates
  // leaked into the ring statistics, the outlier would gradually become
  // "normal" for that client; it must keep getting rejected instead.
  for (int round = 0; round < 8; ++round) {
    auto updates = Round(rng, 4, 1.0f);
    updates[0].delta = std::vector<float>(8, -50.0f);
    auto result = detector.Process(Context(global), updates);
    EXPECT_EQ(result.verdicts[0], Verdict::kRejected) << "round " << round;
  }
}

TEST(TimeSeriesDetectorTest, NewClientMidRunGetsItsOwnWarmup) {
  TimeSeriesDetector detector;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(4);
  for (int round = 0; round < 5; ++round) {
    auto updates = Round(rng, 3, 1.0f);
    (void)detector.Process(Context(global), updates);
  }
  // Client 7 appears for the first time with an unusual update: no history,
  // accepted on faith.
  auto updates = Round(rng, 3, 1.0f);
  updates.push_back(Update(7, std::vector<float>(8, -20.0f)));
  auto result = detector.Process(Context(global), updates);
  EXPECT_EQ(result.verdicts.back(), Verdict::kAccepted);
  EXPECT_EQ(result.scores.back(), 0.0);
}

TEST(TimeSeriesDetectorTest, SaveLoadRoundTripIsBitIdentical) {
  TimeSeriesDetector live;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 7; ++round) {
    auto updates = Round(rng, 5, 1.0f);
    (void)live.Process(Context(global), updates);
  }

  util::serial::Writer w;
  live.SaveState(w);
  const auto bytes = w.Take();
  TimeSeriesDetector resumed;
  util::serial::Reader r(bytes);
  resumed.LoadState(r);
  EXPECT_TRUE(r.AtEnd());

  // Saving the resumed detector reproduces the same bytes…
  util::serial::Writer w2;
  resumed.SaveState(w2);
  EXPECT_EQ(w2.buffer(), bytes);

  // …and both detectors score identical futures identically, including an
  // anomaly whose z-score depends on the restored ring statistics.
  std::mt19937_64 rng_live = rng;
  std::mt19937_64 rng_resumed = rng;
  for (int round = 0; round < 3; ++round) {
    auto updates_live = Round(rng_live, 5, 1.0f);
    auto updates_resumed = Round(rng_resumed, 5, 1.0f);
    if (round == 1) {
      updates_live[2].delta = std::vector<float>(8, 30.0f);
      updates_resumed[2].delta = std::vector<float>(8, 30.0f);
    }
    auto a = live.Process(Context(global), updates_live);
    auto b = resumed.Process(Context(global), updates_resumed);
    EXPECT_EQ(a.scores, b.scores) << "round " << round;
    EXPECT_EQ(a.verdicts, b.verdicts) << "round " << round;
    EXPECT_EQ(a.aggregated_delta, b.aggregated_delta) << "round " << round;
  }
}

TEST(TimeSeriesDetectorTest, ResetClearsAllHistory) {
  TimeSeriesDetector detector;
  std::vector<float> global(8, 0.0f);
  std::mt19937_64 rng(6);
  for (int round = 0; round < 6; ++round) {
    auto updates = Round(rng, 4, 1.0f);
    (void)detector.Process(Context(global), updates);
  }
  detector.Reset();
  // Post-reset, even a wild update is accepted: the history is gone.
  auto updates = Round(rng, 4, 1.0f);
  updates[0].delta = std::vector<float>(8, -50.0f);
  auto result = detector.Process(Context(global), updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
}

}  // namespace
}  // namespace defense

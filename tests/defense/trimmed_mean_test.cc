#include "defense/trimmed_mean.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

TEST(TrimmedMeanTest, DropsExtremesPerCoordinate) {
  TrimmedMean tm(0.25);  // trims 1 from each end of 5
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f}));
  updates.push_back(Update(1, {2.0f}));
  updates.push_back(Update(2, {3.0f}));
  updates.push_back(Update(3, {4.0f}));
  updates.push_back(Update(4, {1000.0f}));  // poisoned coordinate
  FilterContext ctx;
  auto result = tm.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 3.0f);  // mean of {2,3,4}
}

TEST(TrimmedMeanTest, ZeroBetaIsPlainMean) {
  TrimmedMean tm(0.0);
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f, 10.0f}));
  updates.push_back(Update(1, {3.0f, 20.0f}));
  FilterContext ctx;
  auto result = tm.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.0f);
  EXPECT_FLOAT_EQ(result.aggregated_delta[1], 15.0f);
}

TEST(TrimmedMeanTest, AllVerdictsAccepted) {
  TrimmedMean tm(0.2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 6; ++i) {
    updates.push_back(Update(i, {static_cast<float>(i)}));
  }
  FilterContext ctx;
  auto result = tm.Process(ctx, updates);
  for (auto v : result.verdicts) {
    EXPECT_EQ(v, Verdict::kAccepted);
  }
}

TEST(TrimmedMeanTest, InvalidBetaThrows) {
  EXPECT_THROW(TrimmedMean(0.5), util::CheckError);
  EXPECT_THROW(TrimmedMean(-0.01), util::CheckError);
}

TEST(CoordinateMedianTest, OddCountExactMedian) {
  CoordinateMedian median;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f, -5.0f}));
  updates.push_back(Update(1, {9.0f, 0.0f}));
  updates.push_back(Update(2, {2.0f, 100.0f}));
  FilterContext ctx;
  auto result = median.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.0f);
  EXPECT_FLOAT_EQ(result.aggregated_delta[1], 0.0f);
}

TEST(CoordinateMedianTest, EvenCountAveragesMiddlePair) {
  CoordinateMedian median;
  std::vector<fl::ModelUpdate> updates;
  for (float v : {1.0f, 2.0f, 3.0f, 10.0f}) {
    updates.push_back(Update(0, {v}));
  }
  FilterContext ctx;
  auto result = median.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.5f);
}

TEST(CoordinateMedianTest, RobustToMinorityPoison) {
  CoordinateMedian median;
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 7; ++i) {
    updates.push_back(Update(i, {1.0f}));
  }
  for (int i = 0; i < 3; ++i) {
    updates.push_back(Update(7 + i, {-100.0f}));
  }
  FilterContext ctx;
  auto result = median.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 1.0f);
}

}  // namespace
}  // namespace defense

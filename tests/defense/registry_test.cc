#include "defense/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/async_filter.h"
#include "util/check.h"

namespace defense {
namespace {

TEST(DefenseRegistryTest, BuildsEveryListedName) {
  core::EnsureAsyncFilterRegistered();
  const auto names = ListNames();
  EXPECT_GE(names.size(), 12u);
  for (const auto& name : names) {
    auto built = Make(name);
    ASSERT_NE(built, nullptr) << name;
    EXPECT_FALSE(built->Name().empty()) << name;
  }
}

TEST(DefenseRegistryTest, ListIsSortedAndContainsTheGrid) {
  core::EnsureAsyncFilterRegistered();
  const auto names = ListNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"fedbuff", "fldetector", "asyncfilter", "krum", "multikrum",
        "trimmedmean", "median", "zeno", "aflguard", "nnm", "fltrust",
        "bucketing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(DefenseRegistryTest, NamesAreCanonicalized) {
  // Separators and case are ignored: these all hit the same entries.
  EXPECT_EQ(Make("Trimmed-Mean")->Name(), Make("trimmed_mean")->Name());
  EXPECT_EQ(Make("Zeno++")->Name(), Make("zeno")->Name());
  EXPECT_EQ(Make("FedBuff")->Name(), Make("nodefense")->Name());
}

TEST(DefenseRegistryTest, AsyncFilterVariantsSelfRegister) {
  core::EnsureAsyncFilterRegistered();
  EXPECT_EQ(Make("asyncfilter")->Name(), "AsyncFilter");
  EXPECT_EQ(Make("asyncfilter3means")->Name(), "AsyncFilter");  // alias
  EXPECT_EQ(Make("asyncfilter2means")->Name(), "AsyncFilter-2means");
  EXPECT_NE(Make("asyncfilterdefermid"), nullptr);
  EXPECT_NE(Make("asyncfilterrejectmid"), nullptr);
}

TEST(DefenseRegistryTest, UnknownNameThrowsAndListsKnownNames) {
  EXPECT_FALSE(Registry::Global().Has("definitely-not-a-defense"));
  try {
    Make("definitely-not-a-defense");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("fedbuff"), std::string::npos) << message;
  }
}

TEST(DefenseRegistryTest, ParamsReachTheFactory) {
  DefenseParams params;
  params.byzantine_fraction = 0.4;
  auto defense = Make("krum", params);
  ASSERT_NE(defense, nullptr);
  // Behavioural knob plumbed through; construction succeeding with a
  // non-default fraction is the contract here.
  EXPECT_FALSE(defense->Name().empty());
}

TEST(DefenseRegistryTest, ReRegisteringReplaces) {
  struct Probe : NoDefense {
    std::string Name() const override { return "probe"; }
  };
  Registry::Global().Register(
      "registry-test-probe", {"registry-test-alias"},
      [](const DefenseParams&) { return std::make_unique<Probe>(); });
  EXPECT_EQ(Make("registry-test-probe")->Name(), "probe");
  EXPECT_EQ(Make("registry-test-alias")->Name(), "probe");

  struct Probe2 : NoDefense {
    std::string Name() const override { return "probe2"; }
  };
  Registry::Global().Register(
      "registry-test-probe", {},
      [](const DefenseParams&) { return std::make_unique<Probe2>(); });
  EXPECT_EQ(Make("registry-test-probe")->Name(), "probe2");
}

}  // namespace
}  // namespace defense

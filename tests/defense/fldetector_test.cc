#include "defense/fldetector.h"

#include <gtest/gtest.h>

#include <random>

#include "util/rng.h"

namespace defense {
namespace {

class FlDetectorTest : public ::testing::Test {
 protected:
  std::mt19937_64 rng_ = util::RngFactory(5).Stream("fld");
  std::vector<float> global_ = std::vector<float>(8, 0.0f);

  FilterContext Context(std::size_t round) {
    FilterContext ctx;
    ctx.round = round;
    ctx.global_model = global_;
    ctx.rng = &rng_;
    return ctx;
  }

  // Consistent clients drift linearly; inconsistent ones flip sign each
  // round — exactly the prediction-error signal FLDetector keys on.
  std::vector<fl::ModelUpdate> Round(std::size_t round, std::size_t benign,
                                     std::size_t flippers) {
    std::normal_distribution<float> noise(0.0f, 0.02f);
    std::vector<fl::ModelUpdate> updates;
    for (std::size_t i = 0; i < benign + flippers; ++i) {
      fl::ModelUpdate u;
      u.client_id = static_cast<int>(i);
      u.num_samples = 10;
      u.staleness = 0;
      u.base_round = round;
      std::vector<float> delta(8);
      const bool flip = i >= benign && (round % 2 == 1);
      for (auto& x : delta) {
        x = (flip ? -1.0f : 1.0f) * (0.5f + noise(rng_));
      }
      u.delta = std::move(delta);
      u.is_malicious_truth = i >= benign;
      updates.push_back(std::move(u));
    }
    return updates;
  }
};

TEST_F(FlDetectorTest, FirstRoundAcceptsEverything) {
  FlDetector detector;
  auto updates = Round(0, 8, 2);
  auto result = detector.Process(Context(0), updates);
  // No history → neutral scores → no split worth making.
  std::size_t rejected = 0;
  for (auto v : result.verdicts) {
    rejected += (v == Verdict::kRejected) ? 1 : 0;
  }
  EXPECT_EQ(rejected, 0u);
}

TEST_F(FlDetectorTest, FlagsInconsistentClientsOverTime) {
  FlDetector detector;
  std::size_t malicious_rejections = 0;
  std::size_t benign_rejections = 0;
  for (std::size_t round = 0; round < 8; ++round) {
    auto updates = Round(round, 8, 4);
    auto result = detector.Process(Context(round), updates);
    // Advance the "global model" to keep snapshots realistic.
    for (auto& g : global_) {
      g += 0.4f;
    }
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (result.verdicts[i] == Verdict::kRejected) {
        (updates[i].is_malicious_truth ? malicious_rejections
                                       : benign_rejections)++;
      }
    }
  }
  EXPECT_GT(malicious_rejections, benign_rejections);
  EXPECT_GT(malicious_rejections, 4u);
}

TEST_F(FlDetectorTest, StableClientsStayAccepted) {
  FlDetector detector;
  std::size_t rejected_total = 0;
  for (std::size_t round = 0; round < 6; ++round) {
    auto updates = Round(round, 10, 0);
    auto result = detector.Process(Context(round), updates);
    for (auto v : result.verdicts) {
      rejected_total += (v == Verdict::kRejected) ? 1 : 0;
    }
  }
  // Benign-only traffic: occasional noise splits allowed, wholesale
  // rejection not.
  EXPECT_LT(rejected_total, 12u);
}

TEST_F(FlDetectorTest, ResetForgetsHistory) {
  FlDetector detector;
  for (std::size_t round = 0; round < 3; ++round) {
    auto updates = Round(round, 6, 2);
    detector.Process(Context(round), updates);
  }
  detector.Reset();
  auto updates = Round(0, 6, 2);
  auto result = detector.Process(Context(0), updates);
  std::size_t rejected = 0;
  for (auto v : result.verdicts) {
    rejected += (v == Verdict::kRejected) ? 1 : 0;
  }
  EXPECT_EQ(rejected, 0u);  // back to the no-history state
}

TEST_F(FlDetectorTest, NeverRejectsEntireBuffer) {
  FlDetector detector;
  for (std::size_t round = 0; round < 6; ++round) {
    auto updates = Round(round, 2, 8);  // malicious majority
    auto result = detector.Process(Context(round), updates);
    bool any_accepted = false;
    for (auto v : result.verdicts) {
      any_accepted |= (v == Verdict::kAccepted);
    }
    EXPECT_TRUE(any_accepted);
  }
}

}  // namespace
}  // namespace defense

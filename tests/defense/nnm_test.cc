#include "defense/nnm.h"

#include <gtest/gtest.h>

#include <random>

#include "util/check.h"
#include "util/rng.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

TEST(NnmTest, IdenticalUpdatesUnchanged) {
  NearestNeighborMixing nnm(0.2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 5; ++i) {
    updates.push_back(Update(i, {2.0f, -1.0f}));
  }
  FilterContext ctx;
  auto result = nnm.Process(ctx, updates);
  EXPECT_FLOAT_EQ(result.aggregated_delta[0], 2.0f);
  EXPECT_FLOAT_EQ(result.aggregated_delta[1], -1.0f);
}

TEST(NnmTest, MixingShrinksOutlierInfluence) {
  NearestNeighborMixing nnm(0.2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back(Update(i, {1.0f}));
  }
  updates.push_back(Update(8, {101.0f}));
  updates.push_back(Update(9, {99.0f}));
  FilterContext ctx;
  auto result = nnm.Process(ctx, updates);
  // Plain mean would be 21; mixing each update with its n-m-1 = 7 nearest
  // neighbours pulls the poisoned rows toward the benign mass.
  EXPECT_LT(result.aggregated_delta[0], 21.0f);
}

TEST(NnmTest, AllVerdictsAccepted) {
  NearestNeighborMixing nnm(0.2);
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 4; ++i) {
    updates.push_back(Update(i, {static_cast<float>(i)}));
  }
  FilterContext ctx;
  auto result = nnm.Process(ctx, updates);
  for (auto v : result.verdicts) {
    EXPECT_EQ(v, Verdict::kAccepted);
  }
}

TEST(NnmTest, InvalidFractionThrows) {
  EXPECT_THROW(NearestNeighborMixing(0.5), util::CheckError);
}

}  // namespace
}  // namespace defense

#include "defense/zeno.h"

#include <gtest/gtest.h>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

TEST(ZenoTest, RequiresServerReference) {
  ZenoPlusPlus zeno;
  EXPECT_TRUE(zeno.RequiresServerReference());
  std::vector<fl::ModelUpdate> updates{Update(0, {1.0f})};
  FilterContext ctx;  // no reference set
  EXPECT_THROW(zeno.Process(ctx, updates), util::CheckError);
}

TEST(ZenoTest, AcceptsAlignedRejectsOpposed) {
  ZenoPlusPlus zeno;
  std::vector<float> reference{1.0f, 1.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {0.9f, 1.1f}));    // aligned
  updates.push_back(Update(1, {-1.0f, -1.0f})); // reversed (GD-style)
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = zeno.Process(ctx, updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
  EXPECT_EQ(result.verdicts[1], Verdict::kRejected);
}

TEST(ZenoTest, AcceptedUpdatesAreRescaledToServerNorm) {
  ZenoPlusPlus zeno;
  std::vector<float> reference{3.0f, 4.0f};  // norm 5
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {30.0f, 40.0f}));  // same direction, norm 50
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = zeno.Process(ctx, updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  EXPECT_NEAR(stats::L2Norm(result.aggregated_delta), 5.0, 1e-4);
}

TEST(ZenoTest, OrthogonalUpdateRejected) {
  ZenoPlusPlus zeno;
  std::vector<float> reference{1.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates{Update(0, {0.0f, 1.0f})};
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = zeno.Process(ctx, updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kRejected);
  EXPECT_TRUE(result.aggregated_delta.empty());
}

TEST(ZenoTest, RhoPenalisesHugeUpdates) {
  ZenoPlusPlus zeno(0.5);
  std::vector<float> reference{1.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {100.0f, 0.0f}));  // aligned but enormous
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = zeno.Process(ctx, updates);
  // score = cos·‖g_s‖ − ρ·‖g_c‖ = 1·1 − 0.5·100 < 0 → rejected.
  EXPECT_EQ(result.verdicts[0], Verdict::kRejected);
}

}  // namespace
}  // namespace defense

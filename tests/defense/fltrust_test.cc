#include "defense/fltrust.h"

#include <gtest/gtest.h>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {
namespace {

fl::ModelUpdate Update(int client, std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.delta = std::move(delta);
  u.num_samples = 10;
  return u;
}

TEST(FlTrustTest, RequiresServerReference) {
  FlTrust fltrust;
  EXPECT_TRUE(fltrust.RequiresServerReference());
  std::vector<fl::ModelUpdate> updates{Update(0, {1.0f})};
  FilterContext ctx;
  EXPECT_THROW(fltrust.Process(ctx, updates), util::CheckError);
}

TEST(FlTrustTest, ReluClipsNegativeCosine) {
  FlTrust fltrust;
  std::vector<float> reference{1.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {2.0f, 0.1f}));    // aligned → trusted
  updates.push_back(Update(1, {-1.0f, 0.0f}));   // reversed → zero trust
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = fltrust.Process(ctx, updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
  EXPECT_EQ(result.verdicts[1], Verdict::kRejected);
}

TEST(FlTrustTest, AggregateRescaledToServerNorm) {
  FlTrust fltrust;
  std::vector<float> reference{0.0f, 2.0f};  // norm 2
  std::vector<fl::ModelUpdate> updates{Update(0, {0.0f, 20.0f})};
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = fltrust.Process(ctx, updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  EXPECT_NEAR(stats::L2Norm(result.aggregated_delta), 2.0, 1e-5);
}

TEST(FlTrustTest, HigherCosineGetsMoreWeight) {
  FlTrust fltrust;
  std::vector<float> reference{1.0f, 0.0f};
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, {1.0f, 0.0f}));  // cos 1
  updates.push_back(Update(1, {1.0f, 1.0f}));  // cos ≈ 0.707
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = fltrust.Process(ctx, updates);
  // Weighted mean tilts toward the cos-1 update: first coordinate close to
  // the rescaled aligned update's 1.0.
  EXPECT_GT(result.aggregated_delta[0], 0.8f);
}

TEST(FlTrustTest, AllOpposedYieldsEmptyAggregate) {
  FlTrust fltrust;
  std::vector<float> reference{1.0f};
  std::vector<fl::ModelUpdate> updates{Update(0, {-1.0f}), Update(1, {-2.0f})};
  FilterContext ctx;
  ctx.server_reference = reference;
  auto result = fltrust.Process(ctx, updates);
  EXPECT_TRUE(result.aggregated_delta.empty());
}

}  // namespace
}  // namespace defense

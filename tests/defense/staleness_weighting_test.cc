#include "defense/staleness_weighting.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace defense {
namespace {

TEST(StalenessWeightingTest, NoneIsAlwaysOne) {
  StalenessWeightingConfig config{StalenessWeighting::kNone, 0.0};
  for (std::size_t tau : {0u, 1u, 5u, 100u}) {
    EXPECT_DOUBLE_EQ(StalenessDiscount(config, tau), 1.0);
  }
}

TEST(StalenessWeightingTest, InverseSqrtMatchesFedBuff) {
  StalenessWeightingConfig config;  // defaults to kInverseSqrt
  EXPECT_DOUBLE_EQ(StalenessDiscount(config, 0), 1.0);
  EXPECT_DOUBLE_EQ(StalenessDiscount(config, 3), 0.5);
  EXPECT_NEAR(StalenessDiscount(config, 8), 1.0 / 3.0, 1e-12);
}

TEST(StalenessWeightingTest, PolynomialExponentControlsDecay) {
  StalenessWeightingConfig linear{StalenessWeighting::kPolynomial, 1.0};
  StalenessWeightingConfig quadratic{StalenessWeighting::kPolynomial, 2.0};
  EXPECT_DOUBLE_EQ(StalenessDiscount(linear, 3), 0.25);
  EXPECT_DOUBLE_EQ(StalenessDiscount(quadratic, 3), 0.0625);
}

TEST(StalenessWeightingTest, ZeroExponentPolynomialIsFlat) {
  StalenessWeightingConfig flat{StalenessWeighting::kPolynomial, 0.0};
  EXPECT_DOUBLE_EQ(StalenessDiscount(flat, 17), 1.0);
}

TEST(StalenessWeightingTest, DiscountIsMonotonicallyDecreasing) {
  for (auto kind :
       {StalenessWeighting::kInverseSqrt, StalenessWeighting::kPolynomial}) {
    StalenessWeightingConfig config{kind, 1.5};
    double prev = 2.0;
    for (std::size_t tau = 0; tau < 30; ++tau) {
      double d = StalenessDiscount(config, tau);
      EXPECT_LT(d, prev);
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
      prev = d;
    }
  }
}

TEST(StalenessWeightingTest, NegativePolynomialExponentThrows) {
  StalenessWeightingConfig config{StalenessWeighting::kPolynomial, -1.0};
  EXPECT_THROW(StalenessDiscount(config, 1), util::CheckError);
}

}  // namespace
}  // namespace defense

#include "defense/krum.h"

#include <gtest/gtest.h>

#include <random>

#include "util/check.h"
#include "util/rng.h"

namespace defense {
namespace {

std::vector<fl::ModelUpdate> Cluster(std::size_t benign, std::size_t outliers,
                                     std::uint64_t seed = 1) {
  auto rng = util::RngFactory(seed).Stream("krum");
  std::normal_distribution<float> noise(0.0f, 0.1f);
  std::vector<fl::ModelUpdate> updates;
  for (std::size_t i = 0; i < benign; ++i) {
    fl::ModelUpdate u;
    u.client_id = static_cast<int>(i);
    u.delta = {1.0f + noise(rng), 1.0f + noise(rng)};
    u.num_samples = 10;
    updates.push_back(std::move(u));
  }
  for (std::size_t i = 0; i < outliers; ++i) {
    fl::ModelUpdate u;
    u.client_id = static_cast<int>(benign + i);
    u.delta = {-20.0f + noise(rng), 30.0f + noise(rng)};
    u.num_samples = 10;
    u.is_malicious_truth = true;
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(KrumTest, SingleKrumSelectsFromDenseCluster) {
  Krum krum(0.2, /*multi=*/false);
  auto updates = Cluster(8, 2);
  FilterContext ctx;
  auto result = krum.Process(ctx, updates);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (result.verdicts[i] == Verdict::kAccepted) {
      ++accepted;
      EXPECT_FALSE(updates[i].is_malicious_truth);
    }
  }
  EXPECT_EQ(accepted, 1u);
}

TEST(KrumTest, MultiKrumRejectsOutliers) {
  Krum krum(0.2, /*multi=*/true);
  auto updates = Cluster(8, 2);
  FilterContext ctx;
  auto result = krum.Process(ctx, updates);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates[i].is_malicious_truth) {
      EXPECT_EQ(result.verdicts[i], Verdict::kRejected);
    }
  }
  // n - m = 10 - 2 accepted.
  std::size_t accepted = 0;
  for (auto v : result.verdicts) {
    accepted += (v == Verdict::kAccepted) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 8u);
}

TEST(KrumTest, AggregateIsCleanUnderAttack) {
  Krum krum(0.2, /*multi=*/true);
  auto updates = Cluster(8, 2);
  FilterContext ctx;
  auto result = krum.Process(ctx, updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  EXPECT_NEAR(result.aggregated_delta[0], 1.0f, 0.2f);
}

TEST(KrumTest, TinyBufferDegradesToMean) {
  Krum krum(0.2, /*multi=*/false);
  auto updates = Cluster(2, 0);
  FilterContext ctx;
  auto result = krum.Process(ctx, updates);
  for (auto v : result.verdicts) {
    EXPECT_EQ(v, Verdict::kAccepted);
  }
}

TEST(KrumTest, InvalidFractionThrows) {
  EXPECT_THROW(Krum(0.5), util::CheckError);
  EXPECT_THROW(Krum(-0.1), util::CheckError);
}

TEST(KrumTest, NamesDistinguishVariants) {
  EXPECT_EQ(Krum(0.2, false).Name(), "Krum");
  EXPECT_EQ(Krum(0.2, true).Name(), "Multi-Krum");
}

}  // namespace
}  // namespace defense

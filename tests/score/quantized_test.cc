#include "score/quantized.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/async_filter.h"
#include "stats/vec_ops.h"
#include "util/rng.h"

namespace score {
namespace {

std::vector<float> RandomVec(std::mt19937_64& rng, std::size_t dim,
                             float sigma = 1.0f) {
  std::normal_distribution<float> dist(0.0f, sigma);
  std::vector<float> v(dim);
  for (float& x : v) {
    x = dist(rng);
  }
  return v;
}

TEST(QuantizeTest, RoundTripStaysWithinHalfScale) {
  std::mt19937_64 rng(1);
  const auto v = RandomVec(rng, 300);
  const QuantizedVec q = Quantize(v);
  ASSERT_EQ(q.size(), v.size());
  ASSERT_GT(q.scale, 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(static_cast<double>(v[i]) - q.scale * q.codes[i]),
              q.scale / 2.0 + 1e-12);
  }
}

TEST(QuantizeTest, AllZeroVectorIsExact) {
  const std::vector<float> zeros(64, 0.0f);
  const QuantizedVec q = Quantize(zeros);
  EXPECT_EQ(q.scale, 0.0);
  EXPECT_EQ(q.l1_norm, 0.0);
  const QuantizedVec other = Quantize(zeros);
  EXPECT_EQ(ApproxDot(q, other), 0.0);
  EXPECT_EQ(DotErrorBound(q, other), 0.0);
}

TEST(QuantizeTest, L1NormMatchesOriginalFloats) {
  std::mt19937_64 rng(2);
  const auto v = RandomVec(rng, 100);
  const QuantizedVec q = Quantize(v);
  double l1 = 0.0;
  for (float x : v) {
    l1 += std::fabs(static_cast<double>(x));
  }
  EXPECT_DOUBLE_EQ(q.l1_norm, l1);
}

// The load-bearing property: the certified bound really bounds the error,
// across dimensions (unroll tails), magnitudes, and sign patterns.
TEST(ApproxDotTest, ErrorNeverExceedsCertifiedBound) {
  std::mt19937_64 rng(3);
  for (std::size_t dim : {1u, 3u, 64u, 257u, 4704u}) {
    for (int trial = 0; trial < 10; ++trial) {
      const float sigma = trial % 2 == 0 ? 1.0f : 40.0f;
      const auto a = RandomVec(rng, dim, sigma);
      const auto b = RandomVec(rng, dim, 1.0f);
      const QuantizedVec qa = Quantize(a);
      const QuantizedVec qb = Quantize(b);
      double exact = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        exact += static_cast<double>(a[i]) * static_cast<double>(b[i]);
      }
      const double approx = ApproxDot(qa, qb);
      const double bound = DotErrorBound(qa, qb);
      EXPECT_LE(std::fabs(approx - exact), bound)
          << "dim " << dim << " trial " << trial;
      // And the bound is useful, not vacuous: for unit-scale vectors it
      // stays far below the magnitude of a typical dot product.
      if (sigma == 1.0f && dim >= 64) {
        EXPECT_LT(bound, dim * 0.05);
      }
    }
  }
}

TEST(ApproxDotTest, SelfDotApproximatesSquaredNorm) {
  std::mt19937_64 rng(4);
  const auto v = RandomVec(rng, 512);
  const QuantizedVec q = Quantize(v);
  double exact = 0.0;
  for (float x : v) {
    exact += static_cast<double>(x) * static_cast<double>(x);
  }
  EXPECT_LE(std::fabs(ApproxDot(q, q) - exact), DotErrorBound(q, q));
}

// End-to-end verdict invariance on a LeNet-sized fixture: the quantized
// candidate path (approx scores + exact rescoring of borderline updates)
// must reproduce the exact backend's verdicts bit-for-bit — speed may
// change, decisions may not.
TEST(QuantizedVerdictInvarianceTest, LeNetFixtureMatchesExactBackend) {
  constexpr std::size_t kDim = 4704;  // LeNet conv1 activation volume
  constexpr std::size_t kRounds = 5;
  constexpr std::size_t kClients = 14;

  core::AsyncFilterOptions exact_opts;
  exact_opts.scorer_mode = ScorerMode::kExact;
  core::AsyncFilterOptions quant_opts;
  quant_opts.scorer_mode = ScorerMode::kQuantized;
  core::AsyncFilter exact_filter(exact_opts);
  core::AsyncFilter quant_filter(quant_opts);

  std::vector<float> global(kDim, 0.0f);
  std::mt19937_64 exact_rng = util::RngFactory(42).Stream("quant-invariance");
  std::mt19937_64 quant_rng = util::RngFactory(42).Stream("quant-invariance");

  std::mt19937_64 data_rng(99);
  std::normal_distribution<float> noise(0.0f, 0.05f);
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<fl::ModelUpdate> updates;
    for (std::size_t c = 0; c < kClients; ++c) {
      fl::ModelUpdate u;
      u.client_id = static_cast<int>(c);
      u.base_round = round;
      u.staleness = c % 3;
      u.num_samples = 10;
      // Last two clients are strong outliers; the rest form a benign
      // cluster with mild non-IID spread so borderline scores exist.
      const float center = c + 2 < kClients ? 0.2f : -4.0f;
      u.is_malicious_truth = c + 2 >= kClients;
      std::vector<float> delta(kDim);
      for (float& x : delta) {
        x = center + noise(data_rng);
      }
      u.delta = std::move(delta);
      updates.push_back(std::move(u));
    }

    defense::FilterContext exact_ctx;
    exact_ctx.round = round;
    exact_ctx.global_model = global;
    exact_ctx.max_staleness = 20;
    exact_ctx.rng = &exact_rng;
    defense::FilterContext quant_ctx = exact_ctx;
    quant_ctx.rng = &quant_rng;

    const auto exact_result = exact_filter.Process(exact_ctx, updates);
    const auto quant_result = quant_filter.Process(quant_ctx, updates);

    ASSERT_EQ(quant_result.verdicts, exact_result.verdicts)
        << "round " << round;
    ASSERT_EQ(quant_result.aggregated_delta, exact_result.aggregated_delta)
        << "round " << round;
  }
}

}  // namespace
}  // namespace score

// AF_SCORER=exact and AF_SCORER=incremental must be indistinguishable at the
// defense level: bit-identical scores, verdicts, and aggregated deltas for
// every configuration, every round. This is the acceptance gate for routing
// AsyncFilter through the streaming scorer.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/async_filter.h"
#include "score/scorer.h"
#include "util/rng.h"

namespace core {
namespace {

struct Grid {
  std::size_t buffer_size;
  ScoreNormalization normalization;
  MidBandPolicy mid_band;
};

std::vector<fl::ModelUpdate> MakeBuffer(std::size_t n, std::size_t round,
                                        std::mt19937_64& rng) {
  std::normal_distribution<float> noise(0.0f, 0.15f);
  std::vector<fl::ModelUpdate> updates;
  for (std::size_t i = 0; i < n; ++i) {
    fl::ModelUpdate u;
    u.client_id = static_cast<int>(i);
    u.base_round = round;
    u.staleness = i % 4;
    u.num_samples = 5 + i % 7;
    // ~1/5 of the buffer are outliers so all three bands stay populated.
    const float center = (i % 5 == 4) ? -6.0f : 1.0f;
    std::vector<float> delta(24);
    for (float& x : delta) {
      x = center + noise(rng);
    }
    u.delta = std::move(delta);
    updates.push_back(std::move(u));
  }
  return updates;
}

// Runs `rounds` rounds through one AsyncFilter configured with `mode` and
// returns every per-round result. Identical RNG seeding across calls.
std::vector<defense::AggregationResult> RunRounds(score::ScorerMode mode,
                                            const Grid& grid,
                                            std::size_t rounds) {
  AsyncFilterOptions options;
  options.scorer_mode = mode;
  options.normalization = grid.normalization;
  options.mid_band = grid.mid_band;
  AsyncFilter filter(options);

  std::mt19937_64 server_rng = util::RngFactory(77).Stream("equiv-server");
  std::mt19937_64 data_rng = util::RngFactory(77).Stream("equiv-data");
  std::vector<float> global(24, 0.0f);

  std::vector<defense::AggregationResult> results;
  for (std::size_t round = 0; round < rounds; ++round) {
    auto updates = MakeBuffer(grid.buffer_size, round, data_rng);
    defense::FilterContext ctx;
    ctx.round = round;
    ctx.global_model = global;
    ctx.max_staleness = 20;
    ctx.rng = &server_rng;
    results.push_back(filter.Process(ctx, updates));
  }
  return results;
}

TEST(ScorerEquivalenceTest, ExactAndIncrementalAreBitIdenticalAcrossGrid) {
  const std::vector<Grid> grids = {
      {4, ScoreNormalization::kGroupRms, MidBandPolicy::kAccept},
      {12, ScoreNormalization::kGroupRms, MidBandPolicy::kAccept},
      {12, ScoreNormalization::kGroupRms, MidBandPolicy::kDefer},
      {12, ScoreNormalization::kGroupRms, MidBandPolicy::kReject},
      {12, ScoreNormalization::kBufferNorm, MidBandPolicy::kAccept},
      {12, ScoreNormalization::kEq7CrossGroup, MidBandPolicy::kAccept},
      {33, ScoreNormalization::kBufferNorm, MidBandPolicy::kDefer},
      {33, ScoreNormalization::kEq7CrossGroup, MidBandPolicy::kReject},
  };
  constexpr std::size_t kRounds = 4;

  for (const Grid& grid : grids) {
    const auto exact = RunRounds(score::ScorerMode::kExact, grid, kRounds);
    const auto incremental = RunRounds(score::ScorerMode::kIncremental, grid,
                                 kRounds);
    ASSERT_EQ(exact.size(), incremental.size());
    for (std::size_t round = 0; round < exact.size(); ++round) {
      SCOPED_TRACE(::testing::Message()
                   << "buffer=" << grid.buffer_size << " norm="
                   << static_cast<int>(grid.normalization) << " midband="
                   << static_cast<int>(grid.mid_band) << " round=" << round);
      // EXPECT_EQ on doubles: bit identity, not tolerance.
      EXPECT_EQ(incremental[round].scores, exact[round].scores);
      EXPECT_EQ(incremental[round].verdicts, exact[round].verdicts);
      EXPECT_EQ(incremental[round].aggregated_delta,
                exact[round].aggregated_delta);
      EXPECT_EQ(incremental[round].reason, exact[round].reason);
      ASSERT_EQ(incremental[round].deferred.size(),
                exact[round].deferred.size());
      for (std::size_t d = 0; d < exact[round].deferred.size(); ++d) {
        EXPECT_EQ(incremental[round].deferred[d].client_id,
                  exact[round].deferred[d].client_id);
      }
    }
  }
}

// The environment switch reaches the same code path as the explicit option.
TEST(ScorerEquivalenceTest, EnvOverrideMatchesExplicitOption) {
  const Grid grid{12, ScoreNormalization::kGroupRms, MidBandPolicy::kAccept};
  const auto explicit_exact = RunRounds(score::ScorerMode::kExact, grid, 3);

  score::SetScorerModeOverrideForTest(score::ScorerMode::kExact);
  AsyncFilterOptions options;  // scorer_mode unset: reads the environment
  options.normalization = grid.normalization;
  options.mid_band = grid.mid_band;
  AsyncFilter filter(options);
  score::SetScorerModeOverrideForTest(std::nullopt);
  EXPECT_EQ(filter.scorer_mode(), score::ScorerMode::kExact);

  std::mt19937_64 server_rng = util::RngFactory(77).Stream("equiv-server");
  std::mt19937_64 data_rng = util::RngFactory(77).Stream("equiv-data");
  std::vector<float> global(24, 0.0f);
  for (std::size_t round = 0; round < 3; ++round) {
    auto updates = MakeBuffer(grid.buffer_size, round, data_rng);
    defense::FilterContext ctx;
    ctx.round = round;
    ctx.global_model = global;
    ctx.max_staleness = 20;
    ctx.rng = &server_rng;
    const auto result = filter.Process(ctx, updates);
    EXPECT_EQ(result.scores, explicit_exact[round].scores);
    EXPECT_EQ(result.verdicts, explicit_exact[round].verdicts);
  }
}

// Degenerate buffers must surface their reason identically in both modes.
TEST(ScorerEquivalenceTest, DegenerateReasonsMatch) {
  for (auto mode :
       {score::ScorerMode::kExact, score::ScorerMode::kIncremental}) {
    AsyncFilterOptions options;
    options.scorer_mode = mode;
    AsyncFilter filter(options);
    std::mt19937_64 rng = util::RngFactory(5).Stream("degenerate");
    std::vector<float> global(8, 0.0f);
    defense::FilterContext ctx;
    ctx.global_model = global;
    ctx.rng = &rng;

    // One update: buffer too small to cluster.
    std::vector<fl::ModelUpdate> one(1);
    one[0].client_id = 0;
    one[0].delta = std::vector<float>(8, 1.0f);
    one[0].num_samples = 1;
    EXPECT_EQ(filter.Process(ctx, one).reason, "buffer_too_small");

    // Identical updates: zero score spread.
    std::vector<fl::ModelUpdate> same(6);
    for (int i = 0; i < 6; ++i) {
      same[i].client_id = i;
      same[i].delta = std::vector<float>(8, 1.0f);
      same[i].num_samples = 1;
    }
    EXPECT_EQ(filter.Process(ctx, same).reason, "scores_degenerate");
  }
}

}  // namespace
}  // namespace core

#include "score/warm_kmeans.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cluster/kmeans.h"
#include "util/serial.h"

namespace score {
namespace {

std::vector<double> ThreeBlobs(std::mt19937_64& rng, std::size_t per_blob) {
  std::vector<double> values;
  for (double center : {0.0, 5.0, 10.0}) {
    std::normal_distribution<double> dist(center, 0.3);
    for (std::size_t i = 0; i < per_blob; ++i) {
      values.push_back(dist(rng));
    }
  }
  return values;
}

TEST(WarmKMeansTest, ColdCallMatchesSeededKMeansAndPrimesState) {
  std::mt19937_64 data_rng(1);
  const auto values = ThreeBlobs(data_rng, 12);

  WarmKMeansState state;
  EXPECT_FALSE(state.WarmFor(3));
  std::mt19937_64 rng_a(7);
  std::mt19937_64 rng_b(7);
  const auto warm_path = WarmKMeans1D(values, 3, rng_a, state);
  const auto cold = cluster::KMeans1D(values, 3, rng_b);
  EXPECT_EQ(warm_path.assignment, cold.assignment);
  EXPECT_EQ(warm_path.centroids, cold.centroids);
  // The call primed the state for next round.
  EXPECT_TRUE(state.WarmFor(3));
  EXPECT_EQ(state.centroids, cold.centroids);
}

TEST(WarmKMeansTest, WarmCallDrawsNoRandomness) {
  std::mt19937_64 data_rng(2);
  const auto values = ThreeBlobs(data_rng, 10);

  WarmKMeansState state;
  std::mt19937_64 rng(11);
  (void)WarmKMeans1D(values, 3, rng, state);
  ASSERT_TRUE(state.WarmFor(3));

  // Second call is warm: the RNG must not advance.
  std::mt19937_64 before = rng;
  const auto warm = WarmKMeans1D(values, 3, rng, state);
  EXPECT_EQ(rng, before);
  // And it reproduces the stable clustering of the same data.
  EXPECT_EQ(warm.centroids, state.centroids);
}

TEST(WarmKMeansTest, KChangeFallsBackToColdPath) {
  std::mt19937_64 data_rng(3);
  const auto values = ThreeBlobs(data_rng, 10);

  WarmKMeansState state;
  std::mt19937_64 rng(13);
  (void)WarmKMeans1D(values, 3, rng, state);
  ASSERT_TRUE(state.WarmFor(3));

  // Asking for k=2 cannot reuse 3 centroids: cold path, state re-primed.
  std::mt19937_64 rng_a(17);
  std::mt19937_64 rng_b(17);
  const auto result = WarmKMeans1D(values, 2, rng_a, state);
  const auto cold = cluster::KMeans1D(values, 2, rng_b);
  EXPECT_EQ(result.centroids, cold.centroids);
  EXPECT_TRUE(state.WarmFor(2));
  EXPECT_FALSE(state.WarmFor(3));
}

TEST(WarmKMeansTest, TooFewValuesForWarmStartUsesColdPath) {
  WarmKMeansState state;
  state.centroids = {{0.0}, {5.0}, {10.0}};
  const std::vector<double> values = {1.0, 2.0};
  std::mt19937_64 rng_a(19);
  std::mt19937_64 rng_b(19);
  const auto result = WarmKMeans1D(values, 2, rng_a, state);
  const auto cold = cluster::KMeans1D(values, 2, rng_b);
  EXPECT_EQ(result.centroids, cold.centroids);
}

TEST(WarmKMeansStateTest, SaveLoadRoundTripsBitExactly) {
  WarmKMeansState state;
  state.centroids = {{0.125}, {5.0e-300}, {10.75, -3.5}};

  util::serial::Writer w;
  state.Save(w);
  const auto bytes = w.Take();

  WarmKMeansState loaded;
  loaded.centroids = {{99.0}};  // must be replaced wholesale
  util::serial::Reader r(bytes);
  loaded.Load(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(loaded.centroids, state.centroids);
}

TEST(WarmKMeansStateTest, ResumedStateTakesIdenticalWarmBranch) {
  std::mt19937_64 data_rng(4);
  const auto values = ThreeBlobs(data_rng, 8);

  WarmKMeansState state;
  std::mt19937_64 rng(23);
  (void)WarmKMeans1D(values, 3, rng, state);

  util::serial::Writer w;
  state.Save(w);
  const auto bytes = w.Take();
  WarmKMeansState resumed;
  util::serial::Reader r(bytes);
  resumed.Load(r);

  // Next-round data, both states, no RNG needed on the warm branch.
  std::mt19937_64 data_rng2(5);
  const auto next = ThreeBlobs(data_rng2, 8);
  std::mt19937_64 rng_a(29);
  std::mt19937_64 rng_b(31);  // different seed: must not matter when warm
  const auto from_live = WarmKMeans1D(next, 3, rng_a, state);
  const auto from_resumed = WarmKMeans1D(next, 3, rng_b, resumed);
  EXPECT_EQ(from_live.centroids, from_resumed.centroids);
  EXPECT_EQ(from_live.assignment, from_resumed.assignment);
}

}  // namespace
}  // namespace score

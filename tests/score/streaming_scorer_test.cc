// Property tests for the streaming scorer: the incremental backend must be
// bit-identical to the exact backend after EVERY mutation in arbitrary
// insert/evict/reference-update sequences — the contract the AF_SCORER
// switch rests on.
#include "score/scorer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <vector>

namespace score {
namespace {

std::vector<float> RandomVec(std::mt19937_64& rng, std::size_t dim) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(dim);
  for (float& x : v) {
    x = dist(rng);
  }
  return v;
}

TEST(ScorerModeTest, NamesRoundTrip) {
  EXPECT_STREQ(ScorerModeName(ScorerMode::kExact), "exact");
  EXPECT_STREQ(ScorerModeName(ScorerMode::kIncremental), "incremental");
  EXPECT_STREQ(ScorerModeName(ScorerMode::kQuantized), "quantized");
}

TEST(ScorerModeTest, TestOverrideWinsOverEnvironment) {
  SetScorerModeOverrideForTest(ScorerMode::kExact);
  EXPECT_EQ(ScorerModeFromEnv(), ScorerMode::kExact);
  SetScorerModeOverrideForTest(ScorerMode::kQuantized);
  EXPECT_EQ(ScorerModeFromEnv(), ScorerMode::kQuantized);
  SetScorerModeOverrideForTest(std::nullopt);
  // Default (no AF_SCORER in the test environment): incremental.
  EXPECT_EQ(ScorerModeFromEnv(), ScorerMode::kIncremental);
}

TEST(StreamingScorerTest, SlotLifecycleAndRecycling) {
  StreamingScorer scorer(ScorerMode::kIncremental);
  std::mt19937_64 rng(1);
  auto a = RandomVec(rng, 16);
  auto b = RandomVec(rng, 16);
  const int sa = scorer.Insert(a);
  const int sb = scorer.Insert(b);
  EXPECT_NE(sa, sb);
  EXPECT_EQ(scorer.size(), 2u);
  EXPECT_TRUE(scorer.IsLive(sa));
  scorer.Evict(sa);
  EXPECT_FALSE(scorer.IsLive(sa));
  EXPECT_EQ(scorer.size(), 1u);
  // The freed slot id is recycled.
  auto c = RandomVec(rng, 16);
  const int sc = scorer.Insert(c);
  EXPECT_EQ(sc, sa);
  EXPECT_TRUE(scorer.IsLive(sc));
}

TEST(StreamingScorerTest, ReattachKeepsCachedAnswers) {
  StreamingScorer scorer(ScorerMode::kIncremental);
  std::mt19937_64 rng(2);
  auto a = RandomVec(rng, 64);
  auto ref = RandomVec(rng, 64);
  const int slot = scorer.Insert(a);
  scorer.SetReference(9, ref);
  const double norm_before = scorer.SquaredNorm(slot);
  const double dist_before = scorer.DistanceToReference(9, slot);
  // Rebind to a different allocation holding identical contents.
  std::vector<float> copy = a;
  scorer.Reattach(slot, copy);
  EXPECT_EQ(scorer.SquaredNorm(slot), norm_before);
  EXPECT_EQ(scorer.DistanceToReference(9, slot), dist_before);
  EXPECT_EQ(scorer.Delta(slot).data(), copy.data());
}

TEST(StreamingScorerTest, ReferenceReplacementInvalidatesCachedDistances) {
  StreamingScorer scorer(ScorerMode::kIncremental);
  std::mt19937_64 rng(3);
  auto a = RandomVec(rng, 32);
  auto ref1 = RandomVec(rng, 32);
  auto ref2 = RandomVec(rng, 32);
  const int slot = scorer.Insert(a);
  scorer.SetReference(1, ref1);
  const double d1 = scorer.DistanceToReference(1, slot);
  scorer.SetReference(1, ref2);
  const double d2 = scorer.DistanceToReference(1, slot);
  EXPECT_NE(d1, d2);
  // And the fresh answer matches an exact scorer on the same state.
  StreamingScorer exact(ScorerMode::kExact);
  const int es = exact.Insert(a);
  exact.SetReference(1, ref2);
  EXPECT_EQ(exact.DistanceToReference(1, es), d2);
}

TEST(StreamingScorerTest, SelfDistanceIsExactlyZero) {
  StreamingScorer scorer(ScorerMode::kIncremental);
  std::mt19937_64 rng(4);
  auto a = RandomVec(rng, 128);
  const int slot = scorer.Insert(a);
  EXPECT_EQ(scorer.PairwiseSquaredDistance(slot, slot), 0.0);
}

// The tentpole property: drive exact and incremental scorers through the
// same randomized mutation sequence and demand bit equality on every query
// after every mutation.
TEST(StreamingScorerPropertyTest, IncrementalMatchesExactOnRandomSequences) {
  constexpr std::size_t kDim = 48;
  constexpr std::size_t kRefs = 4;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 rng(1000 + seed);
    StreamingScorer exact(ScorerMode::kExact);
    StreamingScorer incremental(ScorerMode::kIncremental);

    // storage[slot] owns the floats both scorers borrow for that slot.
    std::map<int, std::vector<float>> storage;
    std::vector<std::vector<float>> refs;
    for (std::size_t k = 0; k < kRefs; ++k) {
      refs.push_back(RandomVec(rng, kDim));
      exact.SetReference(k, refs.back());
      incremental.SetReference(k, refs.back());
    }

    std::vector<int> live;
    for (int step = 0; step < 60; ++step) {
      const double roll = std::uniform_real_distribution<double>(0, 1)(rng);
      if (live.empty() || (roll < 0.55 && live.size() < 24)) {
        auto v = RandomVec(rng, kDim);
        const int se = exact.Insert(v);
        storage[se] = std::move(v);
        const int si = incremental.Insert(storage[se]);
        ASSERT_EQ(se, si);  // identical free-list behaviour
        exact.Reattach(se, storage[se]);
        live.push_back(se);
      } else if (roll < 0.8) {
        const std::size_t pick = std::uniform_int_distribution<std::size_t>(
            0, live.size() - 1)(rng);
        const int slot = live[pick];
        exact.Evict(slot);
        incremental.Evict(slot);
        storage.erase(slot);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const std::size_t k =
            std::uniform_int_distribution<std::size_t>(0, kRefs - 1)(rng);
        refs[k] = RandomVec(rng, kDim);
        exact.SetReference(k, refs[k]);
        incremental.SetReference(k, refs[k]);
      }

      ASSERT_EQ(exact.size(), incremental.size());
      for (int a : live) {
        ASSERT_EQ(incremental.SquaredNorm(a), exact.SquaredNorm(a))
            << "seed " << seed << " step " << step;
        for (std::size_t k = 0; k < kRefs; ++k) {
          ASSERT_EQ(incremental.DistanceToReference(k, a),
                    exact.DistanceToReference(k, a))
              << "seed " << seed << " step " << step;
        }
        for (int b : live) {
          ASSERT_EQ(incremental.Dot(a, b), exact.Dot(a, b))
              << "seed " << seed << " step " << step;
          ASSERT_EQ(incremental.PairwiseSquaredDistance(a, b),
                    exact.PairwiseSquaredDistance(a, b))
              << "seed " << seed << " step " << step;
        }
      }
    }
  }
}

TEST(StreamingScorerTest, ApproxDistanceDegradesToExactOutsideQuantizedMode) {
  StreamingScorer scorer(ScorerMode::kIncremental);
  std::mt19937_64 rng(5);
  auto a = RandomVec(rng, 64);
  auto ref = RandomVec(rng, 64);
  const int slot = scorer.Insert(a);
  scorer.SetReference(0, ref);
  const auto approx = scorer.ApproxDistanceToReference(0, slot);
  EXPECT_TRUE(approx.exact);
  EXPECT_EQ(approx.bound, 0.0);
  EXPECT_EQ(approx.value, scorer.DistanceToReference(0, slot));
}

TEST(StreamingScorerTest, QuantizedApproxDistanceIsWithinCertifiedBound) {
  std::mt19937_64 rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    StreamingScorer quant(ScorerMode::kQuantized);
    StreamingScorer exact(ScorerMode::kExact);
    auto a = RandomVec(rng, 257);  // odd size exercises the unroll tail
    auto ref = RandomVec(rng, 257);
    const int qs = quant.Insert(a);
    const int es = exact.Insert(a);
    quant.SetReference(0, ref);
    exact.SetReference(0, ref);
    const auto approx = quant.ApproxDistanceToReference(0, qs);
    const double truth = exact.DistanceToReference(0, es);
    EXPECT_FALSE(approx.exact);
    EXPECT_LE(std::fabs(approx.value - truth), approx.bound)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace score

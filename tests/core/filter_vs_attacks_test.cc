// Cross-module property tests: the real attack implementations against the
// real AsyncFilter, on a controlled synthetic update distribution.
//
// The central robustness property (what Theorem 1 buys end-to-end): for
// every attack, the filtered aggregate must sit closer to the benign mean
// than the unfiltered aggregate — i.e. the filter can only help.
#include <gtest/gtest.h>

#include <random>

#include "attacks/coordinator.h"
#include "attacks/registry.h"
#include "core/async_filter.h"
#include "defense/defense.h"
#include "stats/vec_ops.h"
#include "util/rng.h"

namespace core {
namespace {

constexpr std::size_t kDim = 48;
constexpr std::size_t kPerRound = 24;
constexpr std::size_t kMalicious = 5;
constexpr std::size_t kRounds = 8;

struct RoundOutcome {
  double filtered_error = 0.0;    // ‖filtered aggregate − benign mean‖
  double unfiltered_error = 0.0;  // ‖plain mean − benign mean‖
  std::size_t malicious_rejected = 0;
  std::size_t malicious_total = 0;
};

class FilterVsAttackTest
    : public ::testing::TestWithParam<attacks::AttackKind> {
 protected:
  // Simulates the server-side view over several rounds: benign updates are
  // drawn around a drifting per-staleness-group mean; malicious clients
  // craft through the real attack with a colluder window.
  RoundOutcome Run(attacks::AttackKind kind, std::uint64_t seed) {
    util::RngFactory rngs(seed);
    auto rng = rngs.Stream("fva");
    std::normal_distribution<float> unit(0.0f, 1.0f);

    attacks::AttackParams params;
    params.total_clients = kPerRound * 2;
    params.malicious_clients = kMalicious * 2;
    auto attack = attacks::MakeAttack(kind, params);
    attacks::Coordinator coordinator(20);

    AsyncFilter filter;
    RoundOutcome total;

    std::vector<std::vector<float>> group_mean(3, std::vector<float>(kDim));
    for (auto& g : group_mean) {
      for (float& x : g) {
        x = unit(rng);
      }
    }

    for (std::size_t round = 0; round < kRounds; ++round) {
      std::vector<fl::ModelUpdate> buffer;
      std::vector<std::vector<float>> benign;
      std::uniform_int_distribution<std::size_t> pick_tau(0, 2);
      for (std::size_t i = 0; i < kPerRound; ++i) {
        const std::size_t tau = pick_tau(rng);
        std::vector<float> honest(kDim);
        for (std::size_t d = 0; d < kDim; ++d) {
          honest[d] = group_mean[tau][d] + 0.4f * unit(rng);
        }
        fl::ModelUpdate update;
        update.client_id = static_cast<int>(i);
        update.base_round = round;
        update.staleness = tau;
        update.num_samples = 10;
        if (i < kMalicious) {
          coordinator.Absorb(honest);
          const auto window = coordinator.Window();
          attacks::AttackContext ctx;
          ctx.honest_update = honest;
          ctx.colluder_updates = &window;
          ctx.rng = &rng;
          update.delta = attack->Craft(ctx);
          update.is_malicious_truth = true;
        } else {
          update.delta = honest;
          benign.push_back(honest);
        }
        buffer.push_back(std::move(update));
      }

      defense::FilterContext ctx;
      ctx.round = round;
      ctx.rng = &rng;
      defense::AggregationResult result = filter.Process(ctx, buffer);

      const std::vector<float> benign_mean = stats::Mean(benign);
      std::vector<std::span<const float>> all;
      for (const auto& u : buffer) {
        all.push_back(u.delta);
      }
      const std::vector<float> plain = stats::Mean(all);
      total.unfiltered_error += stats::Distance(plain, benign_mean);
      if (!result.aggregated_delta.empty()) {
        total.filtered_error +=
            stats::Distance(result.aggregated_delta, benign_mean);
      }
      for (std::size_t i = 0; i < buffer.size(); ++i) {
        if (buffer[i].is_malicious_truth) {
          ++total.malicious_total;
          if (result.verdicts[i] == defense::Verdict::kRejected) {
            ++total.malicious_rejected;
          }
        }
      }
      // Drift the trajectory as training would.
      for (auto& g : group_mean) {
        for (float& x : g) {
          x = 0.85f * x + 0.1f * unit(rng);
        }
      }
    }
    return total;
  }
};

// Subtle in-distribution attacks (LIE, Adaptive) are *designed* to be
// statistically indistinguishable from honest non-IID updates, so rejecting
// a top band mostly trims benign outliers and may bias the mean slightly —
// the end-to-end accuracy cost is nil (Table 3's LIE column). The strict
// only-helps bar therefore applies to the out-of-distribution attacks.
double ToleranceFor(attacks::AttackKind kind) {
  switch (kind) {
    case attacks::AttackKind::kLie:
    case attacks::AttackKind::kAdaptive:
      return 1.5;
    default:
      return 1.05;
  }
}

TEST_P(FilterVsAttackTest, FilteredAggregateIsCloserToBenignMean) {
  const RoundOutcome outcome = Run(GetParam(), 11);
  EXPECT_LT(outcome.filtered_error,
            outcome.unfiltered_error * ToleranceFor(GetParam()))
      << "filtering must not push the aggregate away from the benign mean";
}

TEST_P(FilterVsAttackTest, PropertyHoldsAcrossSeeds) {
  for (std::uint64_t seed : {21, 31, 41}) {
    const RoundOutcome outcome = Run(GetParam(), seed);
    EXPECT_LT(outcome.filtered_error,
              outcome.unfiltered_error * ToleranceFor(GetParam()) * 1.05)
        << "seed " << seed;
  }
}

TEST_P(FilterVsAttackTest, StrongAttacksAreActuallyDetected) {
  // GD reverses updates outright — the filter must catch a majority of it.
  // The subtle attacks (LIE, Adaptive) are built to evade; for those we only
  // require the aggregate-distance property above.
  if (GetParam() != attacks::AttackKind::kGd) {
    GTEST_SKIP() << "detection-rate bar applies to the blatant attack only";
  }
  const RoundOutcome outcome = Run(GetParam(), 11);
  EXPECT_GT(outcome.malicious_rejected,
            outcome.malicious_total / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, FilterVsAttackTest,
    ::testing::Values(attacks::AttackKind::kGd, attacks::AttackKind::kLie,
                      attacks::AttackKind::kMinMax,
                      attacks::AttackKind::kMinSum,
                      attacks::AttackKind::kAdaptive),
    [](const ::testing::TestParamInfo<attacks::AttackKind>& info) {
      std::string name = attacks::AttackKindName(info.param);
      std::erase_if(name, [](char c) { return c == '-' || c == ' '; });
      return name;
    });

}  // namespace
}  // namespace core

#include "core/async_filter.h"

#include <gtest/gtest.h>

#include <random>

#include "util/check.h"
#include "util/rng.h"

namespace core {
namespace {

using defense::AggregationResult;
using defense::FilterContext;
using defense::Verdict;

fl::ModelUpdate Update(int client, std::size_t staleness,
                       std::vector<float> delta, bool malicious = false,
                       std::size_t samples = 10) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.base_round = 0;
  u.staleness = staleness;
  u.delta = std::move(delta);
  u.is_malicious_truth = malicious;
  u.num_samples = samples;
  return u;
}

class AsyncFilterTest : public ::testing::Test {
 protected:
  std::mt19937_64 rng_ = util::RngFactory(7).Stream("af-test");
  std::vector<float> global_ = std::vector<float>(4, 0.0f);

  FilterContext Context(std::size_t round = 0) {
    FilterContext ctx;
    ctx.round = round;
    ctx.global_model = global_;
    ctx.max_staleness = 20;
    ctx.rng = &rng_;
    return ctx;
  }

  // A buffer with a tight benign cluster and `malicious` blatant outliers.
  std::vector<fl::ModelUpdate> MixedBuffer(std::size_t benign,
                                           std::size_t malicious,
                                           std::uint64_t seed = 3) {
    auto rng = util::RngFactory(seed).Stream("buffer");
    std::normal_distribution<float> noise(0.0f, 0.1f);
    std::vector<fl::ModelUpdate> updates;
    for (std::size_t i = 0; i < benign; ++i) {
      updates.push_back(Update(static_cast<int>(i), i % 2,
                               {1.0f + noise(rng), 1.0f + noise(rng),
                                1.0f + noise(rng), 1.0f + noise(rng)}));
    }
    for (std::size_t i = 0; i < malicious; ++i) {
      updates.push_back(Update(static_cast<int>(benign + i), i % 2,
                               {-9.0f + noise(rng), -9.0f + noise(rng),
                                -9.0f + noise(rng), -9.0f + noise(rng)},
                               true));
    }
    return updates;
  }
};

TEST_F(AsyncFilterTest, RejectsBlatantOutliers) {
  AsyncFilter filter;
  auto updates = MixedBuffer(16, 4);
  AggregationResult result = filter.Process(Context(), updates);
  ASSERT_EQ(result.verdicts.size(), updates.size());
  std::size_t malicious_rejected = 0, benign_rejected = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (result.verdicts[i] == Verdict::kRejected) {
      (updates[i].is_malicious_truth ? malicious_rejected : benign_rejected)++;
    }
  }
  EXPECT_EQ(malicious_rejected, 4u);
  EXPECT_LE(benign_rejected, 2u);
}

TEST_F(AsyncFilterTest, AggregateExcludesRejectedMass) {
  AsyncFilter filter;
  auto updates = MixedBuffer(16, 4);
  AggregationResult result = filter.Process(Context(), updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  // Poison pulls toward -9; a clean aggregate stays near +1.
  for (float v : result.aggregated_delta) {
    EXPECT_GT(v, 0.5f);
  }
}

TEST_F(AsyncFilterTest, CleanBufferMostlyAccepted) {
  AsyncFilter filter;
  auto updates = MixedBuffer(20, 0);
  AggregationResult result = filter.Process(Context(), updates);
  std::size_t rejected = 0;
  for (auto v : result.verdicts) {
    rejected += (v == Verdict::kRejected) ? 1 : 0;
  }
  // 3-means still labels a top band, but it must stay a minority.
  EXPECT_LE(rejected, updates.size() / 2);
  ASSERT_FALSE(result.aggregated_delta.empty());
}

TEST_F(AsyncFilterTest, IdenticalUpdatesAllAccepted) {
  AsyncFilter filter;
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back(Update(i, 0, {1.0f, 1.0f, 1.0f, 1.0f}));
  }
  AggregationResult result = filter.Process(Context(), updates);
  for (auto v : result.verdicts) {
    EXPECT_EQ(v, Verdict::kAccepted);
  }
}

TEST_F(AsyncFilterTest, TinyBufferAcceptsAll) {
  AsyncFilter filter;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f, 0.0f, 0.0f, 0.0f}));
  AggregationResult result = filter.Process(Context(), updates);
  EXPECT_EQ(result.verdicts[0], Verdict::kAccepted);
}

TEST_F(AsyncFilterTest, DeferPolicyRoutesMidBandToDeferred) {
  AsyncFilterOptions options;
  options.mid_band = MidBandPolicy::kDefer;
  AsyncFilter filter(options);
  auto updates = MixedBuffer(14, 3);
  // Add a mid-band-ish cluster between honest and attacker.
  for (int i = 0; i < 3; ++i) {
    updates.push_back(Update(100 + i, 0, {3.5f, 3.5f, 3.5f, 3.5f}));
  }
  AggregationResult result = filter.Process(Context(), updates);
  std::size_t deferred = 0;
  for (auto v : result.verdicts) {
    deferred += (v == Verdict::kDeferred) ? 1 : 0;
  }
  EXPECT_EQ(result.deferred.size(), deferred);
  EXPECT_GT(deferred, 0u);
}

TEST_F(AsyncFilterTest, DeferredUpdatesEventuallyRejected) {
  AsyncFilterOptions options;
  options.mid_band = MidBandPolicy::kDefer;
  options.max_deferrals = 1;
  AsyncFilter filter(options);
  auto updates = MixedBuffer(14, 3);
  for (int i = 0; i < 3; ++i) {
    updates.push_back(Update(100 + i, 0, {3.5f, 3.5f, 3.5f, 3.5f}));
  }
  AggregationResult first = filter.Process(Context(0), updates);
  ASSERT_FALSE(first.deferred.empty());
  // Feed the same mid-band updates back: with max_deferrals = 1 they must
  // not be deferred a second time.
  auto again = updates;
  AggregationResult second = filter.Process(Context(1), again);
  for (const auto& d : second.deferred) {
    for (const auto& f : first.deferred) {
      EXPECT_FALSE(d.client_id == f.client_id &&
                   d.base_round == f.base_round)
          << "update deferred beyond max_deferrals";
    }
  }
}

TEST_F(AsyncFilterTest, RejectPolicyDropsMidBand) {
  AsyncFilterOptions options;
  options.mid_band = MidBandPolicy::kReject;
  AsyncFilter filter(options);
  auto updates = MixedBuffer(14, 3);
  for (int i = 0; i < 3; ++i) {
    updates.push_back(Update(100 + i, 0, {3.5f, 3.5f, 3.5f, 3.5f}));
  }
  AggregationResult result = filter.Process(Context(), updates);
  EXPECT_TRUE(result.deferred.empty());
}

TEST_F(AsyncFilterTest, TwoMeansVariantHasNoMidBand) {
  AsyncFilterOptions options;
  options.num_clusters = 2;
  AsyncFilter filter(options);
  auto updates = MixedBuffer(16, 4);
  AggregationResult result = filter.Process(Context(), updates);
  for (auto v : result.verdicts) {
    EXPECT_NE(v, Verdict::kDeferred);
  }
  EXPECT_EQ(filter.Name(), "AsyncFilter-2means");
}

TEST_F(AsyncFilterTest, NeverRejectsEverything) {
  AsyncFilter filter;
  // Two extreme blobs: whatever the clustering does, something is accepted.
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 5; ++i) {
    updates.push_back(Update(i, 0, {100.0f, 0.0f, 0.0f, 0.0f}));
    updates.push_back(Update(10 + i, 1, {-100.0f, 0.0f, 0.0f, 0.0f}));
  }
  AggregationResult result = filter.Process(Context(), updates);
  bool any_accepted = false;
  for (auto v : result.verdicts) {
    any_accepted |= (v == Verdict::kAccepted);
  }
  EXPECT_TRUE(any_accepted);
  EXPECT_FALSE(result.aggregated_delta.empty());
}

TEST_F(AsyncFilterTest, ResetClearsCrossRoundState) {
  AsyncFilter filter;
  auto updates = MixedBuffer(10, 2);
  filter.Process(Context(0), updates);
  EXPECT_FALSE(filter.bank().Groups().empty());
  filter.Reset();
  EXPECT_TRUE(filter.bank().Groups().empty());
}

TEST_F(AsyncFilterTest, StatePersistsAcrossRoundsWithoutReset) {
  AsyncFilter filter;
  auto updates = MixedBuffer(10, 2);
  filter.Process(Context(0), updates);
  std::size_t count_round0 = filter.bank().ObservationCount(0);
  filter.Process(Context(1), updates);
  EXPECT_GT(filter.bank().ObservationCount(0), count_round0);
}

TEST_F(AsyncFilterTest, MissingRngThrows) {
  AsyncFilter filter;
  auto updates = MixedBuffer(6, 0);
  FilterContext ctx = Context();
  ctx.rng = nullptr;
  EXPECT_THROW(filter.Process(ctx, updates), util::CheckError);
}

TEST_F(AsyncFilterTest, InvalidClusterCountThrows) {
  AsyncFilterOptions options;
  options.num_clusters = 1;
  EXPECT_THROW(AsyncFilter{options}, util::CheckError);
  options.num_clusters = 4;
  EXPECT_THROW(AsyncFilter{options}, util::CheckError);
}

TEST_F(AsyncFilterTest, WeightedAggregateUsesSampleCounts) {
  AsyncFilter filter;
  std::vector<fl::ModelUpdate> updates;
  // Two identical-staleness updates, very different weights; no attackers.
  updates.push_back(Update(0, 0, {0.0f, 0.0f, 0.0f, 0.0f}, false, 90));
  updates.push_back(Update(1, 0, {1.0f, 1.0f, 1.0f, 1.0f}, false, 10));
  AggregationResult result = filter.Process(Context(), updates);
  ASSERT_FALSE(result.aggregated_delta.empty());
  EXPECT_NEAR(result.aggregated_delta[0], 0.1f, 0.02f);
}

}  // namespace
}  // namespace core

#include "core/staleness_groups.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace core {
namespace {

fl::ModelUpdate Update(int client, std::size_t staleness,
                       std::vector<float> delta) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.staleness = staleness;
  u.delta = std::move(delta);
  return u;
}

TEST(GroupByStalenessTest, GroupsIndicesByTau) {
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f}));
  updates.push_back(Update(1, 2, {1.0f}));
  updates.push_back(Update(2, 0, {1.0f}));
  updates.push_back(Update(3, 5, {1.0f}));
  auto groups = GroupByStaleness(updates);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{1}));
  EXPECT_EQ(groups[5], (std::vector<std::size_t>{3}));
}

TEST(GroupByStalenessTest, EmptyInputGivesNoGroups) {
  EXPECT_TRUE(GroupByStaleness({}).empty());
}

TEST(MovingAverageBankTest, AbsorbCreatesGroup) {
  MovingAverageBank bank;
  EXPECT_FALSE(bank.HasGroup(3));
  std::vector<float> v{1.0f, 2.0f};
  bank.Absorb(3, v);
  EXPECT_TRUE(bank.HasGroup(3));
  EXPECT_EQ(bank.ObservationCount(3), 1u);
  EXPECT_FLOAT_EQ(bank.Estimate(3)[0], 1.0f);
}

TEST(MovingAverageBankTest, GroupsAreIndependent) {
  MovingAverageBank bank;
  std::vector<float> a{0.0f};
  std::vector<float> b{10.0f};
  bank.Absorb(0, a);
  bank.Absorb(1, b);
  bank.Absorb(1, b);
  EXPECT_FLOAT_EQ(bank.Estimate(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(bank.Estimate(1)[0], 10.0f);
  EXPECT_EQ(bank.ObservationCount(0), 1u);
  EXPECT_EQ(bank.ObservationCount(1), 2u);
}

TEST(MovingAverageBankTest, EstimateTracksRunningMean) {
  MovingAverageBank bank;
  for (float x : {2.0f, 4.0f, 6.0f}) {
    std::vector<float> v{x};
    bank.Absorb(7, v);
  }
  EXPECT_FLOAT_EQ(bank.Estimate(7)[0], 4.0f);
}

TEST(MovingAverageBankTest, GroupsListedAscending) {
  MovingAverageBank bank;
  std::vector<float> v{1.0f};
  bank.Absorb(5, v);
  bank.Absorb(1, v);
  bank.Absorb(3, v);
  EXPECT_EQ(bank.Groups(), (std::vector<std::size_t>{1, 3, 5}));
}

TEST(MovingAverageBankTest, EstimateOfMissingGroupThrows) {
  MovingAverageBank bank;
  EXPECT_THROW(bank.Estimate(0), util::CheckError);
}

TEST(MovingAverageBankTest, ResetClearsState) {
  MovingAverageBank bank;
  std::vector<float> v{1.0f};
  bank.Absorb(0, v);
  bank.Reset();
  EXPECT_FALSE(bank.HasGroup(0));
  EXPECT_TRUE(bank.Groups().empty());
}

TEST(MovingAverageBankTest, PersistsAcrossRoundsLikeEquationFive) {
  // The bank is the server-resident estimator: observations from "round 1"
  // keep influencing the estimate in "round 2" with weight t/(t+1).
  MovingAverageBank bank;
  std::vector<float> early{0.0f};
  bank.Absorb(2, early);
  bank.Absorb(2, early);
  std::vector<float> late{9.0f};
  bank.Absorb(2, late);
  EXPECT_FLOAT_EQ(bank.Estimate(2)[0], 3.0f);  // (0+0+9)/3
}

}  // namespace
}  // namespace core

#include "core/suspicious_score.h"

#include <gtest/gtest.h>

#include <random>

#include "util/rng.h"

namespace core {
namespace {

fl::ModelUpdate Update(int client, std::size_t staleness,
                       std::vector<float> delta, bool malicious = false) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.staleness = staleness;
  u.delta = std::move(delta);
  u.is_malicious_truth = malicious;
  return u;
}

TEST(SuspiciousScoreTest, OutlierGetsHighestScore) {
  MovingAverageBank bank;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f, 1.0f}));
  updates.push_back(Update(1, 0, {1.1f, 0.9f}));
  updates.push_back(Update(2, 0, {0.9f, 1.1f}));
  updates.push_back(Update(3, 0, {-5.0f, -5.0f}));  // outlier
  for (const auto& u : updates) {
    bank.Absorb(u.staleness, u.delta);
  }
  auto scores = ComputeSuspiciousScores(updates, bank);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(scores[i], scores[3]);
  }
}

TEST(SuspiciousScoreTest, GroupRmsIsScaleInvariantAcrossGroupSizes) {
  // Two groups with identical relative structure but different sizes must
  // produce comparable score ranges (the flaw of sum-normalisation).
  MovingAverageBank bank;
  std::vector<fl::ModelUpdate> updates;
  for (int i = 0; i < 10; ++i) {
    updates.push_back(Update(i, 0, {static_cast<float>(i % 2)}));
  }
  for (int i = 0; i < 3; ++i) {
    updates.push_back(Update(100 + i, 1, {static_cast<float>(i % 2)}));
  }
  for (const auto& u : updates) {
    bank.Absorb(u.staleness, u.delta);
  }
  auto scores = ComputeSuspiciousScores(updates, bank);
  double max_g0 = 0.0, max_g1 = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    max_g0 = std::max(max_g0, scores[i]);
  }
  for (std::size_t i = 10; i < 13; ++i) {
    max_g1 = std::max(max_g1, scores[i]);
  }
  EXPECT_NEAR(max_g0, max_g1, 0.5);
}

TEST(SuspiciousScoreTest, Eq7CrossGroupScoresBoundedByOne) {
  MovingAverageBank bank;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f}));
  updates.push_back(Update(1, 1, {5.0f}));
  updates.push_back(Update(2, 1, {4.0f}));
  for (const auto& u : updates) {
    bank.Absorb(u.staleness, u.delta);
  }
  auto scores = ComputeSuspiciousScores(updates, bank,
                                        ScoreNormalization::kEq7CrossGroup);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
}

TEST(SuspiciousScoreTest, BufferNormScoresFormUnitVector) {
  MovingAverageBank bank;
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f}));
  updates.push_back(Update(1, 0, {3.0f}));
  updates.push_back(Update(2, 0, {-2.0f}));
  for (const auto& u : updates) {
    bank.Absorb(u.staleness, u.delta);
  }
  auto scores = ComputeSuspiciousScores(updates, bank,
                                        ScoreNormalization::kBufferNorm);
  double sum_sq = 0.0;
  for (double s : scores) {
    sum_sq += s * s;
  }
  EXPECT_NEAR(sum_sq, 1.0, 1e-9);
}

TEST(SuspiciousScoreTest, SingletonGroupNotAutoFlagged) {
  // A lone straggler whose update resembles its (historic) group estimate
  // must not be scored as the worst element.
  MovingAverageBank bank;
  std::vector<float> historic{1.0f, 1.0f};
  bank.Absorb(4, historic);  // from an earlier round
  std::vector<fl::ModelUpdate> updates;
  updates.push_back(Update(0, 0, {1.0f, 1.0f}));
  updates.push_back(Update(1, 0, {1.2f, 0.8f}));
  updates.push_back(Update(2, 0, {8.0f, 8.0f}, true));  // actual outlier
  updates.push_back(Update(3, 4, {1.05f, 1.0f}));       // honest straggler
  for (const auto& u : updates) {
    bank.Absorb(u.staleness, u.delta);
  }
  auto scores = ComputeSuspiciousScores(updates, bank);
  EXPECT_LT(scores[3], scores[2]);
}

TEST(ScoresDegenerateTest, DetectsFlatAndTinySets) {
  EXPECT_TRUE(ScoresDegenerate({}));
  EXPECT_TRUE(ScoresDegenerate({0.5}));
  EXPECT_TRUE(ScoresDegenerate({0.5, 0.5, 0.5}));
  EXPECT_FALSE(ScoresDegenerate({0.1, 0.9}));
}

// ---------------------------------------------------------------------------
// Theorem 1 as an empirical property: under a GD-style reversal attack with
// non-IID clients, E[score_benign] ≤ E[score_malicious].
// ---------------------------------------------------------------------------

struct TheoremCase {
  double heterogeneity;  // benign update dispersion
  std::size_t staleness_levels;
  std::uint64_t seed;
};

class TheoremOneTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t, int>> {};

TEST_P(TheoremOneTest, BenignExpectedScoreIsLower) {
  const double heterogeneity = std::get<0>(GetParam());
  const std::size_t staleness_levels = std::get<1>(GetParam());
  const std::uint64_t seed = static_cast<std::uint64_t>(std::get<2>(GetParam()));
  util::RngFactory rngs(seed);
  auto rng = rngs.Stream("theorem1");

  const std::size_t dim = 32;
  const std::size_t rounds = 12;
  const std::size_t per_round = 20;
  const std::size_t malicious = 4;

  MovingAverageBank bank;
  double benign_total = 0.0, malicious_total = 0.0;
  std::size_t benign_count = 0, malicious_count = 0;

  // Per-staleness-group "true" update directions that drift per round,
  // mimicking the optimisation trajectory.
  std::normal_distribution<float> unit(0.0f, 1.0f);
  std::vector<std::vector<float>> group_mean(staleness_levels,
                                             std::vector<float>(dim));
  for (auto& g : group_mean) {
    for (float& x : g) {
      x = unit(rng);
    }
  }

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<fl::ModelUpdate> updates;
    std::uniform_int_distribution<std::size_t> pick_tau(0, staleness_levels - 1);
    for (std::size_t i = 0; i < per_round; ++i) {
      const std::size_t tau = pick_tau(rng);
      std::vector<float> honest(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        honest[d] = group_mean[tau][d] +
                    static_cast<float>(heterogeneity) * unit(rng);
      }
      const bool is_malicious = i < malicious;
      fl::ModelUpdate u;
      u.client_id = static_cast<int>(i);
      u.staleness = tau;
      u.is_malicious_truth = is_malicious;
      if (is_malicious) {
        std::vector<float> flipped(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          flipped[d] = -honest[d];  // Theorem 1's -δ attack
        }
        u.delta = std::move(flipped);
      } else {
        u.delta = honest;
      }
      updates.push_back(std::move(u));
    }
    for (const auto& u : updates) {
      bank.Absorb(u.staleness, u.delta);
    }
    auto scores = ComputeSuspiciousScores(updates, bank);
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (updates[i].is_malicious_truth) {
        malicious_total += scores[i];
        ++malicious_count;
      } else {
        benign_total += scores[i];
        ++benign_count;
      }
    }
    // Drift the trajectory slightly between rounds.
    for (auto& g : group_mean) {
      for (float& x : g) {
        x = 0.9f * x + 0.1f * unit(rng);
      }
    }
  }
  EXPECT_LE(benign_total / benign_count, malicious_total / malicious_count)
      << "Theorem 1 violated at heterogeneity " << heterogeneity;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoremOneTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0),   // heterogeneity
                       ::testing::Values(1u, 3u, 6u),      // staleness levels
                       ::testing::Values(1, 2, 3)));       // seeds

}  // namespace
}  // namespace core

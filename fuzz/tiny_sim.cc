#include "tiny_sim.h"

#include <utility>
#include <vector>

#include "attacks/registry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/experiment.h"
#include "nn/models.h"
#include "util/rng.h"

namespace fuzz_harness {

std::unique_ptr<TinySimBundle> BuildTinySim() {
  auto bundle = std::make_unique<TinySimBundle>();
  data::SyntheticGenerator gen(
      data::MakeProfileSpec(data::Profile::kMnist, 8), kTinySimSeed);
  bundle->train = gen.Generate(160, "train");
  bundle->test = gen.Generate(40, "test");
  bundle->train.sample_shape = {bundle->train.sample_dim()};
  bundle->test.sample_shape = {bundle->test.sample_dim()};
  const nn::ModelSpec model = nn::MakeMlp(bundle->train.sample_dim(), {6});

  constexpr std::size_t kClients = 4;
  auto rng = util::RngFactory(kTinySimSeed).Stream("partition");
  auto partition =
      data::DirichletPartition(bundle->train, kClients, 30, 0.5, rng);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<fl::Client>(
        static_cast<int>(c), &bundle->train, std::move(partition[c]), model,
        kTinySimSeed));
  }

  fl::SimulationConfig config;
  config.buffer_goal = 3;
  config.staleness_limit = 6;
  config.rounds = kTinySimRounds;
  config.seed = kTinySimSeed;
  config.local.epochs = 1;
  config.local.batch_size = 10;
  config.local.optimizer = {nn::OptimizerKind::kSgd, 0.05, 0.9, 0.0};

  attacks::AttackParams params;
  params.total_clients = kClients;
  params.malicious_clients = 1;

  fl::ExperimentSpec spec;
  spec.sim = config;
  spec.model = model;
  spec.clients = std::move(clients);
  spec.pool = &bundle->pool;
  spec.attack = attacks::MakeAttack(attacks::AttackKind::kNone, params);
  spec.defense = fl::MakeDefense(fl::DefenseKind::kFedBuff);
  spec.test_set = &bundle->test;
  bundle->sim = fl::BuildSimulation(std::move(spec));
  return bundle;
}

}  // namespace fuzz_harness

// A minimal but complete fl::Simulation for the AFCK checkpoint fuzz
// target and the corpus generator: synthetic data, a tiny MLP, a handful
// of clients. Both sides MUST build the identical shape (same seed, same
// spec) so a checkpoint written by make_corpus restores deep into
// Simulation::LoadState inside the fuzz harness instead of failing the
// spec-identity check at the first field.
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "fl/simulation.h"
#include "util/thread_pool.h"

namespace fuzz_harness {

// Owns everything the simulation borrows (datasets, thread pool).
struct TinySimBundle {
  data::Dataset train;
  data::Dataset test;
  util::ThreadPool pool{1};
  std::unique_ptr<fl::Simulation> sim;
};

inline constexpr std::uint64_t kTinySimSeed = 11;
inline constexpr std::size_t kTinySimRounds = 3;

// Builds the canonical tiny simulation (4 clients, 8×8 synthetic MNIST
// profile, one hidden layer of 6 units, buffer of 3, AsyncFilter off —
// FedBuff/no-defense keeps construction cheap and the checkpoint payload
// small while still exercising every state section).
std::unique_ptr<TinySimBundle> BuildTinySim();

}  // namespace fuzz_harness

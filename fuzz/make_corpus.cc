// Generates the seed corpora for the five fuzz targets.
//
//   make_corpus [output-dir]     (default: fuzz-corpus)
//
// Writes one subdirectory per target — params/ afcz/ afck/ frame/
// server_session/ — each seeded with well-formed outputs of the real
// encoders, so the mutators start from inputs that already pass the outer
// framing checks and spend their budget on the deep parsing paths. The
// AFCK seed is a genuine checkpoint of the same tiny simulation the
// fuzz_afck harness restores into (shape must match: see fuzz/tiny_sim.h).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "fl/checkpoint.h"
#include "net/frame.h"
#include "nn/serialize.h"
#include "tiny_sim.h"

namespace {

namespace fs = std::filesystem;

void WriteSeed(const fs::path& dir, const std::string& name,
               std::span<const std::uint8_t> bytes) {
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "make_corpus: failed to write %s\n",
                 path.c_str());
    std::exit(1);
  }
}

std::vector<float> Ramp(std::size_t n) {
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 0.25f * static_cast<float>(i) - 2.0f;
  }
  return values;
}

void Append(std::vector<std::uint8_t>& out,
            const std::vector<std::uint8_t>& bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void MakeParamsSeeds(const fs::path& dir) {
  std::vector<std::uint8_t> empty;
  nn::AppendFlatParams(empty, std::vector<float>{});
  WriteSeed(dir, "empty", empty);

  std::vector<std::uint8_t> small;
  nn::AppendFlatParams(small, Ramp(9));
  WriteSeed(dir, "small", small);

  std::vector<std::uint8_t> two_blocks;
  nn::AppendFlatParams(two_blocks, Ramp(4));
  nn::AppendFlatParams(two_blocks, Ramp(33));
  WriteSeed(dir, "two_blocks", two_blocks);
}

void MakeAfczSeeds(const fs::path& dir) {
  const std::vector<float> values = Ramp(32);
  const char* codecs[] = {"identity", "fp16", "int8", "topk-delta"};
  // Mode 0: framed containers through ParseAnyParams.
  for (const char* name : codecs) {
    std::vector<std::uint8_t> bytes{0x00};
    compress::AppendEncodedParams(bytes, compress::Get(name), values);
    WriteSeed(dir, std::string("container_") + name, bytes);
  }
  // Mode 0 also accepts raw AFPM (legacy peers).
  std::vector<std::uint8_t> legacy{0x00};
  nn::AppendFlatParams(legacy, values);
  WriteSeed(dir, "container_legacy_afpm", legacy);
  // Modes 1-4: (count, body) fed straight to each codec's DecodeBody.
  for (std::uint8_t mode = 1; mode <= 4; ++mode) {
    std::vector<std::uint8_t> bytes{mode};
    AppendU64(bytes, values.size());
    std::vector<std::uint8_t> body;
    compress::Get(codecs[mode - 1]).EncodeBody(values, body);
    Append(bytes, body);
    WriteSeed(dir, std::string("body_") + codecs[mode - 1], bytes);
  }
}

void MakeAfckSeeds(const fs::path& dir) {
  auto bundle = fuzz_harness::BuildTinySim();
  // A fresh checkpoint and a mid-run one: the latter carries a non-empty
  // event queue / deferred buffer, so mutations reach those sections too.
  fl::SaveCheckpoint((dir / "fresh").string(), *bundle->sim);
  bundle->sim->Run();
  fl::SaveCheckpoint((dir / "finished").string(), *bundle->sim);
}

void MakeFrameSeeds(const fs::path& dir) {
  const std::vector<float> params = Ramp(8);

  WriteSeed(dir, "hello", net::EncodeFrame(net::EncodeAck({1})));
  WriteSeed(dir, "hello_wide",
            net::EncodeFrame(net::EncodeAck({0xFFFFFFFFull})));
  WriteSeed(dir, "codec_offer",
            net::EncodeFrame(net::EncodeCodecOffer({{"fp16", "int8"}})));
  WriteSeed(dir, "codec_select",
            net::EncodeFrame(net::EncodeCodecSelect({"fp16"})));
  WriteSeed(dir, "trace_offer",
            net::EncodeFrame(net::EncodeTraceOffer({})));
  WriteSeed(dir, "trace_select",
            net::EncodeFrame(net::EncodeTraceSelect({true})));
  WriteSeed(dir, "shutdown", net::EncodeFrame(net::MakeShutdownFrame()));
  WriteSeed(dir, "shm_offer",
            net::EncodeFrame(net::EncodeShmOffer(
                {"/afnt-1234-40000-7-0", std::uint64_t{1} << 22})));
  WriteSeed(dir, "shm_select",
            net::EncodeFrame(net::EncodeShmSelect({true})));

  // A raw AFSH segment header (the fuzz_frame harness also sniffs input as
  // one): magic + version + power-of-two ring size.
  std::vector<std::uint8_t> afsh;
  for (std::uint8_t b : {0x41, 0x46, 0x53, 0x48}) afsh.push_back(b);
  for (std::uint8_t b : {0x01, 0x00, 0x00, 0x00}) afsh.push_back(b);
  AppendU64(afsh, std::uint64_t{1} << 22);
  WriteSeed(dir, "afsh_header", afsh);

  net::ModelBroadcastMsg broadcast;
  broadcast.round = 3;
  broadcast.job_index = 7;
  broadcast.params = params;
  broadcast.trace_id = 0x1122334455667788ull;
  broadcast.parent_span_id = 0x99aabbccddeeff00ull;
  WriteSeed(dir, "broadcast_traced",
            net::EncodeFrame(net::EncodeModelBroadcast(broadcast)));

  net::ClientUpdateMsg update;
  update.client_id = 3;
  update.job_index = 2;
  update.base_round = 1;
  update.num_samples = 40;
  update.delta = params;
  WriteSeed(dir, "update_raw",
            net::EncodeFrame(net::EncodeClientUpdate(update)));
  WriteSeed(dir, "update_fp16",
            net::EncodeFrame(net::EncodeClientUpdate(
                update, &compress::Get("fp16"))));

  // Two frames back to back (the stream decoder loops), and a bare prefix
  // (DecodeFrame must report "incomplete", not throw).
  std::vector<std::uint8_t> pair = net::EncodeFrame(net::EncodeAck({5}));
  Append(pair, net::EncodeFrame(net::EncodeClientUpdate(update)));
  WriteSeed(dir, "two_frames", pair);
  const std::vector<std::uint8_t> whole =
      net::EncodeFrame(net::EncodeModelBroadcast(broadcast));
  WriteSeed(dir, "partial",
            std::span<const std::uint8_t>(whole).subspan(0, 20));
}

void MakeServerSessionSeeds(const fs::path& dir) {
  // A full well-formed session: hello, both selects, one update.
  net::ClientUpdateMsg update;
  update.client_id = 5;
  update.job_index = 1;
  update.base_round = 0;
  update.num_samples = 10;
  update.delta = Ramp(6);
  std::vector<std::uint8_t> good = net::EncodeFrame(net::EncodeAck({5}));
  Append(good, net::EncodeFrame(net::EncodeCodecSelect({"identity"})));
  Append(good, net::EncodeFrame(net::EncodeTraceSelect({false})));
  Append(good, net::EncodeFrame(net::EncodeClientUpdate(update)));
  WriteSeed(dir, "full_session", good);

  // Hellos with hostile id values (the truncating-cast surface).
  WriteSeed(dir, "hello_neg",
            net::EncodeFrame(net::EncodeAck({0xFFFFFFFFull})));
  WriteSeed(dir, "hello_wrap",
            net::EncodeFrame(net::EncodeAck({0x100000001ull})));

  // An update before any handshake (must evict only the sender).
  WriteSeed(dir, "update_first",
            net::EncodeFrame(net::EncodeClientUpdate(update)));

  // A header declaring a huge payload that never arrives.
  std::vector<std::uint8_t> stall;
  for (std::uint8_t b : {0x41, 0x46, 0x4e, 0x54}) stall.push_back(b);
  stall.push_back(1);
  stall.push_back(0);  // version 1
  stall.push_back(3);
  stall.push_back(0);  // type Ack
  AppendU64(stall, (1ull << 30) - 1);
  WriteSeed(dir, "stalled_header", stall);
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "fuzz-corpus";
  const struct {
    const char* name;
    void (*make)(const fs::path&);
  } targets[] = {
      {"params", MakeParamsSeeds},
      {"afcz", MakeAfczSeeds},
      {"afck", MakeAfckSeeds},
      {"frame", MakeFrameSeeds},
      {"server_session", MakeServerSessionSeeds},
  };
  for (const auto& target : targets) {
    const fs::path dir = root / target.name;
    fs::create_directories(dir);
    target.make(dir);
  }
  std::printf("make_corpus: wrote seeds under %s\n", root.c_str());
  return 0;
}

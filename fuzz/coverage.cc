// SanitizerCoverage hooks + crash-time input dumping.
//
// This translation unit must never itself be compiled with
// -fsanitize-coverage (the hooks would recurse into themselves); the
// instrumentation flag is scoped to the src/ directory in the build, so
// fuzz/ stays clean by construction.
//
// Two instrumentation flavours feed the same map:
//   * GCC's -fsanitize-coverage=trace-pc calls __sanitizer_cov_trace_pc()
//     on every edge; the PC is mixed and folded with the previous location
//     (AFL's prev_loc >> 1 idiom) so A→B and B→A are distinct edges.
//   * Clang's trace-pc-guard flavour numbers its guards in
//     __sanitizer_cov_trace_pc_guard_init and indexes the map directly.
#include "coverage.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>

namespace fuzz::internal {

std::uint8_t g_map[kMapSize];
bool g_instrumented = false;
const std::uint8_t* g_current_data = nullptr;
std::size_t g_current_size = 0;
char g_crash_dump_path[4096] = "crash-current";

std::uint8_t BucketizeHitCount(std::uint8_t count) {
  // 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+ — AFL's count classes.
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count == 3) return 4;
  if (count <= 7) return 8;
  if (count <= 15) return 16;
  if (count <= 31) return 32;
  if (count <= 127) return 64;
  return 128;
}

namespace {

// Async-signal-safe dump of the in-flight input. Uses raw syscalls only.
void DumpCurrentInput() {
  if (g_current_data == nullptr) {
    return;
  }
  const int fd = ::open(g_crash_dump_path, O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    return;
  }
  std::size_t off = 0;
  while (off < g_current_size) {
    const ssize_t n = ::write(fd, g_current_data + off, g_current_size - off);
    if (n <= 0) {
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  static const char kMsg[] = "fuzz: dumped in-flight input to ";
  ::write(2, kMsg, sizeof(kMsg) - 1);
  ::write(2, g_crash_dump_path, ::strlen(g_crash_dump_path));
  ::write(2, "\n", 1);
}

void FatalSignalHandler(int sig) {
  DumpCurrentInput();
  // Restore default disposition and re-raise so the exit status (and any
  // core dump / sanitizer report) is what the wrapper expects.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void SanitizerDeathCallback() { DumpCurrentInput(); }

}  // namespace

}  // namespace fuzz::internal

// Provided by compiler-rt when a sanitizer runtime is linked; weak so the
// plain build links without one.
extern "C" __attribute__((weak)) void __sanitizer_set_death_callback(
    void (*callback)());

namespace fuzz::internal {

void InstallCrashHandlers() {
  static bool installed = false;
  if (installed) {
    return;
  }
  installed = true;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::signal(sig, &FatalSignalHandler);
  }
  // ASan's default on Linux is _exit(1) after the report — no SIGABRT — so
  // the signal handlers alone would lose the input. The death callback
  // covers that path.
  if (&__sanitizer_set_death_callback != nullptr) {
    __sanitizer_set_death_callback(&SanitizerDeathCallback);
  }
}

}  // namespace fuzz::internal

// --- Instrumentation hooks ---------------------------------------------

extern "C" {

// GCC (and clang) -fsanitize-coverage=trace-pc.
void __sanitizer_cov_trace_pc() {
  static thread_local std::uintptr_t prev = 0;
  std::uint64_t h =
      reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  // splitmix64 finalizer: spreads densely packed return addresses across
  // the map.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  fuzz::internal::g_map[(h ^ prev) & (fuzz::kMapSize - 1)]++;
  prev = h >> 1;
  fuzz::internal::g_instrumented = true;
}

// Clang -fsanitize-coverage=trace-pc-guard.
void __sanitizer_cov_trace_pc_guard_init(std::uint32_t* start,
                                         std::uint32_t* stop) {
  static std::uint32_t next_id = 0;
  for (std::uint32_t* guard = start; guard != stop; ++guard) {
    if (*guard == 0) {
      *guard = ++next_id;
    }
  }
  fuzz::internal::g_instrumented = true;
}

void __sanitizer_cov_trace_pc_guard(std::uint32_t* guard) {
  fuzz::internal::g_map[*guard & (fuzz::kMapSize - 1)]++;
}

}  // extern "C"

// Fuzz target: the AFCK checkpoint container and the full
// Simulation::LoadState payload walk (fl/checkpoint, util::serial).
//
// A tiny but real Simulation is built once and restored from the fuzzed
// bytes on every execution. The seed corpus (fuzz/make_corpus) writes a
// valid checkpoint of the *same* simulation shape, so mutations reach deep
// into the per-section state parsing (model pool, event queue, RNG
// streams, deferred buffer) instead of dying at the spec-identity check.
// A rejected payload may leave the simulation with partially loaded state;
// that is fine for fuzzing — every LoadState re-reads all sections from
// the top and the simulation is never Run() here.
#include <cstdint>
#include <memory>
#include <span>

#include "fl/checkpoint.h"
#include "harness_util.h"
#include "tiny_sim.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static std::unique_ptr<fuzz_harness::TinySimBundle> bundle =
      fuzz_harness::BuildTinySim();
  const std::span<const std::uint8_t> bytes(data, size);
  const bool restored = fuzz_harness::GuardParse([&] {
    fl::RestoreCheckpointBytes(bytes, *bundle->sim);
  });
  fuzz_harness::Observe(restored ? 0xAFCC1 : 0xAFCC0);
  return 0;
}

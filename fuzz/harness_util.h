// Shared helpers for the LLVMFuzzerTestOneInput harnesses.
//
// The harnesses build in two modes:
//   * engine mode (AF_FUZZ_ENGINE defined): linked against fuzz::Engine,
//     whose Observe()/ObserveString() feed the fallback coverage map;
//   * real-libFuzzer mode (flag absent): Observe is a no-op and
//     util::CheckError — the parsers' documented rejection contract — must
//     be swallowed here, since libFuzzer treats any escaping exception as
//     a crash.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/check.h"

#if defined(AF_FUZZ_ENGINE)
#include "engine.h"
#endif

namespace fuzz_harness {

inline void Observe(std::uint64_t value) {
#if defined(AF_FUZZ_ENGINE)
  fuzz::Observe(value);
#else
  (void)value;
#endif
}

inline void ObserveString(std::string_view text) {
#if defined(AF_FUZZ_ENGINE)
  fuzz::ObserveString(text);
#else
  (void)text;
#endif
}

// Runs `fn`; a util::CheckError is the expected malformed-input rejection
// (observed as a feature, then swallowed). Everything else propagates and
// is treated as a crash by whichever runtime is driving. Returns true when
// `fn` completed without rejection.
template <typename Fn>
bool GuardParse(Fn&& fn) {
  try {
    fn();
    return true;
  } catch (const util::CheckError& e) {
    ObserveString(e.what());
    return false;
  }
}

}  // namespace fuzz_harness

// Coverage-map internals shared between the SanitizerCoverage hooks
// (coverage.cc) and the engine (engine.cc). Not part of the harness API —
// harnesses use fuzz::Observe()/ObserveString() from engine.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "engine.h"

namespace fuzz::internal {

// 8-bit hit counters, one per (hashed) edge or observed feature.
extern std::uint8_t g_map[kMapSize];
// Flipped the first time a compiler-instrumentation hook fires.
extern bool g_instrumented;

// Current input, exported so the fatal-signal / sanitizer-death handlers
// can dump the bytes that were in flight when the process died.
extern const std::uint8_t* g_current_data;
extern std::size_t g_current_size;
// Where the handlers write that dump (set by the engine; default
// "crash-current" in the working directory).
extern char g_crash_dump_path[4096];

// Installs the SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT handlers and, when the
// process runs under a sanitizer runtime that offers it, the sanitizer
// death callback. Idempotent.
void InstallCrashHandlers();

// AFL's count_class_lookup: collapses a raw hit count to one of 8 coarse
// buckets so loop-count jitter does not read as novelty.
std::uint8_t BucketizeHitCount(std::uint8_t count);

}  // namespace fuzz::internal

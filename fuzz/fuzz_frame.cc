// Fuzz target: the 16-byte frame protocol (net/frame) — incremental
// DecodeFrame plus every typed payload decoder, including the embedded
// AFPM/AFCZ parameter blocks, the trailing AFTC trace block, and the AFSH
// shared-memory header sniffed from raw input.
//
// Invariants checked beyond memory safety: re-encoding a decoded frame
// (header + raw payload) reproduces the consumed bytes exactly, and the
// zero-copy DecodeFrameView agrees with the owning DecodeFrame byte for
// byte on every input.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "harness_util.h"
#include "net/frame.h"
#include "net/shm_ring.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  // The AFSH shared-memory header validator sees exactly these bytes when a
  // hostile peer maps a segment; drive it with the raw input.
  fuzz_harness::GuardParse([&] {
    net::ValidateShmHeader(bytes);
    fuzz_harness::Observe(0xF4A0);  // a blob that validates as AFSH
  });

  std::size_t offset = 0;
  fuzz_harness::GuardParse([&] {
    // Stream-decode every complete frame in the buffer, as the server's
    // read loop does.
    while (true) {
      net::Frame frame;
      const std::size_t consumed =
          net::DecodeFrame(bytes.subspan(offset), &frame);

      // The zero-copy path must agree with the owning path exactly: same
      // consumed count, same type, same payload bytes.
      net::FrameView view;
      const std::size_t view_consumed =
          net::DecodeFrameView(bytes.subspan(offset), &view);
      if (view_consumed != consumed) {
        std::abort();  // view/owning decode disagree on framing
      }
      if (consumed == 0) {
        fuzz_harness::Observe(0xF401);  // partial frame → wait for bytes
        break;
      }
      if (view.type != frame.type ||
          view.payload.size() != frame.payload.size() ||
          (!frame.payload.empty() &&
           std::memcmp(view.payload.data(), frame.payload.data(),
                       frame.payload.size()) != 0)) {
        std::abort();  // view payload does not alias the same bytes
      }
      fuzz_harness::Observe(0xF410 + static_cast<std::uint64_t>(frame.type));

      const std::vector<std::uint8_t> reencoded = net::EncodeFrame(frame);
      if (reencoded.size() != consumed ||
          std::memcmp(reencoded.data(), data + offset, consumed) != 0) {
        std::abort();  // frame canonicality broken
      }
      offset += consumed;

      // The typed decoders each validate their own payload framing; any
      // of them rejecting is a feature, not the end of the stream. Decode
      // through the view so the span-based parameter parsers (zero-copy
      // AFPM path) are the ones exercised.
      fuzz_harness::GuardParse([&] {
        switch (view.type) {
          case net::MessageType::kModelBroadcast: {
            const auto msg = net::DecodeModelBroadcast(view);
            fuzz_harness::Observe(0xF420 + (msg.params.size() & 0xFF));
            break;
          }
          case net::MessageType::kClientUpdate: {
            const auto msg = net::DecodeClientUpdate(view);
            fuzz_harness::Observe(0xF430 + (msg.delta.size() & 0xFF));
            fuzz_harness::Observe(msg.trace_id == 0 ? 0xF43E : 0xF43F);
            // A delta view without a keepalive aliases the input buffer —
            // it must sit entirely inside it.
            if (!msg.delta.empty() && !msg.delta.has_keepalive()) {
              const auto* lo =
                  reinterpret_cast<const std::uint8_t*>(msg.delta.data());
              if (lo < data || lo + msg.delta.size() * sizeof(float) >
                                   data + size) {
                std::abort();  // zero-copy view escaped the frame buffer
              }
            }
            break;
          }
          case net::MessageType::kAck:
            net::DecodeAck(view);
            break;
          case net::MessageType::kShutdown:
            break;
          case net::MessageType::kCodecOffer: {
            const auto msg = net::DecodeCodecOffer(view);
            fuzz_harness::Observe(0xF440 + (msg.codecs.size() & 0xFF));
            break;
          }
          case net::MessageType::kCodecSelect:
            net::DecodeCodecSelect(view);
            break;
          case net::MessageType::kTraceOffer:
            net::DecodeTraceOffer(view);
            break;
          case net::MessageType::kTraceSelect:
            net::DecodeTraceSelect(view);
            break;
          case net::MessageType::kShmOffer: {
            const auto msg = net::DecodeShmOffer(view);
            fuzz_harness::Observe(0xF450 + (msg.name.size() & 0xFF));
            break;
          }
          case net::MessageType::kShmSelect: {
            const auto msg = net::DecodeShmSelect(view);
            fuzz_harness::Observe(msg.enabled ? 0xF460 : 0xF461);
            break;
          }
          case net::MessageType::kHello: {
            const auto msg = net::DecodeHello(view);
            fuzz_harness::Observe(0xF470 + (msg.client_ids.size() & 0xFF));
            break;
          }
        }
      });
    }
  });
  return 0;
}

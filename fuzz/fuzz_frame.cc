// Fuzz target: the 16-byte frame protocol (net/frame) — incremental
// DecodeFrame plus every typed payload decoder, including the embedded
// AFPM/AFCZ parameter blocks and the trailing AFTC trace block.
//
// Invariant checked beyond memory safety: re-encoding a decoded frame
// (header + raw payload) reproduces the consumed bytes exactly.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "harness_util.h"
#include "net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  std::size_t offset = 0;
  fuzz_harness::GuardParse([&] {
    // Stream-decode every complete frame in the buffer, as the server's
    // read loop does.
    while (true) {
      net::Frame frame;
      const std::size_t consumed =
          net::DecodeFrame(bytes.subspan(offset), &frame);
      if (consumed == 0) {
        fuzz_harness::Observe(0xF401);  // partial frame → wait for bytes
        break;
      }
      fuzz_harness::Observe(0xF410 + static_cast<std::uint64_t>(frame.type));

      const std::vector<std::uint8_t> reencoded = net::EncodeFrame(frame);
      if (reencoded.size() != consumed ||
          std::memcmp(reencoded.data(), data + offset, consumed) != 0) {
        std::abort();  // frame canonicality broken
      }
      offset += consumed;

      // The typed decoders each validate their own payload framing; any
      // of them rejecting is a feature, not the end of the stream.
      fuzz_harness::GuardParse([&] {
        switch (frame.type) {
          case net::MessageType::kModelBroadcast: {
            const auto msg = net::DecodeModelBroadcast(frame);
            fuzz_harness::Observe(0xF420 + (msg.params.size() & 0xFF));
            break;
          }
          case net::MessageType::kClientUpdate: {
            const auto msg = net::DecodeClientUpdate(frame);
            fuzz_harness::Observe(0xF430 + (msg.delta.size() & 0xFF));
            fuzz_harness::Observe(msg.trace_id == 0 ? 0xF43E : 0xF43F);
            break;
          }
          case net::MessageType::kAck:
            net::DecodeAck(frame);
            break;
          case net::MessageType::kShutdown:
            break;
          case net::MessageType::kCodecOffer: {
            const auto msg = net::DecodeCodecOffer(frame);
            fuzz_harness::Observe(0xF440 + (msg.codecs.size() & 0xFF));
            break;
          }
          case net::MessageType::kCodecSelect:
            net::DecodeCodecSelect(frame);
            break;
          case net::MessageType::kTraceOffer:
            net::DecodeTraceOffer(frame);
            break;
          case net::MessageType::kTraceSelect:
            net::DecodeTraceSelect(frame);
            break;
        }
      });
    }
  });
  return 0;
}

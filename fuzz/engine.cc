#include "engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <span>

#include "coverage.h"
#include "util/check.h"

namespace fuzz {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AF_CHECK(in.good()) << "fuzz: cannot open " << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path,
               std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AF_CHECK(out.good()) << "fuzz: cannot open " << path << " for writing";
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  AF_CHECK(out.good()) << "fuzz: write failed for " << path;
}

// Interesting boundary values, AFL's tables extended with the 64-bit
// counts our containers carry (2^31 / 2^32 / 2^63 neighborhoods are where
// narrowing casts and size multiplications overflow).
constexpr std::uint8_t kInteresting8[] = {0, 1, 16, 32, 64, 100,
                                          127, 128, 255};
constexpr std::uint16_t kInteresting16[] = {0,    1,    128,   255,  256,
                                            512,  1000, 1024,  4096, 32767,
                                            32768, 65535};
constexpr std::uint32_t kInteresting32[] = {
    0,          1,          32768,      65535,      65536,
    100000000,  0x7fffffffu, 0x80000000u, 0xffffffffu};
constexpr std::uint64_t kInteresting64[] = {
    0,
    1,
    255,
    65536,
    0x7fffffffull,
    0x80000000ull,
    0x100000000ull,
    0x7fffffffffffffffull,
    0x8000000000000000ull,
    0xffffffffffffffffull};

}  // namespace

// --- Feature sink -------------------------------------------------------

void Observe(std::uint64_t value) {
  std::uint64_t h = value;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  internal::g_map[h & (kMapSize - 1)]++;
}

void ObserveString(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      continue;  // offsets/sizes vary per input; the check site does not
    }
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  Observe(hash);
}

// --- Dictionary ---------------------------------------------------------

std::vector<std::vector<std::uint8_t>> ParseDictionary(
    std::string_view text) {
  std::vector<std::vector<std::uint8_t>> tokens;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    // Trim whitespace; skip blanks and comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    // AFL++ format: name="value" (the name — with an optional @level — is
    // ignored; only the quoted token matters).
    const std::size_t open = line.find('"');
    AF_CHECK(open != std::string_view::npos && line.back() == '"' &&
             line.size() >= open + 2)
        << "fuzz: malformed dictionary line " << line_no;
    std::string_view value = line.substr(open + 1, line.size() - open - 2);
    std::vector<std::uint8_t> token;
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (value[i] != '\\') {
        token.push_back(static_cast<std::uint8_t>(value[i]));
        continue;
      }
      AF_CHECK_LT(i + 1, value.size())
          << "fuzz: dangling escape on dictionary line " << line_no;
      const char kind = value[++i];
      if (kind == '\\' || kind == '"') {
        token.push_back(static_cast<std::uint8_t>(kind));
      } else if (kind == 'x') {
        AF_CHECK_LT(i + 2, value.size())
            << "fuzz: truncated \\x escape on dictionary line " << line_no;
        const auto nibble = [line_no](char c) -> std::uint8_t {
          if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
          if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
          if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
          AF_CHECK(false) << "fuzz: bad hex digit on dictionary line "
                          << line_no;
          return 0;
        };
        token.push_back(
            static_cast<std::uint8_t>(nibble(value[i + 1]) << 4 |
                                      nibble(value[i + 2])));
        i += 2;
      } else {
        AF_CHECK(false) << "fuzz: unknown escape '\\" << kind
                        << "' on dictionary line " << line_no;
      }
    }
    AF_CHECK(!token.empty())
        << "fuzz: empty dictionary token on line " << line_no;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::vector<std::vector<std::uint8_t>> LoadDictionary(
    const std::string& path) {
  const std::vector<std::uint8_t> bytes = ReadFile(path);
  return ParseDictionary(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

// --- Mutator ------------------------------------------------------------

Mutator::Mutator(std::uint64_t seed,
                 std::vector<std::vector<std::uint8_t>> dictionary)
    : state_(seed ^ 0x6a09e667f3bcc908ULL),
      dictionary_(std::move(dictionary)) {}

void Mutator::SetSplicePool(
    const std::vector<std::vector<std::uint8_t>>* pool) {
  splice_pool_ = pool;
}

std::uint64_t Mutator::Next() { return SplitMix64(state_); }

std::uint64_t Mutator::Below(std::uint64_t bound) {
  return bound == 0 ? 0 : Next() % bound;
}

std::vector<std::uint8_t> Mutator::Mutate(
    const std::vector<std::uint8_t>& base, std::size_t max_len) {
  std::vector<std::uint8_t> out = base;
  if (out.empty()) {
    out.push_back(static_cast<std::uint8_t>(Next()));
  }
  // Stacked havoc: 1 << [0, 5) mutations per round, AFL-style.
  const std::uint64_t stack = 1ull << Below(5);
  for (std::uint64_t s = 0; s < stack; ++s) {
    const std::uint64_t op = Below(12);
    switch (op) {
      case 0: {  // flip one bit
        const std::size_t i = Below(out.size());
        out[i] ^= static_cast<std::uint8_t>(1u << Below(8));
        break;
      }
      case 1: {  // interesting 8-bit
        out[Below(out.size())] =
            kInteresting8[Below(std::size(kInteresting8))];
        break;
      }
      case 2: {  // interesting 16-bit, little-endian
        if (out.size() < 2) break;
        const std::size_t i = Below(out.size() - 1);
        const std::uint16_t v =
            kInteresting16[Below(std::size(kInteresting16))];
        std::memcpy(out.data() + i, &v, sizeof(v));
        break;
      }
      case 3: {  // interesting 32-bit, little-endian
        if (out.size() < 4) break;
        const std::size_t i = Below(out.size() - 3);
        const std::uint32_t v =
            kInteresting32[Below(std::size(kInteresting32))];
        std::memcpy(out.data() + i, &v, sizeof(v));
        break;
      }
      case 4: {  // interesting 64-bit, little-endian (count fields)
        if (out.size() < 8) break;
        const std::size_t i = Below(out.size() - 7);
        const std::uint64_t v =
            kInteresting64[Below(std::size(kInteresting64))];
        std::memcpy(out.data() + i, &v, sizeof(v));
        break;
      }
      case 5: {  // add/subtract a small delta at a random byte
        const std::size_t i = Below(out.size());
        const std::uint8_t delta = static_cast<std::uint8_t>(1 + Below(35));
        out[i] = Below(2) ? out[i] + delta : out[i] - delta;
        break;
      }
      case 6: {  // delete a block
        if (out.size() < 2) break;
        const std::size_t len = 1 + Below(out.size() / 2);
        const std::size_t i = Below(out.size() - len + 1);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(i),
                  out.begin() + static_cast<std::ptrdiff_t>(i + len));
        break;
      }
      case 7: {  // duplicate a block
        const std::size_t len = 1 + Below(std::min<std::size_t>(
                                       out.size(), std::size_t{64}));
        const std::size_t src = Below(out.size() - len + 1);
        const std::size_t dst = Below(out.size() + 1);
        std::vector<std::uint8_t> block(out.begin() + static_cast<std::ptrdiff_t>(src),
                                        out.begin() + static_cast<std::ptrdiff_t>(src + len));
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(dst),
                   block.begin(), block.end());
        break;
      }
      case 8: {  // swap (shuffle) two equal-length blocks
        if (out.size() < 4) break;
        const std::size_t len = 1 + Below(out.size() / 4);
        const std::size_t a = Below(out.size() - len + 1);
        const std::size_t b = Below(out.size() - len + 1);
        for (std::size_t i = 0; i < len; ++i) {
          std::swap(out[a + i], out[b + i]);
        }
        break;
      }
      case 9: {  // dictionary token: overwrite or insert
        if (dictionary_.empty()) break;
        const auto& token = dictionary_[Below(dictionary_.size())];
        if (Below(2) == 0 && token.size() <= out.size()) {
          const std::size_t i = Below(out.size() - token.size() + 1);
          std::copy(token.begin(), token.end(),
                    out.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          const std::size_t i = Below(out.size() + 1);
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(i),
                     token.begin(), token.end());
        }
        break;
      }
      case 10: {  // splice: our head + another corpus entry's tail
        if (splice_pool_ == nullptr || splice_pool_->empty()) break;
        const auto& other = (*splice_pool_)[Below(splice_pool_->size())];
        if (other.empty()) break;
        const std::size_t keep = Below(out.size() + 1);
        const std::size_t from = Below(other.size());
        out.resize(keep);
        out.insert(out.end(), other.begin() + static_cast<std::ptrdiff_t>(from),
                   other.end());
        break;
      }
      default: {  // append random bytes (growth pressure)
        const std::size_t len = 1 + Below(16);
        for (std::size_t i = 0; i < len; ++i) {
          out.push_back(static_cast<std::uint8_t>(Next()));
        }
        break;
      }
    }
    if (out.empty()) {
      out.push_back(static_cast<std::uint8_t>(Next()));
    }
  }
  if (out.size() > max_len) {
    out.resize(max_len);
  }
  return out;
}

// --- Engine -------------------------------------------------------------

Engine::Engine(TargetFn target, Options options)
    : target_(target),
      options_(std::move(options)),
      mutator_(options_.seed, [this] {
        std::vector<std::vector<std::uint8_t>> dict;
        for (const std::string& path : options_.dict_paths) {
          auto tokens = LoadDictionary(path);
          dict.insert(dict.end(), tokens.begin(), tokens.end());
        }
        return dict;
      }()),
      best_for_feature_(kMapSize, -1),
      virgin_(kMapSize, 0),
      rng_state_(options_.seed * 0x9e3779b97f4a7c15ULL + 1) {
  AF_CHECK(target_ != nullptr) << "fuzz: null target";
  internal::InstallCrashHandlers();
  if (!options_.artifact_prefix.empty()) {
    std::snprintf(internal::g_crash_dump_path,
                  sizeof(internal::g_crash_dump_path), "%scrash-current",
                  options_.artifact_prefix.c_str());
  }
}

Engine::ExecOutcome Engine::ExecOne(const std::vector<std::uint8_t>& input) {
  std::memset(internal::g_map, 0, sizeof(internal::g_map));
  internal::g_current_data = input.data();
  internal::g_current_size = input.size();
  ++stats_.execs;
  ExecOutcome outcome = ExecOutcome::kOk;
  try {
    target_(input.data(), input.size());
  } catch (const util::CheckError& e) {
    // The parsers' documented rejection path — signal, not a crash.
    ObserveString(e.what());
    outcome = ExecOutcome::kRejected;
  } catch (const std::exception& e) {
    stats_.last_crash_what = e.what();
    outcome = ExecOutcome::kCrash;
  } catch (...) {
    stats_.last_crash_what = "non-std exception";
    outcome = ExecOutcome::kCrash;
  }
  // Length novelty keeps the fallback mode exploring even when no check
  // site distinguishes two inputs.
  std::size_t bucket = 0;
  for (std::size_t len = input.size(); len != 0; len >>= 1) {
    ++bucket;
  }
  Observe(0x6c656e00u | bucket);
  internal::g_current_data = nullptr;
  internal::g_current_size = 0;
  return outcome;
}

void Engine::SaveCrash(const std::vector<std::uint8_t>& input,
                       const std::string& what) {
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%016llx",
                static_cast<unsigned long long>(Fnv1a(input)));
  const std::string path = options_.artifact_prefix + name;
  WriteFile(path, input);
  stats_.last_crash_path = path;
  std::fprintf(stderr, "fuzz: CRASH (%s) — input saved to %s\n",
               what.c_str(), path.c_str());
}

void Engine::Step(const std::vector<std::uint8_t>& input, bool from_seed) {
  const ExecOutcome outcome = ExecOne(input);
  if (outcome == ExecOutcome::kCrash) {
    ++stats_.crashes;
    SaveCrash(input, stats_.last_crash_what);
  }
  // Novelty scan: any map cell whose bucketized count has unseen bits
  // makes this input corpus-worthy.
  std::vector<std::uint32_t> features;
  bool novel = false;
  for (std::size_t i = 0; i < kMapSize; ++i) {
    const std::uint8_t hits = internal::g_map[i];
    if (hits == 0) {
      continue;
    }
    features.push_back(static_cast<std::uint32_t>(i));
    const std::uint8_t bucket = internal::BucketizeHitCount(hits);
    if ((virgin_[i] & bucket) != bucket) {
      virgin_[i] |= bucket;
      novel = true;
    }
  }
  if (!novel && !(from_seed && corpus_.empty())) {
    return;
  }
  Entry entry;
  entry.bytes = input;
  entry.features = std::move(features);
  corpus_.push_back(std::move(entry));
  stats_.corpus_entries = corpus_.size();
  Cull();
  if (options_.save_corpus && !from_seed && !options_.corpus_dirs.empty()) {
    char name[64];
    std::snprintf(name, sizeof(name), "%016llx",
                  static_cast<unsigned long long>(Fnv1a(input)));
    WriteFile(options_.corpus_dirs.front() + "/" + name, input);
  }
}

void Engine::Cull() {
  // AFL's top_rated: per feature, prefer the shortest input reaching it.
  const std::size_t latest = corpus_.size() - 1;
  for (std::uint32_t f : corpus_[latest].features) {
    const std::int32_t cur = best_for_feature_[f];
    if (cur < 0 ||
        corpus_[latest].bytes.size() < corpus_[static_cast<std::size_t>(cur)].bytes.size()) {
      best_for_feature_[f] = static_cast<std::int32_t>(latest);
    }
  }
  for (Entry& entry : corpus_) {
    entry.favored = false;
  }
  for (std::size_t i = 0; i < kMapSize; ++i) {
    if (best_for_feature_[i] >= 0) {
      corpus_[static_cast<std::size_t>(best_for_feature_[i])].favored = true;
    }
  }
}

std::size_t Engine::PickEntry() {
  // Favored entries get 3/4 of the schedule.
  if (SplitMix64(rng_state_) % 4 != 0) {
    std::vector<std::size_t> favored;
    for (std::size_t i = 0; i < corpus_.size(); ++i) {
      if (corpus_[i].favored) {
        favored.push_back(i);
      }
    }
    if (!favored.empty()) {
      return favored[SplitMix64(rng_state_) % favored.size()];
    }
  }
  return SplitMix64(rng_state_) % corpus_.size();
}

void Engine::LoadSeeds() {
  std::vector<std::string> files = options_.seed_files;
  for (const std::string& dir : options_.corpus_dirs) {
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      std::fprintf(stderr, "fuzz: corpus dir %s missing — skipped\n",
                   dir.c_str());
      continue;
    }
    std::vector<std::string> in_dir;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) {
        in_dir.push_back(entry.path().string());
      }
    }
    // directory_iterator order is unspecified; sort for determinism.
    std::sort(in_dir.begin(), in_dir.end());
    files.insert(files.end(), in_dir.begin(), in_dir.end());
  }
  for (const std::string& path : files) {
    // Seeds replay at full length regardless of max_len (a committed
    // regression must reproduce exactly); only mutations are capped.
    std::vector<std::uint8_t> bytes = ReadFile(path);
    if (options_.verbose) {
      std::fprintf(stderr, "fuzz: seed %s (%zu bytes)\n", path.c_str(),
                   bytes.size());
    }
    Step(bytes, /*from_seed=*/true);
  }
  if (corpus_.empty()) {
    Step({0}, /*from_seed=*/true);  // something to mutate from
  }
}

Stats Engine::Run() {
  const auto start = Clock::now();
  LoadSeeds();
  if (stats_.crashes > 0 && !options_.keep_going) {
    stats_.features = CountVirginFeatures();
    stats_.instrumented = internal::g_instrumented;
    stats_.corpus_entries = corpus_.size();
    return stats_;
  }
  std::uint64_t next_report = 1024;
  for (std::uint64_t i = 0; i < options_.runs; ++i) {
    if (options_.max_seconds > 0.0 &&
        std::chrono::duration<double>(Clock::now() - start).count() >
            options_.max_seconds) {
      std::fprintf(stderr, "fuzz: wall-clock budget reached after %llu execs\n",
                   static_cast<unsigned long long>(stats_.execs));
      break;
    }
    if (splice_view_.size() != corpus_.size()) {
      splice_view_.clear();
      splice_view_.reserve(corpus_.size());
      for (const Entry& entry : corpus_) {
        splice_view_.push_back(entry.bytes);
      }
    }
    mutator_.SetSplicePool(&splice_view_);
    const std::size_t pick = PickEntry();
    const std::vector<std::uint8_t> input =
        mutator_.Mutate(corpus_[pick].bytes, options_.max_len);
    Step(input, /*from_seed=*/false);
    if (stats_.crashes > 0 && !options_.keep_going) {
      break;
    }
    if (options_.verbose && stats_.execs >= next_report) {
      next_report *= 2;
      std::fprintf(stderr,
                   "fuzz: %llu execs, %zu corpus, %zu features%s\n",
                   static_cast<unsigned long long>(stats_.execs),
                   corpus_.size(), CountVirginFeatures(),
                   internal::g_instrumented ? "" : " (fallback novelty)");
    }
  }
  stats_.features = CountVirginFeatures();
  stats_.instrumented = internal::g_instrumented;
  stats_.corpus_entries = corpus_.size();
  return stats_;
}

std::size_t Engine::CountVirginFeatures() const {
  std::size_t count = 0;
  for (std::uint8_t bits : virgin_) {
    count += static_cast<std::size_t>(__builtin_popcount(bits));
  }
  return count;
}

std::vector<std::vector<std::uint8_t>> Engine::CorpusForTest() const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(corpus_.size());
  for (const Entry& entry : corpus_) {
    out.push_back(entry.bytes);
  }
  return out;
}

std::vector<std::size_t> Engine::FavoredForTest() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    if (corpus_[i].favored) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace fuzz

// Stateful fuzz target: a real net::Server driven through its
// accept → handshake → negotiate → update state machine by an adversarial
// byte stream, with the PR 5 eviction guarantee checked as an executable
// invariant on every input:
//
//   * the process never crashes (memory safety under ASan/UBSan);
//   * malformed bytes evict only the connection that sent them — a
//     well-behaved client that completed its handshake first must survive
//     every adversarial exec (checked via the disconnect callback AND by
//     delivering a real broadcast to it periodically);
//   * after the attacker is gone, a fresh well-formed client session
//     (hello, codec + trace negotiation, one update, ack) still completes
//     against the same server instance.
//
// Invariant violations throw std::runtime_error, which both the bundled
// engine and real libFuzzer report as a crash with the input saved.
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness_util.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace {

constexpr int kGoodClientId = 1;

net::RetryConfig FastRetry() {
  net::RetryConfig retry;
  retry.max_attempts = 10;
  retry.initial_backoff_ms = 1.0;
  return retry;
}

struct World {
  explicit World()
      : server([] {
          net::ServerOptions options;
          options.port = 0;
          options.io_timeout_ms = 1000;
          options.advertised_codecs = {"fp16", "int8"};
          options.offer_trace_context = true;
          return options;
        }()) {}

  net::Server server;
  net::Connection good;
  std::vector<int> disconnected;
  std::uint64_t execs = 0;
  std::uint64_t next_session_id = 1000;
};

std::unique_ptr<World> g_world;

// Non-blocking ticks: on loopback, sent bytes / EOF are visible to poll()
// immediately, so zero-timeout pumping keeps per-exec cost in microseconds.
void Pump(World& world, int ticks) {
  for (int i = 0; i < ticks; ++i) {
    world.server.PollOnce(0);
  }
}

// Client side of the full handshake: hello, then answer the CodecOffer /
// TraceOffer the server queues in response.
void CompleteHandshake(World& world, net::Connection& conn, int client_id,
                       const std::string& codec) {
  conn.SendFrame(net::EncodeAck({static_cast<std::uint64_t>(client_id)}),
                 1000);
  bool codec_done = false;
  bool trace_done = false;
  for (int i = 0; i < 200 && !(codec_done && trace_done); ++i) {
    world.server.PollOnce(1);
    net::Frame frame;
    const auto status = conn.TryRecvFrame(&frame, 5);
    if (status != net::Connection::RecvStatus::kFrame) {
      continue;
    }
    if (frame.type == net::MessageType::kCodecOffer) {
      conn.SendFrame(net::EncodeCodecSelect({codec}), 1000);
      codec_done = true;
    } else if (frame.type == net::MessageType::kTraceOffer) {
      conn.SendFrame(net::EncodeTraceSelect({false}), 1000);
      trace_done = true;
    }
  }
  if (!(codec_done && trace_done)) {
    throw std::runtime_error("invariant: handshake offers never arrived");
  }
  for (int i = 0; i < 200 && !world.server.IsConnected(client_id); ++i) {
    world.server.PollOnce(1);
  }
  if (!world.server.IsConnected(client_id)) {
    throw std::runtime_error("invariant: handshake did not complete");
  }
}

// A fresh well-formed session end to end: handshake, one ClientUpdate,
// the update ack back. Proves the server still serves correctly.
void RunWellFormedSession(World& world) {
  const int id = static_cast<int>(world.next_session_id++);
  net::Connection conn =
      net::ConnectWithRetry(world.server.port(), FastRetry(), 7);
  CompleteHandshake(world, conn, id, "fp16");

  net::ClientUpdateMsg update;
  update.client_id = id;
  update.job_index = 1;
  update.base_round = 0;
  update.num_samples = 5;
  update.delta = {0.25f, -0.5f, 1.0f};
  conn.SendFrame(net::EncodeClientUpdate(update), 1000);

  bool acked = false;
  for (int i = 0; i < 200 && !acked; ++i) {
    world.server.PollOnce(1);
    net::Frame frame;
    if (conn.TryRecvFrame(&frame, 5) == net::Connection::RecvStatus::kFrame &&
        frame.type == net::MessageType::kAck) {
      acked = net::DecodeAck(frame).value == update.job_index;
    }
  }
  if (!acked) {
    throw std::runtime_error("invariant: well-formed session not acked");
  }
  conn.Close();
  for (int i = 0; i < 50 && world.server.IsConnected(id); ++i) {
    world.server.PollOnce(1);
  }
}

// Multiplexed flavor: one connection announces two client ids with a
// kHello, negotiates once, and must get a per-copy ack for each id's
// update — proving the adversarial stream didn't corrupt the session
// layer's mux bookkeeping either.
void RunMuxSession(World& world) {
  const int id_a = static_cast<int>(world.next_session_id++);
  const int id_b = static_cast<int>(world.next_session_id++);
  net::Connection conn =
      net::ConnectWithRetry(world.server.port(), FastRetry(), 11);
  conn.SendFrame(net::EncodeHello({{id_a, id_b}}), 1000);
  bool codec_done = false;
  bool trace_done = false;
  for (int i = 0; i < 200 && !(codec_done && trace_done); ++i) {
    world.server.PollOnce(1);
    net::Frame frame;
    if (conn.TryRecvFrame(&frame, 5) != net::Connection::RecvStatus::kFrame) {
      continue;
    }
    if (frame.type == net::MessageType::kCodecOffer) {
      conn.SendFrame(net::EncodeCodecSelect({"identity"}), 1000);
      codec_done = true;
    } else if (frame.type == net::MessageType::kTraceOffer) {
      conn.SendFrame(net::EncodeTraceSelect({false}), 1000);
      trace_done = true;
    }
  }
  if (!(codec_done && trace_done)) {
    throw std::runtime_error("invariant: mux handshake offers never arrived");
  }
  for (int i = 0;
       i < 200 && !(world.server.IsConnected(id_a) &&
                    world.server.IsConnected(id_b));
       ++i) {
    world.server.PollOnce(1);
  }
  if (!world.server.IsMultiplexed(id_a) || !world.server.IsMultiplexed(id_b)) {
    throw std::runtime_error("invariant: mux session not marked multiplexed");
  }
  int acked = 0;
  for (int id : {id_a, id_b}) {
    net::ClientUpdateMsg update;
    update.client_id = id;
    update.job_index = 2;
    update.num_samples = 5;
    update.delta = {0.5f};
    conn.SendFrame(net::EncodeClientUpdate(update), 1000);
  }
  for (int i = 0; i < 400 && acked < 2; ++i) {
    world.server.PollOnce(1);
    net::Frame frame;
    if (conn.TryRecvFrame(&frame, 5) == net::Connection::RecvStatus::kFrame &&
        frame.type == net::MessageType::kAck &&
        net::DecodeAck(frame).value == 2) {
      ++acked;
    }
  }
  if (acked != 2) {
    throw std::runtime_error("invariant: mux updates not acked per copy");
  }
  conn.Close();
  for (int i = 0; i < 50 && world.server.IsConnected(id_a); ++i) {
    world.server.PollOnce(1);
  }
}

void InitWorld() {
  g_world = std::make_unique<World>();
  World& world = *g_world;
  world.server.SetDisconnectHandler(
      [](int client_id) { g_world->disconnected.push_back(client_id); });
  world.good = net::ConnectWithRetry(world.server.port(), FastRetry(), 3);
  CompleteHandshake(world, world.good, kGoodClientId, "identity");
}

// Delivers a real broadcast to the good client, proving its by_client_
// mapping is intact (not just present).
void ProbeGoodClient(World& world) {
  net::ModelBroadcastMsg msg;
  msg.round = world.execs;
  msg.job_index = world.execs;
  msg.params = {1.0f, 2.0f};
  if (!world.server.SendTo(kGoodClientId, net::EncodeModelBroadcast(msg))) {
    throw std::runtime_error("invariant: good client unreachable");
  }
  world.server.Flush(1000);
  net::Frame frame;
  for (int i = 0; i < 200; ++i) {
    world.server.PollOnce(1);
    if (world.good.TryRecvFrame(&frame, 5) ==
        net::Connection::RecvStatus::kFrame) {
      const auto decoded = net::DecodeModelBroadcast(frame);
      if (decoded.job_index != world.execs) {
        throw std::runtime_error("invariant: wrong broadcast delivered");
      }
      return;
    }
  }
  throw std::runtime_error("invariant: broadcast never reached good client");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    if (!g_world) {
      InitWorld();
    }
    World& world = *g_world;
    world.execs++;
    world.disconnected.clear();

    // The attacker: a raw connection feeding the fuzzed bytes, split into
    // two writes so the server's partial-frame buffering is exercised.
    net::Connection attacker =
        net::ConnectWithRetry(world.server.port(), FastRetry(), world.execs);
    const std::span<const std::uint8_t> bytes(data, size);
    const std::size_t split = size / 2;
    attacker.SendBytes(bytes.subspan(0, split), 1000);
    Pump(world, 4);
    attacker.SendBytes(bytes.subspan(split), 1000);
    Pump(world, 8);
    attacker.Close();
    Pump(world, 8);

    // Invariant: whatever those bytes did, the good client was not the one
    // evicted.
    for (int id : world.disconnected) {
      fuzz_harness::Observe(0x5E5510 + (id == kGoodClientId ? 1 : 0));
      if (id == kGoodClientId) {
        throw std::runtime_error(
            "invariant: malformed stream evicted the good client");
      }
    }
    if (!world.server.IsConnected(kGoodClientId)) {
      throw std::runtime_error("invariant: good client lost its session");
    }
    // Walks every registered connection (HandshakeCount dereferences each
    // by_client_ entry), so a mapping left dangling by the adversarial
    // stream is a use-after-free right here under ASan — not a latent bomb
    // for some later exec.
    world.server.WaitForClients(1, 0);
    fuzz_harness::Observe(0x5E5520 + world.server.ConnectedCount());

    // Periodically prove the server still *works*, not merely that the
    // bookkeeping looks right.
    if (world.execs % 64 == 0) {
      ProbeGoodClient(world);
      RunWellFormedSession(world);
    }
    if (world.execs % 128 == 0) {
      RunMuxSession(world);
    }
  } catch (const util::CheckError& e) {
    // Client-side socket helpers throw CheckError on timeouts/EPIPE; that
    // means the server broke the transport contract for a *well-formed*
    // peer — escalate as a crash after resetting the world.
    g_world.reset();
    throw std::runtime_error(std::string("transport failure: ") + e.what());
  } catch (const std::runtime_error&) {
    g_world.reset();  // world state is suspect; rebuild on next exec
    throw;
  }
  return 0;
}

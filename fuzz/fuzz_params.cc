// Fuzz target: the AFPM flat-parameter block parser (nn/serialize).
//
// Besides memory safety, asserts the format's canonicality: re-encoding a
// successfully parsed block must reproduce the consumed bytes exactly
// (AFPM has one fixed version and raw little-endian float payload, so
// encode∘parse is the identity on valid prefixes). A violation aborts.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "harness_util.h"
#include "nn/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  std::size_t offset = 0;
  fuzz_harness::GuardParse([&] {
    // A buffer may carry several concatenated blocks (the wire form);
    // parse until rejection or exhaustion.
    while (offset < bytes.size()) {
      const std::size_t block_start = offset;
      const std::vector<float> params = nn::ParseFlatParams(bytes, &offset);
      fuzz_harness::Observe(0xAF901 + (params.size() & 0xFF));

      std::vector<std::uint8_t> reencoded;
      nn::AppendFlatParams(reencoded, params);
      if (reencoded.size() != offset - block_start ||
          std::memcmp(reencoded.data(), data + block_start,
                      reencoded.size()) != 0) {
        std::abort();  // canonicality broken: parse/encode disagree
      }
    }
    fuzz_harness::Observe(0xAF902);  // fully consumed
  });
  return 0;
}

// Engine-mode main() for the fuzz targets: a libFuzzer-flavoured CLI over
// fuzz::Engine. Excluded from the build when the targets link a real
// libFuzzer runtime (-DASYNCFILTER_LIBFUZZER=ON), which brings its own
// main.
//
//   fuzz_<target> [flags] [corpus_dir | input_file]...
//
//   -runs=N          mutation iterations (default 10000; 0 → replay the
//                    loaded seeds once and exit — the regression mode)
//   -seed=N          mutation RNG seed (default 1)
//   -max_len=N       input size cap in bytes (default 4096)
//   -max_seconds=S   wall-clock budget; 0 → none
//   -dict=PATH       AFL++ dictionary (repeatable)
//   -artifact_prefix=P   crash files land at Pcrash-<hash>
//   -keep_going=1    keep fuzzing past recoverable crashes
//   -save_corpus=1   write novel finds back to the first corpus dir
//   -verbose=1       progress + seed logging
//
// Exit status: 0 when no crash was observed, 1 otherwise.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int Target(const std::uint8_t* data, std::size_t size) {
  return LLVMFuzzerTestOneInput(data, size);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "-runs", &value)) {
      options.runs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "-seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "-max_len", &value)) {
      options.max_len = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "-max_seconds", &value)) {
      options.max_seconds = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "-dict", &value)) {
      options.dict_paths.push_back(value);
    } else if (ParseFlag(arg, "-artifact_prefix", &value)) {
      options.artifact_prefix = value;
    } else if (ParseFlag(arg, "-keep_going", &value)) {
      options.keep_going = value != "0";
    } else if (ParseFlag(arg, "-save_corpus", &value)) {
      options.save_corpus = value != "0";
    } else if (ParseFlag(arg, "-verbose", &value)) {
      options.verbose = value != "0";
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    } else {
      struct stat st {};
      if (::stat(arg, &st) == 0 && S_ISDIR(st.st_mode)) {
        options.corpus_dirs.push_back(arg);
      } else if (::stat(arg, &st) == 0 && S_ISREG(st.st_mode)) {
        options.seed_files.push_back(arg);
      } else {
        // A named-but-missing regressions dir is fine (no crashers
        // committed for this target yet); anything else is an error.
        std::fprintf(stderr, "fuzz: %s does not exist — skipped\n", arg);
      }
    }
  }

  const fuzz::Stats stats = fuzz::Engine(&Target, options).Run();
  std::fprintf(stderr,
               "fuzz: done — %llu execs, %llu crashes, %zu corpus entries, "
               "%zu features (%s coverage)\n",
               static_cast<unsigned long long>(stats.execs),
               static_cast<unsigned long long>(stats.crashes),
               stats.corpus_entries, stats.features,
               stats.instrumented ? "instrumented" : "fallback");
  if (stats.crashes > 0) {
    std::fprintf(stderr, "fuzz: last crash: %s (%s)\n",
                 stats.last_crash_path.c_str(),
                 stats.last_crash_what.c_str());
    return 1;
  }
  return 0;
}

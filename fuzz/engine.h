// Self-contained coverage-guided fuzzing engine (AFL/libFuzzer-style).
//
// The engine drives a libFuzzer-compatible entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// with a corpus of interesting inputs and a deterministic seeded mutator
// (bitflips, interesting-value splices, block duplicate/delete/shuffle,
// dictionary tokens, corpus splicing). "Interesting" is decided by a 64 KiB
// 8-bit-counter coverage map in the AFL tradition:
//
//   * Instrumented builds (-DASYNCFILTER_FUZZ_SANCOV=ON adds
//     -fsanitize-coverage=trace-pc to the af_* libraries; clang's
//     trace-pc-guard flavour is also supported) feed real edge coverage
//     into the map via the __sanitizer_cov_* hooks in coverage.cc.
//   * Uninstrumented builds fall back to harness-reported novelty:
//     Observe()/ObserveString() hash input-length buckets, parse outcomes,
//     and digit-stripped util::CheckError messages (one feature per check
//     site) into the same map, so the queue still grows toward new
//     rejection paths without any compiler support.
//
// Counts are bucketized to 8 coarse hit-count classes before novelty
// comparison, exactly like AFL's count_class_lookup, and the corpus is
// culled AFL-style: for every map feature the smallest input reaching it is
// "favored" and favored entries are mutated preferentially.
//
// Crashes are anything that is not a clean return or a util::CheckError
// (the parsers' documented rejection contract): any other exception, or a
// fatal signal / sanitizer abort, is recorded and the offending input is
// written to `<artifact_prefix>crash-<fnv64>`. The same targets build
// unchanged against real libFuzzer/AFL++ when a clang toolchain is
// available (see fuzz/CMakeLists.txt and docs/FUZZING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fuzz {

// The libFuzzer entry-point signature the engine drives.
using TargetFn = int (*)(const std::uint8_t* data, std::size_t size);

// Coverage map geometry (shared with the hooks in coverage.cc).
inline constexpr std::size_t kMapSize = 1u << 16;

// --- Harness feature sink ----------------------------------------------

// Hashes `value` into the coverage map like an edge hit. Harnesses call
// this for semantic outcomes (parsed element count, decode success); it is
// the only coverage source in uninstrumented builds and extra signal in
// instrumented ones.
void Observe(std::uint64_t value);

// Observe() over `text` with decimal digits stripped, so a CheckError
// message carrying variable offsets/sizes collapses to one stable feature
// per check site.
void ObserveString(std::string_view text);

// --- Dictionary ---------------------------------------------------------

// Parses AFL++ dictionary text: one `name="value"` per line, `#` comments,
// \xNN / \\ / \" escapes inside the quoted value. Returns the raw token
// byte strings; malformed lines throw util::CheckError naming the line.
std::vector<std::vector<std::uint8_t>> ParseDictionary(std::string_view text);

// ParseDictionary over the contents of `path`.
std::vector<std::vector<std::uint8_t>> LoadDictionary(
    const std::string& path);

// --- Mutator ------------------------------------------------------------

// Deterministic stacked-havoc mutator: with the same seed, the same
// sequence of Mutate() calls over the same bases yields identical outputs.
class Mutator {
 public:
  Mutator(std::uint64_t seed,
          std::vector<std::vector<std::uint8_t>> dictionary);

  // Sets the pool used by the splice mutation (borrowed; not owned).
  void SetSplicePool(const std::vector<std::vector<std::uint8_t>>* pool);

  // Returns a mutated copy of `base`, at most `max_len` bytes.
  std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& base,
                                   std::size_t max_len);

 private:
  std::uint64_t Next();  // splitmix64 over state_
  std::uint64_t Below(std::uint64_t bound);

  std::uint64_t state_;
  std::vector<std::vector<std::uint8_t>> dictionary_;
  const std::vector<std::vector<std::uint8_t>>* splice_pool_ = nullptr;
};

// --- Engine -------------------------------------------------------------

struct Options {
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 12;
  // Mutation iterations to run after seed loading; 0 → replay the loaded
  // seeds once and exit (the ctest regression-replay mode).
  std::uint64_t runs = 10000;
  // Wall-clock budget in seconds; 0 → no budget. Whichever of runs /
  // max_seconds trips first ends the loop.
  double max_seconds = 0.0;
  // Keep fuzzing after a recoverable (exception) crash instead of stopping
  // at the first one. Fatal signals always terminate the process.
  bool keep_going = false;
  // Directories whose regular files seed the corpus; novel finds are
  // written back to the first directory when save_corpus is set.
  std::vector<std::string> corpus_dirs;
  std::vector<std::string> seed_files;
  bool save_corpus = false;
  std::string artifact_prefix;  // crash files land at <prefix>crash-<hash>
  std::vector<std::string> dict_paths;
  bool verbose = false;
};

struct Stats {
  std::uint64_t execs = 0;
  std::uint64_t crashes = 0;
  std::size_t corpus_entries = 0;
  // Distinct bucketized coverage features observed (novel map bits).
  std::size_t features = 0;
  // Whether compiler instrumentation fed the map (vs fallback novelty).
  bool instrumented = false;
  std::string last_crash_path;
  std::string last_crash_what;
};

class Engine {
 public:
  Engine(TargetFn target, Options options);

  // Loads dictionaries and seeds, then fuzzes until the runs / max_seconds
  // budget is exhausted (or the first crash unless keep_going). Returns
  // cumulative stats; a non-zero `crashes` means artifacts were written.
  Stats Run();

  // Corpus introspection for tests: the byte strings currently queued.
  std::vector<std::vector<std::uint8_t>> CorpusForTest() const;
  // Indices of currently favored corpus entries (culling introspection).
  std::vector<std::size_t> FavoredForTest() const;

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint32_t> features;  // map indices this entry hits
    bool favored = false;
  };

  enum class ExecOutcome { kOk, kRejected, kCrash };

  ExecOutcome ExecOne(const std::vector<std::uint8_t>& input);
  // Runs one input end to end: coverage reset, execution, novelty scan,
  // corpus admission, crash artifact handling.
  void Step(const std::vector<std::uint8_t>& input, bool from_seed);
  void LoadSeeds();
  std::size_t PickEntry();
  void Cull();
  std::size_t CountVirginFeatures() const;
  void SaveCrash(const std::vector<std::uint8_t>& input,
                 const std::string& what);

  TargetFn target_;
  Options options_;
  Mutator mutator_;
  std::vector<Entry> corpus_;
  // For each map feature, the corpus entry with the shortest input
  // reaching it (AFL's top_rated): favored = best for ≥ 1 feature.
  std::vector<std::int32_t> best_for_feature_;
  std::vector<std::uint8_t> virgin_;  // bucketized feature bits seen
  std::vector<std::vector<std::uint8_t>> splice_view_;
  Stats stats_;
  std::uint64_t rng_state_;
};

}  // namespace fuzz

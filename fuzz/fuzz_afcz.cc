// Fuzz target: the AFCZ compressed-container parser and the codec decode
// bodies (compress/).
//
// The first input byte routes the exercise:
//   0       ParseAnyParams — the production entry point (magic sniffing,
//           container header validation, checksum, codec dispatch)
//   1..4    a specific codec's DecodeBody with an adversarial `count`
//           taken from the input, which must reject (CheckError) rather
//           than allocate unbounded memory — the contract ParseAnyParams
//           relies on
// Everything after the routing prefix is the byte payload under test.
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "compress/codec.h"
#include "harness_util.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  const std::uint8_t mode = data[0] % 5;
  const std::span<const std::uint8_t> rest(data + 1, size - 1);

  if (mode == 0) {
    std::size_t offset = 0;
    fuzz_harness::GuardParse([&] {
      while (offset < rest.size()) {
        const std::vector<float> values =
            compress::ParseAnyParams(rest, &offset);
        fuzz_harness::Observe(0xAFC20 + (values.size() & 0xFF));
      }
      fuzz_harness::Observe(0xAFC21);
    });
    return 0;
  }

  // Raw DecodeBody: count is attacker-controlled (first 8 payload bytes),
  // the rest is the body. Decoders must bound-check count against the
  // body before allocating.
  if (rest.size() < sizeof(std::uint64_t)) {
    return 0;
  }
  std::uint64_t count;
  std::memcpy(&count, rest.data(), sizeof(count));
  const std::span<const std::uint8_t> body = rest.subspan(sizeof(count));
  static const char* const kCodecs[] = {"identity", "fp16", "int8",
                                        "topk-delta"};
  const compress::Codec& codec = compress::Get(kCodecs[mode - 1]);
  fuzz_harness::GuardParse([&] {
    const std::vector<float> values = codec.DecodeBody(body, count);
    fuzz_harness::Observe(0xAFC30 + mode);
    fuzz_harness::Observe(values.size() & 0xFF);
  });
  return 0;
}

# Empty compiler generated dependencies file for bench_table9_attackers_fashionmnist.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table10_speed_fashionmnist.
# This may be replaced when dependencies are built.

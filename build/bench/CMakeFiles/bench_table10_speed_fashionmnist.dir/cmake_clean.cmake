file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_speed_fashionmnist.dir/bench_table10_speed_fashionmnist.cc.o"
  "CMakeFiles/bench_table10_speed_fashionmnist.dir/bench_table10_speed_fashionmnist.cc.o.d"
  "bench_table10_speed_fashionmnist"
  "bench_table10_speed_fashionmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_speed_fashionmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table6_hetero_cinic10.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table4_cifar10.
# This may be replaced when dependencies are built.

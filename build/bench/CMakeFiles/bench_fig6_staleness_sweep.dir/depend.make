# Empty dependencies file for bench_fig6_staleness_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_staleness_sweep.dir/bench_fig6_staleness_sweep.cc.o"
  "CMakeFiles/bench_fig6_staleness_sweep.dir/bench_fig6_staleness_sweep.cc.o.d"
  "bench_fig6_staleness_sweep"
  "bench_fig6_staleness_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_staleness_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

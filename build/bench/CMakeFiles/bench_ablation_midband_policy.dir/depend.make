# Empty dependencies file for bench_ablation_midband_policy.
# This may be replaced when dependencies are built.

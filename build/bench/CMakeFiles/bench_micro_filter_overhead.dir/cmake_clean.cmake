file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_filter_overhead.dir/bench_micro_filter_overhead.cc.o"
  "CMakeFiles/bench_micro_filter_overhead.dir/bench_micro_filter_overhead.cc.o.d"
  "bench_micro_filter_overhead"
  "bench_micro_filter_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_filter_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

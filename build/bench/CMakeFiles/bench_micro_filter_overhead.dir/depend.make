# Empty dependencies file for bench_micro_filter_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_staleness_weighting.dir/bench_ablation_staleness_weighting.cc.o"
  "CMakeFiles/bench_ablation_staleness_weighting.dir/bench_ablation_staleness_weighting.cc.o.d"
  "bench_ablation_staleness_weighting"
  "bench_ablation_staleness_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_staleness_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

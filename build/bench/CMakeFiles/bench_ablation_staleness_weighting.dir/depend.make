# Empty dependencies file for bench_ablation_staleness_weighting.
# This may be replaced when dependencies are built.

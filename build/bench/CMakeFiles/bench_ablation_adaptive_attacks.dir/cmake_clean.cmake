file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_attacks.dir/bench_ablation_adaptive_attacks.cc.o"
  "CMakeFiles/bench_ablation_adaptive_attacks.dir/bench_ablation_adaptive_attacks.cc.o.d"
  "bench_ablation_adaptive_attacks"
  "bench_ablation_adaptive_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

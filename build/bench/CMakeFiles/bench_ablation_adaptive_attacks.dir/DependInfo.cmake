
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_adaptive_attacks.cc" "bench/CMakeFiles/bench_ablation_adaptive_attacks.dir/bench_ablation_adaptive_attacks.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_adaptive_attacks.dir/bench_ablation_adaptive_attacks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/af_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/af_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/af_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/af_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/af_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/af_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/af_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_ablation_adaptive_attacks.
# This may be replaced when dependencies are built.

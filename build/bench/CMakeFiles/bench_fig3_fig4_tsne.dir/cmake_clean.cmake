file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fig4_tsne.dir/bench_fig3_fig4_tsne.cc.o"
  "CMakeFiles/bench_fig3_fig4_tsne.dir/bench_fig3_fig4_tsne.cc.o.d"
  "bench_fig3_fig4_tsne"
  "bench_fig3_fig4_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig4_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

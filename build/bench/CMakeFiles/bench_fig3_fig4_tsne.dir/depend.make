# Empty dependencies file for bench_fig3_fig4_tsne.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_hetero_fashionmnist.dir/bench_table7_hetero_fashionmnist.cc.o"
  "CMakeFiles/bench_table7_hetero_fashionmnist.dir/bench_table7_hetero_fashionmnist.cc.o.d"
  "bench_table7_hetero_fashionmnist"
  "bench_table7_hetero_fashionmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_hetero_fashionmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table7_hetero_fashionmnist.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_mnist.
# This may be replaced when dependencies are built.

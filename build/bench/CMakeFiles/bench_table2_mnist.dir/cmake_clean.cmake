file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mnist.dir/bench_table2_mnist.cc.o"
  "CMakeFiles/bench_table2_mnist.dir/bench_table2_mnist.cc.o.d"
  "bench_table2_mnist"
  "bench_table2_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

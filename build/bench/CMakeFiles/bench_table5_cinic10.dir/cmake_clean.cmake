file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cinic10.dir/bench_table5_cinic10.cc.o"
  "CMakeFiles/bench_table5_cinic10.dir/bench_table5_cinic10.cc.o.d"
  "bench_table5_cinic10"
  "bench_table5_cinic10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cinic10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

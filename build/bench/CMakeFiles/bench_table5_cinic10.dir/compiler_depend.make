# Empty compiler generated dependencies file for bench_table5_cinic10.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_extra_defenses.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extra_defenses.dir/bench_ablation_extra_defenses.cc.o"
  "CMakeFiles/bench_ablation_extra_defenses.dir/bench_ablation_extra_defenses.cc.o.d"
  "bench_ablation_extra_defenses"
  "bench_ablation_extra_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extra_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaf_bench_common.a"
)

# Empty dependencies file for af_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/af_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/af_bench_common.dir/bench_common.cc.o.d"
  "libaf_bench_common.a"
  "libaf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

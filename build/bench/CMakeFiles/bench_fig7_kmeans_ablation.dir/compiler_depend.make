# Empty compiler generated dependencies file for bench_fig7_kmeans_ablation.
# This may be replaced when dependencies are built.

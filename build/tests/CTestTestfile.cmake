# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/tensor_tests[1]_include.cmake")
include("/root/repo/build/tests/nn_tests[1]_include.cmake")
include("/root/repo/build/tests/data_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/attacks_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/defense_tests[1]_include.cmake")
include("/root/repo/build/tests/fl_tests[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/dirichlet_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/dirichlet_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/normal_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/normal_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/running_stats_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/running_stats_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/vec_ops_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/vec_ops_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/zipf_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/zipf_test.cc.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stats_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attacks_tests.dir/attacks/adaptive_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/adaptive_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/coordinator_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/coordinator_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/gd_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/gd_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/lie_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/lie_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/min_opt_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/min_opt_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/registry_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/registry_test.cc.o.d"
  "attacks_tests"
  "attacks_tests.pdb"
  "attacks_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacks_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for attacks_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cluster_tests.dir/cluster/kmeans_test.cc.o"
  "CMakeFiles/cluster_tests.dir/cluster/kmeans_test.cc.o.d"
  "CMakeFiles/cluster_tests.dir/cluster/tsne_test.cc.o"
  "CMakeFiles/cluster_tests.dir/cluster/tsne_test.cc.o.d"
  "cluster_tests"
  "cluster_tests.pdb"
  "cluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

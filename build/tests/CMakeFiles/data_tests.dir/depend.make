# Empty dependencies file for data_tests.
# This may be replaced when dependencies are built.

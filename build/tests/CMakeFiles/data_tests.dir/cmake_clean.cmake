file(REMOVE_RECURSE
  "CMakeFiles/data_tests.dir/data/dataset_test.cc.o"
  "CMakeFiles/data_tests.dir/data/dataset_test.cc.o.d"
  "CMakeFiles/data_tests.dir/data/partition_test.cc.o"
  "CMakeFiles/data_tests.dir/data/partition_test.cc.o.d"
  "CMakeFiles/data_tests.dir/data/synthetic_test.cc.o"
  "CMakeFiles/data_tests.dir/data/synthetic_test.cc.o.d"
  "data_tests"
  "data_tests.pdb"
  "data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

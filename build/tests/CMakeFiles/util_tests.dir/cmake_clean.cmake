file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/check_test.cc.o"
  "CMakeFiles/util_tests.dir/util/check_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/csv_test.cc.o"
  "CMakeFiles/util_tests.dir/util/csv_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/flags_test.cc.o"
  "CMakeFiles/util_tests.dir/util/flags_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/logging_test.cc.o"
  "CMakeFiles/util_tests.dir/util/logging_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/table_test.cc.o"
  "CMakeFiles/util_tests.dir/util/table_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cc.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tensor_tests.dir/tensor/tensor_ops_test.cc.o"
  "CMakeFiles/tensor_tests.dir/tensor/tensor_ops_test.cc.o.d"
  "CMakeFiles/tensor_tests.dir/tensor/tensor_test.cc.o"
  "CMakeFiles/tensor_tests.dir/tensor/tensor_test.cc.o.d"
  "tensor_tests"
  "tensor_tests.pdb"
  "tensor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

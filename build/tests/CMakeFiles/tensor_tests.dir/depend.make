# Empty dependencies file for tensor_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/defense_tests.dir/defense/aflguard_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/aflguard_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/bucketing_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/bucketing_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/defense_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/defense_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/fldetector_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/fldetector_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/fltrust_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/fltrust_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/krum_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/krum_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/nnm_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/nnm_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/staleness_weighting_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/staleness_weighting_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/trimmed_mean_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/trimmed_mean_test.cc.o.d"
  "CMakeFiles/defense_tests.dir/defense/zeno_test.cc.o"
  "CMakeFiles/defense_tests.dir/defense/zeno_test.cc.o.d"
  "defense_tests"
  "defense_tests.pdb"
  "defense_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

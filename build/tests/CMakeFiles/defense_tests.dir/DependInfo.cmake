
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/defense/aflguard_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/aflguard_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/aflguard_test.cc.o.d"
  "/root/repo/tests/defense/bucketing_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/bucketing_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/bucketing_test.cc.o.d"
  "/root/repo/tests/defense/defense_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/defense_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/defense_test.cc.o.d"
  "/root/repo/tests/defense/fldetector_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/fldetector_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/fldetector_test.cc.o.d"
  "/root/repo/tests/defense/fltrust_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/fltrust_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/fltrust_test.cc.o.d"
  "/root/repo/tests/defense/krum_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/krum_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/krum_test.cc.o.d"
  "/root/repo/tests/defense/nnm_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/nnm_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/nnm_test.cc.o.d"
  "/root/repo/tests/defense/staleness_weighting_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/staleness_weighting_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/staleness_weighting_test.cc.o.d"
  "/root/repo/tests/defense/trimmed_mean_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/trimmed_mean_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/trimmed_mean_test.cc.o.d"
  "/root/repo/tests/defense/zeno_test.cc" "tests/CMakeFiles/defense_tests.dir/defense/zeno_test.cc.o" "gcc" "tests/CMakeFiles/defense_tests.dir/defense/zeno_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/af_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/af_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/af_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/af_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/af_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/af_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

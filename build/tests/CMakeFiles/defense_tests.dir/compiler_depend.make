# Empty compiler generated dependencies file for defense_tests.
# This may be replaced when dependencies are built.

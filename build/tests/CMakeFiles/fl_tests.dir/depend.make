# Empty dependencies file for fl_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fl_tests.dir/fl/client_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/client_test.cc.o.d"
  "CMakeFiles/fl_tests.dir/fl/experiment_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/experiment_test.cc.o.d"
  "CMakeFiles/fl_tests.dir/fl/integration_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/integration_test.cc.o.d"
  "CMakeFiles/fl_tests.dir/fl/metrics_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/metrics_test.cc.o.d"
  "CMakeFiles/fl_tests.dir/fl/simulation_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/simulation_test.cc.o.d"
  "CMakeFiles/fl_tests.dir/fl/trace_test.cc.o"
  "CMakeFiles/fl_tests.dir/fl/trace_test.cc.o.d"
  "fl_tests"
  "fl_tests.pdb"
  "fl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

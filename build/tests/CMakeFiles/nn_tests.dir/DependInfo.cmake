
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/conv2d_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/conv2d_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/conv2d_test.cc.o.d"
  "/root/repo/tests/nn/dense_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/dense_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/dense_test.cc.o.d"
  "/root/repo/tests/nn/gradient_check_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/gradient_check_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/gradient_check_test.cc.o.d"
  "/root/repo/tests/nn/loss_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/loss_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/loss_test.cc.o.d"
  "/root/repo/tests/nn/maxpool2d_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/maxpool2d_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/maxpool2d_test.cc.o.d"
  "/root/repo/tests/nn/models_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/models_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/models_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/relu_flatten_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/relu_flatten_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/relu_flatten_test.cc.o.d"
  "/root/repo/tests/nn/sequential_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/sequential_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/sequential_test.cc.o.d"
  "/root/repo/tests/nn/serialize_test.cc" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cc.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/af_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/af_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/af_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/af_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/af_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/af_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

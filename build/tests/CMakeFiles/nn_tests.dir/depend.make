# Empty dependencies file for nn_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/conv2d_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/conv2d_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/dense_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/dense_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/gradient_check_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/gradient_check_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/maxpool2d_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/maxpool2d_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/models_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/models_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/relu_flatten_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/relu_flatten_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/sequential_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/sequential_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cc.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for custom_defense.
# This may be replaced when dependencies are built.

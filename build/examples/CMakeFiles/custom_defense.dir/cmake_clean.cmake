file(REMOVE_RECURSE
  "CMakeFiles/custom_defense.dir/custom_defense.cpp.o"
  "CMakeFiles/custom_defense.dir/custom_defense.cpp.o.d"
  "custom_defense"
  "custom_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

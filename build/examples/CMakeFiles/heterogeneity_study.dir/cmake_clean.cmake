file(REMOVE_RECURSE
  "CMakeFiles/heterogeneity_study.dir/heterogeneity_study.cpp.o"
  "CMakeFiles/heterogeneity_study.dir/heterogeneity_study.cpp.o.d"
  "heterogeneity_study"
  "heterogeneity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for heterogeneity_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o"
  "CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o.d"
  "attack_gallery"
  "attack_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for score_inspection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/score_inspection.dir/score_inspection.cpp.o"
  "CMakeFiles/score_inspection.dir/score_inspection.cpp.o.d"
  "score_inspection"
  "score_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for af_fl.
# This may be replaced when dependencies are built.

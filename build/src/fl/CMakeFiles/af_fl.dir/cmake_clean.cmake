file(REMOVE_RECURSE
  "CMakeFiles/af_fl.dir/client.cc.o"
  "CMakeFiles/af_fl.dir/client.cc.o.d"
  "CMakeFiles/af_fl.dir/experiment.cc.o"
  "CMakeFiles/af_fl.dir/experiment.cc.o.d"
  "CMakeFiles/af_fl.dir/metrics.cc.o"
  "CMakeFiles/af_fl.dir/metrics.cc.o.d"
  "CMakeFiles/af_fl.dir/simulation.cc.o"
  "CMakeFiles/af_fl.dir/simulation.cc.o.d"
  "CMakeFiles/af_fl.dir/trace.cc.o"
  "CMakeFiles/af_fl.dir/trace.cc.o.d"
  "libaf_fl.a"
  "libaf_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

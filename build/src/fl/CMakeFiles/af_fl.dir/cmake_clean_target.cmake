file(REMOVE_RECURSE
  "libaf_fl.a"
)

# Empty dependencies file for af_tensor.
# This may be replaced when dependencies are built.

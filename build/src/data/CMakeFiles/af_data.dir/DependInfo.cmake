
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/af_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/af_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/data/CMakeFiles/af_data.dir/partition.cc.o" "gcc" "src/data/CMakeFiles/af_data.dir/partition.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/af_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/af_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

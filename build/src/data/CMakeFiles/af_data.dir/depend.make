# Empty dependencies file for af_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/af_data.dir/dataset.cc.o"
  "CMakeFiles/af_data.dir/dataset.cc.o.d"
  "CMakeFiles/af_data.dir/partition.cc.o"
  "CMakeFiles/af_data.dir/partition.cc.o.d"
  "CMakeFiles/af_data.dir/synthetic.cc.o"
  "CMakeFiles/af_data.dir/synthetic.cc.o.d"
  "libaf_data.a"
  "libaf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

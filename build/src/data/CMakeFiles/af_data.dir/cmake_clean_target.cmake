file(REMOVE_RECURSE
  "libaf_data.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/af_stats.dir/dirichlet.cc.o"
  "CMakeFiles/af_stats.dir/dirichlet.cc.o.d"
  "CMakeFiles/af_stats.dir/normal.cc.o"
  "CMakeFiles/af_stats.dir/normal.cc.o.d"
  "CMakeFiles/af_stats.dir/running_stats.cc.o"
  "CMakeFiles/af_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/af_stats.dir/summary.cc.o"
  "CMakeFiles/af_stats.dir/summary.cc.o.d"
  "CMakeFiles/af_stats.dir/vec_ops.cc.o"
  "CMakeFiles/af_stats.dir/vec_ops.cc.o.d"
  "CMakeFiles/af_stats.dir/zipf.cc.o"
  "CMakeFiles/af_stats.dir/zipf.cc.o.d"
  "libaf_stats.a"
  "libaf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

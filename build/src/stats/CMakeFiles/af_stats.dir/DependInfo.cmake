
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/dirichlet.cc" "src/stats/CMakeFiles/af_stats.dir/dirichlet.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/dirichlet.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/stats/CMakeFiles/af_stats.dir/normal.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/normal.cc.o.d"
  "/root/repo/src/stats/running_stats.cc" "src/stats/CMakeFiles/af_stats.dir/running_stats.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/running_stats.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/af_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/summary.cc.o.d"
  "/root/repo/src/stats/vec_ops.cc" "src/stats/CMakeFiles/af_stats.dir/vec_ops.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/vec_ops.cc.o.d"
  "/root/repo/src/stats/zipf.cc" "src/stats/CMakeFiles/af_stats.dir/zipf.cc.o" "gcc" "src/stats/CMakeFiles/af_stats.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

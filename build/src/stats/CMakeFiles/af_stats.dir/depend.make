# Empty dependencies file for af_stats.
# This may be replaced when dependencies are built.

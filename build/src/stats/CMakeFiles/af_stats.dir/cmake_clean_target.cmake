file(REMOVE_RECURSE
  "libaf_stats.a"
)

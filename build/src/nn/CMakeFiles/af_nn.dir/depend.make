# Empty dependencies file for af_nn.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/af_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/af_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/flatten.cc" "src/nn/CMakeFiles/af_nn.dir/flatten.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/flatten.cc.o.d"
  "/root/repo/src/nn/gradient_check.cc" "src/nn/CMakeFiles/af_nn.dir/gradient_check.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/gradient_check.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/af_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/maxpool2d.cc" "src/nn/CMakeFiles/af_nn.dir/maxpool2d.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/maxpool2d.cc.o.d"
  "/root/repo/src/nn/models.cc" "src/nn/CMakeFiles/af_nn.dir/models.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/models.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/af_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/relu.cc" "src/nn/CMakeFiles/af_nn.dir/relu.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/relu.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/af_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/sequential.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/af_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

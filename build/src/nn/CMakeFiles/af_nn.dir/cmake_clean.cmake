file(REMOVE_RECURSE
  "CMakeFiles/af_nn.dir/conv2d.cc.o"
  "CMakeFiles/af_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/af_nn.dir/dense.cc.o"
  "CMakeFiles/af_nn.dir/dense.cc.o.d"
  "CMakeFiles/af_nn.dir/flatten.cc.o"
  "CMakeFiles/af_nn.dir/flatten.cc.o.d"
  "CMakeFiles/af_nn.dir/gradient_check.cc.o"
  "CMakeFiles/af_nn.dir/gradient_check.cc.o.d"
  "CMakeFiles/af_nn.dir/loss.cc.o"
  "CMakeFiles/af_nn.dir/loss.cc.o.d"
  "CMakeFiles/af_nn.dir/maxpool2d.cc.o"
  "CMakeFiles/af_nn.dir/maxpool2d.cc.o.d"
  "CMakeFiles/af_nn.dir/models.cc.o"
  "CMakeFiles/af_nn.dir/models.cc.o.d"
  "CMakeFiles/af_nn.dir/optimizer.cc.o"
  "CMakeFiles/af_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/af_nn.dir/relu.cc.o"
  "CMakeFiles/af_nn.dir/relu.cc.o.d"
  "CMakeFiles/af_nn.dir/sequential.cc.o"
  "CMakeFiles/af_nn.dir/sequential.cc.o.d"
  "CMakeFiles/af_nn.dir/serialize.cc.o"
  "CMakeFiles/af_nn.dir/serialize.cc.o.d"
  "libaf_nn.a"
  "libaf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for af_core.
# This may be replaced when dependencies are built.

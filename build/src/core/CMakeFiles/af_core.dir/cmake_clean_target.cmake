file(REMOVE_RECURSE
  "libaf_core.a"
)

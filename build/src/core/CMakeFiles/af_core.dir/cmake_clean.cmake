file(REMOVE_RECURSE
  "CMakeFiles/af_core.dir/async_filter.cc.o"
  "CMakeFiles/af_core.dir/async_filter.cc.o.d"
  "CMakeFiles/af_core.dir/staleness_groups.cc.o"
  "CMakeFiles/af_core.dir/staleness_groups.cc.o.d"
  "CMakeFiles/af_core.dir/suspicious_score.cc.o"
  "CMakeFiles/af_core.dir/suspicious_score.cc.o.d"
  "libaf_core.a"
  "libaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_filter.cc" "src/core/CMakeFiles/af_core.dir/async_filter.cc.o" "gcc" "src/core/CMakeFiles/af_core.dir/async_filter.cc.o.d"
  "/root/repo/src/core/staleness_groups.cc" "src/core/CMakeFiles/af_core.dir/staleness_groups.cc.o" "gcc" "src/core/CMakeFiles/af_core.dir/staleness_groups.cc.o.d"
  "/root/repo/src/core/suspicious_score.cc" "src/core/CMakeFiles/af_core.dir/suspicious_score.cc.o" "gcc" "src/core/CMakeFiles/af_core.dir/suspicious_score.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defense/CMakeFiles/af_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/af_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

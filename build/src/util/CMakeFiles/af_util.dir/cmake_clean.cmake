file(REMOVE_RECURSE
  "CMakeFiles/af_util.dir/check.cc.o"
  "CMakeFiles/af_util.dir/check.cc.o.d"
  "CMakeFiles/af_util.dir/csv.cc.o"
  "CMakeFiles/af_util.dir/csv.cc.o.d"
  "CMakeFiles/af_util.dir/flags.cc.o"
  "CMakeFiles/af_util.dir/flags.cc.o.d"
  "CMakeFiles/af_util.dir/logging.cc.o"
  "CMakeFiles/af_util.dir/logging.cc.o.d"
  "CMakeFiles/af_util.dir/rng.cc.o"
  "CMakeFiles/af_util.dir/rng.cc.o.d"
  "CMakeFiles/af_util.dir/table.cc.o"
  "CMakeFiles/af_util.dir/table.cc.o.d"
  "CMakeFiles/af_util.dir/thread_pool.cc.o"
  "CMakeFiles/af_util.dir/thread_pool.cc.o.d"
  "libaf_util.a"
  "libaf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for af_attacks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/af_attacks.dir/adaptive.cc.o"
  "CMakeFiles/af_attacks.dir/adaptive.cc.o.d"
  "CMakeFiles/af_attacks.dir/attack.cc.o"
  "CMakeFiles/af_attacks.dir/attack.cc.o.d"
  "CMakeFiles/af_attacks.dir/coordinator.cc.o"
  "CMakeFiles/af_attacks.dir/coordinator.cc.o.d"
  "CMakeFiles/af_attacks.dir/gd.cc.o"
  "CMakeFiles/af_attacks.dir/gd.cc.o.d"
  "CMakeFiles/af_attacks.dir/lie.cc.o"
  "CMakeFiles/af_attacks.dir/lie.cc.o.d"
  "CMakeFiles/af_attacks.dir/min_opt.cc.o"
  "CMakeFiles/af_attacks.dir/min_opt.cc.o.d"
  "CMakeFiles/af_attacks.dir/registry.cc.o"
  "CMakeFiles/af_attacks.dir/registry.cc.o.d"
  "libaf_attacks.a"
  "libaf_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

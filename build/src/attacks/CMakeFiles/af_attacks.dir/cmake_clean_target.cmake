file(REMOVE_RECURSE
  "libaf_attacks.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/adaptive.cc" "src/attacks/CMakeFiles/af_attacks.dir/adaptive.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/adaptive.cc.o.d"
  "/root/repo/src/attacks/attack.cc" "src/attacks/CMakeFiles/af_attacks.dir/attack.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/attack.cc.o.d"
  "/root/repo/src/attacks/coordinator.cc" "src/attacks/CMakeFiles/af_attacks.dir/coordinator.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/coordinator.cc.o.d"
  "/root/repo/src/attacks/gd.cc" "src/attacks/CMakeFiles/af_attacks.dir/gd.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/gd.cc.o.d"
  "/root/repo/src/attacks/lie.cc" "src/attacks/CMakeFiles/af_attacks.dir/lie.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/lie.cc.o.d"
  "/root/repo/src/attacks/min_opt.cc" "src/attacks/CMakeFiles/af_attacks.dir/min_opt.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/min_opt.cc.o.d"
  "/root/repo/src/attacks/registry.cc" "src/attacks/CMakeFiles/af_attacks.dir/registry.cc.o" "gcc" "src/attacks/CMakeFiles/af_attacks.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

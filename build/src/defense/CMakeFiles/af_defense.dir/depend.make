# Empty dependencies file for af_defense.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/af_defense.dir/aflguard.cc.o"
  "CMakeFiles/af_defense.dir/aflguard.cc.o.d"
  "CMakeFiles/af_defense.dir/bucketing.cc.o"
  "CMakeFiles/af_defense.dir/bucketing.cc.o.d"
  "CMakeFiles/af_defense.dir/defense.cc.o"
  "CMakeFiles/af_defense.dir/defense.cc.o.d"
  "CMakeFiles/af_defense.dir/fldetector.cc.o"
  "CMakeFiles/af_defense.dir/fldetector.cc.o.d"
  "CMakeFiles/af_defense.dir/fltrust.cc.o"
  "CMakeFiles/af_defense.dir/fltrust.cc.o.d"
  "CMakeFiles/af_defense.dir/krum.cc.o"
  "CMakeFiles/af_defense.dir/krum.cc.o.d"
  "CMakeFiles/af_defense.dir/nnm.cc.o"
  "CMakeFiles/af_defense.dir/nnm.cc.o.d"
  "CMakeFiles/af_defense.dir/staleness_weighting.cc.o"
  "CMakeFiles/af_defense.dir/staleness_weighting.cc.o.d"
  "CMakeFiles/af_defense.dir/trimmed_mean.cc.o"
  "CMakeFiles/af_defense.dir/trimmed_mean.cc.o.d"
  "CMakeFiles/af_defense.dir/zeno.cc.o"
  "CMakeFiles/af_defense.dir/zeno.cc.o.d"
  "libaf_defense.a"
  "libaf_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

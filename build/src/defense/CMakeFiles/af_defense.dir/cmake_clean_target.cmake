file(REMOVE_RECURSE
  "libaf_defense.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/aflguard.cc" "src/defense/CMakeFiles/af_defense.dir/aflguard.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/aflguard.cc.o.d"
  "/root/repo/src/defense/bucketing.cc" "src/defense/CMakeFiles/af_defense.dir/bucketing.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/bucketing.cc.o.d"
  "/root/repo/src/defense/defense.cc" "src/defense/CMakeFiles/af_defense.dir/defense.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/defense.cc.o.d"
  "/root/repo/src/defense/fldetector.cc" "src/defense/CMakeFiles/af_defense.dir/fldetector.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/fldetector.cc.o.d"
  "/root/repo/src/defense/fltrust.cc" "src/defense/CMakeFiles/af_defense.dir/fltrust.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/fltrust.cc.o.d"
  "/root/repo/src/defense/krum.cc" "src/defense/CMakeFiles/af_defense.dir/krum.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/krum.cc.o.d"
  "/root/repo/src/defense/nnm.cc" "src/defense/CMakeFiles/af_defense.dir/nnm.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/nnm.cc.o.d"
  "/root/repo/src/defense/staleness_weighting.cc" "src/defense/CMakeFiles/af_defense.dir/staleness_weighting.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/staleness_weighting.cc.o.d"
  "/root/repo/src/defense/trimmed_mean.cc" "src/defense/CMakeFiles/af_defense.dir/trimmed_mean.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/trimmed_mean.cc.o.d"
  "/root/repo/src/defense/zeno.cc" "src/defense/CMakeFiles/af_defense.dir/zeno.cc.o" "gcc" "src/defense/CMakeFiles/af_defense.dir/zeno.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/af_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/af_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

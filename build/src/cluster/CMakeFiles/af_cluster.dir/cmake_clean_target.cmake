file(REMOVE_RECURSE
  "libaf_cluster.a"
)

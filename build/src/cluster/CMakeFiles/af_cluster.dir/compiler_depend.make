# Empty compiler generated dependencies file for af_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/af_cluster.dir/kmeans.cc.o"
  "CMakeFiles/af_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/af_cluster.dir/tsne.cc.o"
  "CMakeFiles/af_cluster.dir/tsne.cc.o.d"
  "libaf_cluster.a"
  "libaf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Observability demo: watch AsyncFilter's internals while a simulation
// runs. A buffer observer replays the filter's scoring pipeline (staleness
// grouping → moving averages → suspicious scores) on every aggregation
// buffer and prints the benign/malicious score separation — the quantity
// Theorem 1 reasons about.
//
//   ./score_inspection [--seed=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/staleness_groups.h"
#include "core/suspicious_score.h"
#include "fl/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::uint64_t seed = 7;
  try {
    flags.RejectUnknown({"seed"});
    if (!flags.positional().empty()) {
      seed = std::strtoull(flags.positional()[0].c_str(), nullptr, 10);
    }
    seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", static_cast<std::int64_t>(seed)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  fl::ExperimentConfig config =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 40;
  config.num_malicious = 8;
  config.sim.buffer_goal = 16;
  config.sim.rounds = 10;
  config.attack = attacks::AttackKind::kGd;
  config.defense = fl::DefenseKind::kAsyncFilter;

  // The observer mirrors the filter exactly: same inputs, same order.
  core::MovingAverageBank bank;
  std::printf("%-6s %-8s %-22s %-22s %s\n", "round", "groups",
              "benign score (mean)", "malicious score (mean)", "separated?");
  auto observer = [&](std::size_t round,
                      const std::vector<fl::ModelUpdate>& buffer) {
    for (const auto& u : buffer) {
      bank.Absorb(u.staleness, u.delta);
    }
    auto scores = core::ComputeSuspiciousScores(buffer, bank);
    double benign = 0.0, malicious = 0.0;
    std::size_t nb = 0, nm = 0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i].is_malicious_truth) {
        malicious += scores[i];
        ++nm;
      } else {
        benign += scores[i];
        ++nb;
      }
    }
    benign = nb > 0 ? benign / static_cast<double>(nb) : 0.0;
    malicious = nm > 0 ? malicious / static_cast<double>(nm) : 0.0;
    std::printf("%-6zu %-8zu %-22.4f %-22.4f %s\n", round,
                bank.Groups().size(), benign, malicious,
                nm == 0 ? "n/a" : (malicious > benign ? "yes" : "no"));
  };

  fl::SimulationResult result = fl::RunExperiment(config, observer);
  std::printf("\nfinal accuracy %.3f; detection precision %.2f recall %.2f\n",
              result.final_accuracy, result.total_confusion.Precision(),
              result.total_confusion.Recall());
  return 0;
}

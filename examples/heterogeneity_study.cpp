// Heterogeneity study: how the Dirichlet concentration α controls label
// skew across clients, and what that does to AsyncFilter vs FedBuff under
// the GD attack. Mirrors the paper's §5.3 narrative as a runnable script.
//
//   ./heterogeneity_study [--seed=N]
#include <cstdio>
#include <cstdlib>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/experiment.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::uint64_t seed = 7;
  try {
    flags.RejectUnknown({"seed"});
    if (!flags.positional().empty()) {
      seed = std::strtoull(flags.positional()[0].c_str(), nullptr, 10);
    }
    seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", static_cast<std::int64_t>(seed)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%-8s %-12s %-12s %-14s\n", "alpha", "label-skew", "FedBuff",
              "AsyncFilter");
  for (double alpha : {1.0, 0.1, 0.05, 0.01}) {
    // Measure the partition skew this α produces.
    data::SyntheticGenerator gen(
        data::MakeProfileSpec(data::Profile::kFashionMnist, 12), seed);
    data::Dataset pool = gen.Generate(3000, "train");
    auto rng = util::RngFactory(seed).Stream("partition");
    double skew = data::MeanLabelSkew(
        pool, data::DirichletPartition(pool, 40, 80, alpha, rng));

    // Run the attacked comparison at this heterogeneity level.
    fl::ExperimentConfig config =
        fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
    config.num_clients = 40;
    config.num_malicious = 8;
    config.sim.buffer_goal = 16;
    config.sim.rounds = 12;
    config.dirichlet_alpha = alpha;
    config.attack = attacks::AttackKind::kGd;

    config.defense = fl::DefenseKind::kFedBuff;
    double undefended = fl::RunExperiment(config).final_accuracy;
    config.defense = fl::DefenseKind::kAsyncFilter;
    double defended = fl::RunExperiment(config).final_accuracy;
    std::printf("%-8.2f %-12.3f %-12.3f %-14.3f\n", alpha, skew, undefended,
                defended);
  }
  return 0;
}

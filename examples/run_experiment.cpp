// General-purpose CLI runner: configure any experiment the library supports
// without writing code, and export traces/checkpoints.
//
//   ./run_experiment --profile=fashionmnist --attack=GD --defense=asyncfilter
//       --clients=50 --malicious=10 --rounds=20 --seed=7
//       --trace=run.csv --summary=summary.csv --save-model=model.afpm
//
// Flags (all optional):
//   --profile     mnist | fashionmnist | cifar10 | cinic10   [fashionmnist]
//   --attack      none | GD | LIE | min-max | min-sum | adaptive | label-flip
//   --defense     fedbuff | fldetector | asyncfilter | asyncfilter2means |
//                 krum | multikrum | trimmedmean | median | zeno | aflguard | nnm
//   --clients, --malicious, --buffer, --rounds, --staleness-limit,
//   --dirichlet, --zipf, --seed, --gd-scale, --threads, --partition
//   --trace FILE      per-round CSV        --summary FILE  run summary CSV
//   --save-model FILE final global model checkpoint (AFPM binary)
//   --quiet           suppress per-round output
//
// Distributed mode (see docs/NETWORK.md; parsed via fl::RuntimeOptions):
//   --transport       inproc | tcp | shm                  [inproc]
//                     shm = tcp handshake + control, data frames on
//                     per-client shared-memory rings (same host only)
//   --port            server port (tcp/shm; 0 = ephemeral loopback)
//   --reactor-shards  server event-loop shards (1 = deterministic default,
//                     <= 0 = one per core capped at 8)
//   --clients-virtual run the fleet as a multiplexed virtual-client pool
//                     instead of one thread+connection per client — this is
//                     what makes 100k+ client populations fit on one box
//   --pool-connections, --pool-workers
//                     virtual-pool shape (0 = auto: ~1 connection per 64
//                     clients / one worker per core)
//   --pool-latency-ms, --pool-latency-zipf
//                     per-client artificial latency model (timing only)
//   --fault-drop, --fault-delay, --fault-duplicate, --fault-truncate
//                     per-frame fault probabilities on client uplinks
//                     (real fleet only)
//   --fault-delay-ms  mean injected delay in milliseconds
//   --fault-kill      fraction of clients whose connection dies mid-run
//   --compress        identity | fp16 | int8 | topk-delta   [none]
//                     update-compression codec; over tcp it is negotiated in
//                     the handshake, inproc mirrors the same lossy round
//                     trip so both transports stay bit-identical
//   --list-codecs     print every registered codec name and exit
//
// Observability (see docs/OBSERVABILITY.md):
//   --jsonl FILE       per-round telemetry as JSON lines
//   --trace-out FILE   Chrome trace-event JSON of the run's internal spans
//                      (open in chrome://tracing or ui.perfetto.dev);
//                      implicitly enables span collection; over tcp it also
//                      enables trace-context propagation so client and
//                      server spans share trace ids (tools/merge_traces.py)
//   --metrics-out FILE metrics-registry snapshot JSON (counters, gauges,
//                      latency histograms with p50/p95/p99)
//   --metrics-port N   serve /metrics (Prometheus), /healthz, /spans over
//                      HTTP on 127.0.0.1:N for the duration of the run
//                      (0 = ephemeral; the bound port is printed)
//   --audit FILE       defense-decision audit trail: one JSONL record per
//                      update reaching the defense (verdict, score,
//                      staleness, wire cost, latencies)
//   --log-level LVL    trace | debug | info | warn | error
//
// Resumable runs (see docs/API.md "Checkpoints"):
//   --checkpoint FILE        crash-safe simulation checkpoint path
//   --checkpoint-every N     write it every N completed rounds   [5]
//   --resume                 restore from --checkpoint if it exists
//   --summary-json FILE      run summary as one JSON object
//   --list-defenses          print every registered defense name and exit
//
// SIGTERM/SIGINT request a final checkpoint (when --checkpoint is set) and a
// graceful early exit; SIGKILL mid-run loses at most the rounds since the
// last periodic checkpoint.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "defense/registry.h"
#include "fl/experiment.h"
#include "fl/runtime_options.h"
#include "fl/telemetry.h"
#include "fl/trace.h"
#include "nn/serialize.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

data::Profile ParseProfile(const std::string& name) {
  if (name == "mnist") {
    return data::Profile::kMnist;
  }
  if (name == "fashionmnist" || name == "fashion") {
    return data::Profile::kFashionMnist;
  }
  if (name == "cifar10" || name == "cifar") {
    return data::Profile::kCifar10;
  }
  if (name == "cinic10" || name == "cinic") {
    return data::Profile::kCinic10;
  }
  AF_CHECK(false) << "unknown profile: " << name;
  return data::Profile::kFashionMnist;
}

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  try {
    std::vector<std::string> known = {
        "profile", "attack", "defense", "clients", "malicious", "buffer",
        "rounds", "staleness-limit", "dirichlet", "zipf", "seed", "gd-scale",
        "threads", "partition", "trace", "summary", "save-model", "quiet",
        "jsonl", "trace-out", "metrics-out", "log-level", "checkpoint",
        "checkpoint-every", "resume", "summary-json", "list-defenses",
        "list-codecs", "audit",
    };
    const auto& runtime_flags = fl::RuntimeOptions::FlagNames();
    known.insert(known.end(), runtime_flags.begin(), runtime_flags.end());
    flags.RejectUnknown(known);
    if (flags.GetBool("list-defenses", false)) {
      for (const std::string& name : defense::ListNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (flags.GetBool("list-codecs", false)) {
      for (const std::string& name : compress::ListNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (flags.Has("log-level")) {
      const std::string name = flags.GetString("log-level", "info");
      const auto level = util::ParseLogLevel(name);
      AF_CHECK(level.has_value()) << "unknown --log-level: " << name;
      util::SetLogLevel(*level);
    }
    if (flags.Has("trace-out")) {
      obs::TraceRecorder::Global().SetEnabled(true);
    }

    const data::Profile profile =
        ParseProfile(flags.GetString("profile", "fashionmnist"));
    const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));

    fl::ExperimentConfig config = fl::MakeDefaultConfig(profile, seed);
    config.num_clients = static_cast<std::size_t>(flags.GetInt("clients", 50));
    config.num_malicious =
        static_cast<std::size_t>(flags.GetInt("malicious", 10));
    config.partition_size = static_cast<std::size_t>(
        flags.GetInt("partition", static_cast<std::int64_t>(config.partition_size)));
    config.sim.buffer_goal =
        static_cast<std::size_t>(flags.GetInt("buffer", 20));
    config.sim.rounds = static_cast<std::size_t>(flags.GetInt("rounds", 20));
    config.sim.staleness_limit =
        static_cast<std::size_t>(flags.GetInt("staleness-limit", 20));
    config.dirichlet_alpha = flags.GetDouble("dirichlet", 0.1);
    config.sim.zipf_s = flags.GetDouble("zipf", 1.2);
    config.gd_scale = flags.GetDouble("gd-scale", config.gd_scale);
    config.threads = static_cast<std::size_t>(flags.GetInt("threads", 0));
    config.attack = attacks::ParseAttackKind(flags.GetString("attack", "none"));
    // --defense resolves through the string-keyed defense registry, so any
    // self-registered defense is reachable without touching this file;
    // unknown names fail fast (before dataset synthesis) with the full list.
    const std::string defense_name =
        flags.GetString("defense", "asyncfilter");
    AF_CHECK(defense::Registry::Global().Has(defense_name))
        << "unknown --defense: " << defense_name
        << " (try --list-defenses)";
    config.defense_factory = [defense_name] {
      return defense::Make(defense_name);
    };
    // The shared runtime surface: --transport/--fault-*/--compress/
    // --metrics-port plus the virtual-pool and reactor knobs, validated as
    // a unit (unknown codecs, virtual×faults conflicts, …) before dataset
    // synthesis starts.
    const fl::RuntimeOptions runtime =
        fl::RuntimeOptions::FromFlags(flags, seed);
    runtime.Validate();
    runtime.ApplyTo(&config);

    if (flags.Has("checkpoint")) {
      config.checkpoint_path = flags.GetString("checkpoint", "");
      config.checkpoint_every =
          static_cast<std::size_t>(flags.GetInt("checkpoint-every", 5));
      config.resume = flags.GetBool("resume", false);
      config.stop_flag = &g_stop;
      std::signal(SIGTERM, HandleStopSignal);
      std::signal(SIGINT, HandleStopSignal);
    }

    // With tracing on, a tcp run also propagates trace context over the
    // wire so client train spans and server defense spans share trace ids.
    config.net.trace_context = flags.Has("trace-out");

    // Live observability plane: scrape endpoint + audit trail. Both are
    // observation-only — results are bit-identical with them on or off.
    std::unique_ptr<obs::MetricsExporter> exporter;
    if (runtime.has_metrics_port) {
      obs::MetricsExporterOptions exporter_options;
      exporter_options.port = runtime.metrics_port;
      exporter = std::make_unique<obs::MetricsExporter>(exporter_options);
      std::printf("metrics endpoint: http://127.0.0.1:%u/metrics "
                  "(/healthz, /spans)\n",
                  static_cast<unsigned>(exporter->port()));
    }
    if (flags.Has("audit")) {
      obs::AuditTrail::Global().Open(flags.GetString("audit", ""));
    }

    const bool quiet = flags.GetBool("quiet", false);
    std::printf("profile=%s attack=%s defense=%s clients=%zu malicious=%zu "
                "rounds=%zu seed=%llu transport=%s\n",
                data::ProfileName(profile),
                attacks::AttackKindName(config.attack), defense_name.c_str(),
                config.num_clients, config.num_malicious, config.sim.rounds,
                static_cast<unsigned long long>(seed),
                fl::TransportKindName(config.transport));
    if (!config.compress.empty()) {
      std::printf("compress=%s\n", config.compress.c_str());
    }

    fl::SimulationResult result = fl::RunExperiment(config);
    if (flags.Has("audit")) {
      std::printf("audit trail (%llu records) written to %s\n",
                  static_cast<unsigned long long>(
                      obs::AuditTrail::Global().RecordCount()),
                  flags.GetString("audit", "").c_str());
      obs::AuditTrail::Global().Close();
    }
    if (exporter != nullptr) {
      std::printf("metrics endpoint served %llu requests\n",
                  static_cast<unsigned long long>(
                      exporter->requests_served()));
    }
    if (result.interrupted) {
      std::printf("interrupted after %zu rounds; rerun with --resume to "
                  "continue from %s\n",
                  result.rounds.size(), config.checkpoint_path.c_str());
    }
    if (!quiet) {
      for (const auto& r : result.rounds) {
        std::printf("round %3zu  acc=%6.3f  accepted=%zu rejected=%zu "
                    "deferred=%zu stale-dropped=%zu\n",
                    r.round + 1, r.test_accuracy, r.accepted, r.rejected,
                    r.deferred, r.dropped_stale);
      }
    }
    std::printf("wall clock %.2fs\n", result.wall_seconds);
    std::printf("final accuracy %.4f  detection precision %.2f recall %.2f\n",
                result.final_accuracy, result.total_confusion.Precision(),
                result.total_confusion.Recall());
    if (result.evicted_clients > 0) {
      std::printf("evicted clients: %zu (aggregated from survivors)\n",
                  result.evicted_clients);
    }

    if (flags.Has("trace")) {
      fl::WriteRoundTraceCsv(result, flags.GetString("trace", ""));
      std::printf("trace written to %s\n", flags.GetString("trace", "").c_str());
    }
    if (flags.Has("summary")) {
      fl::WriteSummaryCsv(result, flags.GetString("summary", ""));
    }
    if (flags.Has("summary-json")) {
      const std::string path = flags.GetString("summary-json", "");
      fl::WriteRunSummaryJson(result, path);
      std::printf("run summary written to %s\n", path.c_str());
    }
    if (flags.Has("jsonl")) {
      fl::WriteRoundsJsonl(result, flags.GetString("jsonl", ""));
      std::printf("round telemetry written to %s\n",
                  flags.GetString("jsonl", "").c_str());
    }
    if (flags.Has("trace-out")) {
      const std::string path = flags.GetString("trace-out", "");
      obs::TraceRecorder::Global().WriteChromeTrace(path);
      std::printf("trace (%zu spans) written to %s — open in "
                  "chrome://tracing or ui.perfetto.dev\n",
                  obs::TraceRecorder::Global().SpanCount(), path.c_str());
    }
    if (flags.Has("metrics-out")) {
      const std::string path = flags.GetString("metrics-out", "");
      obs::DefaultRegistry().WriteJson(path);
      std::printf("metrics snapshot written to %s\n", path.c_str());
    }
    if (flags.Has("save-model")) {
      nn::SaveFlatParams(flags.GetString("save-model", ""), result.final_model);
      std::printf("model checkpoint written to %s (%zu params)\n",
                  flags.GetString("save-model", "").c_str(),
                  result.final_model.size());
    }
  } catch (const std::exception& e) {
    // util::CheckError and the observability writers' std::runtime_error.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// Attack gallery: all four untargeted poisoning attacks from the paper
// (GD, LIE, Min-Max, Min-Sum) against an undefended FedBuff server and one
// running AsyncFilter, on the FashionMNIST-like workload. Prints final
// accuracy plus AsyncFilter's detection precision/recall per attack.
//
//   ./attack_gallery [--seed=N]
#include <cstdio>
#include <cstdlib>

#include "fl/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::uint64_t seed = 7;
  try {
    flags.RejectUnknown({"seed"});
    if (!flags.positional().empty()) {
      seed = std::strtoull(flags.positional()[0].c_str(), nullptr, 10);
    }
    seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", static_cast<std::int64_t>(seed)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  fl::ExperimentConfig base =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  base.num_clients = 40;
  base.num_malicious = 8;
  base.sim.buffer_goal = 16;
  base.sim.rounds = 12;

  std::printf("%-10s %-12s %-14s %-11s %-8s\n", "attack", "FedBuff",
              "AsyncFilter", "precision", "recall");
  for (auto attack : {attacks::AttackKind::kGd, attacks::AttackKind::kLie,
                      attacks::AttackKind::kMinMax,
                      attacks::AttackKind::kMinSum}) {
    fl::ExperimentConfig config = base;
    config.attack = attack;
    config.defense = fl::DefenseKind::kFedBuff;
    double undefended = fl::RunExperiment(config).final_accuracy;
    config.defense = fl::DefenseKind::kAsyncFilter;
    fl::SimulationResult defended = fl::RunExperiment(config);
    std::printf("%-10s %-12.3f %-14.3f %-11.2f %-8.2f\n",
                attacks::AttackKindName(attack), undefended,
                defended.final_accuracy, defended.total_confusion.Precision(),
                defended.total_confusion.Recall());
  }
  return 0;
}

// Plug-and-play demo: implement a brand-new server defense against the
// public defense::Defense interface and drop it into the simulator through
// ExperimentConfig::defense_factory — the exact extension point AsyncFilter
// itself uses.
//
// The custom defense here is norm clipping: updates whose l2 norm exceeds
// c × median-norm are rescaled down to the bound (a common industrial
// baseline). It is compared against FedBuff and AsyncFilter under GD.
//
//   ./custom_defense [--seed=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fl/experiment.h"
#include "stats/vec_ops.h"
#include "util/flags.h"

namespace {

// Median-norm clipping: robust to a minority of huge updates, blind to
// direction-only attacks — which the comparison below makes visible.
class NormClipDefense : public defense::Defense {
 public:
  explicit NormClipDefense(double clip_factor) : clip_factor_(clip_factor) {}

  defense::AggregationResult Process(
      const defense::FilterContext& /*context*/,
      const std::vector<fl::ModelUpdate>& updates) override {
    std::vector<double> norms;
    norms.reserve(updates.size());
    for (const auto& u : updates) {
      norms.push_back(stats::L2Norm(u.delta));
    }
    std::vector<double> sorted = norms;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double bound = clip_factor_ * sorted[sorted.size() / 2];

    std::vector<std::vector<float>> clipped;
    std::vector<double> weights;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      std::vector<float> delta = updates[i].delta.ToVector();
      if (norms[i] > bound && norms[i] > 1e-12) {
        stats::Scale(delta, bound / norms[i]);
      }
      clipped.push_back(std::move(delta));
      weights.push_back(static_cast<double>(updates[i].num_samples));
    }
    defense::AggregationResult result;
    result.verdicts.assign(updates.size(), defense::Verdict::kAccepted);
    result.aggregated_delta = stats::WeightedMean(clipped, weights);
    return result;
  }

  std::string Name() const override { return "NormClip"; }

 private:
  double clip_factor_;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::uint64_t seed = 7;
  try {
    flags.RejectUnknown({"seed"});
    if (!flags.positional().empty()) {
      seed = std::strtoull(flags.positional()[0].c_str(), nullptr, 10);
    }
    seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", static_cast<std::int64_t>(seed)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  fl::ExperimentConfig base =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  base.num_clients = 40;
  base.num_malicious = 8;
  base.sim.buffer_goal = 16;
  base.sim.rounds = 12;
  base.attack = attacks::AttackKind::kGd;
  base.gd_scale = 2.0;

  fl::ExperimentConfig fedbuff = base;
  fedbuff.defense = fl::DefenseKind::kFedBuff;

  fl::ExperimentConfig clipped = base;
  clipped.defense_factory = [] { return std::make_unique<NormClipDefense>(1.5); };

  fl::ExperimentConfig asyncfilter = base;
  asyncfilter.defense = fl::DefenseKind::kAsyncFilter;

  std::printf("GD attack, 20%% malicious, FashionMNIST-like workload\n");
  std::printf("%-14s %.3f\n", "FedBuff", fl::RunExperiment(fedbuff).final_accuracy);
  std::printf("%-14s %.3f\n", "NormClip(1.5)", fl::RunExperiment(clipped).final_accuracy);
  std::printf("%-14s %.3f\n", "AsyncFilter", fl::RunExperiment(asyncfilter).final_accuracy);
  std::printf("\nNormClip bounds the damage (GD updates are big) but cannot\n"
              "remove reversed directions; AsyncFilter filters them out.\n");
  return 0;
}

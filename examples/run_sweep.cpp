// Grid sweep driver: runs every (profile × attack × defense × seed) cell of
// a config-defined grid, checkpointing each cell so a killed sweep resumes
// where it stopped.
//
//   ./run_sweep --out=sweep/ --profiles=mnist,fashionmnist
//               --attacks=GD,LIE --defenses=fedbuff,asyncfilter
//               --seeds=1,2,3 --rounds=20 --clients=50 --malicious=10
//
// Per cell the driver writes into --out:
//   <cell>.ckpt          crash-safe mid-run checkpoint (deleted on success)
//   <cell>.summary.json  run summary — doubles as the cell's done-marker
//   <cell>.row.{csv,jsonl}  one consolidated-results line each
//
// Resume semantics: rerunning the identical command skips cells whose
// summary exists, restores half-finished cells from their checkpoint, and
// only writes the consolidated results.csv / results.jsonl once every cell
// has completed. SIGTERM/SIGINT checkpoint the in-flight cell and exit
// cleanly; SIGKILL loses at most --checkpoint-every rounds of the in-flight
// cell.
//
// Flags:
//   --out DIR            output directory                     [sweep_out]
//   --profiles LIST      comma-separated dataset profiles     [fashionmnist]
//   --attacks LIST       comma-separated attack names         [none,GD]
//   --defenses LIST      comma-separated defense names        [fedbuff,asyncfilter]
//   --seeds LIST         comma-separated integer seeds        [1,2]
//   --rounds, --clients, --malicious, --buffer, --threads     usual meanings
//   --checkpoint-every N checkpoint cadence within a cell     [5]
//   --quiet              suppress per-cell round output
//
// Runtime flags (shared fl::RuntimeOptions surface, applied to every cell):
//   --compress CODEC     update-compression codec (identity | fp16 | int8 |
//                        topk-delta)                           [none]
//   --transport KIND     inproc | tcp | shm                    [inproc]
//                        (checkpoint/resume only works inproc; tcp/shm
//                        cells restart from scratch when killed)
//   --clients-virtual, --pool-connections, --pool-workers,
//   --pool-latency-ms, --pool-latency-zipf, --reactor-shards, --port,
//   --fault-*            see run_experiment.cpp
//   --metrics-port N     serve /metrics, /healthz, /spans over HTTP on
//                        127.0.0.1:N for the sweep's duration (0 = ephemeral)
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "defense/registry.h"
#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/runtime_options.h"
#include "fl/telemetry.h"
#include "obs/export.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

data::Profile ParseProfile(const std::string& name) {
  if (name == "mnist") {
    return data::Profile::kMnist;
  }
  if (name == "fashionmnist" || name == "fashion") {
    return data::Profile::kFashionMnist;
  }
  if (name == "cifar10" || name == "cifar") {
    return data::Profile::kCifar10;
  }
  if (name == "cinic10" || name == "cinic") {
    return data::Profile::kCinic10;
  }
  AF_CHECK(false) << "unknown profile: " << name;
  return data::Profile::kFashionMnist;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  AF_CHECK(!items.empty()) << "empty list: " << csv;
  return items;
}

// File-name-safe cell id: lowercase alphanumerics, everything else → '-'.
std::string Sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('-');
    }
  }
  return out;
}

void AppendFileTo(std::ofstream& out, const std::filesystem::path& path) {
  std::ifstream in(path);
  AF_CHECK(in.good()) << "sweep: missing per-cell row file " << path.string()
                      << " (delete the cell's .summary.json to re-run it)";
  out << in.rdbuf();
}

struct Cell {
  std::string profile;
  std::string attack;
  std::string defense;
  std::uint64_t seed = 0;
  std::string id;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  try {
    std::vector<std::string> known = {
        "out", "profiles", "attacks", "defenses", "seeds", "rounds",
        "clients", "malicious", "buffer", "threads", "checkpoint-every",
        "quiet",
    };
    const auto& runtime_flags = fl::RuntimeOptions::FlagNames();
    known.insert(known.end(), runtime_flags.begin(), runtime_flags.end());
    flags.RejectUnknown(known);
    const std::filesystem::path out_dir =
        flags.GetString("out", "sweep_out");
    std::filesystem::create_directories(out_dir);

    // The shared runtime surface (transport/faults/codec/pool), validated
    // once and applied to every cell. Seed 0 here only feeds the fault
    // injector default; each cell re-seeds it below.
    fl::RuntimeOptions runtime = fl::RuntimeOptions::FromFlags(flags, 0);
    runtime.Validate();

    // Live scrape endpoint across the whole sweep: watch sim.round /
    // sim.rounds advance cell by cell without touching the output files.
    std::unique_ptr<obs::MetricsExporter> exporter;
    if (runtime.has_metrics_port) {
      obs::MetricsExporterOptions exporter_options;
      exporter_options.port = runtime.metrics_port;
      exporter = std::make_unique<obs::MetricsExporter>(exporter_options);
      std::printf("metrics endpoint: http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(exporter->port()));
    }

    const auto profiles = SplitList(flags.GetString("profiles", "fashionmnist"));
    const auto attack_names = SplitList(flags.GetString("attacks", "none,GD"));
    const auto defense_names =
        SplitList(flags.GetString("defenses", "fedbuff,asyncfilter"));
    std::vector<std::uint64_t> seeds;
    for (const std::string& s : SplitList(flags.GetString("seeds", "1,2"))) {
      seeds.push_back(std::stoull(s));
    }
    for (const std::string& name : defense_names) {
      AF_CHECK(defense::Registry::Global().Has(name))
          << "unknown defense in --defenses: " << name;
    }
    std::vector<Cell> grid;
    for (const auto& profile : profiles) {
      for (const auto& attack : attack_names) {
        for (const auto& defense : defense_names) {
          for (std::uint64_t seed : seeds) {
            Cell cell{profile, attack, defense, seed, {}};
            cell.id = Sanitize(profile) + "_" + Sanitize(attack) + "_" +
                      Sanitize(defense) + "_s" + std::to_string(seed);
            grid.push_back(std::move(cell));
          }
        }
      }
    }
    std::printf("sweep: %zu cells → %s\n", grid.size(),
                out_dir.string().c_str());

    std::signal(SIGTERM, HandleStopSignal);
    std::signal(SIGINT, HandleStopSignal);

    const bool quiet = flags.GetBool("quiet", false);
    std::size_t skipped = 0;
    std::size_t completed = 0;
    bool interrupted = false;
    for (const Cell& cell : grid) {
      const auto summary_path = out_dir / (cell.id + ".summary.json");
      const auto ckpt_path = out_dir / (cell.id + ".ckpt");
      const auto csv_row_path = out_dir / (cell.id + ".row.csv");
      const auto jsonl_row_path = out_dir / (cell.id + ".row.jsonl");
      if (std::filesystem::exists(summary_path)) {
        ++skipped;
        continue;
      }
      if (g_stop.load(std::memory_order_relaxed)) {
        interrupted = true;
        break;
      }

      fl::ExperimentConfig config =
          fl::MakeDefaultConfig(ParseProfile(cell.profile), cell.seed);
      config.num_clients =
          static_cast<std::size_t>(flags.GetInt("clients", 50));
      config.num_malicious =
          static_cast<std::size_t>(flags.GetInt("malicious", 10));
      config.sim.buffer_goal =
          static_cast<std::size_t>(flags.GetInt("buffer", 20));
      config.sim.rounds =
          static_cast<std::size_t>(flags.GetInt("rounds", 20));
      config.threads = static_cast<std::size_t>(flags.GetInt("threads", 0));
      config.attack = attacks::ParseAttackKind(cell.attack);
      runtime.net.faults.seed = cell.seed;  // reproducible per cell
      runtime.ApplyTo(&config);
      const std::string defense_name = cell.defense;
      config.defense_factory = [defense_name] {
        return defense::Make(defense_name);
      };
      // Mid-run checkpointing is an inproc-only affordance: distributed
      // cells restart from scratch if the sweep dies mid-cell, but the
      // summary done-markers still make the sweep itself resumable.
      if (runtime.transport == fl::TransportKind::kInproc) {
        config.checkpoint_path = ckpt_path.string();
        config.checkpoint_every =
            static_cast<std::size_t>(flags.GetInt("checkpoint-every", 5));
        config.resume = fl::CheckpointExists(ckpt_path.string());
      }
      config.stop_flag = &g_stop;

      std::printf("sweep: cell %s%s\n", cell.id.c_str(),
                  config.resume ? " (resuming from checkpoint)" : "");
      fl::SimulationResult result = fl::RunExperiment(config);
      if (result.interrupted) {
        std::printf("sweep: cell %s checkpointed at round %zu\n",
                    cell.id.c_str(), result.rounds.size());
        interrupted = true;
        break;
      }
      if (!quiet) {
        std::printf("sweep: cell %s done  acc=%.4f precision=%.2f "
                    "recall=%.2f\n",
                    cell.id.c_str(), result.final_accuracy,
                    result.total_confusion.Precision(),
                    result.total_confusion.Recall());
      }

      // Row files first, the summary (the done-marker) last: a crash in
      // between re-runs the cell rather than consolidating a partial one.
      {
        std::ofstream csv(csv_row_path, std::ios::trunc);
        csv << cell.id << ',' << cell.profile << ',' << cell.attack << ','
            << cell.defense << ',' << cell.seed << ','
            << result.rounds.size() << ',' << result.final_accuracy << ','
            << result.total_confusion.Precision() << ','
            << result.total_confusion.Recall() << ','
            << result.total_dropped_stale << '\n';
      }
      {
        std::ofstream jsonl(jsonl_row_path, std::ios::trunc);
        jsonl << "{\"cell\":\"" << cell.id << "\",\"profile\":\""
              << cell.profile << "\",\"attack\":\"" << cell.attack
              << "\",\"defense\":\"" << cell.defense
              << "\",\"seed\":" << cell.seed
              << ",\"summary\":" << fl::RunSummaryJson(result) << "}\n";
      }
      fl::WriteRunSummaryJson(result, summary_path.string());
      std::filesystem::remove(ckpt_path);
      ++completed;
    }

    if (interrupted) {
      std::printf("sweep: interrupted — %zu cells already done, rerun the "
                  "same command to resume\n",
                  skipped + completed);
      return 0;
    }

    // Every cell is done: consolidate per-cell rows, grid order.
    const auto csv_path = out_dir / "results.csv";
    const auto jsonl_path = out_dir / "results.jsonl";
    {
      std::ofstream csv(csv_path, std::ios::trunc);
      csv << "cell,profile,attack,defense,seed,rounds,final_accuracy,"
             "precision,recall,dropped_stale\n";
      for (const Cell& cell : grid) {
        AppendFileTo(csv, out_dir / (cell.id + ".row.csv"));
      }
    }
    {
      std::ofstream jsonl(jsonl_path, std::ios::trunc);
      for (const Cell& cell : grid) {
        AppendFileTo(jsonl, out_dir / (cell.id + ".row.jsonl"));
      }
    }
    std::printf("sweep: complete — %zu run now, %zu resumed as done; "
                "results in %s and %s\n",
                completed, skipped, csv_path.string().c_str(),
                jsonl_path.string().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

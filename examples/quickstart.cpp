// Quickstart: asynchronous federated learning with AsyncFilter.
//
// Runs a small AFL job on the FashionMNIST-like workload twice — once
// undefended under the GD poisoning attack, once with AsyncFilter plugged in
// — and prints the round-by-round test accuracy of both.
//
//   ./quickstart [--seed=N]
#include <cstdio>
#include <cstdlib>

#include "fl/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::uint64_t seed = 7;
  try {
    flags.RejectUnknown({"seed"});
    if (!flags.positional().empty()) {
      seed = std::strtoull(flags.positional()[0].c_str(), nullptr, 10);
    }
    seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", static_cast<std::int64_t>(seed)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // A scaled-down version of the paper's default setting (§5.1): Dirichlet
  // non-IID partitions, Zipf client speeds, FedBuff-style buffered
  // aggregation, 20% of the clients running the GD attack.
  fl::ExperimentConfig config =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 50;
  config.num_malicious = 10;
  config.sim.buffer_goal = 20;
  config.sim.rounds = 15;
  config.attack = attacks::AttackKind::kGd;

  std::printf("Asynchronous FL, %zu clients (%zu malicious, GD attack)\n",
              config.num_clients, config.num_malicious);

  config.defense = fl::DefenseKind::kFedBuff;
  fl::SimulationResult undefended = fl::RunExperiment(config);

  config.defense = fl::DefenseKind::kAsyncFilter;
  fl::SimulationResult defended = fl::RunExperiment(config);

  std::printf("%-7s %-12s %-12s\n", "round", "FedBuff", "AsyncFilter");
  for (std::size_t r = 0; r < undefended.rounds.size(); ++r) {
    std::printf("%-7zu %-12.3f %-12.3f\n", r + 1,
                undefended.rounds[r].test_accuracy,
                defended.rounds[r].test_accuracy);
  }
  std::printf("\nfinal accuracy: FedBuff %.3f vs AsyncFilter %.3f\n",
              undefended.final_accuracy, defended.final_accuracy);
  std::printf("AsyncFilter detection: precision %.2f recall %.2f\n",
              defended.total_confusion.Precision(),
              defended.total_confusion.Recall());
  return 0;
}

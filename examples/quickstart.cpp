// Quickstart: asynchronous federated learning with AsyncFilter.
//
// Runs a small AFL job on the FashionMNIST-like workload twice — once
// undefended under the GD poisoning attack, once with AsyncFilter plugged in
// — and prints the round-by-round test accuracy of both.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "fl/experiment.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A scaled-down version of the paper's default setting (§5.1): Dirichlet
  // non-IID partitions, Zipf client speeds, FedBuff-style buffered
  // aggregation, 20% of the clients running the GD attack.
  fl::ExperimentConfig config =
      fl::MakeDefaultConfig(data::Profile::kFashionMnist, seed);
  config.num_clients = 50;
  config.num_malicious = 10;
  config.sim.buffer_goal = 20;
  config.sim.rounds = 15;
  config.attack = attacks::AttackKind::kGd;

  std::printf("Asynchronous FL, %zu clients (%zu malicious, GD attack)\n",
              config.num_clients, config.num_malicious);

  config.defense = fl::DefenseKind::kFedBuff;
  fl::SimulationResult undefended = fl::RunExperiment(config);

  config.defense = fl::DefenseKind::kAsyncFilter;
  fl::SimulationResult defended = fl::RunExperiment(config);

  std::printf("%-7s %-12s %-12s\n", "round", "FedBuff", "AsyncFilter");
  for (std::size_t r = 0; r < undefended.rounds.size(); ++r) {
    std::printf("%-7zu %-12.3f %-12.3f\n", r + 1,
                undefended.rounds[r].test_accuracy,
                defended.rounds[r].test_accuracy);
  }
  std::printf("\nfinal accuracy: FedBuff %.3f vs AsyncFilter %.3f\n",
              undefended.final_accuracy, defended.final_accuracy);
  std::printf("AsyncFilter detection: precision %.2f recall %.2f\n",
              defended.total_confusion.Precision(),
              defended.total_confusion.Recall());
  return 0;
}

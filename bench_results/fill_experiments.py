#!/usr/bin/env python3
"""Extracts the method×attack tables from bench_output.txt (markdown-style
console tables) so EXPERIMENTS.md can quote measured values verbatim."""
import re
import sys

def extract(path, title_fragment):
    lines = open(path).read().splitlines()
    out, capture = [], False
    for line in lines:
        if title_fragment in line:
            capture = True
            continue
        if capture:
            if line.startswith('|'):
                out.append(line)
            elif out:
                break
    return '\n'.join(out)

if __name__ == '__main__':
    for fragment in sys.argv[2:]:
        print(f'### {fragment}')
        print(extract(sys.argv[1], fragment))
        print()

#include "core/async_filter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/kmeans.h"
#include "core/suspicious_score.h"
#include "defense/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace core {
namespace {

// Self-registration: any binary that links AsyncFilter can build it (and
// its ablation variants) by name through defense::Registry.
AsyncFilterOptions VariantOptions(std::size_t clusters, MidBandPolicy policy) {
  AsyncFilterOptions options;
  options.num_clusters = clusters;
  options.mid_band = policy;
  return options;
}

const defense::RegistryEntry kRegisterAsyncFilter{
    "asyncfilter",
    {"asyncfilter3means"},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>();
    }};
const defense::RegistryEntry kRegisterAsyncFilter2Means{
    "asyncfilter2means",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(2, MidBandPolicy::kAccept));
    }};
const defense::RegistryEntry kRegisterAsyncFilterDeferMid{
    "asyncfilterdefermid",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(3, MidBandPolicy::kDefer));
    }};
const defense::RegistryEntry kRegisterAsyncFilterRejectMid{
    "asyncfilterrejectmid",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(3, MidBandPolicy::kReject));
    }};

// Indices whose score interval could straddle a cluster-band boundary and
// therefore need exact rescoring before the verdict is trusted.
//
// The distance bounds are certified (|own_i − exact_i| ≤ bounds_i); at the
// score level they propagate conservatively: every own-distance has relative
// error ≤ rel_i, and an RMS/L2 denominator over values with relative error
// ≤ rel_max has relative error ≤ rel_max itself, so
//   score_i ∈ score_i · [(1 − rel_i)/(1 + rel_max), (1 + rel_i)/(1 − rel_max)].
std::vector<std::size_t> FindBorderline(const std::vector<double>& scores,
                                        const std::vector<double>& own,
                                        const std::vector<double>& bounds,
                                        const cluster::KMeansResult& clustering) {
  const std::size_t n = scores.size();
  std::vector<double> rel(n, 0.0);
  double rel_max = 0.0;
  bool all_borderline = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (bounds[i] <= 0.0) {
      continue;
    }
    const double denom = own[i] - bounds[i];
    if (denom <= 0.0) {
      all_borderline = true;  // bound swallows the distance entirely
      break;
    }
    rel[i] = bounds[i] / denom;
    rel_max = std::max(rel_max, rel[i]);
  }
  std::vector<std::size_t> borderline;
  if (all_borderline || rel_max >= 0.5) {
    borderline.resize(n);
    std::iota(borderline.begin(), borderline.end(), 0u);
    return borderline;
  }

  std::vector<double> centers;
  centers.reserve(clustering.centroids.size());
  for (const auto& c : clustering.centroids) {
    centers.push_back(c[0]);
  }
  std::sort(centers.begin(), centers.end());
  std::vector<double> cuts;  // band boundaries: midpoints between centroids
  for (std::size_t b = 0; b + 1 < centers.size(); ++b) {
    cuts.push_back(0.5 * (centers[b] + centers[b + 1]));
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (bounds[i] <= 0.0) {
      continue;
    }
    const double lo = scores[i] * (1.0 - rel[i]) / (1.0 + rel_max);
    const double hi = scores[i] * (1.0 + rel[i]) / (1.0 - rel_max);
    for (double cut : cuts) {
      if (lo <= cut && cut <= hi) {
        borderline.push_back(i);
        break;
      }
    }
  }
  return borderline;
}

}  // namespace

void EnsureAsyncFilterRegistered() {
  // Static initialization of this translation unit did the actual work.
}

AsyncFilter::AsyncFilter(AsyncFilterOptions options)
    : options_(options),
      scorer_(options.scorer_mode.value_or(score::ScorerModeFromEnv())),
      degenerate_rounds_(
          &obs::DefaultRegistry().GetCounter("defense.degenerate_rounds")) {
  AF_CHECK_GE(options_.num_clusters, 2u);
  AF_CHECK_LE(options_.num_clusters, 3u);
}

std::string AsyncFilter::Name() const {
  if (options_.num_clusters == 2) {
    return "AsyncFilter-2means";
  }
  return "AsyncFilter";
}

void AsyncFilter::Reset() {
  bank_.Reset();
  deferral_counts_.clear();
  scorer_.Clear();
  scorer_.ClearReferences();
  kmeans_state_.Reset();
}

void AsyncFilter::SaveState(util::serial::Writer& w) const {
  bank_.Save(w);
  w.U64(deferral_counts_.size());
  for (const auto& [key, count] : deferral_counts_) {
    w.I64(key.first);
    w.U64(key.second);
    w.U64(count);
  }
  // Warm-start centroids are cross-round state: a resumed run must take the
  // identical warm/cold clustering branch with identical seeds.
  kmeans_state_.Save(w);
}

void AsyncFilter::LoadState(util::serial::Reader& r) {
  bank_.Load(r);
  deferral_counts_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int client = static_cast<int>(r.I64());
    const std::size_t base_round = r.U64();
    deferral_counts_[{client, base_round}] = r.U64();
  }
  kmeans_state_.Load(r);
}

std::vector<int> AsyncFilter::SyncScorer(
    const std::vector<fl::ModelUpdate>& updates) {
  // The buffer's spans are only valid for this Process call, so the slot set
  // is rebuilt per round; the references (group estimates) live in the bank
  // but mutate during absorption, so they re-register too. What survives
  // across rounds is the warm-start clustering state and, within the round,
  // every cached norm/distance for the repeated queries below.
  scorer_.Clear();
  scorer_.ClearReferences();
  std::vector<int> slots;
  slots.reserve(updates.size());
  for (const auto& update : updates) {
    slots.push_back(scorer_.Insert(update.delta));
  }
  for (std::size_t tau : bank_.Groups()) {
    scorer_.SetReference(tau, bank_.Estimate(tau));
  }
  return slots;
}

bool AsyncFilter::QuantizedScores(const std::vector<fl::ModelUpdate>& updates,
                                  const std::vector<int>& slots,
                                  std::vector<double>* own,
                                  std::vector<double>* bounds) {
  if (scorer_.mode() != score::ScorerMode::kQuantized ||
      options_.normalization == ScoreNormalization::kEq7CrossGroup) {
    return false;
  }
  own->resize(updates.size());
  bounds->resize(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const score::StreamingScorer::ApproxDistance d =
        scorer_.ApproxDistanceToReference(updates[i].staleness, slots[i]);
    (*own)[i] = d.value;
    (*bounds)[i] = d.exact ? 0.0 : d.bound;
  }
  return true;
}

defense::AggregationResult AsyncFilter::Process(
    const defense::FilterContext& context,
    const std::vector<fl::ModelUpdate>& updates) {
  AF_TRACE_SPAN("filter.process");
  AF_CHECK(!updates.empty());
  AF_CHECK(context.rng != nullptr) << "AsyncFilter needs the server RNG";

  // Step 1 (Eq. 4–5): fold the arrivals into their staleness groups'
  // moving-average estimators. Alg. 1 absorbs before scoring.
  {
    AF_TRACE_SPAN("filter.absorb");
    if (!options_.absorb_only_accepted) {
      for (const auto& update : updates) {
        bank_.Absorb(update.staleness, update.delta);
      }
    } else {
      // Ensure every staleness level has at least one observation so scoring
      // is well-defined; the accepted ones are absorbed at the end.
      for (const auto& update : updates) {
        if (!bank_.HasGroup(update.staleness)) {
          bank_.Absorb(update.staleness, update.delta);
        }
      }
    }
  }

  // Step 2 (Eq. 6–7): suspicious scores, answered by the streaming scorer.
  const std::vector<int> slots = SyncScorer(updates);
  std::vector<double> own;
  std::vector<double> bounds;
  std::vector<double> scores;
  const bool quantized = QuantizedScores(updates, slots, &own, &bounds);
  {
    AF_TRACE_SPAN("filter.score");
    if (quantized) {
      scores = NormalizeOwnDistances(updates, own, options_.normalization);
    } else {
      scores = ComputeSuspiciousScores(updates, scorer_, slots,
                                       options_.normalization);
    }
  }

  std::vector<std::size_t> accepted;
  std::vector<std::size_t> mid;
  std::vector<std::size_t> rejected;
  defense::AggregationResult result;

  const std::size_t k = std::min<std::size_t>(options_.num_clusters,
                                              updates.size());
  if (ScoresDegenerate(scores) || k < 2) {
    // Nothing to separate: everything is accepted (matches FedBuff). The
    // fallback is legitimate but must not be silent — a poisoned buffer that
    // manages to flatten the score spread would otherwise pass unexamined.
    accepted.resize(updates.size());
    std::iota(accepted.begin(), accepted.end(), 0u);
    result.reason =
        updates.size() < 2 ? "buffer_too_small" : "scores_degenerate";
    degenerate_rounds_->Increment();
  } else {
    // Step 3: k-means over the 1-D scores, warm-started from the previous
    // round's centroids; order bands by centroid.
    AF_TRACE_SPAN("filter.cluster");
    cluster::KMeansResult clustering =
        score::WarmKMeans1D(scores, k, *context.rng, kmeans_state_);
    if (quantized) {
      // Candidate verdicts came from int8 distances; exactly rescore every
      // update whose certified score interval straddles a band boundary,
      // then re-cluster so the final verdicts rest on exact borderline
      // scores.
      const std::vector<std::size_t> borderline =
          FindBorderline(scores, own, bounds, clustering);
      if (!borderline.empty()) {
        for (std::size_t idx : borderline) {
          own[idx] = scorer_.DistanceToReference(updates[idx].staleness,
                                                 slots[idx]);
          bounds[idx] = 0.0;
        }
        scores = NormalizeOwnDistances(updates, own, options_.normalization);
        clustering = score::WarmKMeans1D(scores, k, *context.rng,
                                         kmeans_state_);
      }
    }
    std::vector<std::size_t> band_order(k);
    std::iota(band_order.begin(), band_order.end(), 0u);
    std::sort(band_order.begin(), band_order.end(),
              [&](std::size_t a, std::size_t b) {
                return clustering.centroids[a][0] < clustering.centroids[b][0];
              });
    std::vector<std::size_t> band_rank(k);  // cluster id -> 0=low,…,k-1=high
    for (std::size_t r = 0; r < k; ++r) {
      band_rank[band_order[r]] = r;
    }
    for (std::size_t i = 0; i < updates.size(); ++i) {
      const std::size_t rank = band_rank[clustering.assignment[i]];
      if (rank == 0) {
        accepted.push_back(i);
      } else if (rank == k - 1) {
        rejected.push_back(i);
      } else {
        mid.push_back(i);
      }
    }
    if (accepted.empty()) {
      // The "honest" band must never be empty; fall back to the mid band,
      // then to everything (never stall the learning process).
      if (!mid.empty()) {
        accepted.swap(mid);
      } else {
        accepted.swap(rejected);
      }
      result.reason = "empty_accept_band";
    }
  }

  // Middle band disposition.
  result.scores = scores;
  result.verdicts.assign(updates.size(), defense::Verdict::kAccepted);
  for (std::size_t idx : rejected) {
    result.verdicts[idx] = defense::Verdict::kRejected;
  }
  switch (options_.mid_band) {
    case MidBandPolicy::kAccept:
      accepted.insert(accepted.end(), mid.begin(), mid.end());
      break;
    case MidBandPolicy::kReject:
      for (std::size_t idx : mid) {
        result.verdicts[idx] = defense::Verdict::kRejected;
        rejected.push_back(idx);
      }
      break;
    case MidBandPolicy::kDefer:
      for (std::size_t idx : mid) {
        const auto& update = updates[idx];
        const auto key = std::make_pair(update.client_id, update.base_round);
        std::size_t& count = deferral_counts_[key];
        if (count >= options_.max_deferrals) {
          // Deferred too often — treat as rejected.
          result.verdicts[idx] = defense::Verdict::kRejected;
          rejected.push_back(idx);
          deferral_counts_.erase(key);
          continue;
        }
        ++count;
        result.verdicts[idx] = defense::Verdict::kDeferred;
        result.deferred.push_back(update);
      }
      break;
  }
  // Bound the deferral ledger (stale entries for long-gone updates).
  if (deferral_counts_.size() > 4096) {
    deferral_counts_.clear();
  }

  if (!accepted.empty()) {
    result.aggregated_delta = defense::WeightedAverage(
        updates, accepted, context.staleness_weighting);
  }
  return result;
}

}  // namespace core

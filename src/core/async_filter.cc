#include "core/async_filter.h"

#include <algorithm>
#include <numeric>

#include "cluster/kmeans.h"
#include "core/suspicious_score.h"
#include "defense/registry.h"
#include "obs/trace.h"
#include "util/check.h"

namespace core {
namespace {

// Self-registration: any binary that links AsyncFilter can build it (and
// its ablation variants) by name through defense::Registry.
AsyncFilterOptions VariantOptions(std::size_t clusters, MidBandPolicy policy) {
  AsyncFilterOptions options;
  options.num_clusters = clusters;
  options.mid_band = policy;
  return options;
}

const defense::RegistryEntry kRegisterAsyncFilter{
    "asyncfilter",
    {"asyncfilter3means"},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>();
    }};
const defense::RegistryEntry kRegisterAsyncFilter2Means{
    "asyncfilter2means",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(2, MidBandPolicy::kAccept));
    }};
const defense::RegistryEntry kRegisterAsyncFilterDeferMid{
    "asyncfilterdefermid",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(3, MidBandPolicy::kDefer));
    }};
const defense::RegistryEntry kRegisterAsyncFilterRejectMid{
    "asyncfilterrejectmid",
    {},
    [](const defense::DefenseParams&) {
      return std::make_unique<AsyncFilter>(
          VariantOptions(3, MidBandPolicy::kReject));
    }};

}  // namespace

void EnsureAsyncFilterRegistered() {
  // Static initialization of this translation unit did the actual work.
}

AsyncFilter::AsyncFilter(AsyncFilterOptions options) : options_(options) {
  AF_CHECK_GE(options_.num_clusters, 2u);
  AF_CHECK_LE(options_.num_clusters, 3u);
}

std::string AsyncFilter::Name() const {
  if (options_.num_clusters == 2) {
    return "AsyncFilter-2means";
  }
  return "AsyncFilter";
}

void AsyncFilter::Reset() {
  bank_.Reset();
  deferral_counts_.clear();
}

void AsyncFilter::SaveState(util::serial::Writer& w) const {
  bank_.Save(w);
  w.U64(deferral_counts_.size());
  for (const auto& [key, count] : deferral_counts_) {
    w.I64(key.first);
    w.U64(key.second);
    w.U64(count);
  }
}

void AsyncFilter::LoadState(util::serial::Reader& r) {
  bank_.Load(r);
  deferral_counts_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int client = static_cast<int>(r.I64());
    const std::size_t base_round = r.U64();
    deferral_counts_[{client, base_round}] = r.U64();
  }
}

defense::AggregationResult AsyncFilter::Process(
    const defense::FilterContext& context,
    const std::vector<fl::ModelUpdate>& updates) {
  AF_TRACE_SPAN("filter.process");
  AF_CHECK(!updates.empty());
  AF_CHECK(context.rng != nullptr) << "AsyncFilter needs the server RNG";

  // Step 1 (Eq. 4–5): fold the arrivals into their staleness groups'
  // moving-average estimators. Alg. 1 absorbs before scoring.
  {
    AF_TRACE_SPAN("filter.absorb");
    if (!options_.absorb_only_accepted) {
      for (const auto& update : updates) {
        bank_.Absorb(update.staleness, update.delta);
      }
    } else {
      // Ensure every staleness level has at least one observation so scoring
      // is well-defined; the accepted ones are absorbed at the end.
      for (const auto& update : updates) {
        if (!bank_.HasGroup(update.staleness)) {
          bank_.Absorb(update.staleness, update.delta);
        }
      }
    }
  }

  // Step 2 (Eq. 6–7): suspicious scores.
  std::vector<double> scores;
  {
    AF_TRACE_SPAN("filter.score");
    scores = ComputeSuspiciousScores(updates, bank_, options_.normalization);
  }

  std::vector<std::size_t> accepted;
  std::vector<std::size_t> mid;
  std::vector<std::size_t> rejected;

  const std::size_t k = std::min<std::size_t>(options_.num_clusters,
                                              updates.size());
  if (ScoresDegenerate(scores) || k < 2) {
    // Nothing to separate: everything is accepted (matches FedBuff).
    accepted.resize(updates.size());
    std::iota(accepted.begin(), accepted.end(), 0u);
  } else {
    // Step 3: k-means over the 1-D scores; order bands by centroid.
    AF_TRACE_SPAN("filter.cluster");
    cluster::KMeansResult clustering =
        cluster::KMeans1D(scores, k, *context.rng);
    std::vector<std::size_t> band_order(k);
    std::iota(band_order.begin(), band_order.end(), 0u);
    std::sort(band_order.begin(), band_order.end(),
              [&](std::size_t a, std::size_t b) {
                return clustering.centroids[a][0] < clustering.centroids[b][0];
              });
    std::vector<std::size_t> band_rank(k);  // cluster id -> 0=low,…,k-1=high
    for (std::size_t r = 0; r < k; ++r) {
      band_rank[band_order[r]] = r;
    }
    for (std::size_t i = 0; i < updates.size(); ++i) {
      const std::size_t rank = band_rank[clustering.assignment[i]];
      if (rank == 0) {
        accepted.push_back(i);
      } else if (rank == k - 1) {
        rejected.push_back(i);
      } else {
        mid.push_back(i);
      }
    }
    if (accepted.empty()) {
      // The "honest" band must never be empty; fall back to the mid band,
      // then to everything (never stall the learning process).
      if (!mid.empty()) {
        accepted.swap(mid);
      } else {
        accepted.swap(rejected);
      }
    }
  }

  // Middle band disposition.
  defense::AggregationResult result;
  result.scores = scores;
  result.verdicts.assign(updates.size(), defense::Verdict::kAccepted);
  for (std::size_t idx : rejected) {
    result.verdicts[idx] = defense::Verdict::kRejected;
  }
  switch (options_.mid_band) {
    case MidBandPolicy::kAccept:
      accepted.insert(accepted.end(), mid.begin(), mid.end());
      break;
    case MidBandPolicy::kReject:
      for (std::size_t idx : mid) {
        result.verdicts[idx] = defense::Verdict::kRejected;
        rejected.push_back(idx);
      }
      break;
    case MidBandPolicy::kDefer:
      for (std::size_t idx : mid) {
        const auto& update = updates[idx];
        const auto key = std::make_pair(update.client_id, update.base_round);
        std::size_t& count = deferral_counts_[key];
        if (count >= options_.max_deferrals) {
          // Deferred too often — treat as rejected.
          result.verdicts[idx] = defense::Verdict::kRejected;
          rejected.push_back(idx);
          deferral_counts_.erase(key);
          continue;
        }
        ++count;
        result.verdicts[idx] = defense::Verdict::kDeferred;
        result.deferred.push_back(update);
      }
      break;
  }
  // Bound the deferral ledger (stale entries for long-gone updates).
  if (deferral_counts_.size() > 4096) {
    deferral_counts_.clear();
  }

  if (!accepted.empty()) {
    result.aggregated_delta = defense::WeightedAverage(
        updates, accepted, context.staleness_weighting);
  }
  return result;
}

}  // namespace core

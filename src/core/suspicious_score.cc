#include "core/suspicious_score.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "score/scorer.h"
#include "stats/vec_ops.h"
#include "util/check.h"

namespace core {

std::vector<double> NormalizeOwnDistances(
    const std::vector<fl::ModelUpdate>& updates, const std::vector<double>& own,
    ScoreNormalization normalization) {
  AF_CHECK_EQ(own.size(), updates.size());
  std::vector<double> scores(updates.size(), 0.0);
  switch (normalization) {
    case ScoreNormalization::kEq7CrossGroup:
      AF_CHECK(false) << "kEq7CrossGroup needs cross-group distances";
      return scores;
    case ScoreNormalization::kBufferNorm: {
      double sum_sq = 0.0;
      for (double d : own) {
        sum_sq += d * d;
      }
      const double denom = std::sqrt(sum_sq);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        scores[i] = denom > 1e-12 ? own[i] / denom : 0.0;
      }
      return scores;
    }
    case ScoreNormalization::kGroupRms:
      break;
  }

  // kGroupRms: per-group RMS over the buffered peers; singleton groups use
  // the buffer-wide RMS so they are judged on the common scale.
  std::map<std::size_t, std::pair<double, std::size_t>> group_sq;  // τ → (Σd², n)
  double buffer_sq = 0.0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    auto& [sum, count] = group_sq[updates[i].staleness];
    sum += own[i] * own[i];
    ++count;
    buffer_sq += own[i] * own[i];
  }
  const double buffer_rms =
      std::sqrt(buffer_sq / static_cast<double>(updates.size()));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& [sum, count] = group_sq[updates[i].staleness];
    double rms = count >= 2 ? std::sqrt(sum / static_cast<double>(count))
                            : buffer_rms;
    if (rms <= 1e-12) {
      rms = buffer_rms > 1e-12 ? buffer_rms : 1.0;
    }
    scores[i] = own[i] / rms;
  }
  return scores;
}

std::vector<double> ComputeSuspiciousScores(
    const std::vector<fl::ModelUpdate>& updates, const MovingAverageBank& bank,
    ScoreNormalization normalization) {
  const std::vector<std::size_t> groups = bank.Groups();
  AF_CHECK(!groups.empty());

  // Eq. 6: distance of every update to its own group's estimate.
  std::vector<double> own(updates.size(), 0.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& update = updates[i];
    AF_CHECK(bank.HasGroup(update.staleness))
        << "update staleness " << update.staleness << " not absorbed";
    own[i] = stats::Distance(bank.Estimate(update.staleness), update.delta);
  }

  if (normalization == ScoreNormalization::kEq7CrossGroup) {
    std::vector<double> scores(updates.size(), 0.0);
    for (std::size_t i = 0; i < updates.size(); ++i) {
      double sum_sq = 0.0;
      for (std::size_t tau : groups) {
        const double d = stats::Distance(bank.Estimate(tau), updates[i].delta);
        sum_sq += d * d;
      }
      scores[i] = sum_sq > 1e-24 ? own[i] / std::sqrt(sum_sq) : 0.0;
    }
    return scores;
  }
  return NormalizeOwnDistances(updates, own, normalization);
}

std::vector<double> ComputeSuspiciousScores(
    const std::vector<fl::ModelUpdate>& updates, score::StreamingScorer& scorer,
    const std::vector<int>& slots, ScoreNormalization normalization) {
  AF_CHECK_EQ(slots.size(), updates.size());

  std::vector<double> own(updates.size(), 0.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& update = updates[i];
    AF_CHECK(scorer.HasReference(update.staleness))
        << "update staleness " << update.staleness << " has no reference";
    own[i] = scorer.DistanceToReference(update.staleness, slots[i]);
  }

  if (normalization == ScoreNormalization::kEq7CrossGroup) {
    // Cross-group distances go through the scorer too, so the incremental
    // backend can serve repeats from its reference cache.
    std::vector<double> scores(updates.size(), 0.0);
    const std::vector<std::uint64_t> groups = scorer.ReferenceKeys();
    AF_CHECK(!groups.empty());
    for (std::size_t i = 0; i < updates.size(); ++i) {
      double sum_sq = 0.0;
      for (std::uint64_t tau : groups) {
        const double d = scorer.DistanceToReference(tau, slots[i]);
        sum_sq += d * d;
      }
      scores[i] = sum_sq > 1e-24 ? own[i] / std::sqrt(sum_sq) : 0.0;
    }
    return scores;
  }
  return NormalizeOwnDistances(updates, own, normalization);
}

bool ScoresDegenerate(const std::vector<double>& scores, double epsilon) {
  if (scores.size() < 2) {
    return true;
  }
  const auto [lo, hi] = std::minmax_element(scores.begin(), scores.end());
  return (*hi - *lo) < epsilon;
}

}  // namespace core

// Distance-based suspicious scores (paper Eq. 6–7).
//
// For update ω_i in staleness group C_k the raw signal is
//   d(MA_k, ω_i) = ‖MA_k − ω_i‖₂                        (Eq. 6)
// i.e. the distance to the *own group's* moving-average estimate.
//
// Eq. 7 then normalises this distance. The paper's notation
//   score_i = d(MA_k, ω_i) / √(Σ_{k=1}^m d(MA_k, ω_i)²)
// reuses k as both the client's group and the summation index, which admits
// two readings:
//   (a) literal/cross-group: divide by the distances from ω_i to every
//       group estimate. Empirically this *washes the signal out*: a
//       poisoned update is far from its own group's MA but equally far from
//       every other group's MA, so the ratio is ≈ constant across clients
//       (see bench_ablation_score_norm).
//   (b) across peers: divide by the aggregate deviation of the *buffered
//       updates* from their own group estimates, making score_i the
//       relative outlierness of client i among its peers — which is what
//       §4.3's narrative ("updates closer to the standard model tend to
//       originate from benign clients") actually needs.
// This implementation defaults to (b) with per-group RMS normalisation
// (size-invariant across staleness groups) and keeps (a) selectable for the
// ablation study.
#pragma once

#include <vector>

#include "core/staleness_groups.h"
#include "fl/types.h"

namespace score {
class StreamingScorer;
}  // namespace score

namespace core {

enum class ScoreNormalization {
  // Reading (b), default: d_i divided by the RMS of d_j over buffered peers
  // in the same staleness group (singleton groups fall back to the
  // buffer-wide RMS so a lone straggler is not auto-flagged).
  kGroupRms,
  // Reading (b), buffer-wide: d_i / √(Σ_j d_j²) over the whole buffer.
  kBufferNorm,
  // Reading (a): Eq. 7 as literally printed.
  kEq7CrossGroup,
};

// Per-update suspicious scores for the whole buffer. Every update's
// staleness group must exist in the bank (AsyncFilter absorbs first).
std::vector<double> ComputeSuspiciousScores(
    const std::vector<fl::ModelUpdate>& updates, const MovingAverageBank& bank,
    ScoreNormalization normalization = ScoreNormalization::kGroupRms);

// Streaming-scorer path: same semantics, but every distance is answered by
// the scorer — recomputed in exact mode, served from the norm/reference
// caches in incremental mode, identical bits either way (both evaluate
// √(‖ref‖² + ‖ω‖² − 2⟨ref, ω⟩) through the same kernels). The caller must
// have registered a reference per staleness group (keyed by the staleness
// value) and inserted update i at slots[i].
std::vector<double> ComputeSuspiciousScores(
    const std::vector<fl::ModelUpdate>& updates, score::StreamingScorer& scorer,
    const std::vector<int>& slots,
    ScoreNormalization normalization = ScoreNormalization::kGroupRms);

// Eq. 7 normalization applied to precomputed own-group distances. Exposed
// for the quantized candidate path, which normalizes *approximate* distances
// before deciding which updates need exact rescoring. kEq7CrossGroup is not
// representable from own[] alone and must not be passed here.
std::vector<double> NormalizeOwnDistances(
    const std::vector<fl::ModelUpdate>& updates, const std::vector<double>& own,
    ScoreNormalization normalization);

// True when max−min spread is numerically meaningless for clustering.
bool ScoresDegenerate(const std::vector<double>& scores, double epsilon = 1e-9);

}  // namespace core

// Staleness-keyed moving-average estimators (paper Eq. 4–5).
//
// AsyncFilter's first step groups incoming updates by staleness τ; within a
// group the variance introduced by differing base-model versions is
// neutralised. Each group keeps a cross-round moving average
//   MA(C_k) ← t/(t+1)·MA(C_k) + 1/(t+1)·ω_i
// that serves as the group's expectation of a benign update.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "fl/types.h"
#include "stats/running_stats.h"
#include "util/serial.h"

namespace core {

// Staleness value → indices (into the buffer) of updates with that staleness.
std::map<std::size_t, std::vector<std::size_t>> GroupByStaleness(
    const std::vector<fl::ModelUpdate>& updates);

// The server-resident bank of per-staleness moving averages.
class MovingAverageBank {
 public:
  // Absorbs one observed update into its staleness group's estimator.
  void Absorb(std::size_t staleness, std::span<const float> delta);

  // True when group τ has at least one absorbed observation.
  bool HasGroup(std::size_t staleness) const;

  // Group estimate; HasGroup(staleness) must hold.
  std::span<const float> Estimate(std::size_t staleness) const;

  // All staleness levels with a non-empty estimator, ascending.
  std::vector<std::size_t> Groups() const;

  std::size_t ObservationCount(std::size_t staleness) const;

  void Reset() { groups_.clear(); }

  // Checkpoint support: serializes every group's exact double-precision
  // accumulator (std::map order, so the bytes are canonical). Load replaces
  // the bank's contents wholesale.
  void Save(util::serial::Writer& w) const;
  void Load(util::serial::Reader& r);

 private:
  std::map<std::size_t, stats::VectorMovingAverage> groups_;
};

}  // namespace core

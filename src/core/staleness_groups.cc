#include "core/staleness_groups.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace core {

std::map<std::size_t, std::vector<std::size_t>> GroupByStaleness(
    const std::vector<fl::ModelUpdate>& updates) {
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    groups[updates[i].staleness].push_back(i);
  }
  return groups;
}

void MovingAverageBank::Absorb(std::size_t staleness,
                               std::span<const float> delta) {
  AF_TRACE_SPAN("staleness.absorb");
  const std::size_t groups_before = groups_.size();
  groups_[staleness].Add(delta);
  if (groups_.size() != groups_before) {
    // Registry traffic only when a new staleness level appears (a handful of
    // times per run), so the per-update absorb path stays pure vector math.
    obs::DefaultRegistry()
        .GetGauge("filter.staleness_groups")
        .Set(static_cast<double>(groups_.size()));
  }
}

bool MovingAverageBank::HasGroup(std::size_t staleness) const {
  auto it = groups_.find(staleness);
  return it != groups_.end() && !it->second.empty();
}

std::span<const float> MovingAverageBank::Estimate(std::size_t staleness) const {
  auto it = groups_.find(staleness);
  AF_CHECK(it != groups_.end()) << "no estimator for staleness " << staleness;
  return it->second.mean();
}

std::vector<std::size_t> MovingAverageBank::Groups() const {
  std::vector<std::size_t> keys;
  keys.reserve(groups_.size());
  for (const auto& [staleness, ma] : groups_) {
    if (!ma.empty()) {
      keys.push_back(staleness);
    }
  }
  return keys;
}

std::size_t MovingAverageBank::ObservationCount(std::size_t staleness) const {
  auto it = groups_.find(staleness);
  return it == groups_.end() ? 0 : it->second.count();
}

void MovingAverageBank::Save(util::serial::Writer& w) const {
  w.U64(groups_.size());
  for (const auto& [staleness, ma] : groups_) {
    w.U64(staleness);
    w.U64(ma.count());
    w.DoubleVec(ma.accumulator());
  }
}

void MovingAverageBank::Load(util::serial::Reader& r) {
  groups_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t staleness = r.U64();
    const std::uint64_t count = r.U64();
    groups_[staleness].RestoreState(count, r.DoubleVec());
  }
}

}  // namespace core

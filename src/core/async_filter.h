// AsyncFilter — the paper's primary contribution (§4, Alg. 1).
//
// A plug-and-play server module for asynchronous FL that detects poisoned
// updates without any clean dataset:
//   1. group buffered updates by staleness (Eq. 4) and fold each into its
//      group's cross-round moving-average estimator (Eq. 5);
//   2. compute a distance-based suspicious score per update (Eq. 6–7);
//   3. split scores with 3-means: the lowest-centroid band is accepted, the
//      highest band (attackers) rejected, and the middle band — weak
//      attackers mixed with honest non-IID clients — is "permitted to
//      contribute to the aggregation at a later stage" (deferred into the
//      next buffer by default; the policy is configurable for ablation).
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "core/staleness_groups.h"
#include "core/suspicious_score.h"
#include "defense/defense.h"
#include "score/scorer.h"
#include "score/warm_kmeans.h"

namespace obs {
class Counter;
}  // namespace obs

namespace core {

// What to do with the middle 3-means band. The paper says the middle group
// "is permitted to contribute to the aggregation at a later stage" and that
// excluding honest non-IID clients costs noticeable accuracy; empirically
// (bench_ablation_midband_policy) the middle band is dominated by honest
// non-IID clients, so the default interprets "contribute" literally and
// aggregates it, only excluding the attacker band. kDefer (re-enter the next
// buffer) and kReject are kept for the ablation study.
enum class MidBandPolicy {
  kAccept,  // default: aggregate the mid band, reject only the top band
  kDefer,   // push the mid band into the next aggregation buffer
  kReject,  // drop the mid band like the attacker band
};

struct AsyncFilterOptions {
  // 3 per the paper; 2 reproduces the AsyncFilter-2means ablation (Fig. 7).
  std::size_t num_clusters = 3;
  MidBandPolicy mid_band = MidBandPolicy::kAccept;
  // How Eq. 7 normalises the group-distance signal (see suspicious_score.h
  // for why the literal cross-group reading is kept only as an ablation).
  ScoreNormalization normalization = ScoreNormalization::kGroupRms;
  // Alg. 1 absorbs every received update into the group estimator before
  // scoring; setting this to true only absorbs accepted ones (ablation).
  bool absorb_only_accepted = false;
  // A deferred update is dropped once re-deferred this many times, keeping
  // the buffer from accumulating zombies.
  std::size_t max_deferrals = 2;
  // Scoring backend; unset reads AF_SCORER (see score/scorer.h). Exact and
  // incremental produce bit-identical verdicts; quantized scores candidates
  // from int8 codes and exactly rescores only the borderline updates.
  std::optional<score::ScorerMode> scorer_mode;
};

// No-op whose only job is to force this translation unit — and with it the
// static defense::Registry entries for AsyncFilter and its ablation
// variants — into static-library links. Call once before querying the
// registry from a layer that does not otherwise reference AsyncFilter.
void EnsureAsyncFilterRegistered();

class AsyncFilter : public defense::Defense {
 public:
  explicit AsyncFilter(AsyncFilterOptions options = {});

  defense::AggregationResult Process(
      const defense::FilterContext& context,
      const std::vector<fl::ModelUpdate>& updates) override;

  std::string Name() const override;
  void Reset() override;
  // Cross-round state: the per-staleness moving-average bank and the
  // deferral ledger. Options are configuration, not state.
  void SaveState(util::serial::Writer& w) const override;
  void LoadState(util::serial::Reader& r) override;

  const MovingAverageBank& bank() const { return bank_; }
  score::ScorerMode scorer_mode() const { return scorer_.mode(); }

 private:
  // Loads this round's buffer and the bank's group estimates into the
  // scorer; returns update i's slot in slots[i].
  std::vector<int> SyncScorer(const std::vector<fl::ModelUpdate>& updates);
  // Quantized candidate path: approximate scores with certified distance
  // bounds, exact rescoring of updates whose score interval straddles a
  // cluster-band boundary. Returns false when the fast path does not apply
  // (non-quantized mode, Eq. 7 normalization).
  bool QuantizedScores(const std::vector<fl::ModelUpdate>& updates,
                       const std::vector<int>& slots,
                       std::vector<double>* own, std::vector<double>* bounds);

  AsyncFilterOptions options_;
  MovingAverageBank bank_;
  // Deferral counts keyed by (client, base_round) so a deferred update is
  // recognised when it re-enters the buffer.
  std::map<std::pair<int, std::size_t>, std::size_t> deferral_counts_;
  // Streaming scoring backend (norm / reference-distance caches) and the
  // warm-start state for re-clustering: the previous round's centroids seed
  // Lloyd so steady-state rounds skip k-means++ seeding and restarts.
  // kmeans_state_ is cross-round state and checkpoints with the bank.
  score::StreamingScorer scorer_;
  score::WarmKMeansState kmeans_state_;
  obs::Counter* degenerate_rounds_;  // defense.degenerate_rounds
};

}  // namespace core

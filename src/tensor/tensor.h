// Dense row-major float tensor.
//
// Deliberately minimal: the NN stack needs contiguous storage, shape
// bookkeeping and a handful of BLAS-1/2/3-style kernels (tensor_ops.h) —
// no views, no broadcasting, no autograd graph. Backward passes are written
// by hand per layer, which keeps the whole training stack auditable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <random>
#include <span>
#include <vector>

namespace tensor {

using Shape = std::vector<std::size_t>;

// Number of elements in a shape (product of dims; empty shape → 0 elements).
std::size_t NumElements(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor wrapping the given data; data.size() must equal NumElements(shape).
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // 2-D accessors (checked rank, unchecked bounds beyond debug).
  float& At(std::size_t r, std::size_t c);
  float At(std::size_t r, std::size_t c) const;

  // 4-D accessor for NCHW activations.
  float& At(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float At(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  // Reinterprets the tensor with a new shape of identical element count.
  void Reshape(Shape new_shape);

  void Fill(float value);

  // In-place random fills.
  void FillUniform(float lo, float hi, std::mt19937_64& rng);
  void FillNormal(float mean, float stddev, std::mt19937_64& rng);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace tensor

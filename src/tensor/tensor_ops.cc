#include "tensor/tensor_ops.h"

#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "util/check.h"

namespace tensor {

// The MatMul* entry points are thin shims over the blocked SGEMM core
// (gemm.h). The seed implementations special-cased zero elements of A
// (`if (av == 0.0f) continue;`) — that branch de-vectorized the hot loop
// and silently suppressed NaN/Inf propagation from the other operand, so
// the shims deliberately do full IEEE dense math.

void MatMul(const Tensor& a, const Tensor& b, Tensor& c) {
  Gemm(Op::kNone, Op::kNone, a, b, c);
}

void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& c) {
  Gemm(Op::kNone, Op::kTranspose, a, b, c);
}

void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& c) {
  Gemm(Op::kTranspose, Op::kNone, a, b, c);
}

void AddInto(const Tensor& a, const Tensor& b, Tensor& out) {
  AF_CHECK_EQ(a.size(), b.size());
  AF_CHECK_EQ(a.size(), out.size());
  kernels::Add(a.data().data(), b.data().data(), out.data().data(), a.size());
}

void AddInPlace(Tensor& a, const Tensor& b) {
  AF_CHECK_EQ(a.size(), b.size());
  kernels::AddInPlace(a.data().data(), b.data().data(), a.size());
}

void AddRowBias(Tensor& matrix, const Tensor& bias) {
  AF_CHECK_EQ(matrix.rank(), 2u);
  const std::size_t m = matrix.dim(0), n = matrix.dim(1);
  AF_CHECK_EQ(bias.size(), n);
  float* p = matrix.data().data();
  const float* pb = bias.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    kernels::AddBias(p + i * n, pb, n);
  }
}

void SumRows(const Tensor& matrix, Tensor& out) {
  AF_CHECK_EQ(matrix.rank(), 2u);
  const std::size_t m = matrix.dim(0), n = matrix.dim(1);
  AF_CHECK_EQ(out.size(), n);
  out.Fill(0.0f);
  kernels::SumRowsAccum(matrix.data().data(), m, n, out.data().data());
}

}  // namespace tensor

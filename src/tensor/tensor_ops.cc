#include "tensor/tensor_ops.h"

#include "util/check.h"

namespace tensor {

void MatMul(const Tensor& a, const Tensor& b, Tensor& c) {
  AF_CHECK_EQ(a.rank(), 2u);
  AF_CHECK_EQ(b.rank(), 2u);
  AF_CHECK_EQ(c.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  AF_CHECK_EQ(b.dim(0), k);
  AF_CHECK_EQ(c.dim(0), m);
  AF_CHECK_EQ(c.dim(1), n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj loop order: streams B and C rows, vectorises well at -O2.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      crow[j] = 0.0f;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& c) {
  AF_CHECK_EQ(a.rank(), 2u);
  AF_CHECK_EQ(b.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  AF_CHECK_EQ(b.dim(1), k);
  AF_CHECK_EQ(c.dim(0), m);
  AF_CHECK_EQ(c.dim(1), n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] = acc;
    }
  }
}

void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& c) {
  AF_CHECK_EQ(a.rank(), 2u);
  AF_CHECK_EQ(b.rank(), 2u);
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  AF_CHECK_EQ(b.dim(0), k);
  AF_CHECK_EQ(c.dim(0), m);
  AF_CHECK_EQ(c.dim(1), n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m * n; ++i) {
    pc[i] = 0.0f;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) {
        continue;
      }
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void AddInto(const Tensor& a, const Tensor& b, Tensor& out) {
  AF_CHECK_EQ(a.size(), b.size());
  AF_CHECK_EQ(a.size(), out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
}

void AddInPlace(Tensor& a, const Tensor& b) {
  AF_CHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] += b[i];
  }
}

void AddRowBias(Tensor& matrix, const Tensor& bias) {
  AF_CHECK_EQ(matrix.rank(), 2u);
  const std::size_t m = matrix.dim(0), n = matrix.dim(1);
  AF_CHECK_EQ(bias.size(), n);
  float* p = matrix.data().data();
  const float* pb = bias.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = p + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] += pb[j];
    }
  }
}

void SumRows(const Tensor& matrix, Tensor& out) {
  AF_CHECK_EQ(matrix.rank(), 2u);
  const std::size_t m = matrix.dim(0), n = matrix.dim(1);
  AF_CHECK_EQ(out.size(), n);
  out.Fill(0.0f);
  const float* p = matrix.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = p + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      po[j] += row[j];
    }
  }
}

}  // namespace tensor

#include "tensor/tensor.h"

#include <algorithm>

#include "util/check.h"

namespace tensor {

std::size_t NumElements(const Shape& shape) {
  if (shape.empty()) {
    return 0;
  }
  std::size_t n = 1;
  for (std::size_t d : shape) {
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  AF_CHECK_EQ(data_.size(), NumElements(shape_));
}

std::size_t Tensor::dim(std::size_t axis) const {
  AF_CHECK_LT(axis, shape_.size());
  return shape_[axis];
}

float& Tensor::At(std::size_t r, std::size_t c) {
  AF_CHECK_EQ(rank(), 2u);
  return data_[r * shape_[1] + c];
}

float Tensor::At(std::size_t r, std::size_t c) const {
  AF_CHECK_EQ(rank(), 2u);
  return data_[r * shape_[1] + c];
}

float& Tensor::At(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  AF_CHECK_EQ(rank(), 4u);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::At(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  AF_CHECK_EQ(rank(), 4u);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::Reshape(Shape new_shape) {
  AF_CHECK_EQ(NumElements(new_shape), data_.size());
  shape_ = std::move(new_shape);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::FillUniform(float lo, float hi, std::mt19937_64& rng) {
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& x : data_) {
    x = dist(rng);
  }
}

void Tensor::FillNormal(float mean, float stddev, std::mt19937_64& rng) {
  std::normal_distribution<float> dist(mean, stddev);
  for (float& x : data_) {
    x = dist(rng);
  }
}

}  // namespace tensor

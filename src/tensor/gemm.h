// Cache-blocked, register-tiled SGEMM — the compute core every dense hot
// path routes through (Dense forward/backward, Conv2d im2col products, and
// via tensor_ops the legacy MatMul* entry points).
//
// Design (BLIS-style): the driver tiles C into MC×NC macro-blocks, packs
// A/B panels into contiguous micro-panels (zero-padded to the kMr×kNr
// micro-tile), and calls the kernels::MicroKernel for every tile. The
// packed layout makes one micro-kernel serve all four transpose variants.
//
// Determinism contract: for fixed inputs the output is bit-identical across
// runs and across thread counts. Each C element is owned by exactly one
// row-tile task, the K dimension is reduced strictly in ascending block
// order (the pc loop is sequential, outside the parallel fan-out), and the
// micro-kernel accumulates ascending in k. Parallelism only distributes
// disjoint row tiles. The scalar and AVX2 micro-kernels may differ in final
// ulps (FMA); the ISA is fixed per process (kernels::ActiveIsa), so this
// never varies within or across runs on one machine.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.h"

namespace util {
class ThreadPool;
}

namespace tensor {

enum class Op : std::uint8_t { kNone, kTranspose };

// C = op_a(A) · op_b(B) [+ bias] [+ beta·C], raw-pointer form.
//
//   op_a(A) is m×k, op_b(B) is k×n, C is m×n.
//   lda/ldb/ldc are row strides of the matrices as stored (A is stored
//   m×k when op_a == kNone, k×m when op_a == kTranspose; same for B).
//   bias: optional length-n row vector added to every row of C.
//   beta: 0 overwrites C, any nonzero value accumulates (C += A·B);
//         bias requires beta == 0.
//   pool: optional thread pool to fan row tiles out over; nullptr runs
//         serially. Results are bit-identical either way.
void Sgemm(Op op_a, Op op_b, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, const float* bias = nullptr,
           float beta = 0.0f, util::ThreadPool* pool = nullptr);

// Tensor convenience wrapper: shapes are taken from the tensors (all rank
// 2), dimension mismatches throw util::CheckError, and the shared compute
// pool (SetComputePool) is used.
void Gemm(Op op_a, Op op_b, const Tensor& a, const Tensor& b, Tensor& c,
          const float* bias = nullptr, float beta = 0.0f);

// Process-wide compute pool used by Gemm and the Conv2d batch fan-out.
// Not owned; nullptr (the default) means serial execution. Callers that
// already parallelise across clients should leave this unset to avoid
// oversubscription.
void SetComputePool(util::ThreadPool* pool);
util::ThreadPool* ComputePool();

}  // namespace tensor

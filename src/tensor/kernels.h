// Low-level compute kernels: raw-pointer BLAS-1 primitives and the SGEMM
// micro-kernel, with runtime ISA dispatch (portable scalar vs AVX2+FMA).
//
// Everything here is deterministic by construction: each function fixes its
// accumulation order (unrolled multi-accumulator lanes combined in a fixed
// tree), so repeated calls on the same inputs are bit-identical. The scalar
// and AVX2 paths may differ in the last ulp (FMA fuses the rounding); a
// process always picks one path at startup, so results are stable within a
// run and across runs on the same machine.
//
// This header is deliberately tensor-free (only <cstddef>): it sits below
// both tensor_ops and stats::vec_ops in the dependency graph, so the defense
// distance math (Krum, k-means, Zeno++, FLtrust, AsyncFilter scoring) and
// the NN layers share one compute core.
#pragma once

#include <cstddef>

namespace tensor::kernels {

enum class Isa {
  kScalar,  // portable fallback, auto-vectorizes at -O2/-O3
  kAvx2,    // AVX2 + FMA intrinsics, runtime-detected
};

// The ISA every kernel dispatches to. Detected once (cached); honours the
// AF_KERNEL_ISA environment variable ("scalar" | "avx2" | "auto") and any
// ForceIsa override. Requesting avx2 on a CPU without it falls back to
// scalar.
Isa ActiveIsa();

// Test hook: force a specific path (kAvx2 is ignored when unsupported).
void ForceIsa(Isa isa);
// Test hook: drop the ForceIsa override and return to detection + env.
void ResetForcedIsa();

// True when the CPU (and compiler) support the AVX2+FMA path.
bool Avx2Available();

// ---- BLAS-1 style primitives (double accumulation, fixed order) ----------

// <a, b> accumulated in double.
double Dot(const float* a, const float* b, std::size_t n);

// sum of v[i]^2 accumulated in double.
double SumSquares(const float* v, std::size_t n);

// ||a - b||^2 accumulated in double.
double SquaredDistance(const float* a, const float* b, std::size_t n);

// y[i] = float(y[i] + alpha * x[i]) with the product in double.
void Axpy(double alpha, const float* x, float* y, std::size_t n);

// v[i] = float(v[i] * alpha) with the product in double.
void Scale(float* v, double alpha, std::size_t n);

// out[i] = a[i] + b[i].
void Add(const float* a, const float* b, float* out, std::size_t n);

// a[i] += b[i].
void AddInPlace(float* a, const float* b, std::size_t n);

// row[i] += bias[i].
void AddBias(float* row, const float* bias, std::size_t n);

// out[j] += sum over rows of m[i * cols + j] (row-major m, rows × cols).
// Accumulates row-by-row in ascending order, matching the historical
// SumRows semantics.
void SumRowsAccum(const float* m, std::size_t rows, std::size_t cols,
                  float* out);

// ---- SGEMM micro-kernel ---------------------------------------------------

// Micro-tile geometry shared with the blocked driver in gemm.cc. kMr rows ×
// kNr columns; kNr is two AVX2 vectors wide, kMr leaves headroom for 12
// vector accumulators plus loads in 16 ymm registers.
inline constexpr std::size_t kMr = 6;
inline constexpr std::size_t kNr = 16;

// acc (kMr × kNr, row-major, overwritten) = sum over p in [0, kc) of
// ap[p*kMr + r] * bp[p*kNr + j]. `ap` is a packed A micro-panel (column of
// kMr rows, k-major), `bp` a packed B micro-panel (row of kNr columns,
// k-major). Accumulation order over p is ascending on every path.
void MicroKernel(std::size_t kc, const float* ap, const float* bp, float* acc);

}  // namespace tensor::kernels

// Dense kernels used by the NN layers.
#pragma once

#include "tensor/tensor.h"

namespace tensor {

// C = A (M×K) * B (K×N). C must be preallocated M×N; it is overwritten.
void MatMul(const Tensor& a, const Tensor& b, Tensor& c);

// C = A (M×K) * B^T where B is (N×K). C must be M×N.
void MatMulTransposeB(const Tensor& a, const Tensor& b, Tensor& c);

// C = A^T (K×M -> M rows of A are K) ... specifically: A is (K×M), B is
// (K×N), C = A^T * B is (M×N).
void MatMulTransposeA(const Tensor& a, const Tensor& b, Tensor& c);

// out = a + b (same shape).
void AddInto(const Tensor& a, const Tensor& b, Tensor& out);

// a += b.
void AddInPlace(Tensor& a, const Tensor& b);

// Adds a row-vector bias (length N) to every row of a (M×N) matrix.
void AddRowBias(Tensor& matrix, const Tensor& bias);

// Sums the rows of a (M×N) matrix into out (length N).
void SumRows(const Tensor& matrix, Tensor& out);

}  // namespace tensor

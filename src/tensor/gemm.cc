#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "tensor/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace tensor {
namespace {

using kernels::kMr;
using kernels::kNr;

// Macro-block sizes. KC×NC of packed B (~2 MB max) streams through L2/L3,
// MC×KC of packed A (~96 KB) sits in L1/L2 per row-tile task. MC is a
// multiple of kMr and NC a multiple of kNr so only the final micro-tile of
// a block is ragged.
constexpr std::size_t kMc = 96;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 2048;

std::atomic<util::ThreadPool*> g_compute_pool{nullptr};

std::size_t RoundUp(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

// Reads element (i, j) of an op-transformed matrix stored with row stride
// ld. Kept branch-light: op is loop-invariant at every call site.
inline float LogicalAt(Op op, const float* p, std::size_t ld, std::size_t i,
                       std::size_t j) {
  return op == Op::kNone ? p[i * ld + j] : p[j * ld + i];
}

// Packs rows [row0, row0+rows) × cols [pc, pc+kc) of op(A) into kMr-row
// micro-panels: panel s holds logical rows [s·kMr, (s+1)·kMr), stored
// k-major (ap[p·kMr + r]). Rows past `rows` are zero so the micro-kernel
// never needs a bounds check.
void PackA(Op op, const float* a, std::size_t lda, std::size_t row0,
           std::size_t rows, std::size_t pc, std::size_t kc, float* ap) {
  const std::size_t panels = RoundUp(rows, kMr) / kMr;
  for (std::size_t s = 0; s < panels; ++s) {
    float* panel = ap + s * kc * kMr;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < kMr; ++r) {
        const std::size_t row = s * kMr + r;
        panel[p * kMr + r] =
            row < rows ? LogicalAt(op, a, lda, row0 + row, pc + p) : 0.0f;
      }
    }
  }
}

// Packs rows [pc, pc+kc) × cols [col0, col0+cols) of op(B) into kNr-column
// slivers: sliver t holds logical columns [t·kNr, (t+1)·kNr), stored
// k-major (bp[p·kNr + j]), zero-padded past `cols`.
void PackB(Op op, const float* b, std::size_t ldb, std::size_t pc,
           std::size_t kc, std::size_t col0, std::size_t cols, float* bp) {
  const std::size_t slivers = RoundUp(cols, kNr) / kNr;
  for (std::size_t t = 0; t < slivers; ++t) {
    float* sliver = bp + t * kc * kNr;
    const std::size_t base = t * kNr;
    if (op == Op::kNone && base + kNr <= cols) {
      // Common fast path: contiguous row segments.
      for (std::size_t p = 0; p < kc; ++p) {
        std::memcpy(sliver + p * kNr, b + (pc + p) * ldb + col0 + base,
                    kNr * sizeof(float));
      }
      continue;
    }
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < kNr; ++j) {
        const std::size_t col = base + j;
        sliver[p * kNr + j] =
            col < cols ? LogicalAt(op, b, ldb, pc + p, col0 + col) : 0.0f;
      }
    }
  }
}

struct GemmCounters {
  obs::Counter& calls;
  obs::Counter& flops;
  obs::Counter& bytes_packed;
};

// Looked up per call (one registry mutex hop against milliseconds of math)
// rather than cached, so DefaultRegistry().Reset() in tests cannot leave a
// dangling reference behind.
GemmCounters Counters() {
  auto& reg = obs::DefaultRegistry();
  return {reg.GetCounter("gemm.calls"), reg.GetCounter("gemm.flops"),
          reg.GetCounter("gemm.bytes_packed")};
}

}  // namespace

void Sgemm(Op op_a, Op op_b, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, const float* bias, float beta,
           util::ThreadPool* pool) {
  if (m == 0 || n == 0) {
    return;
  }
  const bool accumulate = beta != 0.0f;
  if (k == 0) {
    // Empty reduction: C = bias (broadcast) or zero; accumulate is a no-op.
    if (!accumulate) {
      for (std::size_t i = 0; i < m; ++i) {
        if (bias != nullptr) {
          std::memcpy(c + i * ldc, bias, n * sizeof(float));
        } else {
          std::memset(c + i * ldc, 0, n * sizeof(float));
        }
      }
    }
    return;
  }

  GemmCounters counters = Counters();
  counters.calls.Increment();
  counters.flops.Increment(2ull * m * n * k);
  std::uint64_t bytes_packed = 0;

  // Packed-B panel for the current (jc, pc) block, shared read-only by all
  // row-tile tasks. thread_local so repeated calls reuse the allocation.
  thread_local std::vector<float> tl_bpanel;

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t nc_padded = RoundUp(nc, kNr);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      if (tl_bpanel.size() < kc * nc_padded) {
        tl_bpanel.resize(kc * nc_padded);
      }
      PackB(op_b, b, ldb, pc, kc, jc, nc, tl_bpanel.data());
      bytes_packed += kc * nc_padded * sizeof(float);
      const float* bpanel = tl_bpanel.data();

      const bool first_block = pc == 0;
      const std::size_t tiles = (m + kMc - 1) / kMc;
      auto tile_body = [&](std::size_t t) {
        const std::size_t ic = t * kMc;
        const std::size_t mc = std::min(kMc, m - ic);
        const std::size_t mc_padded = RoundUp(mc, kMr);
        thread_local std::vector<float> tl_apanel;
        if (tl_apanel.size() < kc * mc_padded) {
          tl_apanel.resize(kc * mc_padded);
        }
        PackA(op_a, a, lda, ic, mc, pc, kc, tl_apanel.data());
        const float* apanel = tl_apanel.data();

        float acc[kMr * kNr];
        for (std::size_t jr = 0; jr < nc; jr += kNr) {
          const std::size_t nr = std::min(kNr, nc - jr);
          const float* bsliver = bpanel + (jr / kNr) * kc * kNr;
          for (std::size_t ir = 0; ir < mc; ir += kMr) {
            const std::size_t mr = std::min(kMr, mc - ir);
            kernels::MicroKernel(kc, apanel + (ir / kMr) * kc * kMr, bsliver,
                                 acc);
            float* ctile = c + (ic + ir) * ldc + jc + jr;
            if (first_block && !accumulate) {
              if (bias != nullptr) {
                const float* brow = bias + jc + jr;
                for (std::size_t r = 0; r < mr; ++r) {
                  for (std::size_t j = 0; j < nr; ++j) {
                    ctile[r * ldc + j] = acc[r * kNr + j] + brow[j];
                  }
                }
              } else {
                for (std::size_t r = 0; r < mr; ++r) {
                  std::memcpy(ctile + r * ldc, acc + r * kNr,
                              nr * sizeof(float));
                }
              }
            } else {
              for (std::size_t r = 0; r < mr; ++r) {
                for (std::size_t j = 0; j < nr; ++j) {
                  ctile[r * ldc + j] += acc[r * kNr + j];
                }
              }
            }
          }
        }
      };
      if (pool != nullptr && tiles > 1) {
        pool->ParallelFor(tiles, tile_body);
      } else {
        for (std::size_t t = 0; t < tiles; ++t) {
          tile_body(t);
        }
      }
      // A-panel packing volume, accounted analytically (the workers write
      // into thread_local scratch; totals are deterministic either way).
      for (std::size_t t = 0; t < tiles; ++t) {
        const std::size_t mc = std::min(kMc, m - t * kMc);
        bytes_packed += kc * RoundUp(mc, kMr) * sizeof(float);
      }
    }
  }
  counters.bytes_packed.Increment(bytes_packed);
}

void Gemm(Op op_a, Op op_b, const Tensor& a, const Tensor& b, Tensor& c,
          const float* bias, float beta) {
  AF_CHECK_EQ(a.rank(), 2u);
  AF_CHECK_EQ(b.rank(), 2u);
  AF_CHECK_EQ(c.rank(), 2u);
  const std::size_t m = op_a == Op::kNone ? a.dim(0) : a.dim(1);
  const std::size_t k = op_a == Op::kNone ? a.dim(1) : a.dim(0);
  const std::size_t kb = op_b == Op::kNone ? b.dim(0) : b.dim(1);
  const std::size_t n = op_b == Op::kNone ? b.dim(1) : b.dim(0);
  AF_CHECK_EQ(k, kb) << "inner dimensions differ";
  AF_CHECK_EQ(c.dim(0), m);
  AF_CHECK_EQ(c.dim(1), n);
  AF_CHECK(bias == nullptr || beta == 0.0f) << "bias requires beta == 0";
  Sgemm(op_a, op_b, m, n, k, a.data().data(), a.dim(1), b.data().data(),
        b.dim(1), c.data().data(), n, bias, beta, ComputePool());
}

void SetComputePool(util::ThreadPool* pool) {
  g_compute_pool.store(pool, std::memory_order_release);
}

util::ThreadPool* ComputePool() {
  return g_compute_pool.load(std::memory_order_acquire);
}

}  // namespace tensor

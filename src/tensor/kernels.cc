#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define AF_KERNELS_X86 1
#include <immintrin.h>
#else
#define AF_KERNELS_X86 0
#endif

namespace tensor::kernels {
namespace {

// -1 = no override; otherwise a static_cast<int>(Isa).
std::atomic<int> g_forced_isa{-1};

Isa DetectIsa() {
  if (const char* env = std::getenv("AF_KERNEL_ISA"); env != nullptr) {
    const std::string v(env);
    if (v == "scalar") {
      return Isa::kScalar;
    }
    if (v == "avx2") {
      return Avx2Available() ? Isa::kAvx2 : Isa::kScalar;
    }
    // anything else (incl. "auto") falls through to detection
  }
  return Avx2Available() ? Isa::kAvx2 : Isa::kScalar;
}

}  // namespace

bool Avx2Available() {
#if AF_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa ActiveIsa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Isa>(forced);
  }
  static const Isa detected = DetectIsa();
  return detected;
}

void ForceIsa(Isa isa) {
  if (isa == Isa::kAvx2 && !Avx2Available()) {
    isa = Isa::kScalar;
  }
  g_forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ResetForcedIsa() {
  g_forced_isa.store(-1, std::memory_order_relaxed);
}

// ---- scalar reductions ----------------------------------------------------
//
// Four independent double accumulator lanes (lane j takes i ≡ j mod 4), the
// tail joins lane order 0,1,2,..., and the lanes combine as (s0+s1)+(s2+s3).
// The fixed order makes results reproducible; the independent lanes break
// the add dependency chain so the loop pipelines.

namespace {

double DotScalar(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
    s2 += static_cast<double>(a[i + 2]) * b[i + 2];
    s3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return (s0 + s1) + (s2 + s3) + tail;
}

double SumSquaresScalar(const float* v, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(v[i]) * v[i];
    s1 += static_cast<double>(v[i + 1]) * v[i + 1];
    s2 += static_cast<double>(v[i + 2]) * v[i + 2];
    s3 += static_cast<double>(v[i + 3]) * v[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(v[i]) * v[i];
  }
  return (s0 + s1) + (s2 + s3) + tail;
}

double SquaredDistanceScalar(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) - b[i];
    const double d1 = static_cast<double>(a[i + 1]) - b[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) - b[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    tail += d * d;
  }
  return (s0 + s1) + (s2 + s3) + tail;
}

void AxpyScalar(double alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

void ScaleScalar(float* v, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(v[i] * alpha);
  }
}

// ---- AVX2 reductions ------------------------------------------------------
//
// Same lane structure as the scalar path but with 4-wide double vectors
// (floats widened via cvtps_pd), so every product still rounds exactly once
// in double. Lane combination order is fixed: ((l0+l1)+(l2+l3)) per vector,
// vectors low-to-high, then the scalar tail.

#if AF_KERNELS_X86

__attribute__((target("avx2,fma"))) double HSumFixed(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2,fma"))) double DotAvx2(const float* a,
                                                   const float* b,
                                                   std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    const __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    acc0 = _mm256_fmadd_pd(a0, b0, acc0);
    acc1 = _mm256_fmadd_pd(a1, b1, acc1);
  }
  double sum = HSumFixed(acc0) + HSumFixed(acc1);
  for (; i < n; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double SumSquaresAvx2(const float* v,
                                                          std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    const __m256d v1 = _mm256_cvtps_pd(_mm_loadu_ps(v + i + 4));
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  double sum = HSumFixed(acc0) + HSumFixed(acc1);
  for (; i < n; ++i) {
    sum += static_cast<double>(v[i]) * v[i];
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double SquaredDistanceAvx2(
    const float* a, const float* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double sum = HSumFixed(acc0) + HSumFixed(acc1);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha, const float* x,
                                                  float* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d yv = _mm256_cvtps_pd(_mm_loadu_ps(y + i));
    _mm_storeu_ps(y + i, _mm256_cvtpd_ps(_mm256_fmadd_pd(va, xv, yv)));
  }
  for (; i < n; ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

__attribute__((target("avx2,fma"))) void ScaleAvx2(float* v, double alpha,
                                                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vv = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    _mm_storeu_ps(v + i, _mm256_cvtpd_ps(_mm256_mul_pd(vv, va)));
  }
  for (; i < n; ++i) {
    v[i] = static_cast<float>(v[i] * alpha);
  }
}

#endif  // AF_KERNELS_X86

}  // namespace

double Dot(const float* a, const float* b, std::size_t n) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    return DotAvx2(a, b, n);
  }
#endif
  return DotScalar(a, b, n);
}

double SumSquares(const float* v, std::size_t n) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    return SumSquaresAvx2(v, n);
  }
#endif
  return SumSquaresScalar(v, n);
}

double SquaredDistance(const float* a, const float* b, std::size_t n) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    return SquaredDistanceAvx2(a, b, n);
  }
#endif
  return SquaredDistanceScalar(a, b, n);
}

void Axpy(double alpha, const float* x, float* y, std::size_t n) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

void Scale(float* v, double alpha, std::size_t n) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    ScaleAvx2(v, alpha, n);
    return;
  }
#endif
  ScaleScalar(v, alpha, n);
}

void Add(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = a[i] + b[i];
    out[i + 1] = a[i + 1] + b[i + 1];
    out[i + 2] = a[i + 2] + b[i + 2];
    out[i + 3] = a[i + 3] + b[i + 3];
  }
  for (; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

void AddInPlace(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] += b[i];
    a[i + 1] += b[i + 1];
    a[i + 2] += b[i + 2];
    a[i + 3] += b[i + 3];
  }
  for (; i < n; ++i) {
    a[i] += b[i];
  }
}

void AddBias(float* row, const float* bias, std::size_t n) {
  AddInPlace(row, bias, n);
}

void SumRowsAccum(const float* m, std::size_t rows, std::size_t cols,
                  float* out) {
  for (std::size_t i = 0; i < rows; ++i) {
    AddInPlace(out, m + i * cols, cols);
  }
}

// ---- SGEMM micro-kernel ---------------------------------------------------

namespace {

void MicroKernelScalar(std::size_t kc, const float* ap, const float* bp,
                       float* acc) {
  float c[kMr * kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNr;
    const float* acol = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float a = acol[r];
      float* crow = c + r * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        crow[j] += a * brow[j];
      }
    }
  }
  std::memcpy(acc, c, sizeof(c));
}

#if AF_KERNELS_X86

__attribute__((target("avx2,fma"))) void MicroKernelAvx2(std::size_t kc,
                                                         const float* ap,
                                                         const float* bp,
                                                         float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* acol = ap + p * kMr;
    __m256 a;
    a = _mm256_broadcast_ss(acol + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(acol + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(acol + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(acol + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(acol + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(acol + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
  }
  _mm256_storeu_ps(acc + 0 * kNr, c00);
  _mm256_storeu_ps(acc + 0 * kNr + 8, c01);
  _mm256_storeu_ps(acc + 1 * kNr, c10);
  _mm256_storeu_ps(acc + 1 * kNr + 8, c11);
  _mm256_storeu_ps(acc + 2 * kNr, c20);
  _mm256_storeu_ps(acc + 2 * kNr + 8, c21);
  _mm256_storeu_ps(acc + 3 * kNr, c30);
  _mm256_storeu_ps(acc + 3 * kNr + 8, c31);
  _mm256_storeu_ps(acc + 4 * kNr, c40);
  _mm256_storeu_ps(acc + 4 * kNr + 8, c41);
  _mm256_storeu_ps(acc + 5 * kNr, c50);
  _mm256_storeu_ps(acc + 5 * kNr + 8, c51);
}

#endif  // AF_KERNELS_X86

}  // namespace

void MicroKernel(std::size_t kc, const float* ap, const float* bp,
                 float* acc) {
#if AF_KERNELS_X86
  if (ActiveIsa() == Isa::kAvx2) {
    MicroKernelAvx2(kc, ap, bp, acc);
    return;
  }
#endif
  MicroKernelScalar(kc, ap, bp, acc);
}

}  // namespace tensor::kernels

// Minimal leveled logger for the simulator and benches.
//
// Not thread-aware beyond a single mutex: log volume in this project is one
// line per FL round at most, so contention is irrelevant.
//
// Lines carry a wall-clock timestamp: `[2026-08-06 12:00:00.123] [INFO] …`.
// The minimum level comes from (highest precedence first) SetLogLevel(),
// the AF_LOG_LEVEL environment variable (trace|debug|info|warn|error, read
// once at first use), or the kInfo default. kTrace is chattier than kDebug
// and is what the observability span layer logs at in its debug mode.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>

namespace util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// "trace"/"debug"/"info"/"warn"("warning")/"error", case-insensitive.
// Returns nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);
const char* LogLevelName(LogLevel level);

// Thread-local tag prepended to every line this thread logs:
// `[…] [INFO] [client 3] …`. Distributed runs interleave server and worker
// threads on one stderr; the prefix makes each line attributable. Empty
// (the default) adds nothing.
void SetThreadLogPrefix(std::string prefix);
const std::string& ThreadLogPrefix();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace util

#define AF_LOG(level) ::util::internal::LogMessage(::util::LogLevel::level)

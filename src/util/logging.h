// Minimal leveled logger for the simulator and benches.
//
// Not thread-aware beyond a single mutex: log volume in this project is one
// line per FL round at most, so contention is irrelevant.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace util

#define AF_LOG(level) ::util::internal::LogMessage(::util::LogLevel::level)

// Shared string-keyed registrar behind every construction-by-name table.
//
// Three subsystems resolve user-facing names to implementations: attacks
// (attacks/registry.h), defenses (defense/registry.h), and compression
// codecs (compress/codec.h). They all want the same mechanics — canonical
// name matching that ignores case and '-', '_', ' ', '+' separators, alias
// spellings that resolve to the same entry, replace-on-re-register so tests
// can stub entries, and an unknown-name error that lists what is available
// — so the mechanics live here once and the subsystems keep only their
// public façades.
//
// NamedRegistry is thread-safe; registration typically happens at
// static-initialization time (see defense::RegistryEntry for the pattern)
// but is allowed at any point.
#pragma once

#include <cctype>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/check.h"

namespace util {

// Canonical key form: lower-cased with '-', '_', ' ' and '+' stripped, so
// "Trimmed-Mean", "trimmed_mean" and "trimmedmean" collide intentionally.
inline std::string CanonicalName(const std::string& name) {
  std::string canon;
  canon.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ' || c == '+') {
      continue;
    }
    canon.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return canon;
}

template <typename Value>
class NamedRegistry {
 public:
  // `subject` names what the registry holds ("defense", "codec", ...) and
  // prefixes every error message.
  explicit NamedRegistry(std::string subject) : subject_(std::move(subject)) {}

  NamedRegistry(const NamedRegistry&) = delete;
  NamedRegistry& operator=(const NamedRegistry&) = delete;

  // Registers `value` under a canonical name plus aliases. Re-registering
  // an existing name replaces it (lets tests stub entries).
  void Register(const std::string& name, std::vector<std::string> aliases,
                Value value) {
    const std::string key = CanonicalName(name);
    AF_CHECK(!key.empty()) << subject_ << " registry: empty name";
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = Entry{name, std::move(value)};
    for (const std::string& alias : aliases) {
      const std::string alias_key = CanonicalName(alias);
      AF_CHECK(!alias_key.empty())
          << subject_ << " registry: empty alias for " << name;
      aliases_[alias_key] = key;
    }
  }

  // Resolves `name` (or an alias of it); throws util::CheckError listing
  // every known canonical name when nothing matches.
  Value Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* entry = Lookup(name);
    if (entry == nullptr) {
      std::string known;
      for (const auto& [key, unused] : entries_) {
        if (!known.empty()) {
          known += ", ";
        }
        known += key;
      }
      AF_CHECK(false) << "unknown " << subject_ << " name: " << name
                      << " (known: " << known << ")";
    }
    return entry->value;
  }

  bool Has(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return Lookup(name) != nullptr;
  }

  // Canonical (registration-time) keys, sorted; aliases are not listed.
  std::vector<std::string> ListNames() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      names.push_back(key);
    }
    return names;  // std::map iteration → already sorted
  }

 private:
  struct Entry {
    std::string display_name;  // registration-time spelling
    Value value;
  };

  // Caller holds mu_.
  const Entry* Lookup(const std::string& name) const {
    std::string key = CanonicalName(name);
    auto alias = aliases_.find(key);
    if (alias != aliases_.end()) {
      key = alias->second;
    }
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  const std::string subject_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string> aliases_;  // canonical alias → key
};

}  // namespace util

#include "util/arena.h"

#include "util/check.h"

namespace util {

// operator new[] aligns char arrays to __STDCPP_DEFAULT_NEW_ALIGNMENT__
// (≥ alignof(std::max_align_t) everywhere we build), so block bases satisfy
// every alignment Allocate accepts.
struct Arena::Block {
  explicit Block(std::size_t n) : data(new std::uint8_t[n]), size(n) {}
  std::unique_ptr<std::uint8_t[]> data;
  std::size_t size;
};

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  AF_CHECK_GT(block_bytes_, 0u) << "arena block size must be positive";
}

Arena::Allocation Arena::Allocate(std::size_t size, std::size_t align) {
  AF_CHECK_GT(align, 0u);
  AF_CHECK_EQ(align & (align - 1), 0u)
      << "arena alignment must be a power of two, got " << align;
  AF_CHECK_LE(align, alignof(std::max_align_t))
      << "arena cannot over-align beyond " << alignof(std::max_align_t);

  // Oversized request: dedicated block, exact fit, not retained for bumping.
  if (size > block_bytes_) {
    auto block = std::make_shared<Block>(size);
    stats_.blocks_created += 1;
    stats_.bytes_reserved += size;
    stats_.bytes_allocated += size;
    return {std::span<std::uint8_t>(block->data.get(), size),
            std::shared_ptr<const void>(block, block->data.get())};
  }

  if (current_ != nullptr) {
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + size <= current_->size) {
      std::uint8_t* base = current_->data.get() + aligned;
      offset_ = aligned + size;
      stats_.bytes_allocated += size;
      return {std::span<std::uint8_t>(base, size),
              std::shared_ptr<const void>(current_, base)};
    }
  }

  // Roll to a fresh block; the old one stays alive exactly as long as the
  // keepalives already handed out from it.
  current_ = std::make_shared<Block>(block_bytes_);
  offset_ = size;
  stats_.blocks_created += 1;
  stats_.bytes_reserved += block_bytes_;
  stats_.bytes_allocated += size;
  return {std::span<std::uint8_t>(current_->data.get(), size),
          std::shared_ptr<const void>(current_, current_->data.get())};
}

std::size_t Arena::current_block_free() const {
  return current_ == nullptr ? 0 : current_->size - offset_;
}

}  // namespace util

// Deterministic random number generation for reproducible experiments.
//
// The paper stresses PLATO's "reproducible mode": the same clients and data
// samples are selected across runs given the same seed. We mirror that by
// deriving every stochastic component's generator from a single experiment
// seed through SplitMix64, so adding/removing one consumer never perturbs
// the streams handed to the others.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace util {

// SplitMix64 step: maps any 64-bit state to a well-mixed output. Used both
// as a standalone mixer and to seed std::mt19937_64 streams.
std::uint64_t SplitMix64(std::uint64_t& state);

// Hashes a label (e.g. "client/17/local-train") into a 64-bit stream id.
std::uint64_t HashLabel(std::string_view label);

// Factory for independent, deterministic random streams.
//
// Every consumer asks for a stream by (label, index); the returned engine is
// a pure function of (experiment seed, label, index). Two factories with the
// same seed hand out identical streams.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t seed) : seed_(seed) {}

  // Returns a fresh generator for the given stream label.
  std::mt19937_64 Stream(std::string_view label, std::uint64_t index = 0) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace util

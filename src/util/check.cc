#include "util/check.h"

namespace util::internal {

void FailCheck(const char* condition, const char* file, int line,
               const std::string& message) {
  std::ostringstream out;
  out << "Check failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace util::internal

#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace util {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  AF_CHECK(!header_.empty());
}

void ConsoleTable::AddRow(std::vector<std::string> row) {
  AF_CHECK_EQ(row.size(), header_.size()) << "row arity must match header";
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace util

#include "util/fd.h"

#include <unistd.h>

#include <cstring>

namespace util {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

std::string ErrnoMessage(int err) {
  char buf[128] = {};
  // GNU strerror_r may return a static string instead of filling buf.
  const char* text = ::strerror_r(err, buf, sizeof(buf));
  return std::string(text) + " (errno " + std::to_string(err) + ")";
}

}  // namespace util

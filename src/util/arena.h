// Reference-counted block arena for transport buffers.
//
// The zero-copy update path needs a place to materialize float payloads
// exactly once (decode-into-arena) and hand out views that may outlive the
// reactor tick — an update sits in the server's aggregation buffer for many
// rounds before the defense retires it. A classic bump arena with a global
// Reset() cannot express that lifetime, so blocks here are individually
// reference-counted: every Allocation carries a shared_ptr keepalive for
// its backing block, the arena itself only holds the block it is currently
// bumping into, and a block is freed when the last view into it dies. There
// is no Reset to call and no way to use a span after its memory is gone.
//
// Single-threaded by design (one arena per reactor / per backend); the
// keepalives it hands out are safe to destroy on any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // One arena allocation: `bytes` stays valid for as long as `keepalive`
  // (or any copy of it) is alive, independent of the arena's own lifetime.
  struct Allocation {
    std::span<std::uint8_t> bytes;
    std::shared_ptr<const void> keepalive;
  };

  // Returns `size` bytes aligned to `align` (a power of two ≤ the block's
  // natural alignment). Requests larger than the block size get a dedicated
  // block of exactly the requested size.
  Allocation Allocate(std::size_t size,
                      std::size_t align = alignof(std::max_align_t));

  // Typed convenience: an uninitialized span of `count` Ts plus the
  // keepalive for its block. T must be trivially destructible (the arena
  // never runs destructors).
  template <typename T>
  struct TypedAllocation {
    std::span<T> data;
    std::shared_ptr<const void> keepalive;
  };
  template <typename T>
  TypedAllocation<T> AllocateSpan(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    Allocation raw = Allocate(count * sizeof(T), alignof(T));
    return {std::span<T>(reinterpret_cast<T*>(raw.bytes.data()), count),
            std::move(raw.keepalive)};
  }

  struct Stats {
    std::uint64_t blocks_created = 0;   // lifetime total
    std::uint64_t bytes_reserved = 0;   // lifetime total block capacity
    std::uint64_t bytes_allocated = 0;  // lifetime total handed out (padded)
  };
  const Stats& stats() const { return stats_; }

  // Bytes still free in the block currently being bumped into (testing).
  std::size_t current_block_free() const;

 private:
  struct Block;

  std::size_t block_bytes_;
  std::shared_ptr<Block> current_;  // only live reference the arena keeps
  std::size_t offset_ = 0;          // bump cursor within current_
  Stats stats_;
};

}  // namespace util

#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
std::once_flag g_env_once;

// AF_LOG_LEVEL is consulted once, lazily, so an explicit SetLogLevel()
// call before any logging still wins over the environment.
void InitLevelFromEnv() {
  const char* env = std::getenv("AF_LOG_LEVEL");
  if (env == nullptr) {
    return;
  }
  if (auto level = ParseLogLevel(env)) {
    g_min_level = static_cast<int>(*level);
  } else {
    std::fprintf(stderr, "[WARN] unrecognised AF_LOG_LEVEL '%s' ignored\n",
                 env);
  }
}

void FormatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);
  const std::size_t used = std::strftime(buf, size, "%Y-%m-%d %H:%M:%S", &tm);
  std::snprintf(buf + used, size - used, ".%03d", static_cast<int>(millis));
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string canon;
  canon.reserve(name.size());
  for (char c : name) {
    canon.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (canon == "trace") {
    return LogLevel::kTrace;
  }
  if (canon == "debug") {
    return LogLevel::kDebug;
  }
  if (canon == "info") {
    return LogLevel::kInfo;
  }
  if (canon == "warn" || canon == "warning") {
    return LogLevel::kWarn;
  }
  if (canon == "error") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

namespace {
thread_local std::string g_thread_prefix;
}  // namespace

void SetThreadLogPrefix(std::string prefix) {
  g_thread_prefix = std::move(prefix);
}

const std::string& ThreadLogPrefix() { return g_thread_prefix; }

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, [] {});  // mark env as consulted: explicit wins
  g_min_level = static_cast<int>(level);
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitLevelFromEnv);
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  std::call_once(g_env_once, InitLevelFromEnv);
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char timestamp[40];
  FormatTimestamp(timestamp, sizeof(timestamp));
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_thread_prefix.empty()) {
    std::fprintf(stderr, "[%s] [%s] %s\n", timestamp, LogLevelName(level),
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] [%s] %s\n", timestamp,
                 LogLevelName(level), g_thread_prefix.c_str(),
                 message.c_str());
  }
}

}  // namespace internal
}  // namespace util

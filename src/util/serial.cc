#include "util/serial.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/fd.h"

namespace util::serial {

namespace {

template <typename T>
void AppendLe(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

void Writer::U8(std::uint8_t v) { buffer_.push_back(v); }
void Writer::U32(std::uint32_t v) { AppendLe(buffer_, v); }
void Writer::U64(std::uint64_t v) { AppendLe(buffer_, v); }
void Writer::I64(std::int64_t v) { AppendLe(buffer_, static_cast<std::uint64_t>(v)); }

void Writer::F64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLe(buffer_, bits);
}

void Writer::Str(const std::string& s) {
  U64(s.size());
  const auto* data = reinterpret_cast<const std::uint8_t*>(s.data());
  buffer_.insert(buffer_.end(), data, data + s.size());
}

void Writer::FloatVec(std::span<const float> v) {
  U64(v.size());
  const auto* data = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), data, data + v.size() * sizeof(float));
}

void Writer::DoubleVec(std::span<const double> v) {
  U64(v.size());
  const auto* data = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), data, data + v.size() * sizeof(double));
}

void Writer::Raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Reader::Require(std::size_t n) const {
  AF_CHECK_LE(n, bytes_.size() - offset_)
      << "serial: truncated input (need " << n << " bytes at offset "
      << offset_ << " of " << bytes_.size() << ")";
}

std::uint8_t Reader::U8() {
  Require(1);
  return bytes_[offset_++];
}

std::uint32_t Reader::U32() {
  Require(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t Reader::U64() {
  Require(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

std::int64_t Reader::I64() { return static_cast<std::int64_t>(U64()); }

double Reader::F64() {
  const std::uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::Str() {
  const std::uint64_t n = U64();
  Require(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_), n);
  offset_ += n;
  return s;
}

std::vector<float> Reader::FloatVec() {
  const std::uint64_t n = U64();
  // Divide rather than multiply: n * sizeof(float) wraps for n >= 2^62,
  // turning a hostile length into Require(0) and an unbounded allocation.
  AF_CHECK_LE(n, (bytes_.size() - offset_) / sizeof(float))
      << "serial: float vector declares " << n << " elements but only "
      << bytes_.size() - offset_ << " bytes remain";
  std::vector<float> v(n);
  if (n > 0) {
    std::memcpy(v.data(), bytes_.data() + offset_, n * sizeof(float));
  }
  offset_ += n * sizeof(float);
  return v;
}

std::vector<double> Reader::DoubleVec() {
  const std::uint64_t n = U64();
  AF_CHECK_LE(n, (bytes_.size() - offset_) / sizeof(double))
      << "serial: double vector declares " << n << " elements but only "
      << bytes_.size() - offset_ << " bytes remain";
  std::vector<double> v(n);
  if (n > 0) {
    std::memcpy(v.data(), bytes_.data() + offset_, n * sizeof(double));
  }
  offset_ += n * sizeof(double);
  return v;
}

void Reader::Skip(std::size_t n) {
  Require(n);
  offset_ += n;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  UniqueFd fd(::open(path.c_str(), O_RDONLY));
  AF_CHECK(fd.valid()) << "serial: cannot open " << path << ": "
                       << ErrnoMessage(errno);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      AF_CHECK(false) << "serial: read " << path << ": " << ErrnoMessage(errno);
    }
    if (n == 0) {
      break;
    }
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  return bytes;
}

namespace {

void WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      AF_CHECK(false) << "serial: write " << path << ": "
                      << ErrnoMessage(errno);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    UniqueFd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    AF_CHECK(fd.valid()) << "serial: cannot create " << tmp << ": "
                         << ErrnoMessage(errno);
    WriteAll(fd.get(), bytes.data(), bytes.size(), tmp);
    AF_CHECK_EQ(::fsync(fd.get()), 0)
        << "serial: fsync " << tmp << ": " << ErrnoMessage(errno);
  }
  AF_CHECK_EQ(::rename(tmp.c_str(), path.c_str()), 0)
      << "serial: rename " << tmp << " -> " << path << ": "
      << ErrnoMessage(errno);
  // Persist the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  UniqueFd dirfd(::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY));
  if (dirfd.valid()) {
    ::fsync(dirfd.get());  // best effort; some filesystems reject dir fsync
  }
}

}  // namespace util::serial

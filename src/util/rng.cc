#include "util/rng.h"

namespace util {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashLabel(std::string_view label) {
  // FNV-1a, then one SplitMix64 round to spread low-entropy labels.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : label) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return SplitMix64(hash);
}

std::mt19937_64 RngFactory::Stream(std::string_view label,
                                   std::uint64_t index) const {
  std::uint64_t state = seed_;
  state ^= HashLabel(label);
  state ^= 0x9E3779B97F4A7C15ULL * (index + 1);
  // Draw a few rounds so correlated (seed, label, index) triples decorrelate.
  std::uint64_t s0 = SplitMix64(state);
  std::uint64_t s1 = SplitMix64(state);
  std::seed_seq seq{static_cast<std::uint32_t>(s0), static_cast<std::uint32_t>(s0 >> 32),
                    static_cast<std::uint32_t>(s1), static_cast<std::uint32_t>(s1 >> 32)};
  return std::mt19937_64(seq);
}

}  // namespace util

#include "util/flags.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/check.h"

namespace util {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare switch.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& name,
                                std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  AF_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << name << " is not an integer: " << it->second;
  return value;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  AF_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << name << " is not a number: " << it->second;
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::string lower = it->second;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  AF_CHECK(false) << "flag --" << name << " is not a boolean: " << it->second;
  return fallback;
}

std::vector<std::string> FlagParser::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    names.push_back(name);
  }
  return names;
}

void FlagParser::RejectUnknown(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      if (!unknown.empty()) {
        unknown += ", ";
      }
      unknown += "--" + name;
    }
  }
  AF_CHECK(unknown.empty()) << "unknown flag(s): " << unknown;
}

}  // namespace util

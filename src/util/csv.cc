#include "util/csv.h"

#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  AF_CHECK(out_.good()) << "failed to open CSV file " << path;
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    return cell;
  }
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') {
      escaped += '"';
    }
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << EscapeCell(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string FormatFixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace util

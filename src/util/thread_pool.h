// Fixed-size thread pool with a ParallelFor helper.
//
// Used only to parallelise independent client local-training jobs inside one
// simulated FL round; determinism is preserved because every client draws
// from its own pre-derived RNG stream and results are collected by index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace util {

class ThreadPool {
 public:
  // Creates `num_threads` workers (0 → hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; tasks must not throw (exceptions terminate the pool's
  // worker). Use ParallelFor for checked fan-out.
  void Submit(std::function<void()> task);

  // Runs body(i) for i in [0, count) across the pool and blocks until all
  // iterations complete. Exceptions from body are rethrown (first one wins).
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace util

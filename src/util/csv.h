// CSV writer used by the bench harness to persist every regenerated
// table/figure series next to the console output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace util {

// Writes rows of string cells as RFC-4180-ish CSV (quotes cells containing
// commas, quotes or newlines). The file is created/truncated on open.
class CsvWriter {
 public:
  // Opens `path` for writing; throws CheckError on failure.
  explicit CsvWriter(const std::string& path);

  // Writes one row. Cells are escaped as needed.
  void WriteRow(const std::vector<std::string>& cells);

  // Convenience: header + numeric row helpers.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  const std::string& path() const { return path_; }

 private:
  static std::string EscapeCell(const std::string& cell);

  std::string path_;
  std::ofstream out_;
};

// Formats a double with fixed precision (default matches the paper's tables:
// one decimal place for percentages).
std::string FormatFixed(double value, int digits = 1);

}  // namespace util

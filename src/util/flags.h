// Minimal command-line flag parsing for the example/CLI binaries.
//
// Supports --key=value, --key value, and bare --switch (true). Unknown
// flags are collected so the caller can reject typos; positional arguments
// are preserved in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace util {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed getters with defaults; throw CheckError when the stored value
  // cannot be parsed as the requested type.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flag names that were parsed, in no particular order (for validation).
  std::vector<std::string> Names() const;

  // Throws CheckError naming every parsed flag not in `known` — call once
  // after listing the flags a binary accepts, so typos fail loudly instead
  // of silently running with defaults.
  void RejectUnknown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util

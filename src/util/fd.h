// POSIX file-descriptor RAII and errno formatting.
//
// The net/ transport layer deals in raw sockets; UniqueFd guarantees no
// descriptor leaks on any error path (exceptions included), and
// ErrnoMessage turns errno values into readable strings for CheckError
// messages without the strerror thread-safety footgun.
#pragma once

#include <string>

namespace util {

// Move-only owner of an open file descriptor; closes it on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  // Gives up ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  // Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// "<errno name/text> (errno <n>)" for the given errno value.
std::string ErrnoMessage(int err);

}  // namespace util

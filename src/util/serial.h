// Little-endian binary serialization primitives and crash-safe file I/O.
//
// The checkpoint subsystem (fl/checkpoint.h) needs a byte format that every
// layer can contribute to without owning the container: defenses append
// their cross-round state through Defense::SaveState(Writer&), the
// simulator frames the whole thing, and the file hits disk atomically
// (temp file + fsync + rename) so a crash mid-write never destroys the
// previous checkpoint. Floating-point values round-trip bit-exactly
// (doubles travel as their IEEE-754 bit pattern, never through text).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace util::serial {

// Append-only little-endian byte sink.
class Writer {
 public:
  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  // IEEE-754 bit pattern; bit-exact round trip, NaN payloads included.
  void F64(double v);
  // u64 length prefix + raw bytes.
  void Str(const std::string& s);
  // u64 count prefix + raw float32 payload.
  void FloatVec(std::span<const float> v);
  // u64 count prefix + raw float64 payload.
  void DoubleVec(std::span<const double> v);
  // Raw bytes, no framing — for embedding externally-framed blocks (AFPM).
  void Raw(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// Bounds-checked reader over a byte span; throws util::CheckError on
// truncation or on length prefixes exceeding the bytes actually present.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  double F64();
  std::string Str();
  std::vector<float> FloatVec();
  std::vector<double> DoubleVec();

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }
  // The unread tail (for externally-framed blocks); Skip advances past it.
  std::span<const std::uint8_t> Tail() const { return bytes_.subspan(offset_); }
  void Skip(std::size_t n);

 private:
  void Require(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

// Reads a whole file; throws util::CheckError when it cannot be opened.
std::vector<std::uint8_t> ReadFileBytes(const std::string& path);

// Crash-safe whole-file write: writes `<path>.tmp`, fsyncs it, atomically
// renames over `path`, then fsyncs the parent directory. A reader never
// observes a partial file: either the old content or the new one.
void AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> bytes);

}  // namespace util::serial

// Aligned console table rendering, so each bench prints rows shaped like the
// paper's tables (methods as rows, attacks as columns).
#pragma once

#include <string>
#include <vector>

namespace util {

// Accumulates a rectangular table of string cells and renders it with
// column-aligned padding and a separator under the header.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  // Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the table to a single string (trailing newline included).
  std::string Render() const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Queue-wait telemetry piggybacks on the tracing switch: when tracing is
  // off, Submit costs one branch extra; when on, each task records the time
  // it sat in the queue into the default registry.
  if (obs::TraceRecorder::Global().enabled()) {
    const auto enqueued = std::chrono::steady_clock::now();
    task = [inner = std::move(task), enqueued] {
      const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - enqueued);
      // Looked up per task, not cached: DefaultRegistry().Reset() must not
      // leave a dangling reference behind (Submit volume is a handful of
      // tasks per round, so the map lookup is noise).
      obs::DefaultRegistry()
          .GetHistogram("threadpool.queue_wait_us")
          .Record(static_cast<double>(waited.count()) / 1e3);
      AF_TRACE_SPAN("threadpool.task");
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AF_CHECK(!stopping_) << "submit after shutdown";
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  // One task per worker; each pulls indices until exhausted. This keeps the
  // queue small and balances uneven per-client training times. The waiter
  // blocks until every shard has fully exited, so no shard can touch these
  // stack-local synchronisation objects after ParallelFor returns.
  std::size_t shards = std::min(count, workers_.size());
  std::size_t active = shards;
  for (std::size_t s = 0; s < shards; ++s) {
    Submit([&] {
      for (;;) {
        std::size_t i = next.fetch_add(1);
        if (i >= count) {
          break;
        }
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
      }
      // Notify while holding the lock: the waiter re-checks the predicate
      // only after reacquiring done_mutex, so the cv cannot be destroyed
      // while this shard still touches it.
      std::lock_guard<std::mutex> lock(done_mutex);
      --active;
      done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return active == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace util

// Lightweight precondition / invariant checking.
//
// AF_CHECK is always on (including release builds): the simulator and the
// defense modules are research code where silently corrupt state is far more
// expensive than a branch. Violations throw util::CheckError so tests can
// assert on them and callers can recover if they choose.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace util {

// Error thrown when an AF_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void FailCheck(const char* condition, const char* file, int line,
                            const std::string& message);

// Stream-collector so AF_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    FailCheck(condition_, file_, line_, stream_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace util

#define AF_CHECK(condition)                                              \
  if (condition) {                                                       \
  } else                                                                 \
    ::util::internal::CheckMessage(#condition, __FILE__, __LINE__)

#define AF_CHECK_EQ(a, b) AF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define AF_CHECK_NE(a, b) AF_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define AF_CHECK_LT(a, b) AF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define AF_CHECK_LE(a, b) AF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define AF_CHECK_GT(a, b) AF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define AF_CHECK_GE(a, b) AF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

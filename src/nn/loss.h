// Softmax cross-entropy over class logits, fused forward + backward.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace nn {

struct LossResult {
  double loss = 0.0;           // mean cross-entropy over the batch
  std::size_t correct = 0;     // argmax == label count
  tensor::Tensor grad_logits;  // dL/dlogits, already divided by batch size
};

// logits: (batch, classes); labels: batch class indices in [0, classes).
LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               std::span<const std::int64_t> labels);

// Counts argmax-correct predictions without building gradients.
std::size_t CountCorrect(const tensor::Tensor& logits,
                         std::span<const std::int64_t> labels);

}  // namespace nn

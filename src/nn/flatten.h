// Flattens NCHW activations to (N, C*H*W) and restores the shape on backward.
#pragma once

#include "nn/layer.h"

namespace nn {

class Flatten : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_shape_;
};

}  // namespace nn

// Sequential model container plus the flat-parameter view the FL layer uses.
//
// The server and the defenses treat a model as one flat float vector; the
// Sequential is the only place that knows the layer structure.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"

namespace nn {

class Sequential {
 public:
  Sequential() = default;

  // Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  // Runs the full forward pass.
  tensor::Tensor Forward(const tensor::Tensor& input);

  // Propagates dL/d(output) back through every layer, accumulating parameter
  // gradients. Returns dL/d(input).
  tensor::Tensor Backward(const tensor::Tensor& grad_output);

  void ZeroGrads();

  // All parameter / gradient tensors across layers, in layer order.
  std::vector<tensor::Tensor*> Params();
  std::vector<tensor::Tensor*> Grads();

  std::size_t NumParameters() const;
  std::size_t NumLayers() const { return layers_.size(); }

  // Flattened-parameter interop with the FL substrate.
  std::vector<float> GetFlatParams() const;
  void SetFlatParams(std::span<const float> flat);
  std::vector<float> GetFlatGrads() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn

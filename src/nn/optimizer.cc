#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum,
                           double weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  AF_CHECK_GT(learning_rate, 0.0);
  AF_CHECK_GE(momentum, 0.0);
}

void SgdOptimizer::Step(const std::vector<tensor::Tensor*>& params,
                        const std::vector<tensor::Tensor*>& grads) {
  AF_CHECK_EQ(params.size(), grads.size());
  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), {});
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    tensor::Tensor& p = *params[k];
    const tensor::Tensor& g = *grads[k];
    AF_CHECK_EQ(p.size(), g.size());
    auto& vel = velocity_[k];
    if (vel.size() != p.size()) {
      vel.assign(p.size(), 0.0f);
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
      float grad = g[i] + static_cast<float>(weight_decay_) * p[i];
      vel[i] = static_cast<float>(momentum_) * vel[i] + grad;
      p[i] -= static_cast<float>(learning_rate_) * vel[i];
    }
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon, double weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  AF_CHECK_GT(learning_rate, 0.0);
}

void AdamOptimizer::Step(const std::vector<tensor::Tensor*>& params,
                         const std::vector<tensor::Tensor*>& grads) {
  AF_CHECK_EQ(params.size(), grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), {});
    v_.assign(params.size(), {});
  }
  ++step_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    tensor::Tensor& p = *params[k];
    const tensor::Tensor& g = *grads[k];
    AF_CHECK_EQ(p.size(), g.size());
    auto& m = m_[k];
    auto& v = v_[k];
    if (m.size() != p.size()) {
      m.assign(p.size(), 0.0f);
      v.assign(p.size(), 0.0f);
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
      double grad = g[i] + weight_decay_ * p[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * grad);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * grad * grad);
      double m_hat = m[i] / bias1;
      double v_hat = v[i] / bias2;
      p[i] -= static_cast<float>(learning_rate_ * m_hat /
                                 (std::sqrt(v_hat) + epsilon_));
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerConfig& config) {
  switch (config.kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(config.learning_rate,
                                            config.momentum,
                                            config.weight_decay);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(config.learning_rate, 0.9, 0.999,
                                             1e-8, config.weight_decay);
  }
  AF_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace nn

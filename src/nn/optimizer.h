// Local optimizers matching the paper's Table 1: SGD with momentum for the
// LeNet-5 tasks and Adam for the VGG tasks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update step; params/grads are index-aligned and must keep the
  // same identity across calls (per-parameter state is keyed by index).
  virtual void Step(const std::vector<tensor::Tensor*>& params,
                    const std::vector<tensor::Tensor*>& grads) = 0;

  virtual std::string Name() const = 0;
};

class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(double learning_rate, double momentum = 0.0,
               double weight_decay = 0.0);

  void Step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;

  std::string Name() const override { return "SGD"; }

 private:
  double learning_rate_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;  // lazily sized per param
};

class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8, double weight_decay = 0.0);

  void Step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;

  std::string Name() const override { return "Adam"; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  std::size_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// Optimizer selection carried in experiment configs.
enum class OptimizerKind { kSgd, kAdam };

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  double learning_rate = 0.01;
  double momentum = 0.9;  // SGD only
  double weight_decay = 0.0;
};

std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerConfig& config);

}  // namespace nn

// Fully connected layer: out = in * W^T + b, with W stored (out×in).
#pragma once

#include <random>

#include "nn/layer.h"

namespace nn {

class Dense : public Layer {
 public:
  // He-uniform initialisation of W; b starts at zero.
  Dense(std::size_t in_features, std::size_t out_features, std::mt19937_64& rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;

  std::vector<tensor::Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<tensor::Tensor*> Grads() override {
    return {&grad_weight_, &grad_bias_};
  }

  std::string Name() const override { return "Dense"; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  tensor::Tensor weight_;       // (out, in)
  tensor::Tensor bias_;         // (out)
  tensor::Tensor grad_weight_;  // (out, in)
  tensor::Tensor grad_bias_;    // (out)
  tensor::Tensor cached_input_;  // (batch, in)
};

}  // namespace nn

#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "util/check.h"

namespace nn {
namespace {

double EvalLoss(Sequential& model, const tensor::Tensor& input,
                std::span<const std::int64_t> labels) {
  tensor::Tensor logits = model.Forward(input);
  return SoftmaxCrossEntropy(logits, labels).loss;
}

}  // namespace

GradientCheckResult CheckGradients(Sequential& model,
                                   const tensor::Tensor& input,
                                   std::span<const std::int64_t> labels,
                                   double epsilon, std::size_t max_checks,
                                   double noise_floor) {
  model.ZeroGrads();
  tensor::Tensor logits = model.Forward(input);
  LossResult loss = SoftmaxCrossEntropy(logits, labels);
  model.Backward(loss.grad_logits);
  std::vector<float> analytic = model.GetFlatGrads();
  std::vector<float> params = model.GetFlatParams();
  AF_CHECK_EQ(analytic.size(), params.size());

  GradientCheckResult result;
  const std::size_t total = params.size();
  const std::size_t stride = std::max<std::size_t>(1, total / max_checks);
  for (std::size_t i = 0; i < total; i += stride) {
    const float original = params[i];
    params[i] = original + static_cast<float>(epsilon);
    model.SetFlatParams(params);
    double loss_plus = EvalLoss(model, input, labels);
    params[i] = original - static_cast<float>(epsilon);
    model.SetFlatParams(params);
    double loss_minus = EvalLoss(model, input, labels);
    params[i] = original;

    double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    double magnitude = std::max(std::abs(numeric),
                                static_cast<double>(std::abs(analytic[i])));
    if (magnitude < noise_floor) {
      ++result.skipped;
      continue;
    }
    double rel = std::abs(numeric - analytic[i]) / magnitude;
    result.max_relative_error = std::max(result.max_relative_error, rel);
    ++result.checked;
  }
  model.SetFlatParams(params);
  return result;
}

}  // namespace nn

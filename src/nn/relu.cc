#include "nn/relu.h"

#include "util/check.h"

namespace nn {

tensor::Tensor ReLU::Forward(const tensor::Tensor& input) {
  cached_input_ = input;
  tensor::Tensor out = input;
  for (float& x : out.vec()) {
    if (x < 0.0f) {
      x = 0.0f;
    }
  }
  return out;
}

tensor::Tensor ReLU::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.size(), cached_input_.size());
  tensor::Tensor dx = grad_output;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (cached_input_[i] <= 0.0f) {
      dx[i] = 0.0f;
    }
  }
  return dx;
}

}  // namespace nn

#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "util/check.h"

namespace nn {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'P', 'M'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

template <typename T>
void AppendRaw(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T ReadRaw(std::span<const std::uint8_t> bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

}  // namespace

std::size_t FlatParamsWireSize(std::size_t count) {
  return kHeaderBytes + count * sizeof(float);
}

void AppendFlatParams(std::vector<std::uint8_t>& out,
                      std::span<const float> params) {
  out.reserve(out.size() + FlatParamsWireSize(params.size()));
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  AppendRaw(out, kVersion);
  AppendRaw(out, static_cast<std::uint64_t>(params.size()));
  const auto* data = reinterpret_cast<const std::uint8_t*>(params.data());
  out.insert(out.end(), data, data + params.size() * sizeof(float));
}

namespace {

// Validates the AFPM block at `*offset` and returns the byte extent of its
// float payload without copying anything. Shared by the copying and
// zero-copy parse forms so they reject identical inputs identically.
std::span<const std::uint8_t> ValidateFlatParams(
    std::span<const std::uint8_t> bytes, std::size_t* offset) {
  AF_CHECK(offset != nullptr);
  AF_CHECK_LE(*offset, bytes.size()) << "parse offset past end of buffer";
  std::span<const std::uint8_t> rest = bytes.subspan(*offset);
  // Every failure names the offending absolute byte offset so a corrupt
  // checkpoint or captured frame is locatable without a hex dump.
  AF_CHECK_GE(rest.size(), kHeaderBytes)
      << "truncated AFPM header at byte offset " << *offset << ": need "
      << kHeaderBytes << " bytes, have " << rest.size();
  AF_CHECK(std::memcmp(rest.data(), kMagic, sizeof(kMagic)) == 0)
      << "bad AFPM magic at byte offset " << *offset;
  const auto version = ReadRaw<std::uint32_t>(rest, sizeof(kMagic));
  AF_CHECK_EQ(version, kVersion)
      << "unsupported AFPM version at byte offset "
      << *offset + sizeof(kMagic);
  const auto count =
      ReadRaw<std::uint64_t>(rest, sizeof(kMagic) + sizeof(version));
  // Bounds-check before allocating: a corrupt count must not trigger an
  // attempted multi-terabyte allocation.
  const std::size_t available = rest.size() - kHeaderBytes;
  AF_CHECK_LE(count, available / sizeof(float))
      << "truncated AFPM payload at byte offset " << *offset + kHeaderBytes
      << ": header declares " << count << " floats but only " << available
      << " bytes follow";
  return rest.subspan(kHeaderBytes,
                      static_cast<std::size_t>(count) * sizeof(float));
}

}  // namespace

std::vector<float> ParseFlatParams(std::span<const std::uint8_t> bytes,
                                   std::size_t* offset) {
  const std::span<const std::uint8_t> payload =
      ValidateFlatParams(bytes, offset);
  std::vector<float> params(payload.size() / sizeof(float));
  if (!params.empty()) {
    std::memcpy(params.data(), payload.data(), payload.size());
  }
  *offset += FlatParamsWireSize(params.size());
  return params;
}

std::optional<std::span<const float>> TryParseFlatParamsView(
    std::span<const std::uint8_t> bytes, std::size_t* offset) {
  const std::span<const std::uint8_t> payload =
      ValidateFlatParams(bytes, offset);
  if (reinterpret_cast<std::uintptr_t>(payload.data()) % alignof(float) !=
      0) {
    return std::nullopt;  // caller copies; no offset advance
  }
  const std::size_t count = payload.size() / sizeof(float);
  *offset += FlatParamsWireSize(count);
  return std::span<const float>(
      reinterpret_cast<const float*>(payload.data()), count);
}

void SaveFlatParams(const std::string& path, std::span<const float> params) {
  std::vector<std::uint8_t> buffer;
  AppendFlatParams(buffer, params);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AF_CHECK(out.good()) << "cannot open " << path << " for writing";
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  AF_CHECK(out.good()) << "write failed for " << path;
}

std::vector<float> LoadFlatParams(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AF_CHECK(in.good()) << "cannot open " << path;
  std::vector<std::uint8_t> buffer(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  AF_CHECK(!in.bad()) << "read failed for " << path;
  std::size_t offset = 0;
  try {
    std::vector<float> params = ParseFlatParams(buffer, &offset);
    // A checkpoint file is exactly one block; trailing bytes mean the file
    // was corrupted or concatenated and must not be silently accepted.
    AF_CHECK_EQ(offset, buffer.size())
        << "trailing garbage after AFPM block at byte offset " << offset
        << ": " << buffer.size() - offset << " extra bytes";
    return params;
  } catch (const util::CheckError& e) {
    throw util::CheckError(std::string(e.what()) + " [file: " + path + "]");
  }
}

}  // namespace nn

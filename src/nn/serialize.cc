#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/check.h"

namespace nn {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'P', 'M'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void SaveFlatParams(const std::string& path, std::span<const float> params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AF_CHECK(out.good()) << "cannot open " << path << " for writing";
  out.write(kMagic, sizeof(kMagic));
  std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  AF_CHECK(out.good()) << "write failed for " << path;
}

std::vector<float> LoadFlatParams(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AF_CHECK(in.good()) << "cannot open " << path;
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  AF_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
      << path << " is not an AFPM parameter file";
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  AF_CHECK(in.good()) << "truncated header in " << path;
  AF_CHECK_EQ(version, kVersion) << "unsupported AFPM version in " << path;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  AF_CHECK(in.good()) << "truncated header in " << path;
  std::vector<float> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  AF_CHECK(in.good()) << "truncated payload in " << path;
  return params;
}

}  // namespace nn

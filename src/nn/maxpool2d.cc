#include "nn/maxpool2d.h"

#include <limits>

#include "util/check.h"

namespace nn {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  AF_CHECK_GT(window, 0u);
}

tensor::Tensor MaxPool2d::Forward(const tensor::Tensor& input) {
  AF_CHECK_EQ(input.rank(), 4u);
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  AF_CHECK_EQ(h % window_, 0u) << "height not divisible by pooling window";
  AF_CHECK_EQ(w % window_, 0u) << "width not divisible by pooling window";
  const std::size_t ho = h / window_, wo = w / window_;

  cached_shape_ = input.shape();
  tensor::Tensor out({batch, channels, ho, wo});
  argmax_.assign(out.size(), 0);
  std::size_t oi = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < ho; ++i) {
        for (std::size_t j = 0; j < wo; ++j, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t di = 0; di < window_; ++di) {
            for (std::size_t dj = 0; dj < window_; ++dj) {
              const std::size_t ii = i * window_ + di;
              const std::size_t jj = j * window_ + dj;
              const std::size_t flat = ((n * channels + c) * h + ii) * w + jj;
              const float v = input[flat];
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2d::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.size(), argmax_.size());
  tensor::Tensor dx(cached_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    dx[argmax_[i]] += grad_output[i];
  }
  return dx;
}

}  // namespace nn

// 2×2-style max pooling with stride equal to the window size.
#pragma once

#include "nn/layer.h"

namespace nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  tensor::Shape cached_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

}  // namespace nn

// Elementwise ReLU.
#pragma once

#include "nn/layer.h"

namespace nn {

class ReLU : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "ReLU"; }

 private:
  tensor::Tensor cached_input_;
};

}  // namespace nn

#include "nn/conv2d.h"

#include <cmath>

#include "util/check.h"

namespace nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding, std::mt19937_64& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  AF_CHECK_GT(kernel, 0u);
  const float fan_in =
      static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  weight_.FillUniform(-bound, bound, rng);
}

void Conv2d::Im2Col(const tensor::Tensor& input, std::size_t n, std::size_t h,
                    std::size_t w, std::vector<float>& cols) const {
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  cols.assign(patch * ho * wo, 0.0f);
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ki = 0; ki < kernel_; ++ki) {
      for (std::size_t kj = 0; kj < kernel_; ++kj) {
        const std::size_t row = (c * kernel_ + ki) * kernel_ + kj;
        float* dst = cols.data() + row * ho * wo;
        for (std::size_t oi = 0; oi < ho; ++oi) {
          const long ii = static_cast<long>(oi + ki) - static_cast<long>(padding_);
          if (ii < 0 || ii >= static_cast<long>(h)) {
            continue;
          }
          for (std::size_t oj = 0; oj < wo; ++oj) {
            const long jj =
                static_cast<long>(oj + kj) - static_cast<long>(padding_);
            if (jj < 0 || jj >= static_cast<long>(w)) {
              continue;
            }
            dst[oi * wo + oj] = input.At(n, c, static_cast<std::size_t>(ii),
                                         static_cast<std::size_t>(jj));
          }
        }
      }
    }
  }
}

void Conv2d::Col2Im(const std::vector<float>& cols, std::size_t n,
                    std::size_t h, std::size_t w,
                    tensor::Tensor& grad_input) const {
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ki = 0; ki < kernel_; ++ki) {
      for (std::size_t kj = 0; kj < kernel_; ++kj) {
        const std::size_t row = (c * kernel_ + ki) * kernel_ + kj;
        const float* src = cols.data() + row * ho * wo;
        for (std::size_t oi = 0; oi < ho; ++oi) {
          const long ii = static_cast<long>(oi + ki) - static_cast<long>(padding_);
          if (ii < 0 || ii >= static_cast<long>(h)) {
            continue;
          }
          for (std::size_t oj = 0; oj < wo; ++oj) {
            const long jj =
                static_cast<long>(oj + kj) - static_cast<long>(padding_);
            if (jj < 0 || jj >= static_cast<long>(w)) {
              continue;
            }
            grad_input.At(n, c, static_cast<std::size_t>(ii),
                          static_cast<std::size_t>(jj)) += src[oi * wo + oj];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::Forward(const tensor::Tensor& input) {
  AF_CHECK_EQ(input.rank(), 4u);
  AF_CHECK_EQ(input.dim(1), in_channels_);
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  AF_CHECK_GE(h + 2 * padding_ + 1, kernel_ + 1) << "kernel larger than input";
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;

  cached_input_ = input;
  tensor::Tensor out({batch, out_channels_, ho, wo});
  const float* pw = weight_.data().data();
  std::vector<float> cols;
  for (std::size_t n = 0; n < batch; ++n) {
    Im2Col(input, n, h, w, cols);
    // out[n] = W (out×patch) * cols (patch×(ho*wo))
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      float* orow = out.data().data() + ((n * out_channels_ + oc) * ho * wo);
      const float b = bias_[oc];
      for (std::size_t px = 0; px < ho * wo; ++px) {
        orow[px] = b;
      }
      const float* wrow = pw + oc * patch;
      for (std::size_t p = 0; p < patch; ++p) {
        const float wv = wrow[p];
        if (wv == 0.0f) {
          continue;
        }
        const float* crow = cols.data() + p * ho * wo;
        for (std::size_t px = 0; px < ho * wo; ++px) {
          orow[px] += wv * crow[px];
        }
      }
    }
  }
  return out;
}

tensor::Tensor Conv2d::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.rank(), 4u);
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  AF_CHECK_EQ(grad_output.dim(0), batch);
  AF_CHECK_EQ(grad_output.dim(1), out_channels_);
  AF_CHECK_EQ(grad_output.dim(2), ho);
  AF_CHECK_EQ(grad_output.dim(3), wo);

  tensor::Tensor grad_input(cached_input_.shape());
  float* pgw = grad_weight_.data().data();
  const float* pw = weight_.data().data();
  std::vector<float> cols;
  std::vector<float> dcols(patch * ho * wo);
  for (std::size_t n = 0; n < batch; ++n) {
    Im2Col(cached_input_, n, h, w, cols);
    std::fill(dcols.begin(), dcols.end(), 0.0f);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* grow =
          grad_output.data().data() + ((n * out_channels_ + oc) * ho * wo);
      // Bias gradient: sum of the output-channel gradient map.
      double gb = 0.0;
      for (std::size_t px = 0; px < ho * wo; ++px) {
        gb += grow[px];
      }
      grad_bias_[oc] += static_cast<float>(gb);

      float* gwrow = pgw + oc * patch;
      const float* wrow = pw + oc * patch;
      for (std::size_t p = 0; p < patch; ++p) {
        const float* crow = cols.data() + p * ho * wo;
        float* dcrow = dcols.data() + p * ho * wo;
        const float wv = wrow[p];
        double gw = 0.0;
        for (std::size_t px = 0; px < ho * wo; ++px) {
          gw += static_cast<double>(grow[px]) * crow[px];
          dcrow[px] += wv * grow[px];
        }
        gwrow[p] += static_cast<float>(gw);
      }
    }
    Col2Im(dcols, n, h, w, grad_input);
  }
  return grad_input;
}

}  // namespace nn

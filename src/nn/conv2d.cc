#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/gemm.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nn {
namespace {

// Runs body(n) for every sample in the batch, fanned out over the shared
// compute pool when one is installed (tensor::SetComputePool). Every body
// writes a disjoint slice, so the fan-out is deterministic.
void ForEachSample(std::size_t batch,
                   const std::function<void(std::size_t)>& body) {
  util::ThreadPool* pool = tensor::ComputePool();
  if (pool != nullptr && batch > 1) {
    pool->ParallelFor(batch, body);
  } else {
    for (std::size_t n = 0; n < batch; ++n) {
      body(n);
    }
  }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding, std::mt19937_64& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  AF_CHECK_GT(kernel, 0u);
  const float fan_in =
      static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  weight_.FillUniform(-bound, bound, rng);
}

void Conv2d::Im2ColSample(const tensor::Tensor& input, std::size_t n,
                          std::size_t h, std::size_t w, float* dst,
                          std::size_t ld) const {
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const float* in = input.data().data();
  const long pad = static_cast<long>(padding_);
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ki = 0; ki < kernel_; ++ki) {
      for (std::size_t kj = 0; kj < kernel_; ++kj) {
        const std::size_t row = (c * kernel_ + ki) * kernel_ + kj;
        float* drow = dst + row * ld;
        // Valid output columns: 0 <= oj + kj - pad < w. Out-of-range
        // positions are padding and get explicit zeros (the arena is
        // reused, so every position must be written).
        const long lo = std::max(0L, pad - static_cast<long>(kj));
        const long hi = std::min(static_cast<long>(wo),
                                 static_cast<long>(w) + pad -
                                     static_cast<long>(kj));
        for (std::size_t oi = 0; oi < ho; ++oi) {
          float* d = drow + oi * wo;
          const long ii = static_cast<long>(oi + ki) - pad;
          if (ii < 0 || ii >= static_cast<long>(h) || hi <= lo) {
            std::fill(d, d + wo, 0.0f);
            continue;
          }
          std::fill(d, d + lo, 0.0f);
          const float* s =
              in + ((n * in_channels_ + c) * h + static_cast<std::size_t>(ii)) *
                       w +
              static_cast<std::size_t>(lo + static_cast<long>(kj) - pad);
          std::memcpy(d + lo, s,
                      static_cast<std::size_t>(hi - lo) * sizeof(float));
          std::fill(d + hi, d + wo, 0.0f);
        }
      }
    }
  }
}

void Conv2d::Col2ImSample(const float* src, std::size_t ld, std::size_t n,
                          std::size_t h, std::size_t w,
                          tensor::Tensor& grad_input) const {
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  float* out = grad_input.data().data();
  const long pad = static_cast<long>(padding_);
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t ki = 0; ki < kernel_; ++ki) {
      for (std::size_t kj = 0; kj < kernel_; ++kj) {
        const std::size_t row = (c * kernel_ + ki) * kernel_ + kj;
        const float* srow = src + row * ld;
        const long lo = std::max(0L, pad - static_cast<long>(kj));
        const long hi = std::min(static_cast<long>(wo),
                                 static_cast<long>(w) + pad -
                                     static_cast<long>(kj));
        if (hi <= lo) {
          continue;
        }
        for (std::size_t oi = 0; oi < ho; ++oi) {
          const long ii = static_cast<long>(oi + ki) - pad;
          if (ii < 0 || ii >= static_cast<long>(h)) {
            continue;
          }
          const float* s = srow + oi * wo;
          float* o =
              out +
              ((n * in_channels_ + c) * h + static_cast<std::size_t>(ii)) * w +
              static_cast<std::size_t>(lo + static_cast<long>(kj) - pad);
          for (long oj = lo; oj < hi; ++oj) {
            o[oj - lo] += s[oj];
          }
        }
      }
    }
  }
}

tensor::Tensor Conv2d::Forward(const tensor::Tensor& input) {
  AF_CHECK_EQ(input.rank(), 4u);
  AF_CHECK_EQ(input.dim(1), in_channels_);
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  AF_CHECK_GE(h + 2 * padding_ + 1, kernel_ + 1) << "kernel larger than input";
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  const std::size_t howo = ho * wo;
  const std::size_t ld = batch * howo;

  cached_input_ = input;

  // Whole-batch im2col into the reused arena: sample n owns columns
  // [n·howo, (n+1)·howo) of the (patch × N·Ho·Wo) matrix.
  if (cols_.size() < patch * ld) {
    cols_.resize(patch * ld);
  }
  ForEachSample(batch, [&](std::size_t n) {
    Im2ColSample(input, n, h, w, cols_.data() + n * howo, ld);
  });

  // out_flat (out × N·Ho·Wo) = W (out × patch) · cols (patch × N·Ho·Wo):
  // one GEMM for the whole batch.
  if (out_flat_.size() < out_channels_ * ld) {
    out_flat_.resize(out_channels_ * ld);
  }
  tensor::Sgemm(tensor::Op::kNone, tensor::Op::kNone, out_channels_, ld, patch,
                weight_.data().data(), patch, cols_.data(), ld,
                out_flat_.data(), ld, nullptr, 0.0f, tensor::ComputePool());

  // Scatter channel-major GEMM output into NCHW and add the channel bias.
  tensor::Tensor out({batch, out_channels_, ho, wo});
  float* po = out.data().data();
  const float* pb = bias_.data().data();
  ForEachSample(batch, [&](std::size_t n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* s = out_flat_.data() + oc * ld + n * howo;
      float* d = po + (n * out_channels_ + oc) * howo;
      const float b = pb[oc];
      for (std::size_t px = 0; px < howo; ++px) {
        d[px] = s[px] + b;
      }
    }
  });
  return out;
}

tensor::Tensor Conv2d::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.rank(), 4u);
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t ho = h + 2 * padding_ - kernel_ + 1;
  const std::size_t wo = w + 2 * padding_ - kernel_ + 1;
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  const std::size_t howo = ho * wo;
  const std::size_t ld = batch * howo;
  AF_CHECK_EQ(grad_output.dim(0), batch);
  AF_CHECK_EQ(grad_output.dim(1), out_channels_);
  AF_CHECK_EQ(grad_output.dim(2), ho);
  AF_CHECK_EQ(grad_output.dim(3), wo);

  // Gather NCHW gradients into the channel-major layout the GEMMs need.
  if (gout_flat_.size() < out_channels_ * ld) {
    gout_flat_.resize(out_channels_ * ld);
  }
  const float* pg = grad_output.data().data();
  ForEachSample(batch, [&](std::size_t n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      std::memcpy(gout_flat_.data() + oc * ld + n * howo,
                  pg + (n * out_channels_ + oc) * howo, howo * sizeof(float));
    }
  });

  // Bias gradient: per-channel sum of the gradient maps (double
  // accumulation, ascending sample-major order).
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const float* row = gout_flat_.data() + oc * ld;
    double gb = 0.0;
    for (std::size_t i = 0; i < ld; ++i) {
      gb += row[i];
    }
    grad_bias_[oc] += static_cast<float>(gb);
  }

  // cols_ still holds im2col(cached_input_) from the forward pass — the
  // arena doubles as the cached patch matrix, so backward re-runs no im2col.
  AF_CHECK_GE(cols_.size(), patch * ld) << "Backward before Forward";

  // dW (out × patch) += gout_flat · colsᵀ, accumulated in place.
  tensor::Sgemm(tensor::Op::kNone, tensor::Op::kTranspose, out_channels_,
                patch, ld, gout_flat_.data(), ld, cols_.data(), ld,
                grad_weight_.data().data(), patch, nullptr, 1.0f,
                tensor::ComputePool());

  // dcols (patch × N·Ho·Wo) = Wᵀ · gout_flat.
  if (dcols_.size() < patch * ld) {
    dcols_.resize(patch * ld);
  }
  tensor::Sgemm(tensor::Op::kTranspose, tensor::Op::kNone, patch, ld,
                out_channels_, weight_.data().data(), patch, gout_flat_.data(),
                ld, dcols_.data(), ld, nullptr, 0.0f, tensor::ComputePool());

  // dX: scatter the patch gradients back per sample (disjoint images).
  tensor::Tensor grad_input(cached_input_.shape());
  ForEachSample(batch, [&](std::size_t n) {
    Col2ImSample(dcols_.data() + n * howo, ld, n, h, w, grad_input);
  });
  return grad_input;
}

}  // namespace nn

// Flat-parameter (de)serialization.
//
// Checkpoints the global model between runs (e.g. warm-starting a defense
// study from a converged clean model) and frames parameter payloads for the
// net/ wire protocol. Format: little-endian binary, magic "AFPM" +
// u32 version + u64 count + count float32s — identical on disk and on the
// wire, so a captured frame payload is a valid checkpoint body.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nn {

// Writes the flat parameter vector to `path`; throws util::CheckError on
// I/O failure.
void SaveFlatParams(const std::string& path, std::span<const float> params);

// Reads a parameter vector written by SaveFlatParams; throws on missing
// file, bad magic, unsupported version, or truncation.
std::vector<float> LoadFlatParams(const std::string& path);

// Appends the AFPM block (magic + version + count + float payload) for
// `params` to `out`. The buffer form backs both the file checkpoints above
// and net/ frame payloads.
void AppendFlatParams(std::vector<std::uint8_t>& out,
                      std::span<const float> params);

// Parses one AFPM block starting at `*offset` in `bytes` and advances
// `*offset` past it. Validates the declared count against the bytes actually
// present before allocating, so a corrupt count throws util::CheckError
// instead of attempting a huge allocation.
std::vector<float> ParseFlatParams(std::span<const std::uint8_t> bytes,
                                   std::size_t* offset);

// Zero-copy form: validates the same AFPM block but returns a float span
// aliasing `bytes` instead of copying, advancing `*offset` past the block.
// Returns std::nullopt — with `*offset` untouched — only when the float
// payload is not 4-byte aligned within the buffer (the caller falls back to
// the copying ParseFlatParams and accounts the copy). Malformed input
// throws util::CheckError exactly as ParseFlatParams does. The span is
// valid only as long as `bytes` is.
std::optional<std::span<const float>> TryParseFlatParamsView(
    std::span<const std::uint8_t> bytes, std::size_t* offset);

// Bytes AppendFlatParams emits for `count` parameters (header included).
std::size_t FlatParamsWireSize(std::size_t count);

}  // namespace nn

// Flat-parameter (de)serialization.
//
// Checkpoints the global model between runs (e.g. warm-starting a defense
// study from a converged clean model). Format: little-endian binary,
// magic "AFPM" + u32 version + u64 count + count float32s.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nn {

// Writes the flat parameter vector to `path`; throws util::CheckError on
// I/O failure.
void SaveFlatParams(const std::string& path, std::span<const float> params);

// Reads a parameter vector written by SaveFlatParams; throws on missing
// file, bad magic, unsupported version, or truncation.
std::vector<float> LoadFlatParams(const std::string& path);

}  // namespace nn

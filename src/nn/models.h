// Model factories for the paper's workloads.
//
// The paper trains LeNet-5 (MNIST, FashionMNIST) and VGG-16 (CIFAR-10,
// CINIC-10). We build structurally faithful surrogates — conv/pool stacks
// topped by dense classifiers — scaled to CPU-tractable sizes (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace nn {

// A model family: how to build a fresh instance and what inputs it expects.
struct ModelSpec {
  std::string name;
  tensor::Shape sample_shape;  // per-sample shape, e.g. {1, 12, 12}
  std::size_t num_classes = 10;
  // Builds a freshly initialised instance; identical seeds yield identical
  // initial parameters.
  std::function<std::unique_ptr<Sequential>(std::uint64_t seed)> factory;
};

// LeNet-5 surrogate: conv(6)-pool-conv(12)-pool-dense(32)-dense(classes)
// on single-channel `side`×`side` inputs (side divisible by 4).
ModelSpec MakeLeNet5Surrogate(std::size_t side = 12, std::size_t classes = 10);

// VGG surrogate: [conv(6) conv(6) pool][conv(12) pool]-dense(32)-dense(classes)
// on 3-channel `side`×`side` inputs (side divisible by 4).
ModelSpec MakeVggSurrogate(std::size_t side = 12, std::size_t classes = 10);

// Plain MLP over flat features; used by the fast unit/property tests.
ModelSpec MakeMlp(std::size_t input_dim, std::vector<std::size_t> hidden,
                  std::size_t classes = 10);

}  // namespace nn

// Numerical gradient verification used by the layer tests.
#pragma once

#include <cstdint>
#include <span>

#include "nn/sequential.h"

namespace nn {

struct GradientCheckResult {
  double max_relative_error = 0.0;
  std::size_t checked = 0;   // coordinates compared against the noise floor
  std::size_t skipped = 0;   // coordinates below the float32 noise floor
};

// Compares the analytic gradient of the mean softmax-CE loss with central
// finite differences. At most `max_checks` parameter coordinates are probed
// (evenly strided across the flat parameter vector). Coordinates where both
// gradients fall below `noise_floor` are skipped: with float32 forward
// passes, a loss delta of ε·|grad| < ~1e-6 drowns in rounding and the
// comparison would measure noise, not correctness.
GradientCheckResult CheckGradients(Sequential& model,
                                   const tensor::Tensor& input,
                                   std::span<const std::int64_t> labels,
                                   double epsilon = 1e-3,
                                   std::size_t max_checks = 200,
                                   double noise_floor = 2e-3);

}  // namespace nn

// 2-D convolution (stride 1, symmetric zero padding) via im2col + GEMM.
//
// Activations are NCHW; the weight is (out_channels, in_channels, k, k).
#pragma once

#include <random>

#include "nn/layer.h"

namespace nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding, std::mt19937_64& rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;

  std::vector<tensor::Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<tensor::Tensor*> Grads() override {
    return {&grad_weight_, &grad_bias_};
  }

  std::string Name() const override { return "Conv2d"; }

 private:
  // Expands one image (C, H, W) into a (C*k*k, Ho*Wo) patch matrix.
  void Im2Col(const tensor::Tensor& input, std::size_t n, std::size_t h,
              std::size_t w, std::vector<float>& cols) const;
  // Scatters a (C*k*k, Ho*Wo) gradient matrix back into image gradients.
  void Col2Im(const std::vector<float>& cols, std::size_t n, std::size_t h,
              std::size_t w, tensor::Tensor& grad_input) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t padding_;
  tensor::Tensor weight_;       // (out, in, k, k)
  tensor::Tensor bias_;         // (out)
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;  // (N, C, H, W)
};

}  // namespace nn

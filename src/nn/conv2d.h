// 2-D convolution (stride 1, symmetric zero padding) via whole-batch
// im2col + one GEMM per pass.
//
// Activations are NCHW; the weight is (out_channels, in_channels, k, k).
//
// Forward expands the entire batch into one (C·k·k) × (N·Ho·Wo) patch
// matrix and runs a single blocked GEMM against the weight; backward runs
// one GEMM for dW (accumulated in place) and one for the patch gradients,
// which col2im scatters back per sample. The per-sample im2col/col2im and
// NCHW scatter loops fan out over tensor::ComputePool() when one is set.
//
// Scratch memory: the patch matrices live in per-layer arena buffers that
// are reused across batches (grow-only, freed with the layer). Upper
// bound: 2·patch·N·Ho·Wo floats for the im2col/col2im arenas plus
// 2·out_channels·N·Ho·Wo floats for the flattened activations — batch-scaled
// where the seed per-sample path kept only 2·patch·Ho·Wo, which is the
// price of whole-batch GEMM operands (~a few MB at this repo's model and
// batch sizes).
#pragma once

#include <random>
#include <vector>

#include "nn/layer.h"

namespace nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding, std::mt19937_64& rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;

  std::vector<tensor::Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<tensor::Tensor*> Grads() override {
    return {&grad_weight_, &grad_bias_};
  }

  std::string Name() const override { return "Conv2d"; }

 private:
  // Writes sample n's (C·k·k) × (Ho·Wo) patch block into the batch patch
  // matrix at `dst` (row stride `ld`); every position is written, so the
  // arena needs no pre-zeroing.
  void Im2ColSample(const tensor::Tensor& input, std::size_t n, std::size_t h,
                    std::size_t w, float* dst, std::size_t ld) const;
  // Accumulates sample n's patch-gradient block (read from `src`, row
  // stride `ld`) back into image gradients.
  void Col2ImSample(const float* src, std::size_t ld, std::size_t n,
                    std::size_t h, std::size_t w,
                    tensor::Tensor& grad_input) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t padding_;
  tensor::Tensor weight_;       // (out, in, k, k)
  tensor::Tensor bias_;         // (out)
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;  // (N, C, H, W)

  // Reused arenas (see the class comment for the memory bound).
  std::vector<float> cols_;      // (patch, N·Ho·Wo) im2col of the input
  std::vector<float> dcols_;     // (patch, N·Ho·Wo) patch gradients
  std::vector<float> out_flat_;  // (out, N·Ho·Wo) channel-major activations
  std::vector<float> gout_flat_; // (out, N·Ho·Wo) channel-major out-grads
};

}  // namespace nn

#include "nn/models.h"

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "nn/relu.h"
#include "util/check.h"
#include "util/rng.h"

namespace nn {

ModelSpec MakeLeNet5Surrogate(std::size_t side, std::size_t classes) {
  AF_CHECK_EQ(side % 4, 0u) << "two 2x2 pools need side divisible by 4";
  ModelSpec spec;
  spec.name = "lenet5-surrogate";
  spec.sample_shape = {1, side, side};
  spec.num_classes = classes;
  spec.factory = [side, classes](std::uint64_t seed) {
    util::RngFactory rngs(seed);
    auto rng = rngs.Stream("model-init");
    auto model = std::make_unique<Sequential>();
    model->Add(std::make_unique<Conv2d>(1, 6, 3, 1, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<MaxPool2d>(2))
        .Add(std::make_unique<Conv2d>(6, 12, 3, 1, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<MaxPool2d>(2));
    const std::size_t feat = 12 * (side / 4) * (side / 4);
    model->Add(std::make_unique<Flatten>())
        .Add(std::make_unique<Dense>(feat, 32, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<Dense>(32, classes, rng));
    return model;
  };
  return spec;
}

ModelSpec MakeVggSurrogate(std::size_t side, std::size_t classes) {
  AF_CHECK_EQ(side % 4, 0u) << "two 2x2 pools need side divisible by 4";
  ModelSpec spec;
  spec.name = "vgg-surrogate";
  spec.sample_shape = {3, side, side};
  spec.num_classes = classes;
  spec.factory = [side, classes](std::uint64_t seed) {
    util::RngFactory rngs(seed);
    auto rng = rngs.Stream("model-init");
    auto model = std::make_unique<Sequential>();
    model->Add(std::make_unique<Conv2d>(3, 6, 3, 1, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<Conv2d>(6, 6, 3, 1, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<MaxPool2d>(2))
        .Add(std::make_unique<Conv2d>(6, 12, 3, 1, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<MaxPool2d>(2));
    const std::size_t feat = 12 * (side / 4) * (side / 4);
    model->Add(std::make_unique<Flatten>())
        .Add(std::make_unique<Dense>(feat, 32, rng))
        .Add(std::make_unique<ReLU>())
        .Add(std::make_unique<Dense>(32, classes, rng));
    return model;
  };
  return spec;
}

ModelSpec MakeMlp(std::size_t input_dim, std::vector<std::size_t> hidden,
                  std::size_t classes) {
  AF_CHECK_GT(input_dim, 0u);
  ModelSpec spec;
  spec.name = "mlp";
  spec.sample_shape = {input_dim};
  spec.num_classes = classes;
  spec.factory = [input_dim, hidden, classes](std::uint64_t seed) {
    util::RngFactory rngs(seed);
    auto rng = rngs.Stream("model-init");
    auto model = std::make_unique<Sequential>();
    std::size_t in = input_dim;
    for (std::size_t width : hidden) {
      model->Add(std::make_unique<Dense>(in, width, rng))
          .Add(std::make_unique<ReLU>());
      in = width;
    }
    model->Add(std::make_unique<Dense>(in, classes, rng));
    return model;
  };
  return spec;
}

}  // namespace nn

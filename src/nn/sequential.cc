#include "nn/sequential.h"

#include "util/check.h"

namespace nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  AF_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::Forward(const tensor::Tensor& input) {
  AF_CHECK(!layers_.empty());
  tensor::Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->Forward(activation);
  }
  return activation;
}

tensor::Tensor Sequential::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK(!layers_.empty());
  tensor::Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

void Sequential::ZeroGrads() {
  for (auto& layer : layers_) {
    layer->ZeroGrads();
  }
}

std::vector<tensor::Tensor*> Sequential::Params() {
  std::vector<tensor::Tensor*> params;
  for (auto& layer : layers_) {
    for (tensor::Tensor* p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<tensor::Tensor*> Sequential::Grads() {
  std::vector<tensor::Tensor*> grads;
  for (auto& layer : layers_) {
    for (tensor::Tensor* g : layer->Grads()) {
      grads.push_back(g);
    }
  }
  return grads;
}

std::size_t Sequential::NumParameters() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    for (tensor::Tensor* p : const_cast<Layer&>(*layer).Params()) {
      total += p->size();
    }
  }
  return total;
}

std::vector<float> Sequential::GetFlatParams() const {
  std::vector<float> flat;
  flat.reserve(NumParameters());
  for (const auto& layer : layers_) {
    for (tensor::Tensor* p : const_cast<Layer&>(*layer).Params()) {
      flat.insert(flat.end(), p->vec().begin(), p->vec().end());
    }
  }
  return flat;
}

void Sequential::SetFlatParams(std::span<const float> flat) {
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (tensor::Tensor* p : layer->Params()) {
      AF_CHECK_LE(offset + p->size(), flat.size());
      std::copy(flat.begin() + offset, flat.begin() + offset + p->size(),
                p->vec().begin());
      offset += p->size();
    }
  }
  AF_CHECK_EQ(offset, flat.size()) << "flat parameter size mismatch";
}

std::vector<float> Sequential::GetFlatGrads() const {
  std::vector<float> flat;
  for (const auto& layer : layers_) {
    for (tensor::Tensor* g : const_cast<Layer&>(*layer).Grads()) {
      flat.insert(flat.end(), g->vec().begin(), g->vec().end());
    }
  }
  return flat;
}

}  // namespace nn

#include "nn/dense.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             std::mt19937_64& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  AF_CHECK_GT(in_features, 0u);
  AF_CHECK_GT(out_features, 0u);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features));  // He-uniform
  weight_.FillUniform(-bound, bound, rng);
}

tensor::Tensor Dense::Forward(const tensor::Tensor& input) {
  AF_CHECK_EQ(input.rank(), 2u);
  AF_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  tensor::Tensor out({input.dim(0), out_features_});
  tensor::MatMulTransposeB(input, weight_, out);
  tensor::AddRowBias(out, bias_);
  return out;
}

tensor::Tensor Dense::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.rank(), 2u);
  AF_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  AF_CHECK_EQ(grad_output.dim(1), out_features_);

  // dW += grad_out^T * input    ((out×B)·(B×in) = out×in)
  tensor::Tensor dw({out_features_, in_features_});
  tensor::MatMulTransposeA(grad_output, cached_input_, dw);
  tensor::AddInPlace(grad_weight_, dw);

  // db += column sums of grad_out.
  tensor::Tensor db({out_features_});
  tensor::SumRows(grad_output, db);
  tensor::AddInPlace(grad_bias_, db);

  // dX = grad_out * W    ((B×out)·(out×in) = B×in)
  tensor::Tensor dx({grad_output.dim(0), in_features_});
  tensor::MatMul(grad_output, weight_, dx);
  return dx;
}

}  // namespace nn

#include "nn/dense.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "util/check.h"

namespace nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             std::mt19937_64& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  AF_CHECK_GT(in_features, 0u);
  AF_CHECK_GT(out_features, 0u);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features));  // He-uniform
  weight_.FillUniform(-bound, bound, rng);
}

tensor::Tensor Dense::Forward(const tensor::Tensor& input) {
  AF_CHECK_EQ(input.rank(), 2u);
  AF_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  tensor::Tensor out({input.dim(0), out_features_});
  // out = X·Wᵀ + bias, with the bias-add fused into the GEMM epilogue.
  tensor::Gemm(tensor::Op::kNone, tensor::Op::kTranspose, input, weight_, out,
               bias_.data().data());
  return out;
}

tensor::Tensor Dense::Backward(const tensor::Tensor& grad_output) {
  AF_CHECK_EQ(grad_output.rank(), 2u);
  AF_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  AF_CHECK_EQ(grad_output.dim(1), out_features_);

  // dW += grad_outᵀ · input ((out×B)·(B×in)), accumulated straight into the
  // gradient buffer by the GEMM epilogue (beta = 1) — no scratch tensor.
  tensor::Gemm(tensor::Op::kTranspose, tensor::Op::kNone, grad_output,
               cached_input_, grad_weight_, nullptr, 1.0f);

  // db += column sums of grad_out.
  tensor::kernels::SumRowsAccum(grad_output.data().data(), grad_output.dim(0),
                                out_features_, grad_bias_.data().data());

  // dX = grad_out · W ((B×out)·(out×in)).
  tensor::Tensor dx({grad_output.dim(0), in_features_});
  tensor::Gemm(tensor::Op::kNone, tensor::Op::kNone, grad_output, weight_, dx);
  return dx;
}

}  // namespace nn

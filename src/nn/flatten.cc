#include "nn/flatten.h"

#include "util/check.h"

namespace nn {

tensor::Tensor Flatten::Forward(const tensor::Tensor& input) {
  AF_CHECK_GE(input.rank(), 2u);
  cached_shape_ = input.shape();
  tensor::Tensor out = input;
  std::size_t batch = input.dim(0);
  out.Reshape({batch, input.size() / batch});
  return out;
}

tensor::Tensor Flatten::Backward(const tensor::Tensor& grad_output) {
  tensor::Tensor dx = grad_output;
  dx.Reshape(cached_shape_);
  return dx;
}

}  // namespace nn

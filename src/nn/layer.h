// Layer interface for the hand-written training stack.
//
// There is no autograd graph: each layer caches what its backward pass needs
// during Forward and exposes parameter/gradient tensors to the optimizer.
// This is the entire contract the FL substrate depends on.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output for a batch-first input and caches whatever
  // the backward pass needs.
  virtual tensor::Tensor Forward(const tensor::Tensor& input) = 0;

  // Given dL/d(output), accumulates parameter gradients (+=) and returns
  // dL/d(input). Must be called after a matching Forward.
  virtual tensor::Tensor Backward(const tensor::Tensor& grad_output) = 0;

  // Trainable parameters and their gradient accumulators, index-aligned.
  // Parameterless layers return empty vectors.
  virtual std::vector<tensor::Tensor*> Params() { return {}; }
  virtual std::vector<tensor::Tensor*> Grads() { return {}; }

  // Zeroes all gradient accumulators.
  void ZeroGrads() {
    for (tensor::Tensor* g : Grads()) {
      g->Fill(0.0f);
    }
  }

  virtual std::string Name() const = 0;
};

}  // namespace nn

#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nn {
namespace {

std::size_t ArgMaxRow(const tensor::Tensor& logits, std::size_t row) {
  const std::size_t classes = logits.dim(1);
  const float* p = logits.data().data() + row * classes;
  return static_cast<std::size_t>(
      std::max_element(p, p + classes) - p);
}

}  // namespace

LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               std::span<const std::int64_t> labels) {
  AF_CHECK_EQ(logits.rank(), 2u);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  AF_CHECK_EQ(labels.size(), batch);
  AF_CHECK_GT(batch, 0u);

  LossResult result;
  result.grad_logits = tensor::Tensor({batch, classes});
  double total_loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const std::int64_t label = labels[i];
    AF_CHECK_GE(label, 0);
    AF_CHECK_LT(static_cast<std::size_t>(label), classes);
    const float* row = logits.data().data() + i * classes;
    float* grow = result.grad_logits.data().data() + i * classes;

    float max_logit = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c]) - max_logit);
    }
    const double log_denom = std::log(denom);
    total_loss -= (static_cast<double>(row[label]) - max_logit - log_denom);

    const double inv_batch = 1.0 / static_cast<double>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      double softmax =
          std::exp(static_cast<double>(row[c]) - max_logit) / denom;
      double grad = softmax - (static_cast<std::int64_t>(c) == label ? 1.0 : 0.0);
      grow[c] = static_cast<float>(grad * inv_batch);
    }
    if (ArgMaxRow(logits, i) == static_cast<std::size_t>(label)) {
      ++result.correct;
    }
  }
  result.loss = total_loss / static_cast<double>(batch);
  return result;
}

std::size_t CountCorrect(const tensor::Tensor& logits,
                         std::span<const std::int64_t> labels) {
  AF_CHECK_EQ(logits.rank(), 2u);
  AF_CHECK_EQ(labels.size(), logits.dim(0));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.dim(0); ++i) {
    if (ArgMaxRow(logits, i) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return correct;
}

}  // namespace nn

// Untargeted model-poisoning attack interface (paper §2.2).
//
// Threat model (paper §3.1): the attacker controls several malicious clients
// holding in-distribution data; it knows those clients' local data, their
// honest updates, the loss function, and the learning rate — and nothing
// about the server or the benign clients. A crafted update therefore only
// uses the malicious client's own honest update plus the colluders' recent
// honest updates (attacks/coordinator.h).
#pragma once

#include <random>
#include <span>
#include <string>
#include <vector>

namespace attacks {

// Everything a malicious client knows when crafting its report.
struct AttackContext {
  // This client's honestly computed update (trained on its real local data).
  std::span<const float> honest_update;
  // Honest updates recently computed by colluding malicious clients
  // (including this one); used to estimate benign-update statistics.
  const std::vector<std::vector<float>>* colluder_updates = nullptr;
  std::mt19937_64* rng = nullptr;
};

class Attack {
 public:
  virtual ~Attack() = default;

  // Returns the poisoned update to send instead of the honest one.
  virtual std::vector<float> Craft(const AttackContext& context) = 0;

  virtual std::string Name() const = 0;
};

// Pass-through "attack" for the No-attack columns: malicious set is empty,
// but keeping the object uniform simplifies the experiment grid.
class NoAttack : public Attack {
 public:
  std::vector<float> Craft(const AttackContext& context) override;
  std::string Name() const override { return "none"; }
};

}  // namespace attacks

#include "attacks/gd.h"

#include "util/check.h"

namespace attacks {

GdAttack::GdAttack(double scale) : scale_(scale) { AF_CHECK_GT(scale, 0.0); }

std::vector<float> GdAttack::Craft(const AttackContext& context) {
  std::vector<float> poisoned(context.honest_update.size());
  for (std::size_t i = 0; i < poisoned.size(); ++i) {
    poisoned[i] = static_cast<float>(-scale_ * context.honest_update[i]);
  }
  return poisoned;
}

}  // namespace attacks

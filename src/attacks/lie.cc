#include "attacks/lie.h"

#include <cmath>

#include "stats/normal.h"
#include "stats/vec_ops.h"
#include "util/check.h"

namespace attacks {

LieAttack::LieAttack(std::size_t total_clients, std::size_t malicious_clients,
                     double z_override) {
  if (z_override > 0.0) {
    z_ = z_override;
    return;
  }
  AF_CHECK_GT(total_clients, malicious_clients);
  const double n = static_cast<double>(total_clients);
  const double m = static_cast<double>(malicious_clients);
  const double s = std::floor(n / 2.0 + 1.0) - m;
  double p = (n - m - s) / (n - m);
  // Clamp away from {0,1}: with m close to n/2, the formula's operand leaves
  // (0,1); the attack then uses a conservative small z.
  p = std::min(std::max(p, 1e-4), 1.0 - 1e-4);
  z_ = std::max(stats::NormalQuantile(p), 0.3);
}

std::vector<float> LieAttack::Craft(const AttackContext& context) {
  AF_CHECK(context.colluder_updates != nullptr);
  const auto& window = *context.colluder_updates;
  if (window.size() < 2) {
    // Not enough collusion data yet; fall back to the honest update so the
    // attack stays silent rather than sending junk that is trivially caught.
    return std::vector<float>(context.honest_update.begin(),
                              context.honest_update.end());
  }
  std::vector<float> mean = stats::Mean(window);
  std::vector<float> std_dev = stats::PerDimensionStd(window);
  AF_CHECK_EQ(mean.size(), context.honest_update.size());
  std::vector<float> poisoned(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    poisoned[i] = mean[i] - static_cast<float>(z_) * std_dev[i];
  }
  return poisoned;
}

}  // namespace attacks

#include "attacks/adaptive.h"

#include <algorithm>
#include <cmath>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace attacks {

AdaptiveAttack::AdaptiveAttack(double score_quantile)
    : score_quantile_(score_quantile) {
  AF_CHECK_GT(score_quantile, 0.0);
  AF_CHECK_LE(score_quantile, 1.0);
}

std::vector<float> AdaptiveAttack::Craft(const AttackContext& context) {
  AF_CHECK(context.colluder_updates != nullptr);
  const auto& window = *context.colluder_updates;
  if (window.size() < 3) {
    return std::vector<float>(context.honest_update.begin(),
                              context.honest_update.end());
  }

  // Replay the defense's statistics on the attacker's knowledge: the
  // colluder mean stands in for the group expectation.
  const std::vector<float> mean = stats::Mean(window);
  std::vector<double> deviations;
  deviations.reserve(window.size());
  double sum_sq = 0.0;
  for (const auto& u : window) {
    const double d = stats::Distance(u, mean);
    deviations.push_back(d);
    sum_sq += d * d;
  }
  const double rms = std::sqrt(sum_sq / static_cast<double>(window.size()));
  if (rms <= 1e-12) {
    return mean;  // no spread to hide in
  }

  // Colluder scores under the defense's rule are d_i / rms; imitate the
  // chosen quantile.
  std::vector<double> scores = deviations;
  for (double& s : scores) {
    s /= rms;
  }
  std::sort(scores.begin(), scores.end());
  const std::size_t index = std::min(
      scores.size() - 1,
      static_cast<std::size_t>(score_quantile_ *
                               static_cast<double>(scores.size() - 1) + 0.5));
  const double target_score = scores[index];
  const double gamma = target_score * rms;

  const double mean_norm = stats::L2Norm(mean);
  std::vector<float> crafted = mean;
  if (mean_norm > 1e-12) {
    for (std::size_t i = 0; i < crafted.size(); ++i) {
      crafted[i] = static_cast<float>(mean[i] - gamma * mean[i] / mean_norm);
    }
  }
  return crafted;
}

}  // namespace attacks

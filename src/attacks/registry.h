// Attack construction by name, used by the experiment grid.
#pragma once

#include <memory>
#include <string>

#include "attacks/attack.h"

namespace attacks {

// kLabelFlip is a *data*-poisoning attack: malicious clients train honestly
// on label-flipped data, so Craft() is the identity and the experiment
// layer swaps the dataset view (see fl::RunExperiment).
enum class AttackKind { kNone, kGd, kLie, kMinMax, kMinSum, kAdaptive, kLabelFlip };

// Parse "none" | "GD" | "LIE" | "Min-Max" | "Min-Sum" (case-insensitive,
// '-'/'_' agnostic). Throws util::CheckError on unknown names.
AttackKind ParseAttackKind(const std::string& name);

const char* AttackKindName(AttackKind kind);

struct AttackParams {
  std::size_t total_clients = 100;
  std::size_t malicious_clients = 20;
  double gd_scale = 1.5;
  double lie_z_override = 0.0;
  double adaptive_score_quantile = 0.9;
};

std::unique_ptr<Attack> MakeAttack(AttackKind kind, const AttackParams& params);

}  // namespace attacks

// Min-Max and Min-Sum attacks (Shejwalkar & Houmansadr, 2021; paper §2.2).
//
// Both craft "mean + γ·Δ" where Δ is a perturbation direction and γ is the
// largest scale that keeps the crafted update within a distance envelope of
// the benign updates:
//   Min-Max: max_j ‖crafted − u_j‖² ≤ max_{i,j} ‖u_i − u_j‖²
//   Min-Sum: Σ_j ‖crafted − u_j‖² ≤ max_i Σ_j ‖u_i − u_j‖²
// γ is found by binary search. The standard "inverse unit vector"
// perturbation Δ = −mean/‖mean‖ is used.
#pragma once

#include "attacks/attack.h"

namespace attacks {

enum class MinOptVariant { kMinMax, kMinSum };

class MinOptAttack : public Attack {
 public:
  explicit MinOptAttack(MinOptVariant variant, double gamma_init = 10.0,
                        double tau = 1e-3);

  std::vector<float> Craft(const AttackContext& context) override;
  std::string Name() const override {
    return variant_ == MinOptVariant::kMinMax ? "Min-Max" : "Min-Sum";
  }

 private:
  // True iff "mean + gamma·delta" satisfies the variant's envelope.
  bool Feasible(const std::vector<std::vector<float>>& benign,
                const std::vector<float>& mean,
                const std::vector<float>& delta, double gamma,
                double envelope) const;

  MinOptVariant variant_;
  double gamma_init_;
  double tau_;  // binary-search termination width
};

}  // namespace attacks

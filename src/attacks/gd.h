// Gradient Deviation (GD) attack (Fang et al., 2020; paper §2.2 & Thm. 1).
//
// The malicious client reverses its true model update so the aggregate is
// pushed opposite the descent direction; a scale factor controls potency
// (Theorem 1 analyses scale 1; larger scales model the "strong attack"
// regime where FedBuff diverges on the harder datasets).
#pragma once

#include "attacks/attack.h"

namespace attacks {

class GdAttack : public Attack {
 public:
  explicit GdAttack(double scale = 1.5);

  std::vector<float> Craft(const AttackContext& context) override;
  std::string Name() const override { return "GD"; }

  double scale() const { return scale_; }

 private:
  double scale_;
};

}  // namespace attacks

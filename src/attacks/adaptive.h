// Defense-aware adaptive attack (paper §3.2 lists "adaptive strategies" in
// the defense goal).
//
// The attacker knows AsyncFilter's mechanism: updates are scored by their
// distance to the group expectation relative to the peers' RMS deviation,
// and the top k-means band is rejected. It therefore reverses the benign
// direction but caps the deviation so its own replayed score stays at a
// chosen quantile of the colluders' scores — large enough to bias the
// aggregate, small enough to land in the accepted/mid bands.
//
// crafted = μ − (t · rms) · μ/‖μ‖, where μ and rms are the colluder
// window's mean and RMS deviation and t is the target score quantile.
#pragma once

#include "attacks/attack.h"

namespace attacks {

class AdaptiveAttack : public Attack {
 public:
  // `score_quantile` ∈ (0, 1]: which quantile of the colluders' own
  // suspicious scores the crafted update imitates. Higher = more damage,
  // more detectable.
  explicit AdaptiveAttack(double score_quantile = 0.9);

  std::vector<float> Craft(const AttackContext& context) override;
  std::string Name() const override { return "Adaptive"; }

  double score_quantile() const { return score_quantile_; }

 private:
  double score_quantile_;
};

}  // namespace attacks

// Colluding-attacker knowledge pool.
//
// In asynchronous FL, malicious clients finish at different times, so the
// "benign gradients" statistics the LIE / Min-Max / Min-Sum constructions
// need are estimated from a sliding window of the colluders' own recent
// honest updates — exactly the knowledge the threat model grants.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace attacks {

class Coordinator {
 public:
  explicit Coordinator(std::size_t window = 20);

  // Records one colluder's honest update.
  void Absorb(std::span<const float> honest_update);

  // Snapshot of the current window, oldest first.
  std::vector<std::vector<float>> Window() const;

  std::size_t size() const { return window_.size(); }

  void Reset() { window_.clear(); }

  // Checkpoint support: replaces the window wholesale (entries oldest
  // first, as Window() returns them); excess entries beyond the capacity
  // are trimmed from the front.
  void RestoreWindow(std::vector<std::vector<float>> window);

 private:
  std::size_t capacity_;
  std::deque<std::vector<float>> window_;
};

}  // namespace attacks

#include "attacks/attack.h"

namespace attacks {

std::vector<float> NoAttack::Craft(const AttackContext& context) {
  return std::vector<float>(context.honest_update.begin(),
                            context.honest_update.end());
}

}  // namespace attacks

#include "attacks/coordinator.h"

#include "util/check.h"

namespace attacks {

Coordinator::Coordinator(std::size_t window) : capacity_(window) {
  AF_CHECK_GT(window, 0u);
}

void Coordinator::Absorb(std::span<const float> honest_update) {
  window_.emplace_back(honest_update.begin(), honest_update.end());
  while (window_.size() > capacity_) {
    window_.pop_front();
  }
}

std::vector<std::vector<float>> Coordinator::Window() const {
  return std::vector<std::vector<float>>(window_.begin(), window_.end());
}

void Coordinator::RestoreWindow(std::vector<std::vector<float>> window) {
  window_.assign(std::make_move_iterator(window.begin()),
                 std::make_move_iterator(window.end()));
  while (window_.size() > capacity_) {
    window_.pop_front();
  }
}

}  // namespace attacks

#include "attacks/registry.h"

#include <algorithm>
#include <cctype>

#include "attacks/adaptive.h"
#include "attacks/gd.h"
#include "attacks/lie.h"
#include "attacks/min_opt.h"
#include "util/check.h"

namespace attacks {
namespace {

std::string Canonical(const std::string& name) {
  std::string canon;
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ') {
      continue;
    }
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return canon;
}

}  // namespace

AttackKind ParseAttackKind(const std::string& name) {
  const std::string canon = Canonical(name);
  if (canon == "none" || canon == "noattack" || canon.empty()) {
    return AttackKind::kNone;
  }
  if (canon == "gd" || canon == "gradientdeviation") {
    return AttackKind::kGd;
  }
  if (canon == "lie" || canon == "littleisenough") {
    return AttackKind::kLie;
  }
  if (canon == "minmax") {
    return AttackKind::kMinMax;
  }
  if (canon == "minsum") {
    return AttackKind::kMinSum;
  }
  if (canon == "adaptive") {
    return AttackKind::kAdaptive;
  }
  if (canon == "labelflip" || canon == "dataflip") {
    return AttackKind::kLabelFlip;
  }
  AF_CHECK(false) << "unknown attack name: " << name;
  return AttackKind::kNone;
}

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "No attack";
    case AttackKind::kGd:
      return "GD";
    case AttackKind::kLie:
      return "LIE";
    case AttackKind::kMinMax:
      return "Min-Max";
    case AttackKind::kMinSum:
      return "Min-Sum";
    case AttackKind::kAdaptive:
      return "Adaptive";
    case AttackKind::kLabelFlip:
      return "Label-Flip";
  }
  return "?";
}

std::unique_ptr<Attack> MakeAttack(AttackKind kind,
                                   const AttackParams& params) {
  switch (kind) {
    case AttackKind::kNone:
      return std::make_unique<NoAttack>();
    case AttackKind::kGd:
      return std::make_unique<GdAttack>(params.gd_scale);
    case AttackKind::kLie:
      return std::make_unique<LieAttack>(params.total_clients,
                                         params.malicious_clients,
                                         params.lie_z_override);
    case AttackKind::kMinMax:
      return std::make_unique<MinOptAttack>(MinOptVariant::kMinMax);
    case AttackKind::kMinSum:
      return std::make_unique<MinOptAttack>(MinOptVariant::kMinSum);
    case AttackKind::kAdaptive:
      return std::make_unique<AdaptiveAttack>(params.adaptive_score_quantile);
    case AttackKind::kLabelFlip:
      // Data-level poisoning: the malicious update IS the honest update on
      // flipped labels; the experiment layer rewires the dataset.
      return std::make_unique<NoAttack>();
  }
  AF_CHECK(false) << "unhandled attack kind";
  return nullptr;
}

}  // namespace attacks

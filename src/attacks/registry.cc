#include "attacks/registry.h"

#include "attacks/adaptive.h"
#include "attacks/gd.h"
#include "attacks/lie.h"
#include "attacks/min_opt.h"
#include "util/check.h"
#include "util/registry.h"

namespace attacks {
namespace {

// Name resolution shares the canonicalization/alias mechanics with the
// defense and codec registries (util::NamedRegistry); only the value type
// — the grid enum — is attack-specific.
util::NamedRegistry<AttackKind>& NameTable() {
  static auto* table = [] {
    auto* t = new util::NamedRegistry<AttackKind>("attack");
    t->Register("none", {"noattack"}, AttackKind::kNone);
    t->Register("gd", {"gradientdeviation"}, AttackKind::kGd);
    t->Register("lie", {"littleisenough"}, AttackKind::kLie);
    t->Register("minmax", {}, AttackKind::kMinMax);
    t->Register("minsum", {}, AttackKind::kMinSum);
    t->Register("adaptive", {}, AttackKind::kAdaptive);
    t->Register("labelflip", {"dataflip"}, AttackKind::kLabelFlip);
    return t;
  }();
  return *table;
}

}  // namespace

AttackKind ParseAttackKind(const std::string& name) {
  if (util::CanonicalName(name).empty()) {
    return AttackKind::kNone;  // historical: empty spelling means no attack
  }
  return NameTable().Find(name);
}

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "No attack";
    case AttackKind::kGd:
      return "GD";
    case AttackKind::kLie:
      return "LIE";
    case AttackKind::kMinMax:
      return "Min-Max";
    case AttackKind::kMinSum:
      return "Min-Sum";
    case AttackKind::kAdaptive:
      return "Adaptive";
    case AttackKind::kLabelFlip:
      return "Label-Flip";
  }
  return "?";
}

std::unique_ptr<Attack> MakeAttack(AttackKind kind,
                                   const AttackParams& params) {
  switch (kind) {
    case AttackKind::kNone:
      return std::make_unique<NoAttack>();
    case AttackKind::kGd:
      return std::make_unique<GdAttack>(params.gd_scale);
    case AttackKind::kLie:
      return std::make_unique<LieAttack>(params.total_clients,
                                         params.malicious_clients,
                                         params.lie_z_override);
    case AttackKind::kMinMax:
      return std::make_unique<MinOptAttack>(MinOptVariant::kMinMax);
    case AttackKind::kMinSum:
      return std::make_unique<MinOptAttack>(MinOptVariant::kMinSum);
    case AttackKind::kAdaptive:
      return std::make_unique<AdaptiveAttack>(params.adaptive_score_quantile);
    case AttackKind::kLabelFlip:
      // Data-level poisoning: the malicious update IS the honest update on
      // flipped labels; the experiment layer rewires the dataset.
      return std::make_unique<NoAttack>();
  }
  AF_CHECK(false) << "unhandled attack kind";
  return nullptr;
}

}  // namespace attacks

#include "attacks/min_opt.h"

#include <algorithm>
#include <cmath>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace attacks {
namespace {

std::vector<float> Crafted(const std::vector<float>& mean,
                           const std::vector<float>& delta, double gamma) {
  std::vector<float> out(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    out[i] = mean[i] + static_cast<float>(gamma) * delta[i];
  }
  return out;
}

}  // namespace

MinOptAttack::MinOptAttack(MinOptVariant variant, double gamma_init,
                           double tau)
    : variant_(variant), gamma_init_(gamma_init), tau_(tau) {
  AF_CHECK_GT(gamma_init, 0.0);
  AF_CHECK_GT(tau, 0.0);
}

bool MinOptAttack::Feasible(const std::vector<std::vector<float>>& benign,
                            const std::vector<float>& mean,
                            const std::vector<float>& delta, double gamma,
                            double envelope) const {
  std::vector<float> crafted = Crafted(mean, delta, gamma);
  if (variant_ == MinOptVariant::kMinMax) {
    double worst = 0.0;
    for (const auto& u : benign) {
      worst = std::max(worst, stats::SquaredDistance(crafted, u));
    }
    return worst <= envelope;
  }
  double total = 0.0;
  for (const auto& u : benign) {
    total += stats::SquaredDistance(crafted, u);
  }
  return total <= envelope;
}

std::vector<float> MinOptAttack::Craft(const AttackContext& context) {
  AF_CHECK(context.colluder_updates != nullptr);
  const auto& benign = *context.colluder_updates;
  if (benign.size() < 2) {
    return std::vector<float>(context.honest_update.begin(),
                              context.honest_update.end());
  }

  std::vector<float> mean = stats::Mean(benign);
  // Perturbation direction: inverse unit vector of the benign mean.
  double norm = stats::L2Norm(mean);
  std::vector<float> delta(mean.size(), 0.0f);
  if (norm > 1e-12) {
    for (std::size_t i = 0; i < mean.size(); ++i) {
      delta[i] = static_cast<float>(-mean[i] / norm);
    }
  } else {
    // Degenerate mean; deviate along the honest update instead.
    double hn = stats::L2Norm(context.honest_update);
    if (hn <= 1e-12) {
      return mean;
    }
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] = static_cast<float>(-context.honest_update[i] / hn);
    }
  }

  // Envelope from the benign set.
  double envelope = 0.0;
  if (variant_ == MinOptVariant::kMinMax) {
    for (std::size_t i = 0; i < benign.size(); ++i) {
      for (std::size_t j = i + 1; j < benign.size(); ++j) {
        envelope = std::max(envelope,
                            stats::SquaredDistance(benign[i], benign[j]));
      }
    }
  } else {
    for (const auto& u : benign) {
      double total = 0.0;
      for (const auto& v : benign) {
        total += stats::SquaredDistance(u, v);
      }
      envelope = std::max(envelope, total);
    }
  }

  // Standard doubling + bisection search for the largest feasible γ.
  double gamma = gamma_init_;
  double step = gamma / 2.0;
  // Shrink until feasible.
  while (gamma > tau_ &&
         !Feasible(benign, mean, delta, gamma, envelope)) {
    gamma -= step;
    step /= 2.0;
    if (step < tau_ / 4.0) {
      break;
    }
  }
  if (!Feasible(benign, mean, delta, gamma, envelope)) {
    gamma = 0.0;  // envelope too tight; send the mean itself
  } else {
    // Grow back as far as the envelope allows.
    double grow = step;
    while (grow > tau_) {
      if (Feasible(benign, mean, delta, gamma + grow, envelope)) {
        gamma += grow;
      }
      grow /= 2.0;
    }
  }
  return Crafted(mean, delta, gamma);
}

}  // namespace attacks

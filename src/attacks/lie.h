// Little-Is-Enough attack (Baruch et al., 2019; paper §2.2).
//
// Malicious updates are set to mean + z·std per dimension, where mean/std
// are estimated over the colluders' honest updates and
// z = Φ⁻¹((n − m − s)/(n − m)), s = ⌊n/2 + 1⌋ − m: the largest shift that
// keeps the crafted update inside the benign spread for majority-style
// defenses.
#pragma once

#include "attacks/attack.h"

namespace attacks {

class LieAttack : public Attack {
 public:
  // n = total clients, m = malicious clients; used only to derive z.
  // z_override > 0 bypasses the formula (used by the adaptive-attack tests).
  LieAttack(std::size_t total_clients, std::size_t malicious_clients,
            double z_override = 0.0);

  std::vector<float> Craft(const AttackContext& context) override;
  std::string Name() const override { return "LIE"; }

  double z() const { return z_; }

 private:
  double z_;
};

}  // namespace attacks

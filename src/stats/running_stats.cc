#include "stats/running_stats.h"

#include <cmath>

#include "util/check.h"

namespace stats {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::RestoreState(std::size_t count, double mean, double m2) {
  count_ = count;
  mean_ = mean;
  m2_ = m2;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
}

void VectorMovingAverage::Add(std::span<const float> v) {
  if (count_ == 0) {
    acc_.assign(v.begin(), v.end());
    count_ = 1;
    cache_valid_ = false;
    return;
  }
  AF_CHECK_EQ(v.size(), acc_.size()) << "dimension change in moving average";
  const double t = static_cast<double>(count_);
  const double keep = t / (t + 1.0);
  const double take = 1.0 / (t + 1.0);
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] = keep * acc_[i] + take * v[i];
  }
  ++count_;
  cache_valid_ = false;
}

void VectorMovingAverage::RestoreState(std::size_t count,
                                       std::vector<double> accumulator) {
  AF_CHECK((count == 0) == accumulator.empty())
      << "moving-average restore: count/accumulator mismatch";
  count_ = count;
  acc_ = std::move(accumulator);
  cache_valid_ = false;
}

std::span<const float> VectorMovingAverage::mean() const {
  AF_CHECK_GT(count_, 0u) << "mean() before any observation";
  if (!cache_valid_) {
    cached_.resize(acc_.size());
    for (std::size_t i = 0; i < acc_.size(); ++i) {
      cached_[i] = static_cast<float>(acc_[i]);
    }
    cache_valid_ = true;
  }
  return cached_;
}

}  // namespace stats

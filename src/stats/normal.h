// Standard normal CDF and quantile (inverse CDF).
//
// The LIE attack sets its per-dimension perturbation budget to
// z = Φ⁻¹((n − m − s)/(n − m)) (Baruch et al., 2019), which needs a
// numerical inverse normal CDF.
#pragma once

namespace stats {

// Φ(x): standard normal cumulative distribution function.
double NormalCdf(double x);

// Φ⁻¹(p) for p in (0, 1), via Acklam's rational approximation refined by one
// Halley step (|relative error| < 1e-9).
double NormalQuantile(double p);

}  // namespace stats

// Dirichlet sampling for non-IID data partitioning.
//
// The paper partitions each centralized dataset across clients by drawing
// per-client label proportions from Dirichlet(α): α = 0.1 by default, with
// 0.05 / 0.01 in the heterogeneity studies. Small α concentrates each
// client's samples in a few labels.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

namespace stats {

// Draws one sample from Dirichlet(alpha_1, ..., alpha_k) via normalized
// Gamma variates. All alphas must be positive.
std::vector<double> SampleDirichlet(const std::vector<double>& alphas,
                                    std::mt19937_64& rng);

// Symmetric convenience: Dirichlet(alpha, ..., alpha) of dimension k.
std::vector<double> SampleSymmetricDirichlet(std::size_t k, double alpha,
                                             std::mt19937_64& rng);

}  // namespace stats

#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stats {

Summary Summarize(std::span<const double> values) {
  AF_CHECK(!values.empty());
  Summary s;
  s.count = values.size();
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() >= 2) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  s.median = Quantile(values, 0.5);
  return s;
}

double Quantile(std::span<const double> values, double q) {
  AF_CHECK(!values.empty());
  AF_CHECK_GE(q, 0.0);
  AF_CHECK_LE(q, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace stats

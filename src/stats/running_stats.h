// Numerically stable scalar running statistics (Welford) plus the vector
// moving-average estimator AsyncFilter keeps per staleness group (Eq. 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace stats {

// Welford online mean/variance for scalars.
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 until two samples have been seen.
  double variance() const;
  double stddev() const;

  // Checkpoint access: (count, mean, m2) is the complete Welford state;
  // restoring it reproduces the estimator bit-identically.
  double m2() const { return m2_; }
  void RestoreState(std::size_t count, double mean, double m2);

  // Folds `other` in (Chan et al. parallel update) — the merged stats equal
  // what a single accumulator over both sample streams would hold, up to
  // the usual floating-point reassociation.
  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Running mean of equally-sized vectors, updated one observation at a time:
//   MA <- t/(t+1) * MA + 1/(t+1) * v        (paper Eq. 5)
// where t is the number of observations already absorbed. The estimator is
// dimension-lazy: the first Add fixes the dimension.
class VectorMovingAverage {
 public:
  // Adds one observation.
  void Add(std::span<const float> v);

  bool empty() const { return count_ == 0; }
  std::size_t count() const { return count_; }

  // The current estimate; must not be called before the first Add.
  std::span<const float> mean() const;

  // Checkpoint access: the exact double-precision accumulator. Restoring
  // (count, accumulator) reproduces the estimator bit-identically — the
  // float view in mean() is derived, so only these two fields are state.
  const std::vector<double>& accumulator() const { return acc_; }
  void RestoreState(std::size_t count, std::vector<double> accumulator);

 private:
  std::size_t count_ = 0;
  std::vector<double> acc_;     // running mean kept in double
  mutable std::vector<float> cached_;  // float view refreshed on demand
  mutable bool cache_valid_ = false;
};

}  // namespace stats

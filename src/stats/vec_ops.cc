#include "stats/vec_ops.h"

#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"

namespace stats {
namespace {

std::vector<std::span<const float>> AsSpans(
    const std::vector<std::vector<float>>& vectors) {
  std::vector<std::span<const float>> spans;
  spans.reserve(vectors.size());
  for (const auto& v : vectors) {
    spans.emplace_back(v);
  }
  return spans;
}

}  // namespace

// The reductions below are the inner loops of Krum, k-means, Zeno++,
// FLtrust, and AsyncFilter scoring; they dispatch to the unrolled
// multi-accumulator kernels shared with the GEMM core (tensor/kernels.h),
// which keep the double accumulation but break the dependency chain and
// pick up AVX2+FMA when the CPU has it.

double L2Norm(std::span<const float> v) {
  return std::sqrt(tensor::kernels::SumSquares(v.data(), v.size()));
}

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  AF_CHECK_EQ(a.size(), b.size());
  return tensor::kernels::SquaredDistance(a.data(), b.data(), a.size());
}

double Distance(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Dot(std::span<const float> a, std::span<const float> b) {
  AF_CHECK_EQ(a.size(), b.size());
  return tensor::kernels::Dot(a.data(), b.data(), a.size());
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  double na = L2Norm(a);
  double nb = L2Norm(b);
  if (na <= 0.0 || nb <= 0.0) {
    return 0.0;
  }
  return Dot(a, b) / (na * nb);
}

void Axpy(double alpha, std::span<const float> x, std::span<float> y) {
  AF_CHECK_EQ(x.size(), y.size());
  tensor::kernels::Axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(std::span<float> v, double alpha) {
  tensor::kernels::Scale(v.data(), alpha, v.size());
}

std::vector<float> Mean(const std::vector<std::span<const float>>& vectors) {
  AF_CHECK(!vectors.empty());
  const std::size_t dim = vectors.front().size();
  std::vector<double> acc(dim, 0.0);
  for (const auto& v : vectors) {
    AF_CHECK_EQ(v.size(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      acc[i] += v[i];
    }
  }
  std::vector<float> mean(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i] / static_cast<double>(vectors.size()));
  }
  return mean;
}

std::vector<float> Mean(const std::vector<std::vector<float>>& vectors) {
  return Mean(AsSpans(vectors));
}

std::vector<float> WeightedMean(
    const std::vector<std::span<const float>>& vectors,
    std::span<const double> weights) {
  AF_CHECK(!vectors.empty());
  AF_CHECK_EQ(vectors.size(), weights.size());
  const std::size_t dim = vectors.front().size();
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  AF_CHECK_GT(total, 0.0) << "weights must have positive sum";
  std::vector<double> acc(dim, 0.0);
  for (std::size_t k = 0; k < vectors.size(); ++k) {
    AF_CHECK_EQ(vectors[k].size(), dim);
    const double w = weights[k] / total;
    for (std::size_t i = 0; i < dim; ++i) {
      acc[i] += w * vectors[k][i];
    }
  }
  std::vector<float> mean(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i]);
  }
  return mean;
}

std::vector<float> WeightedMean(const std::vector<std::vector<float>>& vectors,
                                std::span<const double> weights) {
  return WeightedMean(AsSpans(vectors), weights);
}

std::vector<float> PerDimensionStd(
    const std::vector<std::span<const float>>& vectors) {
  AF_CHECK(!vectors.empty());
  const std::size_t dim = vectors.front().size();
  const double n = static_cast<double>(vectors.size());
  std::vector<double> sum(dim, 0.0);
  std::vector<double> sum_sq(dim, 0.0);
  for (const auto& v : vectors) {
    AF_CHECK_EQ(v.size(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      sum[i] += v[i];
      sum_sq[i] += static_cast<double>(v[i]) * v[i];
    }
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    double mean = sum[i] / n;
    double var = sum_sq[i] / n - mean * mean;
    out[i] = static_cast<float>(std::sqrt(var > 0.0 ? var : 0.0));
  }
  return out;
}

std::vector<float> PerDimensionStd(
    const std::vector<std::vector<float>>& vectors) {
  return PerDimensionStd(AsSpans(vectors));
}

std::vector<float> Subtract(std::span<const float> a, std::span<const float> b) {
  AF_CHECK_EQ(a.size(), b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

std::vector<float> Add(std::span<const float> a, std::span<const float> b) {
  AF_CHECK_EQ(a.size(), b.size());
  std::vector<float> out(a.size());
  tensor::kernels::Add(a.data(), b.data(), out.data(), a.size());
  return out;
}

std::vector<float> Negate(std::span<const float> v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = -v[i];
  }
  return out;
}

}  // namespace stats

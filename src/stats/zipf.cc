#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stats {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  AF_CHECK_GT(n, 0u);
  AF_CHECK_GT(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), s);
    cdf_[r - 1] = acc;
  }
  for (double& c : cdf_) {
    c /= acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double u = uniform(rng);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Probability(std::size_t rank) const {
  AF_CHECK_GE(rank, 1u);
  AF_CHECK_LE(rank, cdf_.size());
  double upper = cdf_[rank - 1];
  double lower = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return upper - lower;
}

std::vector<double> SampleClientLatencies(std::size_t num_clients, double s,
                                          double base_latency,
                                          std::mt19937_64& rng) {
  AF_CHECK_GT(base_latency, 0.0);
  ZipfSampler sampler(num_clients, s);
  std::vector<double> latencies(num_clients);
  for (auto& latency : latencies) {
    latency = base_latency * static_cast<double>(sampler.Sample(rng));
  }
  return latencies;
}

}  // namespace stats

// Batch summary statistics over small sample sets (per-table seed repeats,
// Figure 6 error bars, clustering diagnostics).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

// Computes the summary of a non-empty sample set.
Summary Summarize(std::span<const double> values);

// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::span<const double> values, double q);

}  // namespace stats

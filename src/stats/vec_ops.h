// Flat-vector numerics shared by the NN stack, the attacks and the defenses.
//
// Model updates cross the client/server boundary as flattened
// std::vector<float>; every server-side statistic the paper computes (l2
// distances, cosine similarity for Zeno++, per-dimension mean/std for LIE,
// moving averages for AsyncFilter) reduces to the operations here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stats {

// Euclidean norm ||v||_2. Accumulates in double for stability.
double L2Norm(std::span<const float> v);

// Squared Euclidean distance ||a - b||^2. Sizes must match.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

// Euclidean distance ||a - b||.
double Distance(std::span<const float> a, std::span<const float> b);

// Inner product <a, b>.
double Dot(std::span<const float> a, std::span<const float> b);

// Cosine similarity; returns 0 when either vector is (numerically) zero.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

// y += alpha * x.
void Axpy(double alpha, std::span<const float> x, std::span<float> y);

// v *= alpha.
void Scale(std::span<float> v, double alpha);

// Element-wise mean of a set of equally-sized vectors. `vectors` must be
// non-empty. The span form is the canonical one (updates arrive as
// zero-copy views); the vector form delegates.
std::vector<float> Mean(const std::vector<std::span<const float>>& vectors);
std::vector<float> Mean(const std::vector<std::vector<float>>& vectors);

// Weighted element-wise mean; `weights` need not be normalised but their sum
// must be positive.
std::vector<float> WeightedMean(
    const std::vector<std::span<const float>>& vectors,
    std::span<const double> weights);
std::vector<float> WeightedMean(const std::vector<std::vector<float>>& vectors,
                                std::span<const double> weights);

// Per-dimension (population) standard deviation across a set of vectors.
std::vector<float> PerDimensionStd(
    const std::vector<std::span<const float>>& vectors);
std::vector<float> PerDimensionStd(const std::vector<std::vector<float>>& vectors);

// out = a - b.
std::vector<float> Subtract(std::span<const float> a, std::span<const float> b);

// out = a + b.
std::vector<float> Add(std::span<const float> a, std::span<const float> b);

// out = -v.
std::vector<float> Negate(std::span<const float> v);

}  // namespace stats

// Zipf-distributed client speed model.
//
// The paper models client processing latency with a Zipf distribution
// (s = 1.2 by default, 2.5 in the speed-heterogeneity study): most devices
// are fast, a few are stragglers. We expose both a rank sampler and the
// derived latency model the simulator uses.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

namespace stats {

// Samples ranks r ∈ {1, ..., n} with P(r) ∝ 1 / r^s via inverse-CDF lookup.
class ZipfSampler {
 public:
  // `n` is the support size, `s` the exponent (> 0). The paper uses s > 1 so
  // the generalized harmonic series converges as n grows.
  ZipfSampler(std::size_t n, double s);

  // Draws one rank in [1, n].
  std::size_t Sample(std::mt19937_64& rng) const;

  // P(rank) for rank in [1, n].
  double Probability(std::size_t rank) const;

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[r-1] = P(rank <= r)
};

// Assigns each of `num_clients` a fixed latency multiplier: client i's rank
// is drawn once from Zipf(n=num_clients, s), and its latency is
// base_latency * rank. High ranks (rare under Zipf) are the stragglers.
std::vector<double> SampleClientLatencies(std::size_t num_clients, double s,
                                          double base_latency,
                                          std::mt19937_64& rng);

}  // namespace stats

#include "stats/dirichlet.h"

#include "util/check.h"

namespace stats {

std::vector<double> SampleDirichlet(const std::vector<double>& alphas,
                                    std::mt19937_64& rng) {
  AF_CHECK(!alphas.empty());
  std::vector<double> sample(alphas.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    AF_CHECK_GT(alphas[i], 0.0);
    std::gamma_distribution<double> gamma(alphas[i], 1.0);
    sample[i] = gamma(rng);
    sum += sample[i];
  }
  if (sum <= 0.0) {
    // Extremely small alphas can underflow every Gamma draw to 0; fall back
    // to a one-hot on a uniformly chosen coordinate, which is the limiting
    // behaviour of Dirichlet(alpha -> 0).
    std::uniform_int_distribution<std::size_t> pick(0, alphas.size() - 1);
    std::fill(sample.begin(), sample.end(), 0.0);
    sample[pick(rng)] = 1.0;
    return sample;
  }
  for (double& x : sample) {
    x /= sum;
  }
  return sample;
}

std::vector<double> SampleSymmetricDirichlet(std::size_t k, double alpha,
                                             std::mt19937_64& rng) {
  return SampleDirichlet(std::vector<double>(k, alpha), rng);
}

}  // namespace stats

#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    return "null";
  }
  return std::string(buf, ptr);
}

void JsonWriter::Comma() {
  if (needs_comma_.back()) {
    out_.push_back(',');
  }
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(name);
  out_ += "\":";
  needs_comma_.back() = false;  // the value that follows carries no comma
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Comma();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  Comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  Comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

namespace {

// Recursive-descent JSON syntax checker.
class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      Fail("invalid value");
    } else {
      SkipWs();
      if (!failed_ && pos_ != text_.size()) {
        Fail("trailing characters after value");
      }
    }
    if (failed_ && error != nullptr) {
      *error = "offset " + std::to_string(fail_pos_) + ": " + reason_;
    }
    return !failed_;
  }

 private:
  void Fail(const char* reason) {
    if (!failed_) {
      failed_ = true;
      fail_pos_ = pos_;
      reason_ = reason;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool StringValue() {
    if (Eof() || Peek() != '"') {
      return false;
    }
    ++pos_;
    while (!Eof()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (Eof()) {
          break;
        }
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              Fail("bad \\u escape");
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          Fail("bad escape character");
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool NumberValue() {
    std::size_t start = pos_;
    if (!Eof() && Peek() == '-') {
      ++pos_;
    }
    std::size_t digits = 0;
    while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return false;
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      std::size_t frac = 0;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) {
        Fail("digit expected after decimal point");
        return false;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      std::size_t exp = 0;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) {
        Fail("digit expected in exponent");
        return false;
      }
    }
    return true;
  }

  bool ObjectValue() {
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!StringValue()) {
        Fail("object key expected");
        return false;
      }
      SkipWs();
      if (Eof() || Peek() != ':') {
        Fail("':' expected");
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        Fail("object value expected");
        return false;
      }
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!Eof() && Peek() == '}') {
        ++pos_;
        return true;
      }
      Fail("',' or '}' expected");
      return false;
    }
  }

  bool ArrayValue() {
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        Fail("array element expected");
        return false;
      }
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!Eof() && Peek() == ']') {
        ++pos_;
        return true;
      }
      Fail("',' or ']' expected");
      return false;
    }
  }

  bool Value() {
    if (Eof()) {
      return false;
    }
    switch (Peek()) {
      case '{':
        return ObjectValue();
      case '[':
        return ArrayValue();
      case '"':
        return StringValue();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return NumberValue();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::size_t fail_pos_ = 0;
  std::string reason_;
};

}  // namespace

bool JsonLint(std::string_view text, std::string* error) {
  return Linter(text).Run(error);
}

}  // namespace obs

// Thread-safe metrics primitives and a name+label-addressed registry.
//
// The registry is the process-wide home for run telemetry: hot paths record
// into Counters/Gauges/Histograms (lock-free atomics after the first
// lookup), and the snapshot writer serialises everything to JSON so benches
// and the CLI can persist a run's metrics next to its CSVs. Metric handles
// returned by Get* stay valid for the registry's lifetime — cache them
// outside loops instead of re-resolving per record.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  // Bucket upper bounds: first_bound · growth^i for i in [0, bucket_count),
  // plus an implicit overflow bucket. The defaults cover [1, 2^31] — wide
  // enough for microsecond latencies from sub-μs spans to half-hour stalls.
  double first_bound = 1.0;
  double growth = 2.0;
  std::size_t bucket_count = 32;
};

// Fixed-exponential-bucket histogram. Record() is wait-free (two relaxed
// atomic adds plus a CAS loop for the double sum); percentile extraction
// interpolates linearly within the winning bucket and clamps to the observed
// min/max so p99 of a narrow distribution does not report a bucket edge.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void Record(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const;
  // p in [0, 1]; returns 0 when empty.
  double Percentile(double p) const;

  std::size_t BucketCount() const { return buckets_.size(); }
  // Upper bound of bucket i; +inf for the overflow bucket.
  double BucketUpperBound(std::size_t i) const;
  std::uint64_t BucketValue(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  const HistogramOptions& options() const { return options_; }

 private:
  HistogramOptions options_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bucket_count + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Point-in-time copy of one registered metric, decoupled from the live
// atomics so exporters (Prometheus text, /healthz) can format without
// holding the registry mutex. For histograms the buckets are per-bucket
// (non-cumulative) counts; the last bound is +inf (the overflow bucket).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
};

// Name + labels → metric instance. Lookups take one mutex; the returned
// references remain valid until Reset(). A metric name must keep one kind:
// requesting "x" as a counter and later as a gauge throws.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name, const Labels& labels = {});
  Gauge& GetGauge(std::string_view name, const Labels& labels = {});
  Histogram& GetHistogram(std::string_view name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  // Stable copy of every metric, ordered by name then labels (the
  // registry's key order), safe to take while hot paths keep recording.
  std::vector<MetricSnapshot> Snapshot() const;

  // Full snapshot as a JSON object: {"counters":[...],"gauges":[...],
  // "histograms":[...]} with p50/p95/p99 and non-empty buckets inlined.
  std::string SnapshotJson() const;

  // SnapshotJson to a file; throws util-style std::runtime_error on failure.
  void WriteJson(const std::string& path) const;

  // Drops every metric. Invalidates all previously returned references —
  // meant for test isolation and between independent CLI runs, not while
  // worker threads still hold handles.
  void Reset();

  std::size_t MetricCount() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& Lookup(std::string_view name, const Labels& labels, Kind kind,
                const HistogramOptions* options);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key = name + serialized labels
};

// The process-wide registry the instrumented hot paths record into.
MetricsRegistry& DefaultRegistry();

}  // namespace obs

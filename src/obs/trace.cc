#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace obs {

std::string TraceIdHex(std::uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[id & 0xF];
    id >>= 4;
  }
  return out;
}

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : options_(options) {
  if (options_.shard_count == 0 || options_.shard_capacity == 0) {
    throw std::invalid_argument("trace recorder needs shards and capacity");
  }
  shards_ = std::vector<Shard>(options_.shard_count);
  for (Shard& shard : shards_) {
    shard.ring.resize(options_.shard_capacity);
  }
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    const char* env = std::getenv("AF_TRACE");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      r->SetEnabled(true);
    }
    return r;
  }();
  return *recorder;
}

std::uint32_t TraceRecorder::CurrentThreadId() {
  static std::atomic<std::uint32_t> next_id{0};
  thread_local std::uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceRecorder::Record(const char* name, std::uint64_t begin_ns,
                           std::uint64_t end_ns, TraceContext context) {
  const std::uint32_t tid = CurrentThreadId();
  Shard& shard = shards_[tid % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.filled == shard.ring.size()) {
    ++shard.dropped;  // overwriting the oldest entry
  } else {
    ++shard.filled;
  }
  shard.ring[shard.next] = SpanEvent{name, tid, begin_ns, end_ns, context};
  shard.next = (shard.next + 1) % shard.ring.size();
}

std::vector<SpanEvent> TraceRecorder::Snapshot() const {
  std::vector<SpanEvent> events;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Oldest-first: the ring's live region ends at `next`.
    const std::size_t capacity = shard.ring.size();
    const std::size_t start =
        (shard.next + capacity - shard.filled) % capacity;
    for (std::size_t i = 0; i < shard.filled; ++i) {
      events.push_back(shard.ring[(start + i) % capacity]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.begin_ns < b.begin_ns;
            });
  return events;
}

std::uint64_t TraceRecorder::DroppedCount() const {
  std::uint64_t dropped = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped += shard.dropped;
  }
  return dropped;
}

std::size_t TraceRecorder::SpanCount() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.filled;
  }
  return count;
}

void TraceRecorder::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.next = 0;
    shard.filled = 0;
    shard.dropped = 0;
  }
}

void TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::vector<SpanEvent> events = Snapshot();
  std::uint64_t epoch = 0;
  if (!events.empty()) {
    epoch = events.front().begin_ns;  // Snapshot() sorts by begin time
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (const SpanEvent& event : events) {
    json.BeginObject();
    json.Key("name").String(event.name != nullptr ? event.name : "?");
    json.Key("cat").String("af");
    json.Key("ph").String("X");
    json.Key("ts").Number(static_cast<double>(event.begin_ns - epoch) / 1e3);
    json.Key("dur").Number(
        static_cast<double>(event.end_ns - event.begin_ns) / 1e3);
    json.Key("pid").Int(1);
    json.Key("tid").Int(static_cast<std::int64_t>(event.thread_id));
    if (event.context.trace_id != 0) {
      // Hex strings, not numbers: 64-bit ids exceed JSON double precision.
      json.Key("args").BeginObject();
      json.Key("trace_id").String(TraceIdHex(event.context.trace_id));
      json.Key("span_id").String(TraceIdHex(event.context.span_id));
      json.Key("parent_id").String(TraceIdHex(event.context.parent_id));
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  json.Key("otherData").BeginObject();
  json.Key("dropped_spans").UInt(DroppedCount());
  json.EndObject();
  json.EndObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open trace output: " + path);
  }
  out << json.str() << '\n';
}

}  // namespace obs

#include "obs/audit.h"

#include <stdexcept>

#include "obs/json.h"
#include "obs/trace.h"

namespace obs {

const char* AuditVerdictName(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kKept:
      return "kept";
    case AuditVerdict::kFiltered:
      return "filtered";
    case AuditVerdict::kDeferred:
      return "deferred";
  }
  return "?";
}

AuditTrail& AuditTrail::Global() {
  static AuditTrail* trail = new AuditTrail();
  return *trail;
}

void AuditTrail::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.close();
  out_.clear();
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open audit output: " + path);
  }
  record_count_ = 0;
  counts_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void AuditTrail::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

void AuditTrail::Append(const AuditRecord& record) {
  if (!enabled()) {
    return;
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("round").UInt(record.round);
  json.Key("client_id").Int(record.client_id);
  json.Key("staleness").UInt(record.staleness);
  if (record.has_score) {
    json.Key("score").Number(record.score);
  } else {
    json.Key("score").Null();
  }
  json.Key("verdict").String(AuditVerdictName(record.verdict));
  if (record.codec.empty()) {
    json.Key("codec").Null();
  } else {
    json.Key("codec").String(record.codec);
  }
  if (record.wire_bytes == 0) {
    json.Key("wire_bytes").Null();
  } else {
    json.Key("wire_bytes").UInt(record.wire_bytes);
  }
  if (record.queue_wait_us < 0.0) {
    json.Key("queue_wait_us").Null();
  } else {
    json.Key("queue_wait_us").Number(record.queue_wait_us);
  }
  json.Key("scoring_us").Number(record.scoring_us);
  if (record.trace_id == 0) {
    json.Key("trace_id").Null();
  } else {
    json.Key("trace_id").String(TraceIdHex(record.trace_id));
  }
  if (record.reason.empty()) {
    json.Key("reason").Null();
  } else {
    json.Key("reason").String(record.reason);
  }
  json.EndObject();

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return;  // lost a race with Close(); drop the record
  }
  out_ << json.str() << '\n';
  ++record_count_;
  AuditCounts& counts = counts_[record.client_id];
  switch (record.verdict) {
    case AuditVerdict::kKept:
      ++counts.kept;
      break;
    case AuditVerdict::kFiltered:
      ++counts.filtered;
      break;
    case AuditVerdict::kDeferred:
      ++counts.deferred;
      break;
  }
}

std::uint64_t AuditTrail::RecordCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record_count_;
}

std::map<int, AuditCounts> AuditTrail::CountsByClient() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

}  // namespace obs

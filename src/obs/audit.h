// Defense-decision audit trail: one structured JSONL record per update that
// reaches Defense::Process.
//
// The paper's detection-rate tables summarise verdicts away; this is the
// forensic layer underneath them — per update, who sent it, how stale it
// was, what the filter scored it, what the server decided, what it cost on
// the wire and in queue/scoring time. Records stream to a JSONL file as
// they happen (a crash loses at most the unflushed tail of the current
// round) and the trail keeps in-memory per-client verdict tallies so tests
// can cross-check the audit against SimulationResult exactly.
//
// Zero cost when closed: emitters guard on enabled(), a single relaxed
// atomic load, and the simulator skips record construction entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

namespace obs {

// The server's verdict, audit vocabulary: kept (aggregated), filtered
// (rejected by the defense), deferred (re-enqueued into the next buffer).
enum class AuditVerdict { kKept, kFiltered, kDeferred };

const char* AuditVerdictName(AuditVerdict verdict);

struct AuditRecord {
  std::uint64_t round = 0;
  int client_id = -1;
  std::uint64_t staleness = 0;
  // The defense's suspicious score for this update; not every defense
  // produces one (has_score=false → null in the JSONL).
  bool has_score = false;
  double score = 0.0;
  AuditVerdict verdict = AuditVerdict::kKept;
  // Wire provenance (tcp transport only; empty/0 → null in the JSONL).
  std::string codec;
  std::uint64_t wire_bytes = 0;
  // Latencies: wall-clock time the update sat buffered before the defense
  // ran (negative → unknown → null), and the defense's scoring pass.
  double queue_wait_us = -1.0;
  double scoring_us = 0.0;
  std::uint64_t trace_id = 0;  // 0 → null; hex string otherwise
  // Why this round deviated from the defense's normal filtering path
  // (AggregationResult::reason, e.g. "scores_degenerate"); empty → null.
  std::string reason;
};

// Per-client verdict tallies mirrored in memory as records are appended.
struct AuditCounts {
  std::uint64_t kept = 0;
  std::uint64_t filtered = 0;
  std::uint64_t deferred = 0;
};

class AuditTrail {
 public:
  // The process-wide trail the simulator appends to (closed by default).
  static AuditTrail& Global();

  // Opens `path` for appending records (truncates), resetting the tallies.
  // Throws std::runtime_error when the file cannot be opened.
  void Open(const std::string& path);

  // Flushes and closes; enabled() turns false. Safe when already closed.
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Writes one JSONL line and updates the in-memory tallies. No-op when
  // closed.
  void Append(const AuditRecord& record);

  std::uint64_t RecordCount() const;
  std::map<int, AuditCounts> CountsByClient() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t record_count_ = 0;
  std::map<int, AuditCounts> counts_;
};

}  // namespace obs

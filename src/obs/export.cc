#include "obs/export.h"

#include <poll.h>
#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>

#include "obs/json.h"
#include "util/check.h"
#include "util/fd.h"
#include "util/logging.h"

namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

// --- Prometheus text helpers ------------------------------------------

// Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names map '.' (and
// anything else outside the charset) to '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Label names: like metric names but without ':'.
std::string SanitizeLabelName(const std::string& name) {
  std::string out = SanitizeMetricName(name);
  for (char& c : out) {
    if (c == ':') {
      c = '_';
    }
  }
  return out;
}

// Label values: escape backslash, double quote, and newline (the spec's
// three escapes).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// Sample values: shortest round-trip decimal; non-finite uses Prometheus
// spellings (+Inf / -Inf / NaN), which also serve as `le` bounds.
std::string FormatValue(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  AF_CHECK(ec == std::errc()) << "to_chars failed";
  return std::string(buf, ptr);
}

// `{k1="v1",k2="v2"}` (or "" with no labels); `le`, when present, is
// appended last.
std::string FormatLabels(const Labels& labels, const std::string* le) {
  if (labels.empty() && le == nullptr) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += SanitizeLabelName(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  if (le != nullptr) {
    if (!first) {
      out.push_back(',');
    }
    out += "le=\"" + *le + "\"";
  }
  out.push_back('}');
  return out;
}

const char* KindTypeName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// --- /healthz helpers -------------------------------------------------

double MaxGauge(const std::vector<MetricSnapshot>& snapshot,
                const std::string& name) {
  double max = 0.0;
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.kind == MetricSnapshot::Kind::kGauge && metric.name == name) {
      max = std::max(max, metric.gauge_value);
    }
  }
  return max;
}

std::uint64_t SumCounters(const std::vector<MetricSnapshot>& snapshot,
                          const std::string& name) {
  std::uint64_t sum = 0;
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.kind == MetricSnapshot::Kind::kCounter &&
        metric.name == name) {
      sum += metric.counter_value;
    }
  }
  return sum;
}

double SumGauges(const std::vector<MetricSnapshot>& snapshot,
                 const std::string& name) {
  double sum = 0.0;
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.kind == MetricSnapshot::Kind::kGauge && metric.name == name) {
      sum += metric.gauge_value;
    }
  }
  return sum;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::string out;
  std::string last_typed;  // sanitized name the last # TYPE line covered
  for (const MetricSnapshot& metric : snapshot) {
    const std::string name = SanitizeMetricName(metric.name);
    if (name != last_typed) {
      out += "# TYPE " + name + " " + KindTypeName(metric.kind) + "\n";
      last_typed = name;
    }
    switch (metric.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += name + FormatLabels(metric.labels, nullptr) + " " +
               std::to_string(metric.counter_value) + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += name + FormatLabels(metric.labels, nullptr) + " " +
               FormatValue(metric.gauge_value) + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < metric.bucket_counts.size(); ++i) {
          cumulative += metric.bucket_counts[i];
          const std::string le = FormatValue(metric.bucket_bounds[i]);
          out += name + "_bucket" + FormatLabels(metric.labels, &le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum" + FormatLabels(metric.labels, nullptr) + " " +
               FormatValue(metric.hist_sum) + "\n";
        out += name + "_count" + FormatLabels(metric.labels, nullptr) + " " +
               std::to_string(metric.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string HealthzJson(const MetricsRegistry& registry,
                        const TraceRecorder& recorder) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("status").String("ok");
  json.Key("round").Number(MaxGauge(snapshot, "sim.round"));
  json.Key("connected_clients")
      .Number(SumGauges(snapshot, "net.server.connected_clients"));
  json.Key("evictions").UInt(SumCounters(snapshot, "net.server.evictions"));
  json.Key("spans").UInt(recorder.SpanCount());
  json.Key("dropped_spans").UInt(recorder.DroppedCount());
  json.Key("metrics").UInt(registry.MetricCount());
  json.EndObject();
  return json.TakeString();
}

std::string SpansJson(const TraceRecorder& recorder, std::size_t max_spans) {
  std::vector<SpanEvent> events = recorder.Snapshot();
  const std::size_t start =
      events.size() > max_spans ? events.size() - max_spans : 0;
  JsonWriter json;
  json.BeginObject();
  json.Key("total").UInt(events.size());
  json.Key("dropped").UInt(recorder.DroppedCount());
  json.Key("spans").BeginArray();
  for (std::size_t i = start; i < events.size(); ++i) {
    const SpanEvent& event = events[i];
    json.BeginObject();
    json.Key("name").String(event.name != nullptr ? event.name : "?");
    json.Key("tid").UInt(event.thread_id);
    json.Key("begin_ns").UInt(event.begin_ns);
    json.Key("dur_ns").UInt(event.end_ns - event.begin_ns);
    if (event.context.trace_id != 0) {
      json.Key("trace_id").String(TraceIdHex(event.context.trace_id));
      json.Key("span_id").String(TraceIdHex(event.context.span_id));
      json.Key("parent_id").String(TraceIdHex(event.context.parent_id));
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

// --- HTTP endpoint ----------------------------------------------------

namespace {

// Sends the whole buffer with a poll() deadline; returns false on error or
// timeout (the scraper gets a truncated response and retries next scrape).
bool SendAll(int fd, const std::string& data, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Reads until the end of the request head ("\r\n\r\n") or the deadline;
// returns the request text (possibly partial on timeout).
std::string RecvRequestHead(int fd, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string request;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    request.append(chunk, static_cast<std::size_t>(n));
  }
  return request;
}

// "GET /metrics HTTP/1.0" → "/metrics"; empty on anything else.
std::string ParseGetPath(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) {
    return "";
  }
  const std::size_t start = 4;
  const std::size_t end = request.find_first_of(" \r\n", start);
  if (end == std::string::npos || end == start) {
    return "";
  }
  return request.substr(start, end - start);
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterOptions options)
    : options_(options), listener_(options.port) {
  thread_ = std::thread([this] { Serve(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void MetricsExporter::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      AF_LOG(kWarn) << "obs: exporter poll failed: "
                    << util::ErrnoMessage(errno);
      return;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    try {
      util::UniqueFd conn = listener_.Accept();
      HandleConnection(conn.get());
    } catch (const std::exception& e) {
      AF_LOG(kWarn) << "obs: exporter request failed: " << e.what();
    }
  }
}

void MetricsExporter::HandleConnection(int fd) {
  const std::string request = RecvRequestHead(fd, options_.io_timeout_ms);
  const std::string path = ParseGetPath(request);
  std::string response;
  if (path == "/metrics") {
    response = HttpResponse("200 OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            PrometheusText(DefaultRegistry()));
  } else if (path == "/healthz") {
    response = HttpResponse(
        "200 OK", "application/json",
        HealthzJson(DefaultRegistry(), TraceRecorder::Global()));
  } else if (path == "/spans") {
    response = HttpResponse("200 OK", "application/json",
                            SpansJson(TraceRecorder::Global(), 1024));
  } else if (path.empty()) {
    response = HttpResponse("400 Bad Request", "text/plain",
                            "expected GET /metrics, /healthz, or /spans\n");
  } else {
    response = HttpResponse("404 Not Found", "text/plain",
                            "unknown path; try /metrics, /healthz, /spans\n");
  }
  if (SendAll(fd, response, options_.io_timeout_ms)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace obs

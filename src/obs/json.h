// Minimal JSON emission + syntax checking shared by the observability layer.
//
// The streaming writer covers everything the repo emits (metrics snapshots,
// Chrome trace files, per-round JSONL telemetry, bench summaries) without a
// third-party dependency; the linter lets tests and tools validate emitted
// files without building a DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes added).
std::string JsonEscape(std::string_view s);

// Streaming JSON writer. Callers are responsible for structural correctness
// (Key only inside objects, matching Begin/End); commas are inserted
// automatically. Non-finite doubles are emitted as null so files stay
// parseable.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

  // Returns the emitted text and resets the writer for reuse.
  std::string TakeString() {
    std::string out = std::move(out_);
    out_.clear();
    needs_comma_.assign(1, false);
    return out;
  }

 private:
  void Comma();

  std::string out_;
  // One entry per open container: whether the next value needs a comma.
  std::vector<bool> needs_comma_{false};
};

// Shortest-round-trip formatting for a double (to_chars); non-finite values
// become "null".
std::string JsonNumber(double value);

// True when `text` is one syntactically valid JSON value (with optional
// surrounding whitespace). On failure fills `error` (when non-null) with a
// byte offset + reason. Pure syntax check — no DOM, no semantic limits.
bool JsonLint(std::string_view text, std::string* error = nullptr);

}  // namespace obs

#include "obs/metrics.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/json.h"

namespace obs {
namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::string MetricKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');  // unit separator: cannot appear in sane labels
    key += k;
    key.push_back('=');
    key += v;
  }
  return key;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      buckets_(options.bucket_count + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!(options_.first_bound > 0.0) || !(options_.growth > 1.0) ||
      options_.bucket_count == 0) {
    throw std::invalid_argument("histogram needs first_bound>0, growth>1, "
                                "bucket_count>0");
  }
}

double Histogram::BucketUpperBound(std::size_t i) const {
  if (i + 1 >= buckets_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.first_bound * std::pow(options_.growth,
                                         static_cast<double>(i));
}

void Histogram::Record(double value) {
  // log-indexed bucket: first i with bound(i) >= value.
  std::size_t index = 0;
  if (value > options_.first_bound) {
    const double steps =
        std::log(value / options_.first_bound) / std::log(options_.growth);
    index = static_cast<std::size_t>(std::ceil(steps - 1e-9));
    if (index >= options_.bucket_count) {
      index = buckets_.size() - 1;  // overflow bucket
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const std::uint64_t total = Count();
  if (total == 0) {
    return 0.0;
  }
  p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  const double target = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Linear interpolation inside the winning bucket, clamped to the
      // observed range so narrow distributions don't report bucket edges.
      double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double upper = BucketUpperBound(i);
      if (!std::isfinite(upper)) {
        upper = Max();
      }
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      double value = lower + (upper - lower) * fraction;
      value = std::max(value, Min());
      value = std::min(value, Max());
      return value;
    }
    cumulative += in_bucket;
  }
  return Max();
}

MetricsRegistry::Entry& MetricsRegistry::Lookup(
    std::string_view name, const Labels& labels, Kind kind,
    const HistogramOptions* options) {
  const std::string key = MetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.name = std::string(name);
    entry.labels = labels;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(
            options != nullptr ? *options : HistogramOptions{});
        break;
    }
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return *Lookup(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return *Lookup(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const Labels& labels,
                                         const HistogramOptions& options) {
  return *Lookup(name, labels, Kind::kHistogram, &options).histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = entry.name;
    snap.labels = entry.labels;
    switch (entry.kind) {
      case Kind::kCounter:
        snap.kind = MetricSnapshot::Kind::kCounter;
        snap.counter_value = entry.counter->Value();
        break;
      case Kind::kGauge:
        snap.kind = MetricSnapshot::Kind::kGauge;
        snap.gauge_value = entry.gauge->Value();
        break;
      case Kind::kHistogram: {
        snap.kind = MetricSnapshot::Kind::kHistogram;
        const Histogram& h = *entry.histogram;
        const std::size_t buckets = h.BucketCount();
        snap.bucket_bounds.reserve(buckets);
        snap.bucket_counts.reserve(buckets);
        for (std::size_t i = 0; i < buckets; ++i) {
          snap.bucket_bounds.push_back(h.BucketUpperBound(i));
          snap.bucket_counts.push_back(h.BucketValue(i));
          // Derived from the same bucket reads (not h.Count()) so a scrape
          // taken mid-Record still satisfies count == +Inf bucket.
          snap.hist_count += snap.bucket_counts.back();
        }
        snap.hist_sum = h.Sum();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

namespace {

void WriteLabels(JsonWriter& json, const Labels& labels) {
  json.Key("labels").BeginObject();
  for (const auto& [k, v] : labels) {
    json.Key(k).String(v);
  }
  json.EndObject();
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();

  json.Key("counters").BeginArray();
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != Kind::kCounter) {
      continue;
    }
    json.BeginObject().Key("name").String(entry.name);
    WriteLabels(json, entry.labels);
    json.Key("value").UInt(entry.counter->Value()).EndObject();
  }
  json.EndArray();

  json.Key("gauges").BeginArray();
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != Kind::kGauge) {
      continue;
    }
    json.BeginObject().Key("name").String(entry.name);
    WriteLabels(json, entry.labels);
    json.Key("value").Number(entry.gauge->Value()).EndObject();
  }
  json.EndArray();

  json.Key("histograms").BeginArray();
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) {
      continue;
    }
    const Histogram& h = *entry.histogram;
    json.BeginObject().Key("name").String(entry.name);
    WriteLabels(json, entry.labels);
    json.Key("count").UInt(h.Count());
    json.Key("sum").Number(h.Sum());
    json.Key("min").Number(h.Min());
    json.Key("max").Number(h.Max());
    json.Key("p50").Number(h.Percentile(0.50));
    json.Key("p95").Number(h.Percentile(0.95));
    json.Key("p99").Number(h.Percentile(0.99));
    json.Key("buckets").BeginArray();
    for (std::size_t i = 0; i < h.BucketCount(); ++i) {
      const std::uint64_t count = h.BucketValue(i);
      if (count == 0) {
        continue;  // sparse output keeps snapshots small
      }
      json.BeginObject();
      json.Key("le").Number(h.BucketUpperBound(i));
      json.Key("count").UInt(count);
      json.EndObject();
    }
    json.EndArray().EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

void MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open metrics output: " + path);
  }
  out << SnapshotJson() << '\n';
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs

// Live observability plane: an embedded HTTP/1.0 exporter.
//
// A run (or the net::Server driving one) starts a MetricsExporter on a
// loopback port and anything that speaks HTTP can watch it live:
//
//   /metrics  Prometheus text exposition (0.0.4) of the full
//             MetricsRegistry — counters, gauges, histogram buckets with
//             labels. `curl localhost:9464/metrics` or point a Prometheus
//             scrape job at it.
//   /healthz  One JSON object: round progress, connected clients,
//             eviction count, span/metric totals.
//   /spans    JSON of the most recent trace-ring spans (ids included), for
//             a quick look without exporting a full Chrome trace.
//
// The exporter is a single serving thread over the existing net::Listener
// primitive: poll + accept, one short-lived connection per request,
// `Connection: close`. It is observation-only — it never touches an RNG
// stream or simulation state, so a run with the exporter on produces
// bit-identical results to one without. Off by default; when no exporter
// is constructed there is no thread and no socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs {

// --- Formatting (pure; separately testable) ---------------------------

// Prometheus text exposition 0.0.4 of every metric in `registry`. Metric
// and label names are sanitised to the Prometheus charset (dots become
// underscores); label values are escaped per the spec. Histograms emit
// cumulative `_bucket{le=...}` series ending in `+Inf`, plus `_sum` and
// `_count`.
std::string PrometheusText(const MetricsRegistry& registry);

// One JSON object summarising liveness: {"status","round",
// "connected_clients","evictions","spans","metrics"}. Values are read from
// the registry's `sim.round` / `net.server.connected_clients` gauges and
// `net.server.evictions` counters (0 when a series does not exist yet).
std::string HealthzJson(const MetricsRegistry& registry,
                        const TraceRecorder& recorder);

// JSON of the most recent `max_spans` spans in the recorder's ring.
std::string SpansJson(const TraceRecorder& recorder, std::size_t max_spans);

// --- The embedded endpoint --------------------------------------------

struct MetricsExporterOptions {
  std::uint16_t port = 0;  // 0 → ephemeral loopback port (see port())
  // How long one request may take to arrive/flush before the connection is
  // dropped; scrapers are local, so this is generous.
  int io_timeout_ms = 2000;
};

class MetricsExporter {
 public:
  // Binds the port and starts the serving thread. Throws util::CheckError
  // when the port cannot be bound.
  explicit MetricsExporter(MetricsExporterOptions options = {});
  ~MetricsExporter();  // Stop()

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  // Joins the serving thread; idempotent.
  void Stop();

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  MetricsExporterOptions options_;
  net::Listener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs

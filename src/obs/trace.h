// Scoped wall-clock trace spans with Chrome trace-event export.
//
// Hot paths mark themselves with AF_TRACE_SPAN("defense.process"); when
// tracing is off (the default) the macro costs a single relaxed atomic load
// and branch. When on, each span records {name, thread, begin, end} into a
// lock-sharded ring buffer sized for whole runs, and WriteChromeTrace()
// exports everything as Chrome trace-event JSON — load the file in
// chrome://tracing or https://ui.perfetto.dev to see where a simulation
// spends its time.
//
// Kill switches: define AF_OBS_DISABLE_TRACING at compile time to erase the
// macro entirely, set the AF_TRACE=1 environment variable to enable
// collection at startup, or call TraceRecorder::Global().SetEnabled(true)
// programmatically (what run_experiment --trace-out does).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace obs {

// Cross-process span identity. All-zero (the default) means "no context":
// the span is purely local, exactly what every span was before trace
// propagation existed. Non-zero ids let spans recorded in different
// processes (or different recorders) be stitched into one causal timeline —
// tools/merge_traces.py joins on trace_id.
struct TraceContext {
  std::uint64_t trace_id = 0;   // one logical operation end to end
  std::uint64_t span_id = 0;    // this span
  std::uint64_t parent_id = 0;  // the span that caused it (0 = root)
};

struct SpanEvent {
  // Span names must have static storage duration (string literals); the
  // recorder stores the pointer, not a copy.
  const char* name = nullptr;
  std::uint32_t thread_id = 0;  // dense per-process id, stable per thread
  std::uint64_t begin_ns = 0;   // steady_clock, offset from an arbitrary epoch
  std::uint64_t end_ns = 0;
  TraceContext context;  // zero ids → plain local span
};

// 16-digit zero-padded lowercase hex, the form trace ids take in every JSON
// export (64-bit ids do not survive JSON's double precision as numbers).
std::string TraceIdHex(std::uint64_t id);

struct TraceRecorderOptions {
  std::size_t shard_count = 8;          // locks sharded by thread id
  std::size_t shard_capacity = 1 << 16; // spans per shard before wrapping
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {});

  // The process-wide recorder AF_TRACE_SPAN records into. Honours AF_TRACE=1
  // in the environment on first access.
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              TraceContext context = {});

  // Stable copy of everything currently buffered, ordered by begin time.
  std::vector<SpanEvent> Snapshot() const;

  // Spans overwritten because a shard's ring wrapped.
  std::uint64_t DroppedCount() const;

  // Drops all buffered spans (dropped count included).
  void Clear();

  // Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
  // normalised so the earliest span starts at ts 0). Throws
  // std::runtime_error when the file cannot be opened.
  void WriteChromeTrace(const std::string& path) const;

  std::size_t SpanCount() const;

  static std::uint64_t NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // Dense id for the calling thread (assigned on first use).
  static std::uint32_t CurrentThreadId();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<SpanEvent> ring;
    std::size_t next = 0;     // write cursor
    std::size_t filled = 0;   // live entries (≤ capacity)
    std::uint64_t dropped = 0;
  };

  TraceRecorderOptions options_;
  std::atomic<bool> enabled_{false};
  std::vector<Shard> shards_;
};

// RAII span: samples the clock only when the global recorder is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, TraceContext context = {}) {
    if (TraceRecorder::Global().enabled()) {
      name_ = name;
      context_ = context;
      begin_ns_ = TraceRecorder::NowNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, begin_ns_, TraceRecorder::NowNs(),
                                     context_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  TraceContext context_;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace obs

#if defined(AF_OBS_DISABLE_TRACING)
#define AF_TRACE_SPAN(name) \
  do {                      \
  } while (false)
#else
#define AF_OBS_CONCAT_INNER(a, b) a##b
#define AF_OBS_CONCAT(a, b) AF_OBS_CONCAT_INNER(a, b)
#define AF_TRACE_SPAN(name) \
  ::obs::ScopedSpan AF_OBS_CONCAT(af_trace_span_, __LINE__)(name)
#endif

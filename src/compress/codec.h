// Model-update compression codecs for the wire and for checkpoints.
//
// A Codec turns a flat float32 parameter (or delta) vector into a
// self-describing framed container and back. The container ("AFCZ",
// little-endian) layers on the AFPM framing from nn/serialize — the
// identity codec's body IS an AFPM block, and every consumer that used to
// read raw AFPM payloads now sniffs the leading magic and accepts either:
//
//   magic   "AFCZ"                                   4 bytes
//   u32     container version (currently 1)
//   u8      codec-name length, then that many name bytes
//   u64     original element count (float32s)
//   u64     body size in bytes
//   u64     FNV-1a checksum of the body
//   bytes   body — codec-specific encoding
//
// Codecs are stateless singletons resolved through a string-keyed registry
// built on util::NamedRegistry (the same mechanics as the attack and
// defense registries): decoding never needs negotiation because the
// container names its codec. Lossy codecs may keep a client-side residual
// ("error feedback"): the encoder folds the previous encoding error into
// the next value vector so quantization error does not accumulate across
// rounds (see FeedbackState).
//
// Built-in codecs:
//   identity    lossless pass-through (AFPM body)
//   fp16        IEEE-754 half precision, round-to-nearest-even   (~2×)
//   int8        per-tensor uniform quantization, scale/zero-point (~4×)
//   topk-delta  top-k magnitude sparsification of the training delta
//               (k = 10% of elements), varint index gaps + fp16 values,
//               residual kept client-side for error feedback     (~12×)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace compress {

inline constexpr std::uint32_t kContainerVersion = 1;

// Upper bound on the element count a container header may declare (2^28
// floats = 1 GiB decoded — comfortably above any real model here, far
// below the counts that make `count * sizeof(T)` wrap or drive the
// allocator into the ground). Decoders reject larger counts with
// util::CheckError before allocating anything.
inline constexpr std::uint64_t kMaxDecodedElements = 1ull << 28;

class Codec {
 public:
  virtual ~Codec() = default;

  // Canonical registry name; also what the container header carries.
  virtual const char* name() const = 0;

  // True when Decode(Encode(v)) == v bit-exactly for every finite v.
  virtual bool lossless() const = 0;

  // Whether full model parameters (ModelBroadcast downlink, checkpoint
  // model pool) may be encoded with this codec. Delta-oriented codecs
  // (top-k sparsification, int8 range quantization) would destroy a full
  // weight vector, so the wire falls back to identity on the downlink for
  // them and only compresses the uplink delta.
  virtual bool broadcast_safe() const { return lossless(); }

  // Whether the encoder participates in client-side error feedback (the
  // caller keeps a FeedbackState per stream and the residual folds into
  // the next encode).
  virtual bool uses_feedback() const { return false; }

  // Encodes `values` into `out` (body bytes only — no container framing;
  // use AppendEncodedParams for the framed form).
  virtual void EncodeBody(std::span<const float> values,
                          std::vector<std::uint8_t>& out) const = 0;

  // Decodes exactly `count` floats from `body`; throws util::CheckError on
  // malformed bytes (truncation, counts that disagree with the header).
  virtual std::vector<float> DecodeBody(std::span<const std::uint8_t> body,
                                        std::uint64_t count) const = 0;
};

// Per-stream error-feedback state for lossy codecs: the residual is the
// accumulated difference between what the client computed and what the
// server decoded.
struct FeedbackState {
  std::vector<float> residual;
};

// --- Container framing -------------------------------------------------

// Appends the framed AFCZ container for `values` to `out`. When `feedback`
// is non-null and the codec uses feedback, the residual is folded into the
// values before encoding and updated to the new encoding error.
void AppendEncodedParams(std::vector<std::uint8_t>& out, const Codec& codec,
                         std::span<const float> values,
                         FeedbackState* feedback = nullptr);

// Parses one parameter block starting at `*offset`, advancing past it.
// Sniffs the magic: a raw AFPM block (legacy peers, uncompressed
// checkpoints) and an AFCZ container are both accepted. Throws
// util::CheckError on malformed input — bad magic, unknown codec name,
// checksum mismatch, truncation — without reading past the buffer.
std::vector<float> ParseAnyParams(std::span<const std::uint8_t> bytes,
                                  std::size_t* offset);

// Zero-copy form of ParseAnyParams. `values` aliases the input buffer on
// the fast path — a raw AFPM block, or an AFCZ identity container, with a
// 4-byte-aligned payload — and is then valid only as long as `bytes` is
// (`keepalive` empty, `copied_bytes` 0). Lossy codecs and misaligned
// payloads materialize into a buffer owned by `keepalive`, reporting the
// bytes copied so callers can account them. Rejects malformed input
// exactly as ParseAnyParams does.
struct ParsedParamsView {
  std::span<const float> values;
  std::shared_ptr<const void> keepalive;
  std::uint64_t copied_bytes = 0;
};
ParsedParamsView ParseAnyParamsView(std::span<const std::uint8_t> bytes,
                                    std::size_t* offset);

// Bytes AppendEncodedParams would emit for this codec and value vector
// (encodes into a scratch buffer; intended for benches, not hot paths).
std::size_t EncodedWireSize(const Codec& codec, std::span<const float> values);

// The exact float vector a peer would decode from an encode of `values`
// (with optional error feedback). The inproc training backend uses this to
// mirror the wire's lossy round trip so tcp and inproc runs stay
// bit-identical under the same --compress setting.
std::vector<float> RoundTrip(const Codec& codec, std::span<const float> values,
                             FeedbackState* feedback = nullptr);

// --- Registry ----------------------------------------------------------

// Global codec table. Built-ins register on first use; new codecs plug in
// from their own translation unit via RegistryEntry.
class Registry {
 public:
  static Registry& Global();

  // Registers `codec` (not owned; must outlive the process — codecs are
  // stateless singletons) under its name plus aliases.
  void Register(const Codec* codec, std::vector<std::string> aliases = {});

  // Resolves a codec by name or alias; throws util::CheckError on unknown
  // names (the message lists what is available).
  const Codec& Get(const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> ListNames() const;
};

// Convenience free functions over Registry::Global().
const Codec& Get(const std::string& name);
bool Has(const std::string& name);
std::vector<std::string> ListNames();

// The lossless pass-through codec (negotiation fallback).
const Codec& Identity();

// True when `codec` is the identity codec (by canonical name).
bool IsIdentity(const Codec& codec);

// Registers a codec at static-initialization time:
//   static const compress::RegistryEntry kReg{&my_codec, {"alias"}};
struct RegistryEntry {
  explicit RegistryEntry(const Codec* codec,
                         std::vector<std::string> aliases = {}) {
    Registry::Global().Register(codec, std::move(aliases));
  }
};

// --- fp16 scalar conversions (shared by the fp16 and topk codecs) ------

// Round-to-nearest-even float32 → IEEE-754 binary16; overflow saturates to
// ±inf, NaN payloads collapse to a quiet NaN.
std::uint16_t FloatToHalf(float value);
float HalfToFloat(std::uint16_t half);

}  // namespace compress

#include "compress/codec.h"

#include <chrono>
#include <cstring>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/registry.h"

namespace compress {

// Defined in codecs.cc; called once from Registry::Global(). The direct
// call keeps the builtin codecs' translation unit linked into static
// builds (same dead-strip concern as core::EnsureAsyncFilterRegistered).
void RegisterBuiltinCodecs(Registry& registry);

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kMagic[4] = {'A', 'F', 'C', 'Z'};
constexpr char kAfpmMagic[4] = {'A', 'F', 'P', 'M'};

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
void AppendRaw(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

// Reads sizeof(T) at `*offset` relative to `bytes`, advancing it; the
// error names the absolute offset so a corrupt stream is locatable.
template <typename T>
T ReadRaw(std::span<const std::uint8_t> bytes, std::size_t* offset) {
  AF_CHECK_LE(*offset + sizeof(T), bytes.size())
      << "truncated AFCZ container at byte offset " << *offset;
  T value;
  std::memcpy(&value, bytes.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

util::NamedRegistry<const Codec*>& GlobalTable() {
  static auto* table = new util::NamedRegistry<const Codec*>("codec");
  return *table;
}

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Appends body bytes for `values` to `out` (which may already hold the
// container header — only the appended suffix is the body), applying error
// feedback when the codec asks for it; optionally also reports the exact
// floats a decoder will reconstruct (shared by RoundTrip so it never
// encodes twice).
void EncodeCore(const Codec& codec, std::span<const float> values,
                FeedbackState* feedback, std::vector<std::uint8_t>& out,
                std::vector<float>* decoded_out) {
  const bool use_feedback =
      feedback != nullptr && codec.uses_feedback() && !codec.lossless();
  std::vector<float> adjusted;
  std::span<const float> input = values;
  if (use_feedback) {
    feedback->residual.resize(values.size(), 0.0f);
    adjusted.assign(values.begin(), values.end());
    for (std::size_t i = 0; i < adjusted.size(); ++i) {
      adjusted[i] += feedback->residual[i];
    }
    input = adjusted;
  }
  const std::size_t body_start = out.size();
  codec.EncodeBody(input, out);
  if (use_feedback || (decoded_out != nullptr && !codec.lossless())) {
    const std::span<const std::uint8_t> body =
        std::span<const std::uint8_t>(out).subspan(body_start);
    std::vector<float> decoded = codec.DecodeBody(body, input.size());
    if (use_feedback) {
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        feedback->residual[i] = input[i] - decoded[i];
      }
    }
    if (decoded_out != nullptr) {
      *decoded_out = std::move(decoded);
    }
  } else if (decoded_out != nullptr) {
    decoded_out->assign(input.begin(), input.end());
  }
}

}  // namespace

void AppendEncodedParams(std::vector<std::uint8_t>& out, const Codec& codec,
                         std::span<const float> values,
                         FeedbackState* feedback) {
  const auto start = Clock::now();
  const std::string_view name = codec.name();
  AF_CHECK_LE(name.size(), 255u) << "codec name too long: " << name;
  // Encode the body directly into `out` (EncodeBody appends): the header's
  // body-size and checksum fields are written as placeholders and patched
  // once the body bytes exist, so no intermediate body vector is built.
  const std::size_t container_start = out.size();
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  AppendRaw(out, kContainerVersion);
  out.push_back(static_cast<std::uint8_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  AppendRaw(out, static_cast<std::uint64_t>(values.size()));
  const std::size_t patch_pos = out.size();
  AppendRaw(out, std::uint64_t{0});  // body size, patched below
  AppendRaw(out, std::uint64_t{0});  // checksum, patched below
  const std::size_t body_pos = out.size();
  EncodeCore(codec, values, feedback, out, nullptr);
  const auto body_size = static_cast<std::uint64_t>(out.size() - body_pos);
  const std::uint64_t checksum =
      Fnv1a(std::span<const std::uint8_t>(out).subspan(body_pos));
  std::memcpy(out.data() + patch_pos, &body_size, sizeof(body_size));
  std::memcpy(out.data() + patch_pos + sizeof(body_size), &checksum,
              sizeof(checksum));
  const std::size_t container_size = out.size() - container_start;

  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("compress.bytes_in")
      .Increment(values.size() * sizeof(float));
  registry.GetCounter("compress.bytes_out").Increment(container_size);
  registry.GetCounter("compress.encode_us")
      .Increment(static_cast<std::uint64_t>(MicrosSince(start)));
  if (container_size > 0) {
    registry
        .GetHistogram("compress.ratio", {{"codec", std::string(name)}})
        .Record(static_cast<double>(values.size() * sizeof(float)) /
                static_cast<double>(container_size));
  }
}

namespace {

// Validated AFCZ container header + body extent; shared by the copying and
// zero-copy parse forms so they reject identical inputs identically.
struct AfczContainer {
  std::string name;
  std::uint64_t count = 0;
  std::span<const std::uint8_t> body;
  std::size_t consumed = 0;  // header + body bytes
};

AfczContainer ParseAfczContainer(std::span<const std::uint8_t> rest,
                                 std::size_t base_offset) {
  AfczContainer out;
  std::size_t cursor = sizeof(kMagic);
  const auto version = ReadRaw<std::uint32_t>(rest, &cursor);
  AF_CHECK_EQ(version, kContainerVersion)
      << "unsupported AFCZ container version " << version;
  const auto name_len = ReadRaw<std::uint8_t>(rest, &cursor);
  AF_CHECK_LE(cursor + name_len, rest.size())
      << "truncated AFCZ codec name at byte offset " << base_offset + cursor;
  out.name.assign(reinterpret_cast<const char*>(rest.data() + cursor),
                  name_len);
  cursor += name_len;
  out.count = ReadRaw<std::uint64_t>(rest, &cursor);
  AF_CHECK_LE(out.count, kMaxDecodedElements)
      << "AFCZ container declares " << out.count
      << " elements; refusing anything above " << kMaxDecodedElements;
  const auto body_size = ReadRaw<std::uint64_t>(rest, &cursor);
  const auto checksum = ReadRaw<std::uint64_t>(rest, &cursor);
  // Bounds-check before any allocation: a corrupt size field must fail
  // loudly, not attempt a huge allocation or read past the buffer.
  AF_CHECK_LE(body_size, rest.size() - cursor)
      << "truncated AFCZ body at byte offset " << base_offset + cursor
      << ": header declares " << body_size << " bytes but only "
      << rest.size() - cursor << " remain";
  out.body = rest.subspan(cursor, body_size);
  AF_CHECK_EQ(Fnv1a(out.body), checksum)
      << "AFCZ body checksum mismatch for codec " << out.name;
  out.consumed = cursor + static_cast<std::size_t>(body_size);
  return out;
}

}  // namespace

std::vector<float> ParseAnyParams(std::span<const std::uint8_t> bytes,
                                  std::size_t* offset) {
  AF_CHECK(offset != nullptr);
  AF_CHECK_LE(*offset, bytes.size()) << "parse offset past end of buffer";
  std::span<const std::uint8_t> rest = bytes.subspan(*offset);
  AF_CHECK_GE(rest.size(), sizeof(kMagic))
      << "truncated parameter block at byte offset " << *offset;
  if (std::memcmp(rest.data(), kAfpmMagic, sizeof(kAfpmMagic)) == 0) {
    // Legacy / identity-on-disk form: a raw AFPM block.
    return nn::ParseFlatParams(bytes, offset);
  }
  AF_CHECK(std::memcmp(rest.data(), kMagic, sizeof(kMagic)) == 0)
      << "bad parameter block magic at byte offset " << *offset;

  const auto start = Clock::now();
  const AfczContainer container = ParseAfczContainer(rest, *offset);
  const Codec& codec = Get(container.name);
  std::vector<float> values = codec.DecodeBody(container.body,
                                               container.count);
  AF_CHECK_EQ(values.size(), container.count)
      << "codec " << container.name << " decoded " << values.size() << " of "
      << container.count << " declared values";
  *offset += container.consumed;

  obs::DefaultRegistry()
      .GetCounter("compress.decode_us")
      .Increment(static_cast<std::uint64_t>(MicrosSince(start)));
  return values;
}

ParsedParamsView ParseAnyParamsView(std::span<const std::uint8_t> bytes,
                                    std::size_t* offset) {
  AF_CHECK(offset != nullptr);
  AF_CHECK_LE(*offset, bytes.size()) << "parse offset past end of buffer";
  std::span<const std::uint8_t> rest = bytes.subspan(*offset);
  AF_CHECK_GE(rest.size(), sizeof(kMagic))
      << "truncated parameter block at byte offset " << *offset;

  ParsedParamsView out;
  if (std::memcmp(rest.data(), kAfpmMagic, sizeof(kAfpmMagic)) == 0) {
    // Raw AFPM block: alias the payload when it is float-aligned within
    // the buffer, copy (and say so) otherwise.
    if (auto view = nn::TryParseFlatParamsView(bytes, offset)) {
      out.values = *view;
      return out;
    }
    auto owned =
        std::make_shared<std::vector<float>>(nn::ParseFlatParams(bytes,
                                                                 offset));
    out.values = std::span<const float>(owned->data(), owned->size());
    out.copied_bytes = owned->size() * sizeof(float);
    out.keepalive = std::move(owned);
    return out;
  }
  AF_CHECK(std::memcmp(rest.data(), kMagic, sizeof(kMagic)) == 0)
      << "bad parameter block magic at byte offset " << *offset;

  const auto start = Clock::now();
  const AfczContainer container = ParseAfczContainer(rest, *offset);
  const Codec& codec = Get(container.name);
  if (IsIdentity(codec)) {
    // Identity bodies ARE AFPM blocks: view straight into the container.
    std::size_t body_offset = 0;
    if (auto view =
            nn::TryParseFlatParamsView(container.body, &body_offset)) {
      AF_CHECK_EQ(view->size(), container.count)
          << "identity AFCZ body holds " << view->size() << " of "
          << container.count << " declared values";
      AF_CHECK_EQ(body_offset, container.body.size())
          << "trailing bytes in identity AFCZ body";
      out.values = *view;
      *offset += container.consumed;
      return out;
    }
  }
  auto owned = std::make_shared<std::vector<float>>(
      codec.DecodeBody(container.body, container.count));
  AF_CHECK_EQ(owned->size(), container.count)
      << "codec " << container.name << " decoded " << owned->size() << " of "
      << container.count << " declared values";
  out.values = std::span<const float>(owned->data(), owned->size());
  out.copied_bytes = owned->size() * sizeof(float);
  out.keepalive = std::move(owned);
  *offset += container.consumed;

  obs::DefaultRegistry()
      .GetCounter("compress.decode_us")
      .Increment(static_cast<std::uint64_t>(MicrosSince(start)));
  return out;
}

std::size_t EncodedWireSize(const Codec& codec,
                            std::span<const float> values) {
  std::vector<std::uint8_t> out;
  AppendEncodedParams(out, codec, values);
  return out.size();
}

std::vector<float> RoundTrip(const Codec& codec, std::span<const float> values,
                             FeedbackState* feedback) {
  std::vector<std::uint8_t> body;
  std::vector<float> decoded;
  EncodeCore(codec, values, feedback, body, &decoded);
  return decoded;
}

Registry& Registry::Global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    RegisterBuiltinCodecs(*r);
    return r;
  }();
  return *registry;
}

void Registry::Register(const Codec* codec,
                        std::vector<std::string> aliases) {
  AF_CHECK(codec != nullptr) << "codec registry: null codec";
  GlobalTable().Register(codec->name(), std::move(aliases), codec);
}

const Codec& Registry::Get(const std::string& name) const {
  return *GlobalTable().Find(name);
}

bool Registry::Has(const std::string& name) const {
  return GlobalTable().Has(name);
}

std::vector<std::string> Registry::ListNames() const {
  return GlobalTable().ListNames();
}

const Codec& Get(const std::string& name) {
  return Registry::Global().Get(name);
}

bool Has(const std::string& name) { return Registry::Global().Has(name); }

std::vector<std::string> ListNames() {
  return Registry::Global().ListNames();
}

bool IsIdentity(const Codec& codec) {
  return util::CanonicalName(codec.name()) == "identity";
}

}  // namespace compress
